"""CLI flags for the partitioned parallel scan."""

from __future__ import annotations

import io

from repro.cli import main


def run_cli(*argv, stdin_text=""):
    stdin = io.StringIO(stdin_text)
    stdout = io.StringIO()
    stderr = io.StringIO()
    code = main(list(argv), stdin=stdin, stdout=stdout, stderr=stderr)
    return code, stdout.getvalue(), stderr.getvalue()


def test_parallel_workers_flag(small_csv):
    code, out, err = run_cli(
        "--parallel-workers", "4",
        "--partition-min-bytes", "1",
        "--stats",
        "select count(*) from t",
        str(small_csv),
    )
    assert code == 0, err
    assert "500" in out
    assert "parallel partitions" in out


def test_serial_default_hides_partition_stat(small_csv):
    code, out, err = run_cli("--stats", "select count(*) from t", str(small_csv))
    assert code == 0, err
    assert "parallel partitions" not in out


def test_parallel_answer_matches_serial(small_csv):
    sql = "select sum(a1), count(*) from t where a1 > 100 and a1 < 400"
    _, serial_out, _ = run_cli(sql, str(small_csv))
    code, parallel_out, err = run_cli(
        "--parallel-workers", "2", "--partition-min-bytes", "1", sql, str(small_csv)
    )
    assert code == 0, err
    assert parallel_out == serial_out


def test_invalid_workers_is_a_clean_error(small_csv):
    code, _, err = run_cli(
        "--parallel-workers", "-2", "select count(*) from t", str(small_csv)
    )
    assert code == 1
    assert "parallel_workers" in err
