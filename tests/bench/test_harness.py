"""Tests for the bench harness and report formatting."""

from repro import NoDBEngine
from repro.bench.harness import Series, run_sequence, time_callable
from repro.bench.report import format_ratio_line, format_series_table


class TestSeries:
    def test_aggregates(self):
        import pytest

        s = Series("x", times_s=[1.0, 0.1, 0.1])
        assert s.total_s == pytest.approx(1.2)
        assert s.first_query_s == 1.0
        assert s.steady_state_s() == pytest.approx(0.1)

    def test_empty(self):
        s = Series("x")
        assert s.total_s == 0
        assert s.first_query_s != s.first_query_s  # NaN


class TestRunSequence:
    def test_captures_engine_counters(self, small_csv):
        engine = NoDBEngine()
        engine.attach("r", small_csv)
        sqls = [
            "select sum(a1) from r where a1 > 5 and a1 < 100",
            "select sum(a1) from r where a1 > 5 and a1 < 100",
        ]
        series = run_sequence("test", engine, sqls)
        assert len(series.times_s) == 2
        assert series.bytes_read[0] > 0
        assert series.bytes_read[1] == 0
        assert series.from_store == [False, True]
        engine.close()

    def test_works_without_stats(self):
        class Dummy:
            def query(self, sql):
                return None

        series = run_sequence("dummy", Dummy(), ["q1"])
        assert series.bytes_read == [0]


class TestReport:
    def test_table_format(self):
        a = Series("fast", times_s=[0.001, 0.002], from_store=[False, True])
        b = Series("slow", times_s=[0.1, 0.2], from_store=[False, False])
        text = format_series_table("My Figure", [a, b])
        assert "My Figure" in text
        assert "fast" in text and "slow" in text
        assert "2.00*" in text  # store-served marker
        assert "total" in text

    def test_markdown_format(self):
        s = Series("only", times_s=[0.5])
        text = format_series_table("T", [s], markdown=True)
        assert "| query | only |" in text
        assert text.startswith("### T")

    def test_uneven_series_lengths(self):
        a = Series("a", times_s=[0.1])
        b = Series("b", times_s=[0.1, 0.2])
        text = format_series_table("T", [a, b])
        assert "-" in text

    def test_ratio_line(self):
        assert "2.00x" in format_ratio_line("speedup", 2.0, 1.0)
        assert "n/a" in format_ratio_line("speedup", 2.0, 0.0)


def test_time_callable():
    assert time_callable(lambda: sum(range(100))) >= 0.0
