"""The shared bench-script CLI contract (--quick / --json / overrides)."""

from __future__ import annotations

import json

from repro.bench.harness import (
    BenchReport,
    bench_arg_parser,
    dataset_rows,
    iterations,
)


def parse(argv):
    return bench_arg_parser("test bench").parse_args(argv)


class TestArgs:
    def test_defaults(self):
        args = parse([])
        assert not args.quick
        assert args.json is None
        assert args.rows is None
        assert args.repeats is None

    def test_quick_and_json(self, tmp_path):
        args = parse(["--quick", "--json", str(tmp_path / "out.json")])
        assert args.quick
        assert args.json == tmp_path / "out.json"

    def test_iterations_full(self):
        assert iterations(parse([]), 10) == 10

    def test_iterations_quick_divides(self):
        assert iterations(parse(["--quick"]), 10) == 2

    def test_iterations_quick_never_zero(self):
        assert iterations(parse(["--quick"]), 3) == 1

    def test_repeats_override_wins(self):
        assert iterations(parse(["--quick", "--repeats", "7"]), 10) == 7

    def test_dataset_rows(self):
        assert dataset_rows(parse([]), 1000, 100) == 1000
        assert dataset_rows(parse(["--quick"]), 1000, 100) == 100
        assert dataset_rows(parse(["--rows", "42"]), 1000, 100) == 42


class TestBenchReport:
    def test_payload_shape(self):
        report = BenchReport("demo", {"speedup": 2.0}, {"rows": 10})
        payload = report.payload()
        assert payload["bench"] == "demo"
        assert payload["metrics"] == {"speedup": 2.0}
        assert payload["info"] == {"rows": 10}
        assert payload["env"]["cpu_count"] >= 1

    def test_emit_writes_json(self, tmp_path, capsys):
        out = tmp_path / "r.json"
        BenchReport("demo", {"speedup": 2.0}).emit(out)
        payload = json.loads(out.read_text())
        assert payload["bench"] == "demo"
        assert "demo" in capsys.readouterr().out

    def test_emit_without_json_only_prints(self, capsys):
        BenchReport("demo", {"x": 1.0}).emit(None)
        assert "x" in capsys.readouterr().out
