"""The bench-regression gate: committed baseline vs. current results."""

from __future__ import annotations

import json

from benchmarks.check_regression import main


def write_json(path, payload):
    path.write_text(json.dumps(payload))
    return path


def bench_payload(name, metrics):
    return {"bench": name, "metrics": metrics, "env": {"cpu_count": 1}}


def baseline_payload(benches, tolerance=0.25):
    return {
        "tolerance": tolerance,
        "benches": {n: {"metrics": m} for n, m in benches.items()},
    }


def test_gate_passes_within_tolerance(tmp_path):
    base = write_json(
        tmp_path / "base.json", baseline_payload({"b": {"mb_s": 100.0}})
    )
    cur = write_json(tmp_path / "cur.json", bench_payload("b", {"mb_s": 80.0}))
    assert main([str(cur), "--baseline", str(base)]) == 0


def test_gate_fails_beyond_tolerance(tmp_path, capsys):
    base = write_json(
        tmp_path / "base.json", baseline_payload({"b": {"mb_s": 100.0}})
    )
    cur = write_json(tmp_path / "cur.json", bench_payload("b", {"mb_s": 60.0}))
    assert main([str(cur), "--baseline", str(base)]) == 1
    assert "REGRESSED" in capsys.readouterr().out


def test_missing_bench_fails(tmp_path):
    base = write_json(
        tmp_path / "base.json",
        baseline_payload({"b": {"mb_s": 1.0}, "c": {"mb_s": 1.0}}),
    )
    cur = write_json(tmp_path / "cur.json", bench_payload("b", {"mb_s": 1.0}))
    assert main([str(cur), "--baseline", str(base)]) == 1


def test_missing_metric_fails(tmp_path):
    base = write_json(
        tmp_path / "base.json",
        baseline_payload({"b": {"mb_s": 1.0, "speedup": 2.0}}),
    )
    cur = write_json(tmp_path / "cur.json", bench_payload("b", {"mb_s": 1.0}))
    assert main([str(cur), "--baseline", str(base)]) == 1


def test_improvement_passes(tmp_path):
    base = write_json(
        tmp_path / "base.json", baseline_payload({"b": {"mb_s": 100.0}})
    )
    cur = write_json(tmp_path / "cur.json", bench_payload("b", {"mb_s": 500.0}))
    assert main([str(cur), "--baseline", str(base)]) == 0


def test_tolerance_override(tmp_path):
    base = write_json(
        tmp_path / "base.json", baseline_payload({"b": {"mb_s": 100.0}})
    )
    cur = write_json(tmp_path / "cur.json", bench_payload("b", {"mb_s": 60.0}))
    assert main([str(cur), "--baseline", str(base), "--tolerance", "0.5"]) == 0


def test_update_writes_baseline(tmp_path):
    base = tmp_path / "base.json"
    cur = write_json(tmp_path / "cur.json", bench_payload("b", {"mb_s": 42.0}))
    assert main([str(cur), "--baseline", str(base), "--update"]) == 0
    written = json.loads(base.read_text())
    assert written["benches"]["b"]["metrics"] == {"mb_s": 42.0}
    # the freshly written baseline gates its own inputs
    assert main([str(cur), "--baseline", str(base)]) == 0


def test_update_preserves_hand_tuned_tolerance(tmp_path):
    base = write_json(
        tmp_path / "base.json",
        baseline_payload({"b": {"mb_s": 1.0}}, tolerance=0.1),
    )
    cur = write_json(tmp_path / "cur.json", bench_payload("b", {"mb_s": 2.0}))
    assert main([str(cur), "--baseline", str(base), "--update"]) == 0
    assert json.loads(base.read_text())["tolerance"] == 0.1


def test_missing_baseline_file_fails(tmp_path):
    cur = write_json(tmp_path / "cur.json", bench_payload("b", {"mb_s": 1.0}))
    assert main([str(cur), "--baseline", str(tmp_path / "nope.json")]) == 1


def test_committed_baseline_is_valid():
    """The baseline in the repo root must stay structurally sound."""
    from pathlib import Path

    root = Path(__file__).resolve().parents[2]
    payload = json.loads((root / "BENCH_BASELINE.json").read_text())
    assert 0 < payload["tolerance"] < 1
    assert set(payload["benches"]) == {
        "concurrent",
        "dialects",
        "parallel_scan",
        "persistence",
        "selective_read",
        "server",
        "tokenize",
        "skipping",
        "append",
    }
    for entry in payload["benches"].values():
        assert entry["metrics"], "every baselined bench gates >= 1 metric"
        assert all(v > 0 for v in entry["metrics"].values())
