"""Tests for the SQL lexer."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sql.lexer import tokenize_sql


def kinds(sql):
    return [t.kind for t in tokenize_sql(sql)]


def texts(sql):
    return [t.text for t in tokenize_sql(sql)[:-1]]  # drop eof


class TestBasics:
    def test_keywords_case_insensitive(self):
        assert texts("SELECT foo FROM bar") == ["select", "foo", "from", "bar"]

    def test_identifiers_keep_case(self):
        assert texts("select MyCol") == ["select", "MyCol"]

    def test_eof_always_present(self):
        assert kinds("")[-1] == "eof"
        assert kinds("select")[-1] == "eof"

    def test_positions_recorded(self):
        toks = tokenize_sql("select  a")
        assert toks[0].position == 0
        assert toks[1].position == 8


class TestNumbers:
    @pytest.mark.parametrize(
        "text", ["0", "42", "3.14", ".5", "1e5", "2.5e-3", "1E+2"]
    )
    def test_number_forms(self, text):
        toks = tokenize_sql(text)
        assert toks[0].kind == "number"
        assert toks[0].text == text

    def test_number_then_ident(self):
        toks = tokenize_sql("12abc")
        assert toks[0].kind == "number" and toks[0].text == "12"
        assert toks[1].kind == "ident" and toks[1].text == "abc"

    def test_dot_not_part_of_number_after_ident(self):
        toks = tokenize_sql("t.a1")
        assert [t.kind for t in toks[:-1]] == ["ident", "op", "ident"]


class TestStrings:
    def test_simple_string(self):
        toks = tokenize_sql("'hello'")
        assert toks[0].kind == "string"
        assert toks[0].text == "hello"

    def test_escaped_quote(self):
        toks = tokenize_sql("'it''s'")
        assert toks[0].text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError, match="unterminated"):
            tokenize_sql("'oops")


class TestOperators:
    def test_two_char_operators(self):
        assert texts("a <> b != c >= d <= e") == [
            "a", "<>", "b", "!=", "c", ">=", "d", "<=", "e",
        ]

    def test_comment_skipped(self):
        assert texts("select a -- comment\nfrom t") == ["select", "a", "from", "t"]

    def test_unknown_character(self):
        with pytest.raises(SQLSyntaxError, match="unexpected character"):
            tokenize_sql("select @")
