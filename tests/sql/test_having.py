"""Tests for HAVING (extension beyond the paper's Q1/Q2 templates)."""

import numpy as np
import pytest

from repro import NoDBEngine, UnsupportedSQLError
from repro.errors import SQLSyntaxError
from repro.sql.parser import parse_sql


class TestParsing:
    def test_having_parsed(self):
        stmt = parse_sql(
            "select a, sum(b) from t group by a having sum(b) > 10"
        )
        assert stmt.having is not None

    def test_having_without_group_by_rejected(self):
        with pytest.raises(UnsupportedSQLError, match="GROUP BY"):
            parse_sql("select sum(b) from t having sum(b) > 10")


class TestExecution:
    @pytest.fixture
    def engine(self, tmp_path):
        path = tmp_path / "g.csv"
        rows = []
        for g in range(5):
            for v in range(g + 1):  # group g has g+1 members, values 0..g
                rows.append(f"{g},{v}")
        path.write_text("\n".join(rows) + "\n")
        engine = NoDBEngine()
        engine.attach("t", path)
        yield engine
        engine.close()

    def test_having_on_count(self, engine):
        r = engine.query(
            "select a1, count(*) as n from t group by a1 having count(*) > 3 "
            "order by a1"
        )
        assert r.column("a1").tolist() == [3, 4]
        assert r.column("n").tolist() == [4, 5]

    def test_having_on_aggregate_not_in_select(self, engine):
        r = engine.query(
            "select a1 from t group by a1 having sum(a2) >= 6 order by a1"
        )
        assert r.column("a1").tolist() == [3, 4]

    def test_having_on_group_key(self, engine):
        r = engine.query(
            "select a1, count(*) as n from t group by a1 having a1 >= 3 "
            "order by a1"
        )
        assert r.column("a1").tolist() == [3, 4]

    def test_having_with_logic(self, engine):
        r = engine.query(
            "select a1 from t group by a1 "
            "having count(*) > 1 and max(a2) < 4 order by a1"
        )
        assert r.column("a1").tolist() == [1, 2, 3]

    def test_having_filters_everything(self, engine):
        r = engine.query(
            "select a1 from t group by a1 having count(*) > 100"
        )
        assert r.num_rows == 0

    def test_having_matches_subselect_semantics(self, engine):
        """HAVING == filtering the grouped result."""
        unfiltered = engine.query(
            "select a1, avg(a2) as m from t group by a1 order by a1"
        )
        filtered = engine.query(
            "select a1, avg(a2) as m from t group by a1 having avg(a2) > 1 "
            "order by a1"
        )
        expected = [
            (k, m) for k, m in zip(unfiltered.column("a1"), unfiltered.column("m"))
            if m > 1
        ]
        assert list(zip(filtered.column("a1"), filtered.column("m"))) == expected
