"""Tests for name resolution, typing and condition extraction."""

import pytest

from repro.errors import BindError, UnsupportedSQLError
from repro.flatfile.schema import ColumnSchema, DataType, TableSchema
from repro.sql.binder import BAgg, BColumn, bind
from repro.sql.parser import parse_sql


def make_schemas():
    r = TableSchema(
        [
            ColumnSchema("a1", DataType.INT64),
            ColumnSchema("a2", DataType.INT64),
            ColumnSchema("name", DataType.STRING),
            ColumnSchema("price", DataType.FLOAT64),
        ]
    )
    s = TableSchema(
        [ColumnSchema("k", DataType.INT64), ColumnSchema("v", DataType.INT64)]
    )
    return {"r": r, "s": s}


def bound(sql):
    return bind(parse_sql(sql), make_schemas())


class TestResolution:
    def test_unqualified(self):
        b = bound("select a1 from r")
        assert b.outputs[0].expr == BColumn("r", "a1", DataType.INT64)

    def test_qualified_via_alias(self):
        b = bound("select x.a1 from r as x")
        assert b.outputs[0].expr == BColumn("x", "a1", DataType.INT64)

    def test_unknown_table(self):
        with pytest.raises(BindError, match="unknown table"):
            bound("select a from zzz")

    def test_unknown_column(self):
        with pytest.raises(BindError, match="unknown column"):
            bound("select zz from r")

    def test_ambiguous_column(self):
        schemas = {
            "t1": TableSchema([ColumnSchema("x", DataType.INT64)]),
            "t2": TableSchema([ColumnSchema("x", DataType.INT64)]),
        }
        stmt = parse_sql("select x from t1 join t2 on t1.x = t2.x")
        with pytest.raises(BindError, match="ambiguous"):
            bind(stmt, schemas)

    def test_star_expansion(self):
        b = bound("select * from r")
        assert [o.name for o in b.outputs] == ["a1", "a2", "name", "price"]

    def test_case_insensitive(self):
        b = bound("select A1 from R")
        assert b.outputs[0].expr.name == "a1"


class TestTyping:
    def test_arithmetic_type_promotion(self):
        b = bound("select a1 + price from r")
        assert b.outputs[0].expr.dtype is DataType.FLOAT64
        b2 = bound("select a1 + a2 from r")
        assert b2.outputs[0].expr.dtype is DataType.INT64
        b3 = bound("select a1 / a2 from r")
        assert b3.outputs[0].expr.dtype is DataType.FLOAT64

    def test_string_arithmetic_rejected(self):
        with pytest.raises(BindError, match="numeric"):
            bound("select name + 1 from r")

    def test_cross_type_comparison_rejected(self):
        with pytest.raises(BindError, match="compare"):
            bound("select a1 from r where name > 5")

    def test_numeric_comparison_allowed(self):
        bound("select a1 from r where price > 5")  # int col vs float literal OK

    def test_sum_requires_numeric(self):
        with pytest.raises(BindError):
            bound("select sum(name) from r")

    def test_min_max_on_strings_allowed(self):
        b = bound("select min(name), max(name) from r")
        assert b.is_aggregate


class TestAggregates:
    def test_aggregate_detection(self):
        assert bound("select sum(a1) from r").is_aggregate
        assert not bound("select a1 from r").is_aggregate
        assert bound("select a1 from r group by a1").is_aggregate

    def test_nested_aggregates_rejected(self):
        with pytest.raises(BindError, match="nested"):
            bound("select sum(max(a1)) from r")

    def test_aggregate_in_where_rejected(self):
        with pytest.raises(BindError):
            bound("select a1 from r where sum(a1) > 5")

    def test_ungrouped_output_rejected(self):
        with pytest.raises(BindError, match="GROUP BY"):
            bound("select a1, sum(a2) from r")

    def test_grouped_output_allowed(self):
        b = bound("select a1, sum(a2) from r group by a1")
        assert b.is_aggregate

    def test_count_star(self):
        b = bound("select count(*) from r")
        agg = b.outputs[0].expr
        assert isinstance(agg, BAgg)
        assert agg.func == "count" and agg.arg is None

    def test_expression_around_aggregate(self):
        b = bound("select sum(a1) / count(*) from r")
        assert b.is_aggregate


class TestNeededColumnsAndConditions:
    def test_needed_columns_cover_all_references(self):
        b = bound(
            "select sum(a1) from r where a2 > 5 and price < 2.0 order by 1"
        )
        assert b.needed_columns["r"] == ["a1", "a2", "price"]

    def test_condition_extraction(self):
        b = bound("select a1 from r where a1 > 10 and a1 < 20 and a2 >= 3")
        cond = b.conditions["r"]
        iv1 = cond.interval_for("a1")
        assert iv1.lo == 10 and iv1.hi == 20 and iv1.lo_open and iv1.hi_open
        iv2 = cond.interval_for("a2")
        assert iv2.lo == 3 and not iv2.lo_open
        assert not b.has_residual_predicate

    def test_mirrored_comparison(self):
        b = bound("select a1 from r where 10 < a1")
        assert b.conditions["r"].interval_for("a1").lo == 10

    def test_equality_condition(self):
        b = bound("select a1 from r where a1 = 7")
        iv = b.conditions["r"].interval_for("a1")
        assert iv.lo == 7 and iv.hi == 7 and not iv.lo_open and not iv.hi_open

    def test_or_is_residual(self):
        b = bound("select a1 from r where a1 > 5 or a2 > 5")
        assert b.has_residual_predicate
        assert b.conditions["r"].is_trivial()

    def test_mixed_conjuncts(self):
        b = bound("select a1 from r where a1 > 5 and (a2 > 1 or a2 < 0)")
        assert b.has_residual_predicate
        assert b.conditions["r"].interval_for("a1").lo == 5

    def test_arithmetic_comparison_is_residual(self):
        b = bound("select a1 from r where a1 + a2 > 5")
        assert b.has_residual_predicate

    def test_neq_is_residual(self):
        b = bound("select a1 from r where a1 != 5")
        assert b.has_residual_predicate


class TestJoins:
    def test_join_binding(self):
        b = bound("select a1, v from r join s on a1 = k")
        assert len(b.joins) == 1
        j = b.joins[0]
        assert j.left.binding == "r" and j.right.binding == "s"

    def test_join_normalized_order(self):
        b = bound("select a1, v from r join s on s.k = r.a1")
        j = b.joins[0]
        assert j.left.binding == "r"

    def test_join_same_table_twice_rejected(self):
        with pytest.raises(BindError, match="duplicate"):
            bound("select * from r join r on a1 = a2")

    def test_join_self_condition_rejected(self):
        with pytest.raises(BindError, match="both tables"):
            bound("select a1 from r join s on r.a1 = r.a2")

    def test_join_condition_columns_in_needed(self):
        b = bound("select v from r join s on a1 = k")
        assert "a1" in b.needed_columns["r"]
        assert "k" in b.needed_columns["s"]


class TestOrderBy:
    def test_order_by_position(self):
        b = bound("select a1, a2 from r order by 2")
        assert b.order_by[0][0] == BColumn("r", "a2", DataType.INT64)

    def test_order_by_position_out_of_range(self):
        with pytest.raises(BindError, match="out of range"):
            bound("select a1 from r order by 3")

    def test_order_by_alias(self):
        b = bound("select a1 as x from r order by x")
        assert b.order_by[0][0] == BColumn("r", "a1", DataType.INT64)


class TestUnsupported:
    def test_no_from(self):
        with pytest.raises(UnsupportedSQLError):
            bound("select 1")

    def test_unknown_function(self):
        with pytest.raises(UnsupportedSQLError, match="unknown function"):
            bound("select sqrt(a1) from r")

    def test_in_list_requires_literals(self):
        with pytest.raises(UnsupportedSQLError):
            bound("select a1 from r where a1 in (a2)")
