"""Tests for the SQL parser."""

import pytest

from repro.errors import SQLSyntaxError, UnsupportedSQLError
from repro.sql.ast_nodes import (
    BinaryOp,
    ColumnRef,
    FuncCall,
    InList,
    Literal,
    Star,
    UnaryOp,
)
from repro.sql.parser import parse_sql


class TestSelectList:
    def test_star(self):
        stmt = parse_sql("select * from t")
        assert isinstance(stmt.items[0].expr, Star)

    def test_columns_and_aliases(self):
        stmt = parse_sql("select a, b as bee, c cee from t")
        assert stmt.items[0].expr == ColumnRef("a")
        assert stmt.items[1].alias == "bee"
        assert stmt.items[2].alias == "cee"

    def test_aggregates(self):
        stmt = parse_sql("select sum(a1), count(*), avg(x) from t")
        assert stmt.items[0].expr == FuncCall("sum", (ColumnRef("a1"),))
        assert stmt.items[1].expr == FuncCall("count", (Star(),))

    def test_count_distinct(self):
        stmt = parse_sql("select count(distinct a) from t")
        assert stmt.items[0].expr.distinct

    def test_qualified_columns(self):
        stmt = parse_sql("select t.a from t")
        assert stmt.items[0].expr == ColumnRef("a", table="t")

    def test_select_distinct(self):
        assert parse_sql("select distinct a from t").distinct


class TestExpressions:
    def test_precedence_arithmetic(self):
        stmt = parse_sql("select a + b * c from t")
        expr = stmt.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses(self):
        stmt = parse_sql("select (a + b) * c from t")
        assert stmt.items[0].expr.op == "*"

    def test_and_or_precedence(self):
        stmt = parse_sql("select a from t where x = 1 or y = 2 and z = 3")
        assert stmt.where.op == "or"
        assert stmt.where.right.op == "and"

    def test_not(self):
        stmt = parse_sql("select a from t where not x = 1")
        assert isinstance(stmt.where, UnaryOp)
        assert stmt.where.op == "not"

    def test_between_desugars(self):
        stmt = parse_sql("select a from t where a between 1 and 5")
        w = stmt.where
        assert w.op == "and"
        assert w.left.op == ">=" and w.right.op == "<="

    def test_not_between(self):
        stmt = parse_sql("select a from t where a not between 1 and 5")
        assert isinstance(stmt.where, UnaryOp)

    def test_in_list(self):
        stmt = parse_sql("select a from t where a in (1, 2, 3)")
        assert isinstance(stmt.where, InList)
        assert len(stmt.where.values) == 3

    def test_not_in(self):
        stmt = parse_sql("select a from t where a not in (1)")
        assert stmt.where.negated

    def test_negative_literal_folded(self):
        stmt = parse_sql("select -5 from t")
        assert stmt.items[0].expr == Literal(-5)

    def test_string_literal(self):
        stmt = parse_sql("select a from t where name = 'bob'")
        assert stmt.where.right == Literal("bob")

    def test_float_literal(self):
        stmt = parse_sql("select 1.5 from t")
        assert stmt.items[0].expr == Literal(1.5)

    def test_neq_normalized(self):
        a = parse_sql("select a from t where x <> 1").where
        b = parse_sql("select a from t where x != 1").where
        assert a == b


class TestClauses:
    def test_where(self):
        stmt = parse_sql("select a from t where a > 1 and a < 5")
        assert isinstance(stmt.where, BinaryOp)

    def test_group_by(self):
        stmt = parse_sql("select a, sum(b) from t group by a")
        assert stmt.group_by == [ColumnRef("a")]

    def test_order_by_asc_desc(self):
        stmt = parse_sql("select a, b from t order by a desc, b asc")
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending

    def test_limit(self):
        assert parse_sql("select a from t limit 7").limit == 7

    def test_limit_requires_integer(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("select a from t limit 1.5")

    def test_join(self):
        stmt = parse_sql("select * from t join s on t.k = s.k")
        assert len(stmt.joins) == 1
        assert stmt.joins[0].table.name == "s"

    def test_inner_join_keyword(self):
        stmt = parse_sql("select * from t inner join s on t.k = s.k")
        assert len(stmt.joins) == 1

    def test_join_requires_equi(self):
        with pytest.raises(UnsupportedSQLError):
            parse_sql("select * from t join s on t.k < s.k")

    def test_table_alias(self):
        stmt = parse_sql("select * from t as x")
        assert stmt.table.alias == "x"
        stmt2 = parse_sql("select * from t x")
        assert stmt2.table.alias == "x"


class TestErrors:
    def test_empty(self):
        with pytest.raises(SQLSyntaxError, match="empty"):
            parse_sql("   ")

    def test_trailing_garbage(self):
        with pytest.raises(SQLSyntaxError, match="trailing"):
            parse_sql("select a from t banana split")

    def test_missing_from_table(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("select a from")

    def test_unbalanced_paren(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("select (a from t")

    def test_error_position(self):
        try:
            parse_sql("select a from t where ,")
        except SQLSyntaxError as exc:
            assert exc.position == 22
        else:  # pragma: no cover
            raise AssertionError("expected a syntax error")
