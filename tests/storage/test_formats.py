"""Tests for the column/row/PAX physical layouts (adaptive store, 5.1)."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.flatfile.schema import DataType
from repro.storage.formats import (
    ColumnLayout,
    PAXLayout,
    RowLayout,
    build_layout,
)

NAMES = ["a", "b"]
DTYPES = [DataType.INT64, DataType.FLOAT64]
ARRAYS = [np.arange(10, dtype=np.int64), np.arange(10, dtype=np.float64) / 2]


@pytest.fixture(params=["column", "row", "pax"])
def layout(request):
    kwargs = {"page_rows": 4} if request.param == "pax" else {}
    return build_layout(request.param, NAMES, DTYPES, ARRAYS, **kwargs)


class TestCommonContract:
    def test_length(self, layout):
        assert len(layout) == 10

    def test_column_access(self, layout):
        assert layout.column(0).tolist() == list(range(10))
        assert layout.column(1).tolist() == [i / 2 for i in range(10)]

    def test_row_access(self, layout):
        assert tuple(layout.row(0)) == (0, 0.0)
        assert tuple(layout.row(7)) == (7, 3.5)

    def test_take(self, layout):
        cols = layout.take(np.array([1, 3]))
        assert cols[0].tolist() == [1, 3]
        assert cols[1].tolist() == [0.5, 1.5]

    def test_nbytes_positive(self, layout):
        assert layout.nbytes > 0


class TestSpecifics:
    def test_column_layout_rejects_ragged(self):
        with pytest.raises(ExecutionError, match="ragged"):
            ColumnLayout(NAMES, DTYPES, [np.arange(3), np.arange(4)])

    def test_row_layout_is_structured(self):
        lay = RowLayout.from_columns(NAMES, DTYPES, ARRAYS)
        assert lay.records.dtype.names == ("a", "b")

    def test_pax_page_structure(self):
        lay = PAXLayout.from_columns(NAMES, DTYPES, ARRAYS, page_rows=4)
        assert len(lay.pages) == 3  # 4 + 4 + 2
        assert len(lay.pages[-1][0]) == 2

    def test_pax_bad_page_rows(self):
        with pytest.raises(ExecutionError):
            PAXLayout.from_columns(NAMES, DTYPES, ARRAYS, page_rows=0)

    def test_unknown_layout_kind(self):
        with pytest.raises(ExecutionError, match="unknown layout"):
            build_layout("diagonal", NAMES, DTYPES, ARRAYS)

    def test_empty_table(self):
        for kind in ("column", "row", "pax"):
            lay = build_layout(kind, NAMES, DTYPES, [np.empty(0, dtype=np.int64), np.empty(0)])
            assert len(lay) == 0
            assert lay.column(0).tolist() == []
