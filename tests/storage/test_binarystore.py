"""Tests for the binary column store (the engine's internal format)."""

import numpy as np
import pytest

from repro.errors import FlatFileError
from repro.flatfile.schema import DataType
from repro.storage.binarystore import BinaryStore


@pytest.fixture
def store(tmp_path):
    return BinaryStore(tmp_path / "bin")


def test_round_trip_int(store):
    values = np.array([1, -5, 2**40], dtype=np.int64)
    store.save("r", "a1", DataType.INT64, values)
    assert store.has("r", "a1")
    assert store.load("r", "a1").tolist() == values.tolist()


def test_round_trip_float(store):
    values = np.array([0.5, -1e300], dtype=np.float64)
    store.save("r", "x", DataType.FLOAT64, values)
    back = store.load("r", "x")
    assert back.dtype == np.float64
    assert back.tolist() == values.tolist()


def test_strings_rejected(store):
    with pytest.raises(FlatFileError):
        store.save("r", "s", DataType.STRING, np.array(["a"], dtype=object))


def test_case_insensitive_names(store):
    store.save("R", "A1", DataType.INT64, np.array([1]))
    assert store.has("r", "a1")
    assert store.load("r", "a1").tolist() == [1]


def test_missing_column(store):
    assert not store.has("r", "a1")
    with pytest.raises(FlatFileError, match="no column"):
        store.load("r", "a1")


def test_nrows_manifest(store):
    assert store.nrows("r") is None
    store.save("r", "a1", DataType.INT64, np.arange(7))
    assert store.nrows("r") == 7


def test_stats_and_disk_usage(store):
    values = np.arange(100, dtype=np.int64)
    store.save("r", "a1", DataType.INT64, values)
    store.load("r", "a1")
    assert store.stats.bytes_written == 800
    assert store.stats.bytes_read == 800
    assert store.stats.columns_written == 1
    assert store.stats.columns_read == 1
    assert store.bytes_on_disk() == 800


def test_drop_table(store):
    store.save("r", "a1", DataType.INT64, np.arange(3))
    store.drop_table("r")
    assert not store.has("r", "a1")
    assert store.nrows("r") is None
    store.drop_table("r")  # idempotent
