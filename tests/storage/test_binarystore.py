"""Tests for the binary column store (the engine's internal format)."""

import numpy as np
import pytest

from repro.errors import FlatFileError
from repro.flatfile.schema import DataType
from repro.storage.binarystore import BinaryStore


@pytest.fixture
def store(tmp_path):
    return BinaryStore(tmp_path / "bin")


def test_round_trip_int(store):
    values = np.array([1, -5, 2**40], dtype=np.int64)
    store.save("r", "a1", DataType.INT64, values)
    assert store.has("r", "a1")
    assert store.load("r", "a1").tolist() == values.tolist()


def test_round_trip_float(store):
    values = np.array([0.5, -1e300], dtype=np.float64)
    store.save("r", "x", DataType.FLOAT64, values)
    back = store.load("r", "x")
    assert back.dtype == np.float64
    assert back.tolist() == values.tolist()


def test_strings_rejected(store):
    with pytest.raises(FlatFileError):
        store.save("r", "s", DataType.STRING, np.array(["a"], dtype=object))


def test_case_insensitive_names(store):
    store.save("R", "A1", DataType.INT64, np.array([1]))
    assert store.has("r", "a1")
    assert store.load("r", "a1").tolist() == [1]


def test_missing_column(store):
    assert not store.has("r", "a1")
    with pytest.raises(FlatFileError, match="no column"):
        store.load("r", "a1")


def test_nrows_manifest(store):
    assert store.nrows("r") is None
    store.save("r", "a1", DataType.INT64, np.arange(7))
    assert store.nrows("r") == 7


def test_stats_and_disk_usage(store):
    values = np.arange(100, dtype=np.int64)
    store.save("r", "a1", DataType.INT64, values)
    store.load("r", "a1")
    assert store.stats.bytes_written == 800
    assert store.stats.bytes_read == 800
    assert store.stats.columns_written == 1
    assert store.stats.columns_read == 1
    assert store.bytes_on_disk() == 800


def test_drop_table(store):
    store.save("r", "a1", DataType.INT64, np.arange(3))
    store.drop_table("r")
    assert not store.has("r", "a1")
    assert store.nrows("r") is None
    store.drop_table("r")  # idempotent


class TestCorruption:
    """On-disk damage is always a cold miss, never a query error."""

    def test_truncated_column_file(self, store):
        store.save("r", "a1", DataType.INT64, np.arange(100))
        path = store._column_path("r", "a1")
        path.write_bytes(path.read_bytes()[:-8])
        assert not store.has("r", "a1")

    def test_grown_column_file(self, store):
        store.save("r", "a1", DataType.INT64, np.arange(10))
        path = store._column_path("r", "a1")
        path.write_bytes(path.read_bytes() + b"\x00" * 8)
        assert not store.has("r", "a1")

    def test_garbage_manifest(self, store):
        store.save("r", "a1", DataType.INT64, np.arange(5))
        store._manifest_path("r").write_bytes(b"{not json\xff\xfe")
        assert not store.has("r", "a1")
        assert store.nrows("r") is None
        with pytest.raises(FlatFileError, match="no column"):
            store.load("r", "a1")

    def test_manifest_wrong_shape(self, store):
        store.save("r", "a1", DataType.INT64, np.arange(5))
        store._manifest_path("r").write_text('["a", "list"]')
        assert not store.has("r", "a1")

    def test_mid_write_crash_leaves_tmp_orphan(self, store):
        """A crash between temp write and rename must be invisible."""
        store.save("r", "a1", DataType.INT64, np.arange(4))
        tdir = store._table_dir("r")
        (tdir / ".a2.bin.999.tmp").write_bytes(b"\x01\x02")
        (tdir / ".manifest.json.999.tmp").write_bytes(b"{half")
        assert store.has("r", "a1")
        assert not store.has("r", "a2")
        assert store.load("r", "a1").tolist() == [0, 1, 2, 3]
        store.drop_table("r")  # orphans must not break teardown
        assert not store.has("r", "a1")

    def test_column_file_deleted(self, store):
        store.save("r", "a1", DataType.INT64, np.arange(3))
        store._column_path("r", "a1").unlink()
        assert not store.has("r", "a1")

    def test_save_over_corruption_recovers(self, store):
        store.save("r", "a1", DataType.INT64, np.arange(6))
        store._manifest_path("r").write_bytes(b"\xde\xad")
        store.save("r", "a1", DataType.INT64, np.arange(6))
        assert store.has("r", "a1")
        assert store.load("r", "a1").tolist() == list(range(6))
