"""Tests for partially-loaded columns and coverage certificates."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.flatfile.schema import DataType
from repro.ranges import Condition, ValueInterval
from repro.storage.partial import CoverageCertificate, PartialColumn


def make_column(nrows=100) -> PartialColumn:
    return PartialColumn(name="a1", dtype=DataType.INT64, nrows=nrows)


class TestStore:
    def test_store_fragment(self):
        pc = make_column()
        n = pc.store(np.array([3, 4, 5]), np.array([30, 40, 50]))
        assert n == 3
        assert pc.loaded_count == 3
        assert not pc.is_fully_loaded
        assert pc.values_at(np.array([4])).tolist() == [40]

    def test_store_overlap_counts_new_only(self):
        pc = make_column()
        pc.store(np.array([1, 2]), np.array([10, 20]))
        n = pc.store(np.array([2, 3]), np.array([21, 30]))
        assert n == 1
        assert pc.loaded_count == 3
        assert pc.values_at(np.array([2])).tolist() == [21]  # latest wins

    def test_store_empty(self):
        pc = make_column()
        assert pc.store(np.array([], dtype=np.int64), np.array([], dtype=np.int64)) == 0

    def test_store_length_mismatch(self):
        pc = make_column()
        with pytest.raises(ExecutionError):
            pc.store(np.array([1]), np.array([1, 2]))

    def test_store_full(self):
        pc = make_column(5)
        n = pc.store_full(np.arange(5))
        assert n == 5
        assert pc.is_fully_loaded
        assert pc.covers_query(Condition([("a1", ValueInterval(0, 3))]))

    def test_store_full_wrong_length(self):
        pc = make_column(5)
        with pytest.raises(ExecutionError):
            pc.store_full(np.arange(4))

    def test_values_at_unloaded_raises(self):
        pc = make_column()
        pc.store(np.array([1]), np.array([10]))
        with pytest.raises(ExecutionError, match="not loaded"):
            pc.values_at(np.array([2]))


class TestCertificates:
    def test_no_certificate_no_coverage(self):
        pc = make_column()
        pc.store(np.array([1]), np.array([10]))
        assert not pc.covers_query(Condition())

    def test_certificate_covers_repeat_query(self):
        cond = Condition([("a1", ValueInterval(10, 20))])
        pc = make_column()
        pc.add_certificate(CoverageCertificate(cond))
        assert pc.covers_query(cond)

    def test_certificate_covers_zoom_in(self):
        wide = Condition([("a1", ValueInterval(0, 100))])
        narrow = Condition([("a1", ValueInterval(40, 60))])
        pc = make_column()
        pc.add_certificate(CoverageCertificate(wide))
        assert pc.covers_query(narrow)
        # zoom OUT is not covered
        pc2 = make_column()
        pc2.add_certificate(CoverageCertificate(narrow))
        assert not pc2.covers_query(wide)

    def test_full_certificate_subsumes_all(self):
        pc = make_column()
        pc.add_certificate(CoverageCertificate(Condition([("a1", ValueInterval(0, 1))])))
        pc.add_certificate(CoverageCertificate(Condition()))
        assert len(pc.certificates) == 1
        assert pc.certificates[0].is_full
        # later partial certs are ignored
        pc.add_certificate(CoverageCertificate(Condition([("a1", ValueInterval(5, 9))])))
        assert len(pc.certificates) == 1

    def test_duplicate_certificates_deduped(self):
        cond = Condition([("a1", ValueInterval(0, 1))])
        pc = make_column()
        pc.add_certificate(CoverageCertificate(cond))
        pc.add_certificate(CoverageCertificate(cond))
        assert len(pc.certificates) == 1


class TestQualifyingMask:
    def test_mask_restricted_to_loaded(self):
        pc = make_column(10)
        pc.store(np.array([2, 3, 4]), np.array([20, 30, 40]))
        mask = pc.qualifying_mask(ValueInterval(15, 35))
        assert mask.tolist() == [False] * 2 + [True, True] + [False] * 6

    def test_mask_no_backing(self):
        pc = make_column(4)
        assert pc.qualifying_mask(ValueInterval.unbounded()).tolist() == [False] * 4

    def test_garbage_positions_never_qualify(self):
        pc = make_column(5)
        pc.store(np.array([0]), np.array([0]))
        # Backing zeros at unloaded positions would match (-10, 10) if the
        # mask forgot the loaded filter.
        mask = pc.qualifying_mask(ValueInterval(-10, 10))
        assert mask.tolist() == [True, False, False, False, False]


class TestAccounting:
    def test_logical_bytes_proportional_to_loaded(self):
        pc = make_column(1000)
        assert pc.logical_nbytes == 0
        pc.store(np.arange(10), np.arange(10))
        small = pc.logical_nbytes
        pc.store(np.arange(500), np.arange(500))
        assert pc.logical_nbytes > small

    def test_drop_resets(self):
        pc = make_column(10)
        pc.store_full(np.arange(10))
        pc.drop()
        assert pc.loaded_count == 0
        assert pc.values is None
        assert not pc.certificates
        assert not pc.covers_query(Condition())

    def test_loaded_values_in_row_order(self):
        pc = make_column(10)
        pc.store(np.array([7, 2]), np.array([70, 20]))
        assert pc.loaded_values().tolist() == [20, 70]
