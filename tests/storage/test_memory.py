"""Tests for the adaptive-store memory budget and eviction."""

from repro.storage.memory import MemoryManager


class Fragment:
    """Test double that records whether it was dropped."""

    def __init__(self):
        self.dropped = False

    def drop(self):
        self.dropped = True


def test_unbounded_never_evicts():
    m = MemoryManager(budget_bytes=None)
    frags = [Fragment() for _ in range(5)]
    for i, f in enumerate(frags):
        m.register(("t", f"c{i}"), 10**9, f.drop)
    assert not any(f.dropped for f in frags)
    assert m.stats.evictions == 0


def test_lru_evicts_least_recently_used():
    m = MemoryManager(budget_bytes=100)
    a, b, c = Fragment(), Fragment(), Fragment()
    m.register(("t", "a"), 40, a.drop)
    m.register(("t", "b"), 40, b.drop)
    m.touch(("t", "a"))  # b is now least recently used
    m.register(("t", "c"), 40, c.drop)
    assert b.dropped
    assert not a.dropped and not c.dropped
    assert m.stats.evictions == 1
    assert m.stats.bytes_evicted == 40


def test_fifo_ignores_touches():
    m = MemoryManager(budget_bytes=100, policy="fifo")
    a, b, c = Fragment(), Fragment(), Fragment()
    m.register(("t", "a"), 40, a.drop)
    m.register(("t", "b"), 40, b.drop)
    m.touch(("t", "a"))  # no effect under FIFO
    m.register(("t", "c"), 40, c.drop)
    assert a.dropped
    assert not b.dropped


def test_fifo_ignores_resizes():
    """Re-registering (resizing) a fragment must not refresh its FIFO
    position — insertion order is the only order FIFO knows."""
    m = MemoryManager(budget_bytes=100, policy="fifo")
    a, b, c = Fragment(), Fragment(), Fragment()
    m.register(("t", "a"), 30, a.drop)
    m.register(("t", "b"), 40, b.drop)
    m.register(("t", "a"), 40, a.drop)  # a grows; still the oldest
    m.register(("t", "c"), 40, c.drop)
    assert a.dropped  # FIFO: a entered first, a leaves first
    assert not b.dropped and not c.dropped


def test_lru_resize_refreshes_recency():
    m = MemoryManager(budget_bytes=100, policy="lru")
    a, b, c = Fragment(), Fragment(), Fragment()
    m.register(("t", "a"), 30, a.drop)
    m.register(("t", "b"), 40, b.drop)
    m.register(("t", "a"), 40, a.drop)  # a re-used: most recent now
    m.register(("t", "c"), 40, c.drop)
    assert b.dropped
    assert not a.dropped and not c.dropped


def test_oversized_fragment_admitted_alone():
    m = MemoryManager(budget_bytes=100)
    big = Fragment()
    m.register(("t", "big"), 500, big.drop)
    assert not big.dropped
    assert m.resident_bytes == 500
    # The next registration pushes it out.
    small = Fragment()
    m.register(("t", "small"), 10, small.drop)
    assert big.dropped
    assert not small.dropped


def test_pinned_fragments_survive():
    m = MemoryManager(budget_bytes=100)
    pinned, other = Fragment(), Fragment()
    m.register(("t", "p"), 80, pinned.drop, pinned=True)
    m.register(("t", "o"), 80, other.drop)
    assert not pinned.dropped
    assert other.dropped or m.resident_bytes > 100  # other was the only victim


def test_resize_existing_fragment():
    m = MemoryManager(budget_bytes=100)
    a = Fragment()
    m.register(("t", "a"), 10, a.drop)
    m.register(("t", "a"), 60, a.drop)
    assert m.resident_bytes == 60
    assert len(m.fragments) == 1


def test_forget_removes_without_dropping():
    m = MemoryManager(budget_bytes=100)
    a = Fragment()
    m.register(("t", "a"), 50, a.drop)
    m.forget(("t", "a"))
    assert not a.dropped
    assert m.resident_bytes == 0


def test_eviction_cascades_until_fit():
    m = MemoryManager(budget_bytes=100)
    frags = [Fragment() for _ in range(4)]
    for i, f in enumerate(frags):
        m.register(("t", f"c{i}"), 30, f.drop)
    # 4 x 30 = 120 > 100: the first registered fragment was evicted.
    assert frags[0].dropped
    assert m.resident_bytes == 90


def test_peak_bytes_tracked():
    m = MemoryManager(budget_bytes=None)
    m.register(("t", "a"), 70, lambda: None)
    m.register(("t", "b"), 50, lambda: None)
    assert m.stats.peak_bytes == 120
