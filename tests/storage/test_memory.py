"""Tests for the adaptive-store memory budget and eviction."""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.storage.memory import MemoryManager


class Fragment:
    """Test double that records whether it was dropped."""

    def __init__(self):
        self.dropped = False

    def drop(self):
        self.dropped = True


def test_unbounded_never_evicts():
    m = MemoryManager(budget_bytes=None)
    frags = [Fragment() for _ in range(5)]
    for i, f in enumerate(frags):
        m.register(("t", f"c{i}"), 10**9, f.drop)
    assert not any(f.dropped for f in frags)
    assert m.stats.evictions == 0


def test_lru_evicts_least_recently_used():
    m = MemoryManager(budget_bytes=100)
    a, b, c = Fragment(), Fragment(), Fragment()
    m.register(("t", "a"), 40, a.drop)
    m.register(("t", "b"), 40, b.drop)
    m.touch(("t", "a"))  # b is now least recently used
    m.register(("t", "c"), 40, c.drop)
    assert b.dropped
    assert not a.dropped and not c.dropped
    assert m.stats.evictions == 1
    assert m.stats.bytes_evicted == 40


def test_fifo_ignores_touches():
    m = MemoryManager(budget_bytes=100, policy="fifo")
    a, b, c = Fragment(), Fragment(), Fragment()
    m.register(("t", "a"), 40, a.drop)
    m.register(("t", "b"), 40, b.drop)
    m.touch(("t", "a"))  # no effect under FIFO
    m.register(("t", "c"), 40, c.drop)
    assert a.dropped
    assert not b.dropped


def test_fifo_ignores_resizes():
    """Re-registering (resizing) a fragment must not refresh its FIFO
    position — insertion order is the only order FIFO knows."""
    m = MemoryManager(budget_bytes=100, policy="fifo")
    a, b, c = Fragment(), Fragment(), Fragment()
    m.register(("t", "a"), 30, a.drop)
    m.register(("t", "b"), 40, b.drop)
    m.register(("t", "a"), 40, a.drop)  # a grows; still the oldest
    m.register(("t", "c"), 40, c.drop)
    assert a.dropped  # FIFO: a entered first, a leaves first
    assert not b.dropped and not c.dropped


def test_lru_resize_refreshes_recency():
    m = MemoryManager(budget_bytes=100, policy="lru")
    a, b, c = Fragment(), Fragment(), Fragment()
    m.register(("t", "a"), 30, a.drop)
    m.register(("t", "b"), 40, b.drop)
    m.register(("t", "a"), 40, a.drop)  # a re-used: most recent now
    m.register(("t", "c"), 40, c.drop)
    assert b.dropped
    assert not a.dropped and not c.dropped


def test_oversized_fragment_admitted_alone():
    m = MemoryManager(budget_bytes=100)
    big = Fragment()
    m.register(("t", "big"), 500, big.drop)
    assert not big.dropped
    assert m.resident_bytes == 500
    # The next registration pushes it out.
    small = Fragment()
    m.register(("t", "small"), 10, small.drop)
    assert big.dropped
    assert not small.dropped


def test_pinned_fragments_survive():
    m = MemoryManager(budget_bytes=100)
    pinned, other = Fragment(), Fragment()
    m.register(("t", "p"), 80, pinned.drop, pinned=True)
    m.register(("t", "o"), 80, other.drop)
    assert not pinned.dropped
    assert other.dropped or m.resident_bytes > 100  # other was the only victim


def test_resize_existing_fragment():
    m = MemoryManager(budget_bytes=100)
    a = Fragment()
    m.register(("t", "a"), 10, a.drop)
    m.register(("t", "a"), 60, a.drop)
    assert m.resident_bytes == 60
    assert len(m.fragments) == 1


def test_forget_removes_without_dropping():
    m = MemoryManager(budget_bytes=100)
    a = Fragment()
    m.register(("t", "a"), 50, a.drop)
    m.forget(("t", "a"))
    assert not a.dropped
    assert m.resident_bytes == 0


def test_eviction_cascades_until_fit():
    m = MemoryManager(budget_bytes=100)
    frags = [Fragment() for _ in range(4)]
    for i, f in enumerate(frags):
        m.register(("t", f"c{i}"), 30, f.drop)
    # 4 x 30 = 120 > 100: the first registered fragment was evicted.
    assert frags[0].dropped
    assert m.resident_bytes == 90


def test_peak_bytes_tracked():
    m = MemoryManager(budget_bytes=None)
    m.register(("t", "a"), 70, lambda: None)
    m.register(("t", "b"), 50, lambda: None)
    assert m.stats.peak_bytes == 120


# ---------------------------------------------------------------------------
# counted pins (concurrent queries share fragments)
# ---------------------------------------------------------------------------


def test_pins_are_counted_not_boolean():
    """Two queries pin one fragment; the first unpin must not expose it."""
    m = MemoryManager(budget_bytes=100)
    shared = Fragment()
    m.register(("t", "s"), 80, shared.drop)
    assert m.pin(("t", "s"))
    assert m.pin(("t", "s"))  # a second query pins the same fragment
    m.unpin_many([("t", "s")])  # first query finishes
    other = Fragment()
    m.register(("t", "o"), 80, other.drop)
    assert not shared.dropped  # still pinned by the second query
    m.unpin_many([("t", "s")])  # second query finishes: now evictable
    m.register(("t", "x"), 80, Fragment().drop)
    assert shared.dropped or other.dropped


def test_pin_missing_fragment_returns_false():
    m = MemoryManager(budget_bytes=100)
    assert not m.pin(("t", "ghost"))
    m.unpin(("t", "ghost"))  # no-op, no error


def test_release_pins_zeroes_counts():
    m = MemoryManager(budget_bytes=100)
    m.register(("t", "a"), 80, Fragment().drop, pinned=True)
    m.pin(("t", "a"))
    m.release_pins()
    assert m.fragments[("t", "a")].pins == 0


# ---------------------------------------------------------------------------
# re-entrancy + thread safety (eviction callbacks re-enter the manager)
# ---------------------------------------------------------------------------


def test_dropper_may_reenter_register():
    """A fragment owner whose dropper immediately re-registers a smaller
    replacement (fragment resize on eviction) must not deadlock or
    corrupt the books — and the budget must still be enforced."""
    m = MemoryManager(budget_bytes=100)

    def reentrant_dropper():
        m.register(("t", "replacement"), 10, lambda: None)

    m.register(("t", "a"), 90, reentrant_dropper)
    m.register(("t", "b"), 90, lambda: None)  # evicts a -> registers replacement
    assert ("t", "replacement") in m.fragments
    assert m.resident_bytes <= 100


def test_dropper_may_reenter_forget():
    """A dropper forgetting a sibling fragment mid-eviction is safe."""
    m = MemoryManager(budget_bytes=100)

    def dropper_forgets_sibling():
        m.forget(("t", "sibling"))

    m.register(("t", "a"), 60, dropper_forgets_sibling)
    m.register(("t", "sibling"), 30, lambda: None)
    m.register(("t", "b"), 90, lambda: None)  # evicts a; a forgets sibling
    assert ("t", "a") not in m.fragments
    assert ("t", "sibling") not in m.fragments
    assert m.resident_bytes <= 100


def test_evict_from_callback_under_two_threads():
    """Regression: eviction callbacks re-entering ``register`` while two
    threads charge concurrently must neither deadlock nor lose the
    budget invariant."""
    m = MemoryManager(budget_bytes=1000)
    barrier = threading.Barrier(2)
    errors: list[Exception] = []

    def make_dropper(tid: int, i: int):
        def dropper():
            # Re-enter the manager from the eviction callback.
            m.register((f"cb{tid}", f"r{i}"), 5, lambda: None)

        return dropper

    def charger(tid: int):
        try:
            barrier.wait()
            for i in range(200):
                m.register((f"t{tid}", f"c{i}"), 60, make_dropper(tid, i))
                m.touch((f"t{tid}", f"c{i % 10}"))
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    with ThreadPoolExecutor(max_workers=2) as pool:
        list(pool.map(charger, range(2)))
    assert not errors, errors[0]
    # Budget enforced within one largest-fragment slack of the cap.
    assert m.resident_bytes <= 1000
    assert m.stats.evictions > 0


def test_concurrent_pin_unpin_register_consistent():
    """Hammer pins/unpins/registers from 4 threads; books stay sane."""
    m = MemoryManager(budget_bytes=5000)
    keys = [("t", f"c{i}") for i in range(16)]
    for key in keys:
        m.register(key, 100, lambda: None)
    barrier = threading.Barrier(4)

    def worker(tid: int):
        barrier.wait()
        for i in range(300):
            key = keys[(tid + i) % len(keys)]
            if m.pin(key):
                m.touch(key)
                m.unpin(key)
            m.register(key, 100 + (i % 3), lambda: None)

    with ThreadPoolExecutor(max_workers=4) as pool:
        list(pool.map(worker, range(4)))
    for key in keys:
        frag = m.fragments.get(key)
        assert frag is None or frag.pins == 0
    assert m.resident_bytes <= 5000
