"""Tests for the interval-set table of contents, incl. hypothesis laws."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.intervals import IntervalSet

interval_lists = st.lists(
    st.tuples(st.integers(0, 200), st.integers(0, 200)), max_size=8
)


def _as_set(s: IntervalSet) -> set[int]:
    return set(s.indices().tolist())


def _ref_set(pairs) -> set[int]:
    out = set()
    for a, b in pairs:
        out.update(range(a, b))
    return out


class TestConstruction:
    def test_empty(self):
        s = IntervalSet()
        assert not s
        assert len(s) == 0
        assert list(s.indices()) == []

    def test_from_range(self):
        s = IntervalSet.from_range(2, 5)
        assert len(s) == 3
        assert 2 in s and 4 in s and 5 not in s

    def test_from_empty_range(self):
        assert not IntervalSet.from_range(5, 5)
        assert not IntervalSet.from_range(7, 3)

    def test_from_indices_coalesces(self):
        s = IntervalSet.from_indices([5, 1, 2, 3, 9, 10])
        assert s.intervals == [(1, 4), (5, 6), (9, 11)]

    def test_from_indices_deduplicates(self):
        s = IntervalSet.from_indices([1, 1, 2, 2])
        assert s.intervals == [(1, 3)]

    def test_normalization_on_init(self):
        s = IntervalSet([(5, 10), (0, 6), (12, 12)])
        assert s.intervals == [(0, 10)]


class TestMembership:
    def test_contains(self):
        s = IntervalSet([(0, 3), (10, 12)])
        assert 0 in s and 2 in s and 10 in s and 11 in s
        assert 3 not in s and 9 not in s and 12 not in s

    def test_covers(self):
        s = IntervalSet([(0, 10)])
        assert s.covers(0, 10)
        assert s.covers(3, 7)
        assert not s.covers(5, 11)
        assert s.covers(5, 5)  # empty range trivially covered

    def test_covers_across_gap_fails(self):
        s = IntervalSet([(0, 5), (6, 10)])
        assert not s.covers(3, 8)

    def test_covers_set(self):
        outer = IntervalSet([(0, 10), (20, 30)])
        assert outer.covers_set(IntervalSet([(1, 3), (25, 29)]))
        assert not outer.covers_set(IntervalSet([(1, 3), (15, 16)]))


class TestOperations:
    def test_add_merges_adjacent(self):
        s = IntervalSet([(0, 5)])
        s.add(5, 8)
        assert s.intervals == [(0, 8)]

    def test_subtract_middle(self):
        s = IntervalSet([(0, 10)]).subtract(IntervalSet([(3, 6)]))
        assert s.intervals == [(0, 3), (6, 10)]

    def test_subtract_everything(self):
        s = IntervalSet([(2, 4)]).subtract(IntervalSet([(0, 10)]))
        assert not s

    def test_intersect(self):
        a = IntervalSet([(0, 10), (20, 30)])
        b = IntervalSet([(5, 25)])
        assert a.intersect(b).intervals == [(5, 10), (20, 25)]

    def test_mask(self):
        s = IntervalSet([(1, 3)])
        assert s.mask(5).tolist() == [False, True, True, False, False]


class TestInvariants:
    @settings(max_examples=100, deadline=None)
    @given(interval_lists)
    def test_normalized_structure(self, pairs):
        s = IntervalSet(list(pairs))
        for (a1, b1), (a2, b2) in zip(s.intervals, s.intervals[1:]):
            assert a1 < b1
            assert b1 < a2  # disjoint AND non-adjacent (coalesced)
        assert _as_set(s) == _ref_set(pairs)

    @settings(max_examples=100, deadline=None)
    @given(interval_lists, interval_lists)
    def test_union_semantics(self, a, b):
        sa, sb = IntervalSet(list(a)), IntervalSet(list(b))
        assert _as_set(sa.union(sb)) == _ref_set(a) | _ref_set(b)

    @settings(max_examples=100, deadline=None)
    @given(interval_lists, interval_lists)
    def test_subtract_semantics(self, a, b):
        sa, sb = IntervalSet(list(a)), IntervalSet(list(b))
        assert _as_set(sa.subtract(sb)) == _ref_set(a) - _ref_set(b)

    @settings(max_examples=100, deadline=None)
    @given(interval_lists, interval_lists)
    def test_intersect_semantics(self, a, b):
        sa, sb = IntervalSet(list(a)), IntervalSet(list(b))
        assert _as_set(sa.intersect(sb)) == _ref_set(a) & _ref_set(b)

    @settings(max_examples=50, deadline=None)
    @given(interval_lists, st.integers(0, 210))
    def test_contains_agrees_with_reference(self, pairs, x):
        s = IntervalSet(list(pairs))
        assert (x in s) == (x in _ref_set(pairs))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 500), max_size=60))
    def test_from_indices_round_trip(self, xs):
        s = IntervalSet.from_indices(xs)
        assert _as_set(s) == set(xs)
        assert len(s) == len(set(xs))
