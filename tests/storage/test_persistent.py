"""Persistent adaptive store: round-trips, staleness, damage tolerance.

Three layers of guarantees are pinned here:

* **Serialization is lossless.**  Hypothesis drives save → load round
  trips of every serialized artifact — positional maps (byte-for-byte
  offset arrays), partition plans, widened schemas, numeric and
  object-dtype string columns including non-ASCII — against randomly
  generated state.
* **Staleness is airtight.**  The entry key is the full content-probing
  fingerprint: a same-size in-place rewrite with a forged mtime (the
  nastiest edit the engine's auto-invalidation handles) must invalidate
  the persisted entry too, across a simulated restart.
* **Damage is a miss, never an error.**  Truncated columns, garbage
  manifests and mid-write crash leftovers all restore as a plain cold
  miss.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import EngineConfig
from repro.core.engine import NoDBEngine
from repro.core.partitions import Partition, PartitionIndex
from repro.flatfile.files import FileFingerprint
from repro.flatfile.positions import PositionalMap
from repro.storage.persistent import (
    PersistedState,
    PersistentStore,
    decode_strings,
    encode_strings,
)

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _source(tmp_path, text="a,b\n1,x\n2,y\n"):
    f = tmp_path / "data.csv"
    f.write_text(text)
    return f


def _state(source, fingerprint, **overrides):
    base = dict(
        source=source,
        fingerprint=fingerprint,
        nrows=2,
        has_header=True,
        schema=[("a", "int64"), ("b", "str")],
        positional_map=PositionalMap(),
        partitions=None,
        columns={},
    )
    base.update(overrides)
    return PersistedState(**base)


def _force_stat(path, mtime_ns: int) -> None:
    st_ = os.stat(path)
    os.utime(path, ns=(st_.st_atime_ns, mtime_ns))


# ---------------------------------------------------------------------------
# property: the string codec
# ---------------------------------------------------------------------------


class TestStringCodec:
    @given(st.lists(st.text(max_size=40), max_size=60))
    @settings(max_examples=200, deadline=None)
    def test_round_trip(self, texts):
        values = np.array(texts, dtype=object)
        offsets, blob = encode_strings(values)
        decoded = decode_strings(offsets, blob)
        assert decoded.dtype == object
        assert list(decoded) == texts

    def test_non_ascii_offsets_are_character_offsets(self):
        values = np.array(["héllo", "日本語", ""], dtype=object)
        offsets, blob = encode_strings(values)
        # character offsets: 5 + 3 + 0, while the UTF-8 blob is longer
        assert offsets.tolist() == [0, 5, 8, 8]
        assert len(blob) > 8
        assert list(decode_strings(offsets, blob)) == ["héllo", "日本語", ""]

    def test_mismatched_blob_rejected(self):
        offsets, blob = encode_strings(np.array(["ab", "cd"], dtype=object))
        with pytest.raises(ValueError):
            decode_strings(offsets, blob + b"junk")


# ---------------------------------------------------------------------------
# property: full save/load round trips
# ---------------------------------------------------------------------------

offsets_arrays = st.lists(
    st.integers(min_value=0, max_value=2**40), min_size=1, max_size=50
).map(lambda xs: np.array(sorted(xs), dtype=np.int64))


class TestRoundTrip:
    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_positional_map_byte_for_byte(self, data, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("pm")
        source = _source(tmp_path)
        fp = FileFingerprint.of(source)
        store = PersistentStore(tmp_path / "store")

        rows = data.draw(offsets_arrays)
        nrows = len(rows)
        pm = PositionalMap()
        pm.record_row_offsets(rows)
        ncols = data.draw(st.integers(min_value=0, max_value=4))
        for col in range(ncols):
            starts = data.draw(offsets_arrays.filter(lambda a: True))
            starts = np.resize(starts, nrows)
            ends = starts + data.draw(st.integers(min_value=0, max_value=99))
            pm.record_field_offsets(col, starts, ends)
        if data.draw(st.booleans()):
            pm.record_text_geometry(1000, 1000)

        store.save(_state(source, fp, nrows=nrows, positional_map=pm))
        restored = store.load(source, fp).state
        assert restored is not None
        rpm = restored.positional_map
        assert rpm.nrows == pm.nrows
        np.testing.assert_array_equal(rpm.row_offsets, pm.row_offsets)
        assert sorted(rpm.field_offsets) == sorted(pm.field_offsets)
        for col in pm.field_ends:
            s0, e0 = pm.slices_for(col)
            s1, e1 = rpm.slices_for(col)
            assert s1.tobytes() == s0.tobytes()  # byte-for-byte
            assert e1.tobytes() == e0.tobytes()
        assert rpm.text_geometry == pm.text_geometry

    @given(
        parts=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**40),
                st.integers(min_value=0, max_value=2**40),
            ),
            min_size=1,
            max_size=16,
        ),
        requested=st.integers(min_value=1, max_value=64),
        skip=st.integers(min_value=0, max_value=1),
    )
    @settings(max_examples=50, deadline=None)
    def test_partition_plan(self, parts, requested, skip, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("parts")
        source = _source(tmp_path)
        fp = FileFingerprint.of(source)
        store = PersistentStore(tmp_path / "store")
        pindex = PartitionIndex(
            partitions=[
                Partition(i, min(a, b), max(a, b), skip if i == 0 else 0)
                for i, (a, b) in enumerate(parts)
            ],
            requested=requested,
            file_size=123456,
        )
        store.save(_state(source, fp, partitions=pindex))
        restored = store.load(source, fp).state.partitions
        assert restored.requested == pindex.requested
        assert restored.file_size == pindex.file_size
        assert restored.partitions == pindex.partitions

    @given(
        names=st.lists(
            st.text(
                alphabet=st.characters(
                    whitelist_categories=("Ll", "Lu", "Nd"), min_codepoint=48
                ),
                min_size=1,
                max_size=12,
            ),
            min_size=1,
            max_size=6,
            unique_by=str.lower,
        ),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_widened_schema_and_columns(self, names, data, tmp_path_factory):
        """Schema (including widened types) and column values round-trip;
        numeric columns come back memmapped, strings on the heap."""
        tmp_path = tmp_path_factory.mktemp("cols")
        source = _source(tmp_path)
        fp = FileFingerprint.of(source)
        store = PersistentStore(tmp_path / "store")

        nrows = data.draw(st.integers(min_value=1, max_value=30))
        schema, columns = [], {}
        for name in names:
            dtype = data.draw(st.sampled_from(["int64", "float64", "str"]))
            schema.append((name, dtype))
            if dtype == "int64":
                values = np.array(
                    data.draw(
                        st.lists(
                            st.integers(min_value=-(2**62), max_value=2**62),
                            min_size=nrows,
                            max_size=nrows,
                        )
                    ),
                    dtype=np.int64,
                )
            elif dtype == "float64":
                values = np.array(
                    data.draw(
                        st.lists(
                            st.floats(allow_nan=False, width=64),
                            min_size=nrows,
                            max_size=nrows,
                        )
                    ),
                    dtype=np.float64,
                )
            else:
                values = np.array(
                    data.draw(
                        st.lists(
                            st.text(max_size=15), min_size=nrows, max_size=nrows
                        )
                    ),
                    dtype=object,
                )
            columns[name] = values

        store.save(
            _state(source, fp, nrows=nrows, schema=schema, columns=columns)
        )
        restored = store.load(source, fp).state
        assert restored.schema == schema
        assert restored.nrows == nrows
        assert sorted(restored.columns) == sorted(columns)
        for name, dtype in schema:
            got = restored.columns[name]
            if dtype == "str":
                assert got.dtype == object
                assert list(got) == list(columns[name])
            else:
                assert isinstance(got, np.memmap)
                assert not got.flags.writeable
                np.testing.assert_array_equal(np.asarray(got), columns[name])


# ---------------------------------------------------------------------------
# staleness
# ---------------------------------------------------------------------------


class TestStaleness:
    def test_fingerprint_mismatch_invalidates(self, tmp_path):
        source = _source(tmp_path)
        store = PersistentStore(tmp_path / "store")
        fp = FileFingerprint.of(source)
        store.save(_state(source, fp))
        other = FileFingerprint(
            size=fp.size,
            mtime_ns=fp.mtime_ns,
            ino=fp.ino,
            head=b"\x00" * 16,
            tail=b"\x00" * 16,
        )
        outcome = store.load(source, other)
        assert outcome.state is None
        assert outcome.invalidated
        # the stale entry is gone: a re-probe is a plain miss
        again = store.load(source, other)
        assert again.state is None and not again.invalidated

    def test_forged_mtime_same_size_rewrite_across_restart(self, tmp_path):
        """The airtightness bar: rewrite in place with identical size,
        forge the mtime back, restart — the persisted entry must be
        discarded (content probe mismatch) and the fresh engine must
        answer from the new bytes."""
        f = tmp_path / "a.csv"
        f.write_text("a1\n10\n20\n30\n")
        store_dir = tmp_path / "store"
        cfg = dict(policy="column_loads", store_dir=store_dir)

        e1 = NoDBEngine(EngineConfig(**cfg))
        e1.attach("t", f)
        assert int(e1.query("select sum(a1) from t").scalar()) == 60
        e1.flush_persistent_store()
        assert e1.stats.counters.persist_writes >= 1
        e1.close()

        old = os.stat(f)
        with open(f, "r+") as fh:  # in-place: same inode, same size
            fh.write("a1\n40")
        _force_stat(f, old.st_mtime_ns)
        st_ = os.stat(f)
        assert (st_.st_size, st_.st_mtime_ns, st_.st_ino) == (
            old.st_size,
            old.st_mtime_ns,
            old.st_ino,
        )

        e2 = NoDBEngine(EngineConfig(**cfg))
        e2.attach("t", f)
        assert int(e2.query("select sum(a1) from t").scalar()) == 90
        assert e2.stats.counters.restart_warm_hits == 0
        assert e2.stats.counters.store_invalidations >= 1
        e2.close()

    def test_unchanged_file_restores_restart_warm(self, tmp_path):
        f = tmp_path / "a.csv"
        f.write_text("a1,a2\n" + "\n".join(f"{i},{i * 3}" for i in range(200)))
        store_dir = tmp_path / "store"
        cfg = dict(policy="column_loads", store_dir=store_dir)

        e1 = NoDBEngine(EngineConfig(**cfg))
        e1.attach("t", f)
        expect = e1.query("select sum(a1), sum(a2) from t").rows()
        e1.flush_persistent_store()
        e1.close()

        e2 = NoDBEngine(EngineConfig(**cfg))
        e2.attach("t", f)
        assert e2.query("select sum(a1), sum(a2) from t").rows() == expect
        assert e2.stats.counters.restart_warm_hits == 1
        assert e2.stats.last().file_bytes_read == 0
        assert e2.memory.mapped_bytes > 0  # columns are shared mappings
        e2.close()

    def test_restored_column_copy_on_write(self, tmp_path):
        """Mutating loads on a restored read-only memmap must copy to the
        heap, never ValueError or write through to the store file."""
        f = tmp_path / "a.csv"
        f.write_text("a1\n1\n2\n3\n")
        store_dir = tmp_path / "store"
        e1 = NoDBEngine(EngineConfig(policy="column_loads", store_dir=store_dir))
        e1.attach("t", f)
        e1.query("select sum(a1) from t")
        e1.flush_persistent_store()
        e1.close()

        e2 = NoDBEngine(EngineConfig(policy="column_loads", store_dir=store_dir))
        e2.attach("t", f)
        entry = e2.catalog.get("t")
        e2.query("select sum(a1) from t")
        pc = entry.table.column("a1")
        assert pc.is_mapped
        pc.store(np.array([0]), np.array([99], dtype=np.int64))
        assert not pc.is_mapped  # copied off the mapping
        assert int(pc.values[0]) == 99
        e2.close()
        # the store file still holds the original bytes
        e3 = NoDBEngine(EngineConfig(policy="column_loads", store_dir=store_dir))
        e3.attach("t", f)
        assert int(e3.query("select sum(a1) from t").scalar()) == 6
        e3.close()


# ---------------------------------------------------------------------------
# damage tolerance
# ---------------------------------------------------------------------------


class TestDamage:
    def _saved(self, tmp_path):
        source = _source(tmp_path, "a,b\n1,x\n2,y\n")
        store = PersistentStore(tmp_path / "store")
        fp = FileFingerprint.of(source)
        pm = PositionalMap()
        pm.record_row_offsets(np.array([4, 8], dtype=np.int64))
        store.save(
            _state(
                source,
                fp,
                positional_map=pm,
                columns={
                    "a": np.array([1, 2], dtype=np.int64),
                    "b": np.array(["x", "y"], dtype=object),
                },
            )
        )
        edir = store.entry_dir(source)
        assert store.load(source, fp).state is not None
        return source, store, fp, edir

    def test_truncated_column_is_a_miss(self, tmp_path):
        source, store, fp, edir = self._saved(tmp_path)
        col = next(p for p in edir.iterdir() if p.name.startswith("col_"))
        col.write_bytes(col.read_bytes()[:-1])
        outcome = store.load(source, fp)
        assert outcome.state is None and not outcome.invalidated

    def test_garbage_manifest_is_a_miss(self, tmp_path):
        source, store, fp, edir = self._saved(tmp_path)
        (edir / "manifest.json").write_bytes(b"\x00garbage{{{")
        assert store.load(source, fp).state is None

    def test_missing_posmap_file_is_a_miss(self, tmp_path):
        source, store, fp, edir = self._saved(tmp_path)
        (edir / "pm_rows.bin").unlink()
        assert store.load(source, fp).state is None

    def test_mid_write_crash_leaves_old_entry_or_miss(self, tmp_path):
        """Simulated crash: tmp leftovers plus a missing manifest — the
        reader sees a plain miss; a later save recovers the entry."""
        source, store, fp, edir = self._saved(tmp_path)
        (edir / f".col_9.bin.{os.getpid()}.tmp").write_bytes(b"partial")
        (edir / "manifest.json").unlink()
        assert store.load(source, fp).state is None
        store.save(_state(source, fp, columns={"a": np.array([1, 2])}))
        assert store.load(source, fp).state is not None

    def test_path_tricks_in_manifest_rejected(self, tmp_path):
        source, store, fp, edir = self._saved(tmp_path)
        manifest = json.loads((edir / "manifest.json").read_text())
        manifest["columns"]["a"]["file"] = "../../etc/passwd"
        (edir / "manifest.json").write_text(json.dumps(manifest))
        assert store.load(source, fp).state is None

    def test_clear_and_entries(self, tmp_path):
        source, store, fp, edir = self._saved(tmp_path)
        entries = store.entries()
        assert len(entries) == 1
        assert entries[0]["nrows"] == 2
        assert store.bytes_on_disk() > 0
        assert store.clear() == 1
        assert store.entries() == []
        assert store.load(source, fp).state is None
