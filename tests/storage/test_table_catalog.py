"""Tests for tables, the catalog, and invalidation bookkeeping."""

import time

import numpy as np
import pytest

from repro.errors import CatalogError
from repro.flatfile.schema import ColumnSchema, DataType, TableSchema
from repro.storage.catalog import Catalog
from repro.storage.table import Table


def make_schema():
    return TableSchema(
        [ColumnSchema("a1", DataType.INT64), ColumnSchema("a2", DataType.INT64)]
    )


class TestTable:
    def test_lazy_column_creation(self):
        t = Table("r", make_schema(), nrows=10)
        assert not t.columns
        pc = t.column("A1")
        assert pc.name == "a1"
        assert pc.nrows == 10
        assert t.column("a1") is pc  # cached

    def test_loaded_column_listing(self):
        t = Table("r", make_schema(), nrows=4)
        t.column("a1").store_full(np.arange(4))
        t.column("a2").store(np.array([0]), np.array([5]))
        assert t.loaded_columns() == ["a1", "a2"]
        assert t.fully_loaded_columns() == ["a1"]

    def test_logical_bytes_sum(self):
        t = Table("r", make_schema(), nrows=4)
        assert t.logical_nbytes == 0
        t.column("a1").store_full(np.arange(4))
        assert t.logical_nbytes > 0

    def test_drop_all(self):
        t = Table("r", make_schema(), nrows=4)
        t.column("a1").store_full(np.arange(4))
        t.drop_all()
        assert not t.columns

    def test_ensure_known(self):
        t = Table("r", make_schema(), nrows=4)
        t.ensure_known(["a1", "a2"])
        with pytest.raises(CatalogError, match="no column"):
            t.ensure_known(["zz"])


class TestCatalog:
    def test_attach_and_get(self, small_csv):
        c = Catalog()
        c.attach("R", small_csv)
        assert "r" in c
        assert "R" in c
        assert c.get("r").name == "R"
        assert c.names() == ["R"]

    def test_double_attach_rejected(self, small_csv):
        c = Catalog()
        c.attach("r", small_csv)
        with pytest.raises(CatalogError, match="already attached"):
            c.attach("R", small_csv)

    def test_get_unknown(self):
        with pytest.raises(CatalogError, match="not attached"):
            Catalog().get("nope")

    def test_detach(self, small_csv):
        c = Catalog()
        c.attach("r", small_csv)
        c.detach("r")
        assert "r" not in c
        with pytest.raises(CatalogError):
            c.detach("r")

    def test_schema_inference_lazy(self, small_csv):
        c = Catalog()
        entry = c.attach("r", small_csv)
        assert entry.schema is None  # attach reads nothing
        schema = entry.ensure_schema()
        assert schema.names == ["a1", "a2", "a3", "a4"]
        assert all(col.dtype is DataType.INT64 for col in schema)

    def test_header_detection(self, mixed_csv):
        c = Catalog()
        entry = c.attach("m", mixed_csv)
        schema = entry.ensure_schema()
        assert entry.has_header
        assert schema.names == ["id", "price", "name", "qty"]
        assert schema.dtype_of("price") is DataType.FLOAT64
        assert schema.dtype_of("name") is DataType.STRING

    def test_ensure_table_row_count_conflict(self, small_csv):
        c = Catalog()
        entry = c.attach("r", small_csv)
        entry.ensure_table(500)
        with pytest.raises(CatalogError, match="row count changed"):
            entry.ensure_table(400)

    def test_staleness_detection(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("1,2\n")
        c = Catalog()
        entry = c.attach("t", path)
        assert not entry.is_stale()  # nothing loaded yet
        entry.ensure_table(1)
        assert not entry.is_stale()
        time.sleep(0.01)
        path.write_text("3,4\n5,6\n")
        assert entry.is_stale()

    def test_invalidate_clears_everything(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("1,2\n")
        c = Catalog()
        entry = c.attach("t", path)
        entry.ensure_schema()
        entry.ensure_table(1)
        entry.positional_map.record_row_offsets(np.array([0]))
        entry.invalidate()
        assert entry.table is None
        assert entry.schema is None
        assert entry.positional_map.nrows is None
        assert not entry.is_stale()
