"""Tests for fully-loaded column vectors."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.flatfile.schema import DataType
from repro.storage.column import Column


def test_dtype_coercion():
    c = Column("x", DataType.INT64, np.array([1.0, 2.0]))
    assert c.values.dtype == np.int64


def test_bad_coercion_rejected():
    with pytest.raises(ExecutionError, match="cannot store"):
        Column("x", DataType.INT64, np.array(["a", "b"], dtype=object))


def test_len_and_nbytes():
    c = Column("x", DataType.INT64, np.arange(100))
    assert len(c) == 100
    assert c.nbytes == 800


def test_string_nbytes_estimated():
    c = Column("s", DataType.STRING, np.array(["abc", "de"], dtype=object))
    assert c.nbytes > 16  # pointers plus payload estimate
    empty = Column("s", DataType.STRING, np.empty(0, dtype=object))
    assert empty.nbytes == 0


def test_take_and_slice():
    c = Column("x", DataType.INT64, np.arange(10))
    assert c.take(np.array([2, 4])).values.tolist() == [2, 4]
    assert c.slice(3, 6).values.tolist() == [3, 4, 5]
