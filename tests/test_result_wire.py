"""QueryResult paging and JSON wire round-trip invariants."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.result import QueryResult


def make(nrows: int) -> QueryResult:
    return QueryResult(
        ["i", "f", "s"],
        [
            np.arange(nrows, dtype=np.int64),
            np.arange(nrows, dtype=np.float64) / 8,
            np.array([f"v{i}" for i in range(nrows)], dtype=object),
        ],
    )


class TestPaging:
    @given(nrows=st.integers(0, 50), size=st.integers(1, 60))
    def test_pages_partition_the_rows(self, nrows, size):
        result = make(nrows)
        pages = list(result.pages(size))
        assert len(pages) == result.num_pages(size) == max(1, -(-nrows // size))
        assert all(p.num_rows <= size for p in pages)
        assert [r for p in pages for r in p.rows()] == result.rows()

    def test_empty_result_has_one_empty_page(self):
        result = make(0)
        assert result.num_pages(10) == 1
        assert result.page(0, 10).num_rows == 0

    def test_page_bounds_are_checked(self):
        result = make(10)
        with pytest.raises(IndexError):
            result.page(2, 5)
        with pytest.raises(IndexError):
            result.page(-1, 5)
        with pytest.raises(ValueError):
            result.num_pages(0)

    def test_slice_rows_preserves_names_and_dtypes(self):
        sliced = make(10).slice_rows(3, 7)
        assert sliced.names == ["i", "f", "s"]
        assert sliced.num_rows == 4
        assert sliced.columns[0].dtype == np.int64
        assert list(sliced.columns[0]) == [3, 4, 5, 6]


class TestJsonRoundTrip:
    def test_exact_roundtrip_through_strict_json_text(self):
        result = make(17)
        text = json.dumps(result.to_json_dict(), allow_nan=False)
        back = QueryResult.from_json_dict(json.loads(text))
        assert back.names == result.names
        assert [c.dtype.kind for c in back.columns] == ["i", "f", "O"]
        assert back.rows() == result.rows()

    def test_nonfinite_floats_survive_as_string_sentinels(self):
        result = QueryResult(
            ["x"], [np.array([1.5, math.nan, math.inf, -math.inf])]
        )
        payload = result.to_json_dict()
        assert payload["columns"][0] == [1.5, "NaN", "Infinity", "-Infinity"]
        json.dumps(payload, allow_nan=False)  # strict JSON by construction
        back = QueryResult.from_json_dict(payload)
        assert back.columns[0][0] == 1.5
        assert math.isnan(back.columns[0][1])
        assert back.columns[0][2] == math.inf
        assert back.columns[0][3] == -math.inf

    def test_string_column_may_contain_sentinel_lookalikes(self):
        # "NaN" in a *string* column must stay a string after the trip.
        result = QueryResult(
            ["s"], [np.array(["NaN", "Infinity", "plain"], dtype=object)]
        )
        back = QueryResult.from_json_dict(result.to_json_dict())
        assert list(back.columns[0]) == ["NaN", "Infinity", "plain"]
        assert back.columns[0].dtype.kind == "O"

    def test_dtype_tokens_are_the_wire_vocabulary(self):
        payload = make(3).to_json_dict()
        assert payload["dtypes"] == ["int64", "float64", "str"]
        assert payload["num_rows"] == 3

    @given(
        ints=st.lists(st.integers(-(2**40), 2**40), min_size=1, max_size=20),
        floats=st.lists(
            st.floats(allow_nan=True, allow_infinity=True, width=64),
            min_size=1,
            max_size=20,
        ),
    )
    def test_property_roundtrip(self, ints, floats):
        n = min(len(ints), len(floats))
        result = QueryResult(
            ["a", "b"],
            [np.array(ints[:n], dtype=np.int64), np.array(floats[:n])],
        )
        text = json.dumps(result.to_json_dict(), allow_nan=False)
        back = QueryResult.from_json_dict(json.loads(text))
        assert back.approx_equal(result)
        assert list(back.columns[0]) == list(result.columns[0])
