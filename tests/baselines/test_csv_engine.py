"""Tests for the MySQL-CSV-engine baseline."""

import pytest

from repro import CSVEngine, NoDBEngine


@pytest.fixture
def csv_engine(small_csv):
    engine = CSVEngine()
    engine.attach("r", small_csv)
    yield engine
    engine.close()


def test_results_match_default_engine(csv_engine, small_csv):
    db = NoDBEngine()
    db.attach("r", small_csv)
    sql = "select sum(a1), avg(a3) from r where a1 > 50 and a1 < 450"
    assert csv_engine.query(sql).approx_equal(db.query(sql))
    db.close()


def test_constant_cost_profile(csv_engine):
    sql = "select sum(a1) from r where a1 > 50 and a1 < 450"
    for _ in range(3):
        csv_engine.query(sql)
    queries = csv_engine.stats.queries
    assert all(q.went_to_file for q in queries)
    assert len({q.file_bytes_read for q in queries}) == 1  # same bytes every time
    parse_counts = {q.parse.values_parsed for q in queries}
    assert len(parse_counts) == 1  # no learning, no caching


def test_policy_is_external(csv_engine):
    csv_engine.query("select count(*) from r")
    assert csv_engine.stats.last().policy == "external"


class TestDialectPassthrough:
    """The oracle engine reads every dialect through the shared substrate."""

    def test_attach_format_kwargs(self, tmp_path):
        p = tmp_path / "d.tsv"
        p.write_text("1\t5\n2\t6\n")
        engine = CSVEngine()
        try:
            engine.attach("t", p, format="tsv")
            assert engine.query("select sum(a2) from t").scalar() == 11
        finally:
            engine.close()

    def test_fixed_width_kwargs(self, tmp_path):
        p = tmp_path / "d.txt"
        p.write_text("1  10 \n2  20 \n")
        engine = CSVEngine()
        try:
            engine.attach("t", p, format="fixed-width", fixed_widths=(3, 3))
            assert engine.query("select sum(a2) from t").scalar() == 30
        finally:
            engine.close()
