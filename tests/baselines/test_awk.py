"""Tests for the scripting-tool (Awk) baseline."""

import numpy as np
import pytest

from repro import AwkEngine, NoDBEngine
from repro.errors import UnsupportedSQLError
from repro.workload.generator import materialize_join_pair


@pytest.fixture
def awk(small_csv):
    engine = AwkEngine()
    engine.attach("r", small_csv)
    return engine


class TestSingleTable:
    def test_aggregate_matches_numpy(self, awk, small_columns):
        r = awk.query("select sum(a1), count(*) from r where a1 > 100 and a1 < 300")
        a1 = small_columns[0]
        mask = (a1 > 100) & (a1 < 300)
        assert r.rows()[0] == (a1[mask].sum(), mask.sum())

    def test_projection(self, awk, small_columns):
        r = awk.query("select a1, a2 from r where a1 < 5 order by a1")
        a1, a2 = small_columns[0], small_columns[1]
        mask = a1 < 5
        order = np.argsort(a1[mask])
        assert r.column("a1").tolist() == a1[mask][order].tolist()
        assert r.column("a2").tolist() == a2[mask][order].tolist()

    def test_group_by_matches_engine(self, awk, small_csv):
        sql = (
            "select a1 * 0 + a2 * 0 + a3 * 0 as zero, count(*) as n, sum(a1) as s "
            "from r where a1 > 100 and a1 < 400 group by a1 * 0 + a2 * 0 + a3 * 0"
        )
        db = NoDBEngine()
        db.attach("r", small_csv)
        got = awk.query(sql)
        expected = db.query(sql)
        assert sorted(got.rows()) == sorted(expected.rows())
        db.close()

    def test_statelessness(self, awk):
        sql = "select sum(a2) from r where a2 > 10 and a2 < 400"
        first = awk.query(sql)
        second = awk.query(sql)
        assert first.approx_equal(second)
        # Two full scans: the file was read twice.
        table = awk.tables["r"]
        assert table.file.stats.full_scans == 2

    def test_limit(self, awk):
        assert awk.query("select a1 from r limit 5").num_rows == 5

    def test_distinct_matches_engine(self, awk, small_csv):
        sql = (
            "select distinct a1 * 0 as z, a2 * 0 as z2 from r "
            "where a1 > 10 and a1 < 400"
        )
        db = NoDBEngine()
        db.attach("r", small_csv)
        got = awk.query(sql)
        expected = db.query(sql)
        assert sorted(got.rows()) == sorted(expected.rows())
        db.close()

    def test_order_desc_and_limit(self, awk, small_columns):
        r = awk.query("select a1 from r order by a1 desc limit 3")
        top = sorted(small_columns[0].tolist(), reverse=True)[:3]
        assert r.column("a1").tolist() == top


class TestJoins:
    @pytest.fixture
    def join_files(self, tmp_path):
        return materialize_join_pair(200, tmp_path / "l.csv", tmp_path / "r.csv")

    def test_hash_join_matches_engine(self, join_files):
        lp, rp = join_files
        awk = AwkEngine(join_strategy="hash")
        awk.attach("l", lp)
        awk.attach("rt", rp)
        db = NoDBEngine()
        db.attach("l", lp)
        db.attach("rt", rp)
        sql = (
            "select sum(l.a2), avg(rt.a2), count(*) from l join rt on l.a1 = rt.a1 "
            "where l.a2 > 10 and l.a2 < 150"
        )
        assert awk.query(sql).approx_equal(db.query(sql))
        db.close()

    def test_merge_join_matches_hash_join(self, join_files):
        lp, rp = join_files
        sql = "select sum(l.a2), count(*) from l join rt on l.a1 = rt.a1"
        results = []
        for strategy in ("hash", "merge"):
            awk = AwkEngine(join_strategy=strategy)
            awk.attach("l", lp)
            awk.attach("rt", rp)
            results.append(awk.query(sql))
        assert results[0].approx_equal(results[1])

    def test_three_tables_unsupported(self, join_files, small_csv):
        lp, rp = join_files
        awk = AwkEngine()
        awk.attach("l", lp)
        awk.attach("rt", rp)
        awk.attach("r3", small_csv)
        with pytest.raises(UnsupportedSQLError):
            awk.query(
                "select count(*) from l join rt on l.a1 = rt.a1 "
                "join r3 on l.a1 = r3.a1"
            )


class TestErrors:
    def test_unattached_table(self, awk):
        with pytest.raises(UnsupportedSQLError, match="not attached"):
            awk.query("select 1 from nowhere")
