"""Shared fixtures: deterministic datasets on disk + engine factories.

Also the home of the Hypothesis profiles: CI runs with
``HYPOTHESIS_PROFILE=ci`` (derandomized, so the property suites are
deterministic and a red build is reproducible), while local runs keep
Hypothesis's randomized exploration.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro import EngineConfig, NoDBEngine
from repro.workload import TableSpec, generate_columns, materialize_csv

settings.register_profile("ci", derandomize=True, deadline=None)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(scope="session")
def small_spec() -> TableSpec:
    return TableSpec(nrows=500, ncols=4, seed=101)


@pytest.fixture(scope="session")
def small_columns(small_spec):
    return generate_columns(small_spec)


@pytest.fixture(scope="session")
def small_csv(tmp_path_factory, small_spec):
    """A 500x4 unique-int CSV shared by read-only tests."""
    path = tmp_path_factory.mktemp("data") / "small.csv"
    return materialize_csv(small_spec, path)


@pytest.fixture(scope="session")
def wide_spec() -> TableSpec:
    return TableSpec(nrows=300, ncols=12, seed=202)


@pytest.fixture(scope="session")
def wide_csv(tmp_path_factory, wide_spec):
    path = tmp_path_factory.mktemp("data") / "wide.csv"
    return materialize_csv(wide_spec, path)


@pytest.fixture
def engine_factory(small_csv):
    """Build engines over the shared small dataset; closes them at teardown."""
    engines: list[NoDBEngine] = []

    def make(policy: str = "column_loads", **config_kwargs) -> NoDBEngine:
        engine = NoDBEngine(EngineConfig(policy=policy, **config_kwargs))
        engine.attach("r", small_csv)
        engines.append(engine)
        return engine

    yield make
    for engine in engines:
        engine.close()


@pytest.fixture
def mixed_csv(tmp_path):
    """A small table with int, float and string columns plus a header."""
    path = tmp_path / "mixed.csv"
    rows = [
        "id,price,name,qty",
        "1,1.5,apple,10",
        "2,2.25,banana,20",
        "3,0.75,cherry,30",
        "4,10.0,date,40",
        "5,5.5,elderberry,50",
    ]
    path.write_text("\n".join(rows) + "\n")
    return path


def brute_force_q(columns: list[np.ndarray], bounds, agg_cols) -> list:
    """NumPy ground truth for conjunctive-range aggregate queries."""
    mask = np.ones(len(columns[0]), dtype=bool)
    for (col_idx, lo, hi) in bounds:
        mask &= (columns[col_idx] > lo) & (columns[col_idx] < hi)
    out = []
    for func, col_idx in agg_cols:
        vals = columns[col_idx][mask]
        if func == "sum":
            out.append(vals.sum())
        elif func == "min":
            out.append(vals.min())
        elif func == "max":
            out.append(vals.max())
        elif func == "avg":
            out.append(vals.mean())
        elif func == "count":
            out.append(len(vals))
    return out
