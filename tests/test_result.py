"""Tests for the QueryResult container."""

import numpy as np
import pytest

from repro.result import QueryResult


def _r(**cols):
    names = list(cols)
    return QueryResult(names, [np.asarray(v) for v in cols.values()])


def test_shape_properties():
    r = _r(a=[1, 2, 3], b=[4.0, 5.0, 6.0])
    assert r.num_rows == 3
    assert r.num_columns == 2
    assert r.names == ["a", "b"]


def test_ragged_rejected():
    with pytest.raises(ValueError, match="ragged"):
        QueryResult(["a", "b"], [np.array([1]), np.array([1, 2])])


def test_name_count_mismatch_rejected():
    with pytest.raises(ValueError):
        QueryResult(["a"], [np.array([1]), np.array([2])])


def test_column_lookup():
    r = _r(x=[1, 2])
    assert list(r.column("x")) == [1, 2]
    with pytest.raises(KeyError):
        r.column("nope")


def test_rows():
    r = _r(a=[1, 2], b=[3, 4])
    assert r.rows() == [(1, 3), (2, 4)]


def test_scalar():
    assert _r(a=[42]).scalar() == 42
    with pytest.raises(ValueError):
        _r(a=[1, 2]).scalar()


def test_to_dict():
    assert _r(a=[1], b=[2]).to_dict() == {"a": [1], "b": [2]}


def test_approx_equal_exact_ints():
    assert _r(a=[1, 2]).approx_equal(_r(a=[1, 2]))
    assert not _r(a=[1, 2]).approx_equal(_r(a=[1, 3]))


def test_approx_equal_float_tolerance():
    a = _r(x=[1.0 / 3.0])
    b = _r(x=[0.3333333333333333])
    assert a.approx_equal(b)


def test_approx_equal_shape_mismatch():
    assert not _r(a=[1]).approx_equal(_r(b=[1]))
    assert not _r(a=[1]).approx_equal(_r(a=[1, 2]))


def test_repr_truncates():
    r = _r(a=list(range(100)))
    text = repr(r)
    assert "100 rows" in text
