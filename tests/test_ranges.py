"""Tests for value intervals and conjunctive conditions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ranges import Condition, ValueInterval


class TestValueInterval:
    def test_unbounded_contains_everything(self):
        iv = ValueInterval.unbounded()
        for v in (-(10**12), 0, 3.14, 10**12):
            assert iv.contains_value(v)

    def test_open_interval_excludes_endpoints(self):
        iv = ValueInterval(10, 20)
        assert not iv.contains_value(10)
        assert not iv.contains_value(20)
        assert iv.contains_value(11)
        assert iv.contains_value(19)

    def test_closed_interval_includes_endpoints(self):
        iv = ValueInterval(10, 20, lo_open=False, hi_open=False)
        assert iv.contains_value(10)
        assert iv.contains_value(20)

    def test_equal_interval(self):
        iv = ValueInterval.equal(5)
        assert iv.contains_value(5)
        assert not iv.contains_value(4)
        assert not iv.contains_value(6)

    def test_half_bounded(self):
        lo_only = ValueInterval(5, None)
        assert lo_only.contains_value(10**9)
        assert not lo_only.contains_value(5)
        hi_only = ValueInterval(None, 5)
        assert hi_only.contains_value(-(10**9))
        assert not hi_only.contains_value(5)

    def test_is_empty(self):
        assert ValueInterval(5, 4).is_empty()
        assert ValueInterval(5, 5).is_empty()  # open at both ends
        assert not ValueInterval(5, 5, lo_open=False, hi_open=False).is_empty()
        assert not ValueInterval(4, 5).is_empty()
        assert not ValueInterval.unbounded().is_empty()

    def test_contains_interval_basic(self):
        outer = ValueInterval(0, 100)
        inner = ValueInterval(10, 90)
        assert outer.contains_interval(inner)
        assert not inner.contains_interval(outer)

    def test_contains_interval_same_bounds_openness(self):
        open_iv = ValueInterval(0, 10)
        closed_iv = ValueInterval(0, 10, lo_open=False, hi_open=False)
        assert closed_iv.contains_interval(open_iv)
        assert not open_iv.contains_interval(closed_iv)

    def test_contains_interval_unbounded_sides(self):
        assert ValueInterval.unbounded().contains_interval(ValueInterval(1, 2))
        assert not ValueInterval(1, None).contains_interval(ValueInterval.unbounded())
        assert ValueInterval(None, 10).contains_interval(ValueInterval(None, 10))

    def test_contains_empty_interval_always(self):
        assert ValueInterval(100, 200).contains_interval(ValueInterval(5, 4))

    def test_intersect_overlapping(self):
        a = ValueInterval(0, 10)
        b = ValueInterval(5, 20)
        c = a.intersect(b)
        assert c.lo == 5 and c.hi == 10

    def test_intersect_openness_tightens(self):
        a = ValueInterval(0, 10, lo_open=False, hi_open=False)
        b = ValueInterval(0, 10, lo_open=True, hi_open=True)
        c = a.intersect(b)
        assert c.lo_open and c.hi_open

    def test_mask_matches_scalar(self):
        values = np.arange(20)
        iv = ValueInterval(5, 15)
        mask = iv.mask(values)
        expected = np.array([iv.contains_value(int(v)) for v in values])
        assert (mask == expected).all()

    def test_mask_closed_bounds(self):
        values = np.arange(10)
        iv = ValueInterval(2, 7, lo_open=False, hi_open=False)
        assert iv.mask(values).sum() == 6

    def test_raw_predicate(self):
        iv = ValueInterval(10, 20)
        pred = iv.raw_predicate(int)
        assert pred("15")
        assert not pred("10")
        assert not pred("25")


@st.composite
def intervals(draw):
    lo = draw(st.one_of(st.none(), st.integers(-100, 100)))
    hi = draw(st.one_of(st.none(), st.integers(-100, 100)))
    return ValueInterval(
        lo, hi, lo_open=draw(st.booleans()), hi_open=draw(st.booleans())
    )


class TestIntervalProperties:
    @given(intervals(), intervals(), st.integers(-150, 150))
    def test_containment_implies_membership(self, a, b, v):
        """If a contains b, every member of b is a member of a."""
        if a.contains_interval(b) and b.contains_value(v):
            assert a.contains_value(v)

    @given(intervals(), intervals(), st.integers(-150, 150))
    def test_intersection_is_conjunction(self, a, b, v):
        both = a.contains_value(v) and b.contains_value(v)
        assert a.intersect(b).contains_value(v) == both

    @given(intervals(), st.lists(st.integers(-150, 150), min_size=1, max_size=30))
    def test_mask_agrees_with_contains(self, iv, values):
        arr = np.array(values, dtype=np.int64)
        mask = iv.mask(arr)
        for got, v in zip(mask, values):
            assert bool(got) == iv.contains_value(v)


class TestCondition:
    def test_trivial(self):
        c = Condition()
        assert c.is_trivial()
        assert c.interval_for("anything").is_unbounded()

    def test_merging_same_column(self):
        c = Condition(
            [("a1", ValueInterval(0, 100)), ("A1", ValueInterval(50, 200))]
        )
        iv = c.interval_for("a1")
        assert iv.lo == 50 and iv.hi == 100

    def test_implies_reflexive(self):
        c = Condition([("a1", ValueInterval(0, 10))])
        assert c.implies(c)

    def test_implies_trivial(self):
        c = Condition([("a1", ValueInterval(0, 10))])
        assert c.implies(Condition())
        assert not Condition().implies(c)

    def test_narrower_implies_wider(self):
        wide = Condition([("a1", ValueInterval(0, 100))])
        narrow = Condition([("a1", ValueInterval(10, 20))])
        assert narrow.implies(wide)
        assert not wide.implies(narrow)

    def test_extra_conjuncts_strengthen(self):
        one = Condition([("a1", ValueInterval(0, 100))])
        two = Condition(
            [("a1", ValueInterval(0, 100)), ("a2", ValueInterval(5, 6))]
        )
        assert two.implies(one)
        assert not one.implies(two)

    def test_disjoint_columns_do_not_imply(self):
        a = Condition([("a1", ValueInterval(0, 10))])
        b = Condition([("a2", ValueInterval(0, 10))])
        assert not a.implies(b)
        assert not b.implies(a)

    def test_equality_and_hash(self):
        a = Condition([("a1", ValueInterval(0, 10)), ("a2", ValueInterval(1, 2))])
        b = Condition([("A2", ValueInterval(1, 2)), ("A1", ValueInterval(0, 10))])
        assert a == b
        assert hash(a) == hash(b)

    @given(
        st.lists(
            st.tuples(st.sampled_from(["a1", "a2", "a3"]), intervals()),
            max_size=4,
        ),
        st.lists(
            st.tuples(st.sampled_from(["a1", "a2", "a3"]), intervals()),
            max_size=4,
        ),
        st.dictionaries(
            st.sampled_from(["a1", "a2", "a3"]), st.integers(-150, 150),
            min_size=3, max_size=3,
        ),
    )
    def test_implication_soundness(self, items_a, items_b, row):
        """If A implies B, every row satisfying A satisfies B."""
        a, b = Condition(items_a), Condition(items_b)

        def satisfies(cond):
            return all(iv.contains_value(row[col]) for col, iv in cond.items)

        if a.implies(b) and satisfies(a):
            assert satisfies(b)
