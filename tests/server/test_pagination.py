"""Pagination round-trips: pages concatenated must equal the full result."""

from __future__ import annotations

import time

import pytest

from repro import UnknownResultError
from repro.client import RemoteConnection


@pytest.mark.parametrize("page_size", [1, 7, 100, 499, 500, 501])
def test_all_pages_concatenate_to_the_full_result(served, remote, page_size):
    sql = "select a1, a2 from r"
    want = served.engine.query(sql).rows()
    result = remote.execute(sql, page_size=page_size)
    assert result.num_rows == len(want)
    assert result.num_pages == max(1, -(-len(want) // page_size))
    rows = [row for page in result.pages() for row in page.rows()]
    assert rows == want
    assert result.to_result().rows() == want


def test_pages_are_bounded_by_page_size(remote):
    result = remote.execute("select a1 from r", page_size=64)
    sizes = [page.num_rows for page in result.pages()]
    assert all(s == 64 for s in sizes[:-1])
    assert 0 < sizes[-1] <= 64
    assert sum(sizes) == result.num_rows


def test_empty_result_is_one_empty_page(remote):
    result = remote.execute("select a1 from r where a1 > 100000000")
    assert result.num_rows == 0
    assert result.num_pages == 1
    assert result.page(0).num_rows == 0
    assert result.rows() == []


def test_out_of_range_page_is_unknown_result(remote):
    result = remote.execute("select a1 from r", page_size=100)
    with pytest.raises(UnknownResultError):
        remote._request("GET", f"/results/{result.result_id}/pages/{result.num_pages}")
    with pytest.raises(UnknownResultError):
        remote._request("GET", f"/results/{result.result_id}/pages/-1")


def test_results_are_addressable_across_clients(served, remote):
    result = remote.execute("select a1, a4 from r where a1 < 250", page_size=50)
    other = RemoteConnection(served.url, client_id="second-client")
    reopened = other.result(result.result_id)
    assert reopened.num_rows == result.num_rows
    assert reopened.rows() == result.rows()


def test_deleted_result_is_gone(remote):
    result = remote.execute("select a1 from r")
    result.delete()
    with pytest.raises(UnknownResultError) as excinfo:
        remote.result(result.result_id)
    assert excinfo.value.code == "unknown_result"


def test_result_resources_expire_over_the_wire(server_factory, small_csv):
    server = server_factory(result_ttl_s=0.3)
    server.engine.attach("r", small_csv)
    remote = RemoteConnection(server.url)
    result = remote.execute("select a1 from r", page_size=100)
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        try:
            remote.result(result.result_id)
        except UnknownResultError as exc:
            assert exc.code == "unknown_result"
            break
        time.sleep(0.05)
    else:
        pytest.fail("result resource never expired")


def test_first_page_arrives_with_the_query_response(served, remote):
    result = remote.execute("select a1 from r", page_size=100)
    # Page 0 was cached from the POST /query response: reading it must
    # not issue another request even after the resource is deleted.
    remote._request("DELETE", f"/results/{result.result_id}")
    assert result.page(0).num_rows == 100
    with pytest.raises(UnknownResultError):
        result.page(1)
