"""SIGTERM drains a real ``repro serve`` process gracefully.

Process managers roll servers by sending SIGTERM: the contract is that
queries in flight when the signal lands still complete, freshly arriving
work is told to go elsewhere (503 + ``Retry-After`` or a refused
connection once the listener closes), and the process exits 0.  This
boots the actual CLI entrypoint in a subprocess — signal disposition,
the drain thread and the exit path are all the production ones.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
from pathlib import Path

import pytest

from repro.client import RemoteConnection
from repro.errors import DrainingError

SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture
def serve_process(tmp_path):
    """A live ``python -m repro serve`` subprocess and its base URL."""
    csv = tmp_path / "t.csv"
    csv.write_text(
        "a,b\n" + "\n".join(f"{i},{i * 3}" for i in range(2000)) + "\n"
    )
    # ``-u``: the banner must cross the pipe immediately, not sit in a
    # block buffer until the process exits.
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", "--port", "0", str(csv)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=dict(os.environ, PYTHONPATH=SRC),
        cwd=tmp_path,
    )
    try:
        banner = proc.stdout.readline()
        assert banner.startswith("repro serving on "), banner
        url = banner.split("repro serving on ", 1)[1].strip()
        yield proc, url
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10)


@pytest.mark.timeout(60)
def test_sigterm_finishes_inflight_then_exits_zero(serve_process):
    proc, url = serve_process
    conn = RemoteConnection(url, max_retries=0, timeout_s=30)
    assert conn.execute("select count(*) from t").rows() == [(2000,)]

    # Launch a burst of queries, SIGTERM mid-burst.  Every query must
    # either return the *correct* answer or be told to retry elsewhere —
    # silent drops and wrong answers are both failures.
    answers: list = []
    rejected: list = []

    def run_one(i):
        try:
            rows = RemoteConnection(url, max_retries=0, timeout_s=30).execute(
                "select sum(a), count(*) from t"
            ).rows()
            answers.append(rows)
        except DrainingError as exc:
            assert exc.http_status == 503
            rejected.append(exc)
        except (urllib.error.URLError, ConnectionError):
            rejected.append("refused")  # listener already closed

    threads = [
        threading.Thread(target=run_one, args=(i,), daemon=True)
        for i in range(6)
    ]
    for t in threads[:3]:
        t.start()
    time.sleep(0.05)  # let the first wave get in flight
    proc.send_signal(signal.SIGTERM)
    for t in threads[3:]:
        t.start()
    for t in threads:
        t.join(timeout=45)

    returncode = proc.wait(timeout=45)
    stdout = proc.stdout.read()
    assert returncode == 0
    assert "draining (SIGTERM)" in stdout
    # No wrong answers, no silent drops: every thread resolved one way
    # or the other, and everything answered is exactly right.
    assert len(answers) + len(rejected) == 6
    want = [(sum(range(2000)), 2000)]
    assert all(rows == want for rows in answers)
    # The process was genuinely loaded when the signal landed: the
    # first wave was in flight and still came back correct.
    assert len(answers) >= 1
