"""Unit tests for the result-resource store: TTL, LRU, spill, restart."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import UnknownResultError
from repro.result import QueryResult
from repro.server.results import ResultManager, result_ram_bytes
from repro.storage.memory import MemoryManager


def make_result(nrows: int = 10, seed: int = 0) -> QueryResult:
    rng = np.random.default_rng(seed)
    return QueryResult(
        ["a", "b"],
        [rng.integers(0, 100, nrows), rng.random(nrows)],
    )


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def manager(tmp_path, clock):
    return ResultManager(tmp_path, ttl_s=60.0, max_results=4, clock=clock)


def test_store_then_fetch_roundtrips_exactly(manager):
    result = make_result(25)
    meta = manager.store(result, page_size=10)
    assert meta["num_rows"] == 25
    assert meta["num_pages"] == 3
    assert manager.meta(meta["result_id"])["names"] == ["a", "b"]
    fetched = manager.get(meta["result_id"])
    assert fetched.rows() == result.rows()
    _, page = manager.page(meta["result_id"], 2)
    assert page.num_rows == 5


def test_ttl_expiry_drops_the_resource_and_its_file(manager, clock, tmp_path):
    meta = manager.store(make_result(), page_size=10)
    path = tmp_path / f"{meta['result_id']}.json"
    assert path.exists()
    clock.now += 61.0
    with pytest.raises(UnknownResultError):
        manager.meta(meta["result_id"])
    assert not path.exists()
    assert manager.snapshot()["expired"] == 1


def test_lru_eviction_beyond_max_results(manager, clock):
    ids = []
    for i in range(5):
        clock.now += 1.0
        ids.append(manager.store(make_result(seed=i), page_size=10)["result_id"])
    # max_results=4: the oldest (least recently accessed) id is gone.
    assert manager.list_ids() == sorted(ids[1:])
    with pytest.raises(UnknownResultError):
        manager.get(ids[0])
    assert manager.snapshot()["lru_evicted"] == 1


def test_recent_access_protects_against_lru(manager, clock):
    ids = [
        manager.store(make_result(seed=i), page_size=10)["result_id"]
        for i in range(4)
    ]
    clock.now += 1.0
    manager.get(ids[0])  # refresh the would-be victim
    clock.now += 1.0
    manager.store(make_result(seed=9), page_size=10)
    assert ids[0] in manager.list_ids()
    assert ids[1] not in manager.list_ids()


def test_delete_is_explicit_and_final(manager, tmp_path):
    meta = manager.store(make_result(), page_size=10)
    manager.delete(meta["result_id"])
    assert not (tmp_path / f"{meta['result_id']}.json").exists()
    with pytest.raises(UnknownResultError):
        manager.delete(meta["result_id"])


def test_restart_reindexes_surviving_resources(tmp_path, clock):
    first = ResultManager(tmp_path, ttl_s=60.0, clock=clock)
    keep = first.store(make_result(30, seed=1), page_size=8)
    doomed = first.store(make_result(seed=2), page_size=8)
    # Make one resource expire and one file damaged before the "restart".
    data = json.loads((tmp_path / f"{doomed['result_id']}.json").read_text())
    data["meta"]["expires_at"] = clock.now - 1
    (tmp_path / f"{doomed['result_id']}.json").write_text(json.dumps(data))
    (tmp_path / "garbage.json").write_text("{not json")

    second = ResultManager(tmp_path, ttl_s=60.0, clock=clock)
    assert second.list_ids() == [keep["result_id"]]
    assert second.get(keep["result_id"]).num_rows == 30
    assert not (tmp_path / f"{doomed['result_id']}.json").exists()


def test_memory_pressure_spills_ram_copy_but_keeps_the_resource(tmp_path, clock):
    result = make_result(1000)
    budget = result_ram_bytes(result) + 512  # room for ~one result's columns
    memory = MemoryManager(budget_bytes=budget)
    manager = ResultManager(tmp_path, memory=memory, ttl_s=60.0, clock=clock)
    first = manager.store(result, page_size=100)["result_id"]
    manager.store(make_result(1000, seed=7), page_size=100)  # evicts first's RAM
    snap = manager.snapshot()
    assert snap["ram_spills"] >= 1
    assert snap["results_ram_resident"] < snap["results_held"]
    # The disk resource survives the spill: the next access reloads it.
    assert manager.get(first).rows() == result.rows()
    assert manager.snapshot()["disk_reloads"] == 1
    assert memory.resident_bytes <= budget


def test_clear_empties_directory(manager, tmp_path):
    for i in range(3):
        manager.store(make_result(seed=i), page_size=10)
    assert manager.clear() == 3
    assert manager.list_ids() == []
    assert list(tmp_path.glob("*.json")) == []


def test_validates_configuration(tmp_path):
    with pytest.raises(ValueError):
        ResultManager(tmp_path, ttl_s=0)
    with pytest.raises(ValueError):
        ResultManager(tmp_path, max_results=0)
