"""End-to-end coverage of every wire endpoint and its error taxonomy."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import (
    BadRequestError,
    CatalogError,
    NotFoundError,
    SQLSyntaxError,
    TableConflictError,
)
from repro.client import RemoteConnection


def test_health_reports_liveness(remote):
    payload = remote.health()
    assert payload["status"] == "ok"
    assert payload["uptime_s"] >= 0


def test_tables_lists_attachments(remote):
    assert remote.tables() == ["r"]


def test_query_returns_rows_identical_to_engine(served, remote):
    sql = "select sum(a1), count(*) from r where a1 > 100"
    want = served.engine.query(sql).rows()
    got = remote.execute(sql).rows()
    assert got == want


def test_table_info_exposes_schema_and_warmth(remote):
    cold = remote.table_info("r")
    assert cold["warmth"]["state"] == "cold"
    assert [c["name"] for c in cold["columns"]] == ["a1", "a2", "a3", "a4"]
    assert remote.schema("r") == [(f"a{i}", "int64") for i in range(1, 5)]

    remote.execute("select a1 from r where a1 > 0")
    warm = remote.table_info("r")
    assert warm["warmth"]["state"] == "warm"
    assert warm["warmth"]["nrows"] == 500
    assert warm["warmth"]["loaded"]["a1"]["fully_loaded"] is True


def test_attach_detach_roundtrip(remote, served, wide_csv):
    remote.attach("w", wide_csv)
    assert remote.tables() == ["r", "w"]
    assert remote.execute("select count(*) from w").rows() == [(300,)]
    remote.detach("w")
    assert remote.tables() == ["r"]


def test_identical_reattach_is_idempotent(remote, small_csv):
    # The table is already attached server-side; an identical re-attach
    # must converge on the existing attachment, not 409.
    remote.attach("r", small_csv)
    assert remote.tables() == ["r"]


def test_conflicting_reattach_is_409(remote, small_csv, wide_csv):
    with pytest.raises(TableConflictError) as excinfo:
        remote.attach("r", wide_csv)
    assert excinfo.value.code == "table_conflict"
    assert excinfo.value.http_status == 409
    with pytest.raises(TableConflictError):
        remote.attach("r", small_csv, delimiter=";")


def test_malformed_sql_travels_as_sql_syntax(remote):
    with pytest.raises(SQLSyntaxError) as excinfo:
        remote.execute("selct a1 frm r")
    assert excinfo.value.code == "sql_syntax"
    assert excinfo.value.position >= 0


def test_unknown_table_travels_as_catalog_error(remote):
    with pytest.raises(CatalogError) as excinfo:
        remote.execute("select a1 from nosuch")
    assert excinfo.value.code == "catalog"


def test_unknown_route_is_404(remote):
    with pytest.raises(NotFoundError):
        remote._request("GET", "/nope")


def test_missing_sql_field_is_bad_request(remote):
    with pytest.raises(BadRequestError):
        remote._request("POST", "/query", {"sq": "select 1"})


def test_bad_page_size_is_bad_request(remote):
    for bad in (0, -1, "ten", True):
        with pytest.raises(BadRequestError):
            remote._request("POST", "/query", {"sql": "select a1 from r", "page_size": bad})


def test_page_size_is_clamped_to_server_cap(server_factory, small_csv):
    server = server_factory(page_size_cap=50)
    server.engine.attach("r", small_csv)
    remote = RemoteConnection(server.url)
    result = remote.execute("select a1 from r", page_size=10_000)
    assert result.page_size == 50
    assert result.num_pages == 10


def test_non_json_body_is_bad_request(served):
    request = urllib.request.Request(
        served.url + "/query",
        data=b"this is not json",
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=10)
    assert excinfo.value.code == 400
    payload = json.loads(excinfo.value.read())
    assert payload["error"] == "bad_request"


def test_stats_sections_are_json_safe(remote):
    remote.execute("select avg(a2) from r")
    stats = remote.stats()  # travelled as strict JSON already
    assert set(stats) == {"engine", "memory", "admission", "results", "server"}
    assert stats["engine"]["queries"] >= 1
    assert stats["engine"]["last_query"]["result_rows"] == 1
    assert stats["results"]["stored"] >= 1
    assert stats["admission"]["max_inflight"] == 8
    assert stats["server"]["requests"] >= 2
    json.dumps(stats, allow_nan=False)


def test_cli_stats_consume_snapshot_not_internals(served, remote):
    # /stats and the CLI read the same EngineStatistics.snapshot() dict.
    remote.execute("select count(*) from r")
    snap = served.engine.stats.snapshot()
    assert snap["queries"] == remote.stats()["engine"]["queries"]
    assert {"elapsed_s", "file_bytes_read", "rows_loaded"} <= set(snap["last_query"])
