"""Fixtures for the HTTP serving-layer suite: one live server per test.

Every fixture boots a real ``ReproServer`` on an ephemeral port and talks
to it through ``repro.client.RemoteConnection`` — the same stdlib wire
path applications use — so these tests cover serialization, routing and
status codes end to end, not just the dispatch table.
"""

from __future__ import annotations

import time

import pytest

from repro import EngineConfig, NoDBEngine
from repro.client import RemoteConnection
from repro.server import ReproServer


def assert_no_leaks(server: ReproServer, timeout_s: float = 10.0) -> None:
    """Every test's exit invariant: nothing pinned, held or in flight.

    Admission slots are released by a future's done-callback and may
    land a beat after the HTTP response, so the in-flight count gets a
    grace period; pins and scan flights must already be clean.
    """
    deadline = time.monotonic() + timeout_s
    while server.admission.snapshot()["inflight"] > 0:
        assert time.monotonic() < deadline, (
            f"admission slots leaked: {server.admission.snapshot()}"
        )
        time.sleep(0.01)
    engine = server.engine
    memory = engine.memory
    with memory._lock:
        pinned = {
            key: frag.pins for key, frag in memory.fragments.items() if frag.pins
        }
    assert not pinned, f"pinned fragments leaked: {pinned}"
    assert engine._scan_gate.in_flight() == 0, "shared-scan flights leaked"


@pytest.fixture
def server_factory():
    """Build live servers with arbitrary knobs; closes them at teardown.

    Teardown also asserts the leak invariants on every server a test
    booted — a request path that leaks a pin, a scan flight or an
    admission slot fails the test that exercised it, whatever it was
    nominally about.
    """
    servers: list[ReproServer] = []

    def make(config: EngineConfig | None = None, **server_kwargs) -> ReproServer:
        engine = NoDBEngine(config or EngineConfig())
        server = ReproServer(engine, port=0, owns_engine=True, **server_kwargs)
        servers.append(server)
        return server.start()

    yield make
    try:
        for server in servers:
            assert_no_leaks(server)
    finally:
        for server in servers:
            server.close()


@pytest.fixture
def served(server_factory, small_csv):
    """A running server with the shared small table attached as ``r``."""
    server = server_factory()
    server.engine.attach("r", small_csv)
    return server


@pytest.fixture
def remote(served):
    """A wire client bound to the ``served`` fixture."""
    return RemoteConnection(served.url, client_id="pytest")
