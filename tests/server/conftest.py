"""Fixtures for the HTTP serving-layer suite: one live server per test.

Every fixture boots a real ``ReproServer`` on an ephemeral port and talks
to it through ``repro.client.RemoteConnection`` — the same stdlib wire
path applications use — so these tests cover serialization, routing and
status codes end to end, not just the dispatch table.
"""

from __future__ import annotations

import pytest

from repro import EngineConfig, NoDBEngine
from repro.client import RemoteConnection
from repro.server import ReproServer


@pytest.fixture
def server_factory():
    """Build live servers with arbitrary knobs; closes them at teardown."""
    servers: list[ReproServer] = []

    def make(config: EngineConfig | None = None, **server_kwargs) -> ReproServer:
        engine = NoDBEngine(config or EngineConfig())
        server = ReproServer(engine, port=0, owns_engine=True, **server_kwargs)
        servers.append(server)
        return server.start()

    yield make
    for server in servers:
        server.close()


@pytest.fixture
def served(server_factory, small_csv):
    """A running server with the shared small table attached as ``r``."""
    server = server_factory()
    server.engine.attach("r", small_csv)
    return server


@pytest.fixture
def remote(served):
    """A wire client bound to the ``served`` fixture."""
    return RemoteConnection(served.url, client_id="pytest")
