"""``Retry-After`` parsing in the HTTP client (RFC 7231 both forms).

The header is allowed to be either delta-seconds (``"120"``) or an
HTTP-date; proxies in front of a ``repro serve`` process may rewrite one
into the other.  Unparseable, negative or non-finite values must drop
the hint rather than poison a caller's backoff arithmetic.
"""

import datetime
import email.utils

import pytest

from repro.client import _parse_retry_after


class TestDeltaSeconds:
    def test_integer_seconds(self):
        assert _parse_retry_after("120") == 120.0

    def test_fractional_seconds(self):
        assert _parse_retry_after("1.5") == 1.5

    def test_zero(self):
        assert _parse_retry_after("0") == 0.0

    def test_surrounding_whitespace(self):
        assert _parse_retry_after("  30 ") == 30.0

    @pytest.mark.parametrize("bad", ["-5", "nan", "inf", "-inf"])
    def test_negative_and_non_finite_dropped(self, bad):
        assert _parse_retry_after(bad) is None


class TestHttpDate:
    def test_future_date_yields_positive_delay(self):
        when = datetime.datetime.now(datetime.timezone.utc) + datetime.timedelta(
            seconds=90
        )
        header = email.utils.format_datetime(when, usegmt=True)
        got = _parse_retry_after(header)
        assert got is not None
        assert 80.0 <= got <= 90.5

    def test_past_date_clamps_to_zero(self):
        header = "Wed, 21 Oct 2015 07:28:00 GMT"
        assert _parse_retry_after(header) == 0.0

    def test_naive_minus_zero_offset_treated_as_utc(self):
        when = datetime.datetime.now(datetime.timezone.utc) + datetime.timedelta(
            seconds=60
        )
        header = when.strftime("%a, %d %b %Y %H:%M:%S -0000")
        got = _parse_retry_after(header)
        assert got is not None
        assert 50.0 <= got <= 60.5


class TestGarbage:
    @pytest.mark.parametrize(
        "bad", ["", "soon", "Wed, 99 Foo 2015", "12 seconds", "1;2"]
    )
    def test_unparseable_dropped(self, bad):
        assert _parse_retry_after(bad) is None

    def test_missing_header(self):
        assert _parse_retry_after(None) is None
