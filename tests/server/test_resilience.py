"""End-to-end resilience of the serving layer.

Covers the degraded modes a production server must survive: unexpected
handler exceptions mapped to the stable ``internal_error`` wire code,
graceful drain (in-flight finishes, new work gets 503 + ``Retry-After``),
result-resource GC under disk faults, admission-slot hygiene when the
query pool is gone, and the client's transparent retry layer.
"""

from __future__ import annotations

import threading
import time
import urllib.error

import pytest

from repro import EngineConfig
from repro.client import RemoteConnection
from repro.errors import (
    DrainingError,
    InternalServerError,
    UnknownResultError,
)
from repro.faults import FaultPlan, FaultSpec, InjectedFault
from repro.server.results import ResultManager
from repro.result import QueryResult

import numpy as np


def _wait_until(predicate, timeout_s: float = 10.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.01)


# ---------------------------------------------------------------------------
# internal_error mapping
# ---------------------------------------------------------------------------


class TestInternalErrorMapping:
    def test_unexpected_handler_exception_maps_to_internal_error(
        self, server_factory, small_csv
    ):
        plan = FaultPlan({"server.request": FaultSpec(times=1)})
        server = server_factory(EngineConfig(fault_plan=plan))
        server.engine.attach("r", small_csv)
        remote = RemoteConnection(server.url, max_retries=0)
        with pytest.raises(InternalServerError) as excinfo:
            remote.execute("select count(*) from r")
        assert excinfo.value.code == "internal_error"
        assert excinfo.value.http_status == 500
        # The injected crash burned exactly one request; the server keeps
        # serving (same engine, same connection) afterwards.
        assert remote.execute("select count(*) from r").rows() == [(500,)]

    def test_taxonomy_errors_keep_their_own_codes(self, served):
        remote = RemoteConnection(served.url, max_retries=0)
        with pytest.raises(UnknownResultError):
            remote.result("no-such-id")


# ---------------------------------------------------------------------------
# graceful drain
# ---------------------------------------------------------------------------


class _BlockedEngine:
    """Wrap ``engine.query`` so test code controls when queries finish."""

    def __init__(self, server):
        self.started = threading.Semaphore(0)
        self.release = threading.Event()
        real_query = server.engine.query

        def blocked(sql):
            self.started.release()
            assert self.release.wait(timeout=30), "test never released the query"
            return real_query(sql)

        server.engine.query = blocked


class TestGracefulDrain:
    def test_drain_finishes_inflight_and_rejects_new_work(
        self, server_factory, small_csv
    ):
        server = server_factory()
        server.engine.attach("r", small_csv)
        gate = _BlockedEngine(server)
        remote = RemoteConnection(server.url, max_retries=0)
        sql = "select count(*) from r"

        inflight_result: list = []
        runner = threading.Thread(
            target=lambda: inflight_result.append(remote.execute(sql).rows()),
            daemon=True,
        )
        runner.start()
        assert gate.started.acquire(timeout=10)

        drain_outcome: list = []
        drainer = threading.Thread(
            target=lambda: drain_outcome.append(server.drain(timeout_s=30)),
            daemon=True,
        )
        drainer.start()
        _wait_until(lambda: server.draining)

        # Draining: health says so, new queries bounce with 503 +
        # Retry-After, reads are still served.
        health = RemoteConnection(server.url, max_retries=0).health()
        assert health["status"] == "draining"
        with pytest.raises(DrainingError) as excinfo:
            RemoteConnection(server.url, max_retries=0).execute(sql)
        assert excinfo.value.http_status == 503
        assert excinfo.value.retry_after_s >= 1.0
        stats = RemoteConnection(server.url, max_retries=0).stats()
        assert stats["server"]["draining"] is True
        assert stats["server"]["drained_requests"] >= 1

        # The in-flight query completes with the right answer, and drain
        # reports a clean finish.
        gate.release.set()
        runner.join(timeout=30)
        drainer.join(timeout=30)
        assert inflight_result == [[(500,)]]
        assert drain_outcome == [True]
        # The listener is gone: fresh connections are refused.
        with pytest.raises((urllib.error.URLError, ConnectionError)):
            RemoteConnection(server.url, max_retries=0).health()

    def test_drain_without_load_closes_immediately(self, server_factory, small_csv):
        server = server_factory()
        server.engine.attach("r", small_csv)
        assert server.drain(timeout_s=10) is True
        assert server._closed

    def test_draining_rejects_catalog_mutation_but_serves_reads(
        self, server_factory, small_csv
    ):
        server = server_factory()
        server.engine.attach("r", small_csv)
        remote = RemoteConnection(server.url, max_retries=0)
        result = remote.execute("select count(*) from r")
        with server._active_cv:
            server._draining = True  # flag only: keep the listener alive
        assert remote.health()["status"] == "draining"
        # Reads still work: tables listing, result paging.
        assert remote.tables() == ["r"]
        assert remote.result(result.result_id).num_rows == 1
        with pytest.raises(DrainingError):
            remote.attach("s", small_csv)
        with pytest.raises(DrainingError):
            remote.detach("r")
        with server._active_cv:
            server._draining = False


# ---------------------------------------------------------------------------
# admission-slot hygiene
# ---------------------------------------------------------------------------


class TestSlotHygiene:
    def test_submit_failure_releases_the_admission_slot(
        self, server_factory, small_csv
    ):
        server = server_factory()
        server.engine.attach("r", small_csv)
        # Shut the query pool down underneath the server: submit now
        # raises, and the slot acquired before it must be released.
        server._pool.shutdown(wait=True)
        remote = RemoteConnection(server.url, max_retries=0)
        with pytest.raises(InternalServerError):
            remote.execute("select count(*) from r")
        assert server.admission.snapshot()["inflight"] == 0


# ---------------------------------------------------------------------------
# result-resource GC under disk faults
# ---------------------------------------------------------------------------


def _result(n: int = 4) -> QueryResult:
    return QueryResult(["a"], [np.arange(n, dtype=np.int64)])


class TestResultManagerDiskFaults:
    def test_unlink_fault_does_not_wedge_gc(self, tmp_path):
        clock = [0.0]
        plan = FaultPlan({"results.unlink": FaultSpec(times=2)})
        manager = ResultManager(
            tmp_path, ttl_s=10.0, clock=lambda: clock[0], fault_plan=plan
        )
        meta = manager.store(_result(), page_size=2)
        clock[0] = 100.0  # expire it; the unlink will fail (injected)
        manager.purge()
        snap = manager.snapshot()
        assert snap["results_held"] == 0
        assert snap["expired"] == 1
        assert snap["unlink_failures"] == 1
        with pytest.raises(UnknownResultError):
            manager.meta(meta["result_id"])
        # GC is not wedged: later resources store and expire cleanly.
        meta2 = manager.store(_result(), page_size=2)
        assert manager.meta(meta2["result_id"])["result_id"] == meta2["result_id"]
        clock[0] = 200.0
        manager.purge()
        assert manager.snapshot()["results_held"] == 0

    def test_write_fault_degrades_to_ram_only(self, tmp_path):
        plan = FaultPlan({"results.write": FaultSpec(times=1)})
        manager = ResultManager(tmp_path, fault_plan=plan)
        meta = manager.store(_result(6), page_size=3)
        assert manager.snapshot()["write_failures"] == 1
        # No resource file landed, but the RAM copy still serves pages.
        assert not list(tmp_path.glob("*.json"))
        _, page = manager.page(meta["result_id"], 1)
        assert page.num_rows == 3
        # The next store writes normally again (transient fault).
        manager.store(_result(), page_size=2)
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_read_fault_surfaces_as_unknown_result(self, tmp_path):
        plan = FaultPlan({"results.read": FaultSpec(times=None)})
        manager = ResultManager(tmp_path, fault_plan=plan)
        meta = manager.store(_result(), page_size=2)
        entry = manager._entries[meta["result_id"]]
        entry.result = None  # simulate a memory-pressure spill
        with pytest.raises(UnknownResultError):
            manager.get(meta["result_id"])

    def test_expired_entry_with_unreadable_file_expires_cleanly(self, tmp_path):
        clock = [0.0]
        manager = ResultManager(tmp_path, ttl_s=5.0, clock=lambda: clock[0])
        meta = manager.store(_result(), page_size=2)
        # Corrupt the resource on disk, then expire: GC must not care
        # what the bytes look like.
        manager._path(meta["result_id"]).write_text("not json")
        clock[0] = 50.0
        manager.purge()
        assert manager.snapshot()["results_held"] == 0
        assert manager.snapshot()["expired"] == 1


# ---------------------------------------------------------------------------
# client retry layer
# ---------------------------------------------------------------------------


class TestClientRetries:
    def test_503_is_retried_and_counted(self, server_factory, small_csv):
        server = server_factory()
        server.engine.attach("r", small_csv)
        with server._active_cv:
            server._draining = True
        remote = RemoteConnection(
            server.url, max_retries=2, backoff_s=0.001, retry_after_cap_s=0.01
        )
        with pytest.raises(DrainingError):
            remote.execute("select count(*) from r")
        assert remote.client_retries == 2
        assert remote.counters() == {"client_retries": 2}

    def test_retry_succeeds_when_the_condition_clears(
        self, server_factory, small_csv
    ):
        server = server_factory()
        server.engine.attach("r", small_csv)
        with server._active_cv:
            server._draining = True
        remote = RemoteConnection(
            server.url, max_retries=3, backoff_s=0.001, retry_after_cap_s=0.2
        )

        def undrain():
            with server._active_cv:
                server._draining = False

        clearer = threading.Timer(0.05, undrain)
        clearer.start()
        try:
            assert remote.execute("select count(*) from r").rows() == [(500,)]
        finally:
            clearer.cancel()
        assert remote.client_retries >= 1

    def test_delete_is_never_retried(self, server_factory, small_csv):
        server = server_factory()
        server.engine.attach("r", small_csv)
        with server._active_cv:
            server._draining = True
        remote = RemoteConnection(
            server.url, max_retries=3, backoff_s=0.001, retry_after_cap_s=0.01
        )
        with pytest.raises(DrainingError):
            remote.detach("r")
        assert remote.client_retries == 0
        with server._active_cv:
            server._draining = False

    def test_connection_errors_retry_only_gets(self, server_factory, small_csv):
        server = server_factory()
        server.engine.attach("r", small_csv)
        url = server.url
        server.close()  # connections now refused
        get_conn = RemoteConnection(url, max_retries=2, backoff_s=0.001)
        with pytest.raises((urllib.error.URLError, ConnectionError)):
            get_conn.health()
        assert get_conn.client_retries == 2
        post_conn = RemoteConnection(url, max_retries=2, backoff_s=0.001)
        with pytest.raises((urllib.error.URLError, ConnectionError)):
            post_conn.execute("select 1 from r")
        assert post_conn.client_retries == 0

    def test_retry_after_hint_is_capped(self):
        conn = RemoteConnection(
            "http://127.0.0.1:1", backoff_s=0.25, retry_after_cap_s=0.5
        )
        # An absurd server hint is capped; jitter keeps it in [cap/2, cap].
        delay = conn._retry_delay(0, hint=3600.0)
        assert 0.25 <= delay <= 0.5
        # No hint: exponential backoff from backoff_s.
        assert conn._retry_delay(0, hint=None) <= 0.25
        assert conn._retry_delay(3, hint=None) <= conn.max_backoff_s

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            RemoteConnection("http://h", max_retries=-1)
        with pytest.raises(ValueError):
            RemoteConnection("http://h", backoff_s=-0.1)

    def test_injected_fault_type_never_escapes_to_clients(
        self, server_factory, small_csv
    ):
        # Clients see taxonomy errors, not the injection mechanism.
        plan = FaultPlan({"server.request": FaultSpec(times=1)})
        server = server_factory(EngineConfig(fault_plan=plan))
        server.engine.attach("r", small_csv)
        remote = RemoteConnection(server.url, max_retries=0)
        try:
            remote.execute("select count(*) from r")
        except InjectedFault:  # pragma: no cover - the regression
            pytest.fail("InjectedFault leaked over the wire")
        except InternalServerError:
            pass
