"""Backpressure on the wire: 429 + Retry-After, and clean query timeouts."""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import OverloadedError, QueryTimeoutError
from repro.client import RemoteConnection
from repro.server.admission import AdmissionController


class _BlockedEngine:
    """Wrap ``engine.query`` so test code controls when queries finish."""

    def __init__(self, server):
        self.started = threading.Semaphore(0)
        self.release = threading.Event()
        real_query = server.engine.query

        def blocked(sql):
            self.started.release()
            assert self.release.wait(timeout=30), "test never released the query"
            return real_query(sql)

        server.engine.query = blocked


def _wait_until(predicate, timeout_s: float = 10.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.01)


def test_global_cap_rejects_with_429_and_retry_after(server_factory, small_csv):
    server = server_factory(max_inflight=2, max_inflight_per_client=2)
    server.engine.attach("r", small_csv)
    gate = _BlockedEngine(server)
    sql = "select count(*) from r"
    with ThreadPoolExecutor(max_workers=2) as pool:
        futures = [
            pool.submit(RemoteConnection(server.url, client_id=f"c{i}").execute, sql)
            for i in range(2)
        ]
        gate.started.acquire(timeout=10)
        gate.started.acquire(timeout=10)

        with pytest.raises(OverloadedError) as excinfo:
            RemoteConnection(server.url, client_id="c9", max_retries=0).execute(sql)
        assert excinfo.value.code == "overloaded"
        assert excinfo.value.http_status == 429
        # Retry-After header round-trips into the client-side exception.
        assert excinfo.value.retry_after_s >= 1.0

        gate.release.set()
        for future in futures:
            assert future.result(timeout=30).rows() == [(500,)]
    assert server.admission.snapshot()["rejected_global"] == 1
    # Slots drain once the queries finish; fresh work is admitted again.
    _wait_until(lambda: server.admission.snapshot()["inflight"] == 0)
    assert RemoteConnection(server.url).execute(sql).rows() == [(500,)]


def test_per_client_cap_rejects_only_the_greedy_client(server_factory, small_csv):
    server = server_factory(max_inflight=8, max_inflight_per_client=1)
    server.engine.attach("r", small_csv)
    gate = _BlockedEngine(server)
    # max_retries=0: this test asserts exact rejection counts, so the
    # client must not transparently re-send the 429'd request.
    greedy = RemoteConnection(server.url, client_id="greedy", max_retries=0)
    sql = "select count(*) from r"
    with ThreadPoolExecutor(max_workers=1) as pool:
        future = pool.submit(greedy.execute, sql)
        gate.started.acquire(timeout=10)
        with pytest.raises(OverloadedError):
            greedy.execute(sql)
        gate.release.set()
        assert future.result(timeout=30).rows() == [(500,)]
    snap = server.admission.snapshot()
    assert snap["rejected_client"] == 1
    assert snap["rejected_global"] == 0


def test_timeout_is_504_and_keeps_the_slot_until_the_query_ends(
    server_factory, small_csv
):
    server = server_factory(query_timeout_s=0.2, max_inflight=4)
    server.engine.attach("r", small_csv)
    gate = _BlockedEngine(server)
    remote = RemoteConnection(server.url)
    with pytest.raises(QueryTimeoutError) as excinfo:
        remote.execute("select count(*) from r")
    assert excinfo.value.code == "query_timeout"
    assert excinfo.value.http_status == 504
    # The engine is still chewing on the query: its admission slot must
    # stay occupied (timeouts do not defeat backpressure) ...
    assert server.admission.snapshot()["inflight"] == 1
    gate.release.set()
    # ... and drain only when the query genuinely finishes.
    _wait_until(lambda: server.admission.snapshot()["inflight"] == 0)


def test_controller_validates_and_counts():
    with pytest.raises(ValueError):
        AdmissionController(max_inflight=0)
    with pytest.raises(ValueError):
        AdmissionController(max_inflight_per_client=0)
    ctrl = AdmissionController(max_inflight=2, max_inflight_per_client=1)
    with ctrl.admitted_slot("a"):
        with ctrl.admitted_slot("b"):
            with pytest.raises(OverloadedError):
                ctrl.acquire("c")  # global cap
        with pytest.raises(OverloadedError):
            ctrl.acquire("a")  # per-client cap
    assert ctrl.snapshot() == {
        "inflight": 0,
        "max_inflight": 2,
        "max_inflight_per_client": 1,
        "admitted": 2,
        "rejected_global": 1,
        "rejected_client": 1,
    }
