"""Vectorized kernel == scalar tokenizer, property-tested.

The bulk-tokenization kernel must be indistinguishable from the scalar
routes in everything but speed: emitted fields, row ids, *every*
:class:`TokenizerStats` counter, learned positional-map contents and
pushdown-predicate evaluation sequences.  These tests drive both routes
over the same bytes — Hypothesis-generated tables plus handcrafted edge
cases (ragged rows, blank lines, CRLF, trailing delimiters, non-ASCII,
NUL bytes, headers) — and diff everything.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FlatFileError
from repro.flatfile.dialects import (
    DelimitedAdapter,
    FixedWidthAdapter,
    TsvAdapter,
)
from repro.flatfile.positions import PositionalMap
from repro.flatfile.tokenizer import tokenize_bytes
from repro.flatfile.vectorized import tokenize_vectorized


def _pmap_state(pmap: PositionalMap):
    return {
        "nrows": pmap.nrows,
        "rows": None if pmap.row_offsets is None else pmap.row_offsets.tolist(),
        "starts": {c: v.tolist() for c, v in pmap.field_offsets.items()},
        "ends": {c: v.tolist() for c, v in pmap.field_ends.items()},
        "geometry": pmap.text_geometry,
    }


def _stats_state(stats):
    return {
        "rows_scanned": stats.rows_scanned,
        "rows_emitted": stats.rows_emitted,
        "rows_abandoned": stats.rows_abandoned,
        "fields_tokenized": stats.fields_tokenized,
        "chars_scanned": stats.chars_scanned,
    }


def assert_routes_agree(
    data: bytes,
    adapter,
    ncols: int,
    needed,
    *,
    early_abort=True,
    make_predicates=None,
    skip_rows=0,
    learn=True,
):
    """Run both routes over ``data``; every observable must be identical.

    ``make_predicates`` builds a fresh predicate dict per route (so call
    logs do not leak between them); returns (result, call_log) pairs.
    """
    outcomes = []
    for vectorized in (True, False):
        pmap = PositionalMap() if learn else None
        calls: list[tuple[int, str]] = []
        predicates = make_predicates(calls) if make_predicates else None
        try:
            result = tokenize_bytes(
                data,
                adapter,
                ncols=ncols,
                needed=needed,
                early_abort=early_abort,
                predicates=predicates,
                positional_map=pmap,
                learn=learn,
                skip_rows=skip_rows,
                vectorized=vectorized,
            )
        except FlatFileError:
            outcomes.append(("error", calls, None))
            continue
        outcomes.append(
            (
                {
                    "fields": {
                        c: [str(v) for v in vals]
                        for c, vals in result.fields.items()
                    },
                    "row_ids": result.row_ids.tolist(),
                    "stats": _stats_state(result.stats),
                    "pmap": _pmap_state(pmap) if pmap is not None else None,
                },
                calls,
                result,
            )
        )
    vec, scalar = outcomes
    assert vec[0] == scalar[0], f"vectorized != scalar for {data!r}"
    assert vec[1] == scalar[1], f"predicate call sequences differ for {data!r}"
    return outcomes


# ---------------------------------------------------------------------------
# hypothesis: random tables in every eligible dialect
# ---------------------------------------------------------------------------

_FIELD_TEXT = st.text(
    alphabet="abz059. -éßあ\t\\\"'",
    max_size=6,
)


def _csv_safe(value: str, delimiter: str) -> str:
    out = value.replace(delimiter, "_").replace("\t", "_")
    return out.replace("\n", "_").replace("\r", "_")


@st.composite
def delimited_files(draw):
    ncols = draw(st.integers(1, 5))
    nrows = draw(st.integers(0, 8))
    delimiter = draw(st.sampled_from([",", ";", "|"]))
    rows = [
        [
            _csv_safe(draw(_FIELD_TEXT), delimiter)
            for _ in range(ncols)
        ]
        for _ in range(nrows)
    ]
    # Ragged mutations: drop or duplicate a field in some rows.
    for i in range(nrows):
        if draw(st.booleans()) and draw(st.integers(0, 9)) == 0:
            if rows[i] and draw(st.booleans()):
                rows[i] = rows[i][:-1]
            else:
                rows[i] = rows[i] + ["x"]
    line_end = draw(st.sampled_from(["\n", "\r\n"]))
    lines = [delimiter.join(r) for r in rows]
    # Inject blank lines.
    if draw(st.booleans()):
        lines.insert(draw(st.integers(0, len(lines))), "")
    text = line_end.join(lines)
    if lines and draw(st.booleans()):
        text += line_end
    needed = sorted(
        draw(
            st.sets(
                st.integers(0, ncols - 1), min_size=1, max_size=min(3, ncols)
            )
        )
    )
    return text.encode("utf-8"), delimiter, ncols, needed


@settings(max_examples=120, deadline=None)
@given(case=delimited_files(), early_abort=st.booleans())
def test_delimited_vectorized_equals_scalar(case, early_abort):
    data, delimiter, ncols, needed = case
    assert_routes_agree(
        data,
        DelimitedAdapter(delimiter),
        ncols,
        needed,
        early_abort=early_abort,
    )


@settings(max_examples=60, deadline=None)
@given(case=delimited_files())
def test_delimited_with_pushdown_predicates(case):
    data, delimiter, ncols, needed = case

    def make_predicates(calls):
        def pred(value: str) -> bool:
            calls.append((0, value))
            return len(value) % 2 == 0

        return {0: pred} if 0 in needed else {}

    assert_routes_agree(
        data,
        DelimitedAdapter(delimiter),
        ncols,
        needed,
        make_predicates=make_predicates,
    )


@settings(max_examples=60, deadline=None)
@given(
    rows=st.lists(
        st.lists(_FIELD_TEXT, min_size=3, max_size=3), min_size=0, max_size=8
    ),
    early_abort=st.booleans(),
)
def test_tsv_vectorized_equals_scalar(rows, early_abort):
    adapter = TsvAdapter()
    text = "".join(adapter.encode_row(r) + "\n" for r in rows)
    assert_routes_agree(
        text.encode("utf-8"), adapter, 3, [0, 2], early_abort=early_abort
    )


@settings(max_examples=60, deadline=None)
@given(
    rows=st.lists(
        st.lists(
            st.text(alphabet="abz059.x", max_size=4),
            min_size=3,
            max_size=3,
        ),
        min_size=0,
        max_size=8,
    ),
    needed=st.sets(st.integers(0, 2), min_size=1, max_size=3),
)
def test_fixed_width_vectorized_equals_scalar(rows, needed):
    adapter = FixedWidthAdapter((5, 5, 5))
    text = "".join(adapter.encode_row(r) + "\n" for r in rows)
    assert_routes_agree(
        text.encode("utf-8"), adapter, 3, sorted(needed)
    )


# ---------------------------------------------------------------------------
# handcrafted edges
# ---------------------------------------------------------------------------

CSV = DelimitedAdapter(",")


class TestEdgeCases:
    def test_trailing_delimiter_means_empty_last_field(self):
        out = assert_routes_agree(b"1,2,\n3,4,\n", CSV, 3, [2])
        assert out[0][0]["fields"][2] == ["", ""]

    def test_blank_lines_and_crlf(self):
        assert_routes_agree(b"1,2\r\n\r\n3,4\r\n\n5,6", CSV, 2, [0, 1])

    def test_header_skip(self):
        out = assert_routes_agree(b"h1,h2\n1,2\n3,4\n", CSV, 2, [0], skip_rows=1)
        assert out[0][0]["fields"][0] == ["1", "3"]

    def test_non_ascii_content_offsets_and_values(self):
        data = "é,ab\nあ素,ß\n".encode("utf-8")
        out = assert_routes_agree(data, CSV, 2, [0, 1])
        assert out[0][0]["fields"][0] == ["é", "あ素"]
        # Learned offsets are character offsets into the decoded text
        # ("あ素,ß" starts at char 5; its second field at char 8).
        assert out[0][0]["pmap"]["starts"][1] == [2, 8]

    def test_nul_bytes_inside_and_trailing_fields(self):
        data = b"a\x00,b\n\x00\x00,c\nd\x00x,e\n"
        out = assert_routes_agree(data, CSV, 2, [0, 1])
        assert out[0][0]["fields"][0] == ["a\x00", "\x00\x00", "d\x00x"]

    def test_ragged_rows_raise_identically(self):
        assert_routes_agree(b"1,2,3\n1\n", CSV, 3, [2])

    def test_ragged_only_beyond_needed_is_tolerated(self):
        # A short row to the *right* of the last needed column is invisible
        # to the scalar early-abort pass; the kernel must agree (it falls
        # back to the scalar route on any ragged row).
        out = assert_routes_agree(b"1,2,3,4\n5,6\n", CSV, 4, [0])
        assert out[0][0]["fields"][0] == ["1", "5"]

    def test_empty_file(self):
        assert_routes_agree(b"", CSV, 3, [1])

    def test_single_column_no_delimiters(self):
        out = assert_routes_agree(b"10\n20\n30\n", CSV, 1, [0])
        assert out[0][0]["fields"][0] == ["10", "20", "30"]

    def test_wide_fields_take_slice_path(self):
        wide = "9" * 700
        data = f"{wide},1\n{wide},2\n".encode()
        out = assert_routes_agree(data, CSV, 2, [0, 1])
        assert out[0][0]["fields"][0] == [wide, wide]

    def test_tsv_escapes_decoded(self):
        adapter = TsvAdapter()
        row = adapter.encode_row(["a\tb", "c\\d", "e\nf"])
        out = assert_routes_agree((row + "\n").encode(), adapter, 3, [0, 1, 2])
        assert out[0][0]["fields"][0] == ["a\tb"]
        assert out[0][0]["fields"][1] == ["c\\d"]
        assert out[0][0]["fields"][2] == ["e\nf"]

    def test_fixed_width_padding_stripped(self):
        adapter = FixedWidthAdapter((4, 4))
        out = assert_routes_agree(b"ab  cd  \nefgha   \n", adapter, 2, [0, 1])
        assert out[0][0]["fields"][0] == ["ab", "efgh"]
        assert out[0][0]["fields"][1] == ["cd", "a"]

    def test_fixed_width_bad_row_raises_identically(self):
        assert_routes_agree(b"ab  cd  \nefg\n", FixedWidthAdapter((4, 4)), 2, [0])

    def test_fixed_width_nul_fields_with_predicate(self):
        """NUL-trailing fields force object-dtype batches; predicate
        filtering must still index them as arrays (regression: the
        decode_many fallback once returned a list here)."""
        adapter = FixedWidthAdapter((3, 3))

        def make_predicates(calls):
            def pred(v):
                calls.append((0, v))
                return v.startswith("c")

            return {0: pred}

        out = assert_routes_agree(
            b"ab\x00xyz\ncd qqq\nef rrr\n",
            adapter,
            2,
            [0, 1],
            make_predicates=make_predicates,
        )
        assert out[0][0]["fields"][1] == ["qqq"]

    def test_fixed_width_non_ascii_falls_back(self):
        adapter = FixedWidthAdapter((3, 3))
        data = "éa bc \nxy z  \n".encode("utf-8")
        out = assert_routes_agree(data, adapter, 2, [0, 1])
        assert out[0][0]["fields"][0] == ["éa", "xy"]


class TestKernelDeclines:
    def test_declines_when_map_offers_anchors(self):
        """Scalar anchor jumps charge less work; the kernel steps aside."""
        data = b"1,2,3\n4,5,6\n"
        pmap = PositionalMap()
        tokenize_bytes(data, CSV, 3, [1], positional_map=pmap)
        assert pmap.knows_column(1)
        assert (
            tokenize_vectorized(data, CSV, 3, [2], positional_map=pmap)
            is None
        )

    def test_declines_on_ragged_rows(self):
        assert tokenize_vectorized(b"1,2\n3\n", CSV, 2, [0]) is None

    def test_declines_on_non_ascii_delimiter(self):
        assert (
            tokenize_vectorized("1é2\n".encode(), DelimitedAdapter("é"), 2, [0])
            is None
        )

    def test_declines_on_invalid_utf8(self):
        """Both routes must raise the scalar decode error — the kernel
        must not silently tokenize bytes no decoded string ever had."""
        data = b"1,a\xe9b,3\n4,x,6\n"  # lone latin-1 byte: invalid UTF-8
        assert tokenize_vectorized(data, CSV, 3, [0]) is None
        for vectorized in (True, False):
            with pytest.raises(UnicodeDecodeError):
                tokenize_bytes(data, CSV, 3, [0], vectorized=vectorized)

    def test_runs_on_regular_input(self):
        result = tokenize_vectorized(b"1,2\n3,4\n", CSV, 2, [1])
        assert result is not None
        assert [str(v) for v in result.fields[1]] == ["2", "4"]


class TestValidationParity:
    def test_bad_ncols(self):
        with pytest.raises(FlatFileError):
            tokenize_vectorized(b"1\n", CSV, 0, [0])

    def test_no_needed(self):
        with pytest.raises(FlatFileError):
            tokenize_vectorized(b"1\n", CSV, 2, [])

    def test_out_of_range(self):
        with pytest.raises(FlatFileError):
            tokenize_vectorized(b"1,2\n", CSV, 2, [2])

    def test_predicate_on_untokenized_column(self):
        with pytest.raises(FlatFileError):
            tokenize_vectorized(
                b"1,2\n", CSV, 2, [0], predicates={1: lambda s: True}
            )


class TestBulkLearning:
    def test_absorb_offsets_matches_scalar_learning(self):
        data = b"10,20,30\n11,21,31\n"
        vec_map, scalar_map = PositionalMap(), PositionalMap()
        tokenize_bytes(data, CSV, 3, [2], positional_map=vec_map)
        tokenize_bytes(
            data, CSV, 3, [2], positional_map=scalar_map, vectorized=False
        )
        assert _pmap_state(vec_map) == _pmap_state(scalar_map)
        assert vec_map.can_slice(0) and vec_map.can_slice(2)

    def test_absorb_offsets_rejects_mismatched_lengths(self):
        pmap = PositionalMap()
        with pytest.raises(ValueError):
            pmap.absorb_offsets([0, 1], [np.zeros(2, dtype=np.int64)], [])

    def test_first_writer_wins(self):
        pmap = PositionalMap()
        pmap.record_field_offsets(
            0, np.array([7], dtype=np.int64), np.array([9], dtype=np.int64)
        )
        pmap.absorb_offsets(
            [0], [np.array([0], dtype=np.int64)], [np.array([1], dtype=np.int64)]
        )
        assert pmap.field_offsets[0].tolist() == [7]
