"""Tests for typed parsing and CSV writing (round-trip fidelity)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FlatFileError
from repro.flatfile.parser import ParseStats, parse_fields, parse_single
from repro.flatfile.schema import DataType
from repro.flatfile.tokenizer import tokenize_columns
from repro.flatfile.writer import format_value, write_csv, write_rows


class TestParseFields:
    def test_ints(self):
        arr = parse_fields(["1", "-2", "30"], DataType.INT64)
        assert arr.dtype == np.int64
        assert list(arr) == [1, -2, 30]

    def test_floats(self):
        arr = parse_fields(["1.5", "-2e3"], DataType.FLOAT64)
        assert arr.dtype == np.float64
        assert list(arr) == [1.5, -2000.0]

    def test_strings(self):
        arr = parse_fields(["x", "y"], DataType.STRING)
        assert arr.dtype == object
        assert list(arr) == ["x", "y"]

    def test_bad_value_raises_with_context(self):
        with pytest.raises(FlatFileError, match="int64"):
            parse_fields(["1", "oops"], DataType.INT64)

    def test_stats_counted(self):
        stats = ParseStats()
        parse_fields(["1", "2", "3"], DataType.INT64, stats)
        parse_fields(["4"], DataType.INT64, stats)
        assert stats.values_parsed == 4

    def test_empty_input(self):
        assert len(parse_fields([], DataType.INT64)) == 0


class TestParseSingle:
    def test_types(self):
        assert parse_single("5", DataType.INT64) == 5
        assert parse_single("5.5", DataType.FLOAT64) == 5.5
        assert parse_single("abc", DataType.STRING) == "abc"


class TestWriter:
    def test_round_trip_ints(self, tmp_path):
        cols = [np.array([1, 2, 3], dtype=np.int64), np.array([4, 5, 6], dtype=np.int64)]
        path = write_csv(tmp_path / "t.csv", cols)
        text = path.read_text()
        assert text == "1,4\n2,5\n3,6\n"

    def test_round_trip_mixed(self, tmp_path):
        path = write_csv(
            tmp_path / "t.csv",
            [np.array([1, 2]), np.array([1.5, 2.5]), np.array(["a", "b"], dtype=object)],
        )
        r = tokenize_columns(path.read_text(), 3, [0, 1, 2])
        assert parse_fields(r.fields[0], DataType.INT64).tolist() == [1, 2]
        assert parse_fields(r.fields[1], DataType.FLOAT64).tolist() == [1.5, 2.5]
        assert r.fields[2] == ["a", "b"]

    def test_header(self, tmp_path):
        path = write_csv(tmp_path / "t.csv", [np.array([1])], header=["x"])
        assert path.read_text() == "x\n1\n"

    def test_header_arity_checked(self, tmp_path):
        with pytest.raises(FlatFileError):
            write_csv(tmp_path / "t.csv", [np.array([1])], header=["x", "y"])

    def test_ragged_rejected(self, tmp_path):
        with pytest.raises(FlatFileError, match="rows"):
            write_csv(tmp_path / "t.csv", [np.array([1]), np.array([1, 2])])

    def test_no_columns_rejected(self, tmp_path):
        with pytest.raises(FlatFileError):
            write_csv(tmp_path / "t.csv", [])

    def test_write_rows(self, tmp_path):
        path = write_rows(tmp_path / "t.csv", [(1, "a"), (2, "b")])
        assert path.read_text() == "1,a\n2,b\n"

    def test_format_value_floats_round_trip(self):
        for v in (0.1, 1e-17, 123456.789, -3.0):
            assert float(format_value(v)) == v


class TestWriteParseRoundTripProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        ints=st.lists(st.integers(-(2**62), 2**62), min_size=1, max_size=50),
        floats=st.lists(
            st.floats(allow_nan=False, allow_infinity=False), min_size=1, max_size=50
        ),
    )
    def test_numeric_round_trip(self, ints, floats, tmp_path_factory):
        n = min(len(ints), len(floats))
        cols = [
            np.array(ints[:n], dtype=np.int64),
            np.array(floats[:n], dtype=np.float64),
        ]
        path = tmp_path_factory.mktemp("rt") / "t.csv"
        write_csv(path, cols)
        r = tokenize_columns(path.read_text(), 2, [0, 1])
        assert parse_fields(r.fields[0], DataType.INT64).tolist() == cols[0].tolist()
        back = parse_fields(r.fields[1], DataType.FLOAT64)
        assert back.tolist() == cols[1].tolist()
