"""Threaded window reads must be byte-identical to serial ones."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flatfile.files import FlatFile


@pytest.fixture()
def big_file(tmp_path):
    path = tmp_path / "data.bin"
    rows = "\n".join(f"{i:08d},{i * 7:08d}" for i in range(5000))
    path.write_text(rows)
    return path


def scattered_ranges(size: int, n: int = 200, width: int = 9):
    rng = np.random.default_rng(13)
    starts = np.sort(rng.integers(0, size - width, n))
    return starts, starts + width


@pytest.mark.parametrize("workers", [1, 2, 4, 8])
def test_threaded_windows_match_serial(big_file, workers):
    size = big_file.stat().st_size
    starts, ends = scattered_ranges(size)
    serial = FlatFile(big_file).read_windows(starts, ends)
    threaded = FlatFile(big_file).read_windows(starts, ends, workers=workers)
    assert threaded.buffer == serial.buffer
    np.testing.assert_array_equal(threaded.starts, serial.starts)
    np.testing.assert_array_equal(threaded.ends, serial.ends)
    np.testing.assert_array_equal(threaded.offsets, serial.offsets)


def test_threaded_windows_accounting_matches(big_file):
    size = big_file.stat().st_size
    starts, ends = scattered_ranges(size)
    serial_file = FlatFile(big_file)
    serial_file.read_windows(starts, ends)
    threaded_file = FlatFile(big_file)
    threaded_file.read_windows(starts, ends, workers=4)
    assert threaded_file.stats.bytes_read == serial_file.stats.bytes_read
    assert threaded_file.stats.read_calls == serial_file.stats.read_calls


def test_few_windows_stay_serial(big_file):
    # below the per-thread minimum the pool is skipped entirely
    starts = np.asarray([0, 100, 200], dtype=np.int64)
    ends = starts + 10
    windows = FlatFile(big_file).read_windows(starts, ends, workers=8)
    assert windows.total_bytes == 30


def test_translate_still_works_after_threaded_read(big_file):
    size = big_file.stat().st_size
    starts, ends = scattered_ranges(size)
    windows = FlatFile(big_file).read_windows(starts, ends, workers=4)
    data = big_file.read_bytes()
    positions = windows.translate(starts)
    for s, pos in zip(starts.tolist(), positions.tolist()):
        assert windows.buffer[pos : pos + 9] == data[s : s + 9]


def test_account_reads_updates_counters(big_file):
    f = FlatFile(big_file)
    f.account_reads(1000, calls=3, full_scan=True)
    assert f.stats.bytes_read == 1000
    assert f.stats.read_calls == 3
    assert f.stats.full_scans == 1
