"""Tests for the selective tokenizer — the heart of adaptive loading."""

from __future__ import annotations

import csv as stdlib_csv
import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FlatFileError
from repro.flatfile.positions import PositionalMap
from repro.flatfile.tokenizer import gather_fields, split_rows, tokenize_columns

TEXT = "10,20,30,40\n11,21,31,41\n12,22,32,42\n"


class TestBasicExtraction:
    def test_single_column(self):
        r = tokenize_columns(TEXT, 4, [1])
        assert r.fields[1] == ["20", "21", "22"]
        assert list(r.row_ids) == [0, 1, 2]

    def test_multiple_columns(self):
        r = tokenize_columns(TEXT, 4, [0, 3])
        assert r.fields[0] == ["10", "11", "12"]
        assert r.fields[3] == ["40", "41", "42"]

    def test_unsorted_and_duplicate_needed(self):
        r = tokenize_columns(TEXT, 4, [3, 1, 1])
        assert set(r.fields) == {1, 3}

    def test_last_column_no_trailing_delimiter(self):
        r = tokenize_columns("1,2\n3,4\n", 2, [1])
        assert r.fields[1] == ["2", "4"]

    def test_trailing_newline_optional(self):
        r = tokenize_columns("1,2\n3,4", 2, [0])
        assert r.fields[0] == ["1", "3"]

    def test_blank_lines_skipped(self):
        r = tokenize_columns("1,2\n\n3,4\n\n", 2, [0])
        assert r.fields[0] == ["1", "3"]

    def test_crlf_line_endings(self):
        r = tokenize_columns("1,2\r\n3,4\r\n", 2, [1])
        assert r.fields[1] == ["2", "4"]

    def test_skip_rows(self):
        r = tokenize_columns("h1,h2\n1,2\n3,4\n", 2, [0], skip_rows=1)
        assert r.fields[0] == ["1", "3"]

    def test_custom_delimiter(self):
        r = tokenize_columns("1|2\n3|4\n", 2, [1], delimiter="|")
        assert r.fields[1] == ["2", "4"]


class TestValidation:
    def test_out_of_range_column(self):
        with pytest.raises(FlatFileError):
            tokenize_columns(TEXT, 4, [4])

    def test_no_needed_columns(self):
        with pytest.raises(FlatFileError):
            tokenize_columns(TEXT, 4, [])

    def test_short_row_raises(self):
        with pytest.raises(FlatFileError, match="fewer than"):
            tokenize_columns("1,2,3\n1\n", 3, [2])

    def test_predicate_on_untokenized_column_rejected(self):
        with pytest.raises(FlatFileError):
            tokenize_columns(TEXT, 4, [0], predicates={2: lambda s: True})


class TestEarlyAbort:
    def test_early_abort_skips_trailing_fields(self):
        with_abort = tokenize_columns(TEXT, 4, [0], early_abort=True)
        without = tokenize_columns(TEXT, 4, [0], early_abort=False)
        assert with_abort.fields == without.fields
        assert (
            with_abort.stats.fields_tokenized < without.stats.fields_tokenized
        )

    def test_full_tokenization_counts_all_fields(self):
        r = tokenize_columns(TEXT, 4, [0], early_abort=False)
        assert r.stats.fields_tokenized == 12  # 3 rows x 4 fields


class TestPredicatePushdown:
    def test_rows_filtered(self):
        pred = {0: lambda s: int(s) >= 11}
        r = tokenize_columns(TEXT, 4, [0, 2], predicates=pred)
        assert r.fields[0] == ["11", "12"]
        assert r.fields[2] == ["31", "32"]
        assert list(r.row_ids) == [1, 2]
        assert r.stats.rows_abandoned == 1

    def test_failed_predicate_stops_row_work(self):
        pred = {0: lambda s: False}
        r = tokenize_columns(TEXT, 4, [0, 3], predicates=pred)
        assert r.stats.rows_emitted == 0
        # Only the first field of each row was tokenized.
        assert r.stats.fields_tokenized == 3

    def test_predicate_on_second_needed_column(self):
        pred = {2: lambda s: int(s) > 31}
        r = tokenize_columns(TEXT, 4, [0, 2], predicates=pred)
        assert r.fields[0] == ["12"]
        assert list(r.row_ids) == [2]

    def test_all_rows_pass(self):
        pred = {0: lambda s: True}
        r = tokenize_columns(TEXT, 4, [0], predicates=pred)
        assert r.stats.rows_emitted == 3
        assert r.stats.rows_abandoned == 0


class TestPositionalMapIntegration:
    def test_learning_row_and_field_offsets(self):
        pmap = PositionalMap()
        tokenize_columns(TEXT, 4, [1], positional_map=pmap)
        assert pmap.nrows == 3
        assert list(pmap.row_offsets) == [0, 12, 24]
        assert pmap.knows_column(1)
        assert list(pmap.field_offsets[1]) == [3, 15, 27]

    def test_offsets_point_at_field_starts(self):
        pmap = PositionalMap()
        tokenize_columns(TEXT, 4, [2], positional_map=pmap)
        for row, off in enumerate(pmap.field_offsets[2]):
            assert TEXT[off : off + 2] == f"3{row}"

    def test_exploiting_map_reduces_scanning(self):
        pmap = PositionalMap()
        first = tokenize_columns(TEXT, 4, [2], positional_map=pmap)
        second = tokenize_columns(TEXT, 4, [3], positional_map=pmap)
        blind = tokenize_columns(TEXT, 4, [3])
        assert second.fields[3] == blind.fields[3]
        assert second.stats.fields_tokenized < blind.stats.fields_tokenized

    def test_direct_jump_when_column_known(self):
        pmap = PositionalMap()
        tokenize_columns(TEXT, 4, [2], positional_map=pmap)
        again = tokenize_columns(TEXT, 4, [2], positional_map=pmap)
        assert again.fields[2] == ["30", "31", "32"]
        # Direct jumps: one field tokenized per row, nothing skipped over.
        assert again.stats.fields_tokenized == 3

    def test_incomplete_offsets_not_recorded_under_pushdown(self):
        pmap = PositionalMap()
        pred = {0: lambda s: s == "11"}
        tokenize_columns(TEXT, 4, [0, 2], predicates=pred, positional_map=pmap)
        # Column 0 was seen in every row; column 2 only in qualifying rows.
        assert pmap.knows_column(0)
        assert not pmap.knows_column(2)


class TestFieldEndLearning:
    def test_ends_recorded_with_starts(self):
        pmap = PositionalMap()
        tokenize_columns(TEXT, 4, [1], positional_map=pmap)
        assert pmap.can_slice(1)
        starts, ends = pmap.slices_for(1)
        assert [TEXT[s:e] for s, e in zip(starts, ends)] == ["20", "21", "22"]

    def test_last_column_end_is_row_end(self):
        pmap = PositionalMap()
        tokenize_columns("1,2\n3,45\n", 2, [1], positional_map=pmap)
        starts, ends = pmap.slices_for(1)
        assert ["1,2\n3,45\n"[s:e] for s, e in zip(starts, ends)] == ["2", "45"]

    def test_crlf_end_excludes_carriage_return(self):
        text = "1,2\r\n3,4\r\n"
        pmap = PositionalMap()
        tokenize_columns(text, 2, [1], positional_map=pmap)
        starts, ends = pmap.slices_for(1)
        assert [text[s:e] for s, e in zip(starts, ends)] == ["2", "4"]

    def test_scanned_over_columns_learned_too(self):
        """Columns tokenized merely to reach a needed one are remembered."""
        pmap = PositionalMap()
        tokenize_columns(TEXT, 4, [2], positional_map=pmap)
        assert pmap.can_slice(0)
        assert pmap.can_slice(1)
        assert pmap.can_slice(2)
        assert not pmap.knows_column(3)
        starts, ends = pmap.slices_for(1)
        assert [TEXT[s:e] for s, e in zip(starts, ends)] == ["20", "21", "22"]


class TestGatherFields:
    def test_simple_gather(self):
        buf = b"10,20,30"
        out = gather_fields(buf, np.array([0, 3, 6]), np.array([2, 2, 2]))
        assert out == ["10", "20", "30"]

    def test_ragged_lengths(self):
        buf = b"7,1234,x"
        out = gather_fields(buf, np.array([0, 2, 7]), np.array([1, 4, 1]))
        assert out == ["7", "1234", "x"]

    def test_zero_length_fields(self):
        out = gather_fields(b"a,,b", np.array([0, 2, 3]), np.array([1, 0, 1]))
        assert out == ["a", "", "b"]

    def test_all_empty(self):
        assert gather_fields(b"xy", np.array([0, 1]), np.array([0, 0])) == ["", ""]

    def test_empty_input(self):
        assert gather_fields(b"", np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)) == []

    def test_wide_field_fallback_path(self):
        wide = "9" * 1000
        buf = f"a,{wide},b".encode()
        out = gather_fields(
            buf, np.array([0, 2, 1003]), np.array([1, 1000, 1])
        )
        assert out == ["a", wide, "b"]

    def test_negative_length_rejected(self):
        with pytest.raises(FlatFileError):
            gather_fields(b"ab", np.array([0]), np.array([-1]))

    def test_matches_python_slicing(self):
        rng = np.random.default_rng(7)
        buf = bytes(rng.integers(48, 58, size=200, dtype=np.uint8))
        starts = rng.integers(0, 150, size=50, dtype=np.int64)
        lengths = rng.integers(0, 30, size=50, dtype=np.int64)
        expected = [
            buf[s : s + l].decode() for s, l in zip(starts.tolist(), lengths.tolist())
        ]
        assert gather_fields(buf, starts, lengths) == expected


class TestSplitRows:
    def test_reference_split(self):
        assert split_rows("1,2\n3,4\n") == [["1", "2"], ["3", "4"]]


@st.composite
def csv_tables(draw):
    ncols = draw(st.integers(1, 6))
    nrows = draw(st.integers(1, 25))
    field = st.one_of(
        st.integers(-(10**6), 10**6).map(str),
        st.text(
            alphabet=st.characters(
                whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x7F
            ),
            min_size=1,
            max_size=8,
        ),
    )
    rows = draw(
        st.lists(
            st.lists(field, min_size=ncols, max_size=ncols),
            min_size=nrows,
            max_size=nrows,
        )
    )
    return ncols, rows


class TestAgainstStdlibCsv:
    @settings(max_examples=60, deadline=None)
    @given(csv_tables(), st.data())
    def test_matches_csv_module(self, table, data):
        """The tokenizer agrees with the stdlib csv reader on every column."""
        ncols, rows = table
        buf = io.StringIO()
        writer = stdlib_csv.writer(buf, quoting=stdlib_csv.QUOTE_NONE, lineterminator="\n")
        writer.writerows(rows)
        text = buf.getvalue()
        needed = data.draw(
            st.lists(st.integers(0, ncols - 1), min_size=1, max_size=ncols, unique=True)
        )
        result = tokenize_columns(text, ncols, needed)
        expected = list(stdlib_csv.reader(io.StringIO(text)))
        for col in needed:
            assert result.fields[col] == [row[col] for row in expected]

    @settings(max_examples=30, deadline=None)
    @given(csv_tables())
    def test_early_abort_equivalence(self, table):
        """Early abort changes cost, never results."""
        ncols, rows = table
        text = "\n".join(",".join(r) for r in rows) + "\n"
        needed = [0] if ncols == 1 else [0, ncols // 2]
        a = tokenize_columns(text, ncols, needed, early_abort=True)
        b = tokenize_columns(text, ncols, needed, early_abort=False)
        assert a.fields == b.fields
        assert list(a.row_ids) == list(b.row_ids)

    @settings(max_examples=30, deadline=None)
    @given(csv_tables())
    def test_positional_map_never_lies(self, table):
        """DESIGN invariant 5: every recorded offset points at the exact
        first byte of its field, and the field read from that offset equals
        the tokenizer's output."""
        ncols, rows = table
        text = "\n".join(",".join(r) for r in rows) + "\n"
        pmap = PositionalMap()
        result = tokenize_columns(
            text, ncols, list(range(ncols)), positional_map=pmap
        )
        for col in range(ncols):
            assert pmap.knows_column(col)
            offsets = pmap.field_offsets[col]
            for row_idx, off in enumerate(offsets):
                expected = result.fields[col][row_idx]
                assert text[off : off + len(expected)] == expected
                if off > 0:  # field starts right after a delimiter/newline
                    assert text[off - 1] in ",\n"

    @settings(max_examples=30, deadline=None)
    @given(csv_tables())
    def test_positional_map_equivalence(self, table):
        """Map-assisted tokenization returns identical fields."""
        ncols, rows = table
        text = "\n".join(",".join(r) for r in rows) + "\n"
        pmap = PositionalMap()
        tokenize_columns(text, ncols, list(range(ncols)), positional_map=pmap)
        for col in range(ncols):
            with_map = tokenize_columns(text, ncols, [col], positional_map=pmap)
            without = tokenize_columns(text, ncols, [col])
            assert with_map.fields[col] == without.fields[col]
