"""Tests for the positional map data structure."""

import numpy as np
import pytest

from repro.flatfile.positions import PositionalMap


class TestRecording:
    def test_row_offsets_first_writer_wins(self):
        m = PositionalMap()
        m.record_row_offsets(np.array([0, 10, 20]))
        m.record_row_offsets(np.array([1, 2, 3]))
        assert list(m.row_offsets) == [0, 10, 20]
        assert m.nrows == 3

    def test_field_offsets_idempotent(self):
        m = PositionalMap()
        m.record_field_offsets(2, np.array([3, 13, 23]))
        m.record_field_offsets(2, np.array([9, 9, 9]))
        assert list(m.field_offsets[2]) == [3, 13, 23]

    def test_length_mismatch_rejected(self):
        m = PositionalMap()
        m.record_row_offsets(np.array([0, 10]))
        with pytest.raises(ValueError):
            m.record_field_offsets(1, np.array([1, 2, 3]))


class TestAnchors:
    def test_no_knowledge(self):
        assert PositionalMap().anchor_for(3) is None

    def test_row_offsets_anchor_column_zero(self):
        m = PositionalMap()
        m.record_row_offsets(np.array([0, 10]))
        col, offsets = m.anchor_for(5)
        assert col == 0
        assert list(offsets) == [0, 10]

    def test_closest_predecessor_wins(self):
        m = PositionalMap()
        m.record_field_offsets(1, np.array([2]))
        m.record_field_offsets(3, np.array([6]))
        col, offsets = m.anchor_for(4)
        assert col == 3
        assert list(offsets) == [6]

    def test_later_columns_ignored(self):
        m = PositionalMap()
        m.record_field_offsets(5, np.array([9]))
        assert m.anchor_for(2) is None

    def test_exact_column_anchor(self):
        m = PositionalMap()
        m.record_field_offsets(2, np.array([4]))
        col, _ = m.anchor_for(2)
        assert col == 2


class TestSlices:
    def test_can_slice_needs_starts_and_ends(self):
        m = PositionalMap()
        m.record_field_offsets(1, np.array([2, 12]))
        assert m.knows_column(1)
        assert not m.can_slice(1)
        m2 = PositionalMap()
        m2.record_field_offsets(1, np.array([2, 12]), np.array([4, 14]))
        assert m2.can_slice(1)
        starts, ends = m2.slices_for(1)
        assert list(starts) == [2, 12]
        assert list(ends) == [4, 14]

    def test_end_length_mismatch_rejected(self):
        m = PositionalMap()
        m.record_row_offsets(np.array([0, 10]))
        with pytest.raises(ValueError):
            m.record_field_offsets(0, np.array([0, 10]), np.array([3]))

    def test_geometry_first_writer_wins(self):
        m = PositionalMap()
        assert not m.sliceable
        m.record_text_geometry(nbytes=100, nchars=100)
        m.record_text_geometry(nbytes=5, nchars=9)
        assert m.text_geometry == (100, 100)
        assert m.sliceable

    def test_multibyte_text_not_sliceable(self):
        m = PositionalMap()
        m.record_text_geometry(nbytes=102, nchars=100)
        assert not m.sliceable


class TestLifecycle:
    def test_clear(self):
        m = PositionalMap()
        m.record_row_offsets(np.array([0]))
        m.record_field_offsets(0, np.array([0]), np.array([1]))
        m.record_text_geometry(nbytes=2, nchars=2)
        m.clear()
        assert m.nrows is None
        assert m.row_offsets is None
        assert not m.field_offsets
        assert not m.field_ends
        assert m.text_geometry is None
        assert not m.sliceable

    def test_memory_accounting(self):
        m = PositionalMap()
        assert m.memory_bytes() == 0
        m.record_row_offsets(np.zeros(10, dtype=np.int64))
        m.record_field_offsets(1, np.zeros(10, dtype=np.int64))
        assert m.memory_bytes() == 160

    def test_known_columns_sorted(self):
        m = PositionalMap()
        m.record_field_offsets(3, np.array([1]))
        m.record_field_offsets(1, np.array([1]))
        assert m.known_columns() == [1, 3]
