"""Property tests for the dialect layer (Hypothesis).

Two families, both riding random tables:

* **write → attach → query round-trip**: any table rendered by an
  adapter and read back through the engine yields exactly the logical
  values that went in — including non-ASCII text, embedded delimiters /
  quotes / newlines where the dialect can represent them, CRLF line
  endings, and blank-line runs;
* **positional-map invariants**: every span a tokenization pass learns
  lands on an encoded-field start/end — slicing the text at the recorded
  offsets and decoding reproduces the field value, under every
  span-bearing adapter.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EngineConfig, NoDBEngine
from repro.errors import FlatFileError
from repro.flatfile.dialects import (
    DelimitedAdapter,
    FixedWidthAdapter,
    JsonLinesAdapter,
    QuotedCsvAdapter,
    TsvAdapter,
)
from repro.flatfile.tokenizer import tokenize_dialect
from repro.flatfile.writer import write_csv

# Letters that can never make a value parse as a number (no digits, and
# none of n/a/i/f/e that could spell nan/inf/1e5), ASCII and beyond.
_SAFE_LETTERS = "bcdghjklmpqrstuvwxyzßéあ素"

#: Extra characters only the escaping/quoting dialects can represent.
_HARD_CHARS = ',;"\t\n\r\\| '


def _string_values(hard: bool):
    alphabet = _SAFE_LETTERS + (_HARD_CHARS if hard else "")
    # Leading safe letter keeps the value non-numeric and non-empty;
    # trailing safe letter keeps fixed-width-style padding unambiguous.
    return st.text(alphabet=alphabet, max_size=6).map(
        lambda s: "v" + s + "w"
    )


def _column(hard: bool):
    return st.one_of(
        st.lists(st.integers(-10**6, 10**6), min_size=1),
        st.lists(st.integers(-8000, 8000).map(lambda n: n / 8), min_size=1),
        st.lists(_string_values(hard), min_size=1),
    )


def tables(hard: bool):
    """Random (columns, nrows) with equal-length columns."""

    def resize(cols_and_rows):
        cols, nrows = cols_and_rows
        return [list(col[i % len(col)] for i in range(nrows)) for col in cols]

    return st.tuples(
        st.lists(_column(hard), min_size=1, max_size=3),
        st.integers(1, 10),
    ).map(resize)


SPAN_DIALECTS = {
    "csv": lambda: DelimitedAdapter(","),
    "quoted-csv": lambda: QuotedCsvAdapter(","),
    "tsv": lambda: TsvAdapter(),
}
HARD_OK = {"quoted-csv", "tsv", "jsonl"}


def render(tmp_path, columns, dialect):
    """Write ``columns`` in ``dialect``; return (path, attach kwargs)."""
    if dialect == "fixed-width":
        texts = [
            [_fmt(v) for v in col] for col in columns
        ]
        widths = tuple(max(max(len(t) for t in col), 1) for col in texts)
        adapter = FixedWidthAdapter(widths)
        kwargs = {"format": "fixed-width", "fixed_widths": widths}
    elif dialect == "jsonl":
        adapter = JsonLinesAdapter()
        kwargs = {"format": "jsonl"}
    elif dialect == "csv":
        adapter = DelimitedAdapter(",")
        kwargs = {}
    else:
        adapter = SPAN_DIALECTS[dialect]()
        kwargs = {"format": dialect}
    path = tmp_path / f"t-{dialect.replace('-', '')}.dat"
    write_csv(path, columns, adapter=adapter)
    return path, kwargs


def _fmt(value):
    from repro.flatfile.writer import format_value

    return format_value(value)


def _expected_cell(value):
    if isinstance(value, float):
        return np.float64(value)
    if isinstance(value, int):
        return np.int64(value)
    return value


def assert_round_trip(columns, dialect):
    # a fresh scratch dir per generated example (Hypothesis re-enters the
    # test body without resetting function-scoped fixtures)
    with tempfile.TemporaryDirectory(prefix="repro-dialect-") as tmp:
        path, kwargs = render(Path(tmp), columns, dialect)
        names = [f"a{i + 1}" for i in range(len(columns))]
        engine = NoDBEngine(EngineConfig(policy="column_loads"))
        try:
            engine.attach("t", path, **kwargs)
            result = engine.query(f"select {', '.join(names)} from t")
            got = result.rows()
            expected = [
                tuple(_expected_cell(col[i]) for col in columns)
                for i in range(len(columns[0]))
            ]
            assert got == expected
        finally:
            engine.close()


class TestRoundTrip:
    @settings(max_examples=20)
    @given(columns=tables(hard=False))
    @pytest.mark.parametrize(
        "dialect", ["csv", "quoted-csv", "tsv", "jsonl", "fixed-width"]
    )
    def test_safe_values_every_dialect(self, dialect, columns):
        assert_round_trip(columns, dialect)

    @settings(max_examples=20)
    @given(columns=tables(hard=True))
    @pytest.mark.parametrize("dialect", ["quoted-csv", "tsv", "jsonl"])
    def test_hard_values_escaping_dialects(self, dialect, columns):
        assert_round_trip(columns, dialect)


class TestEdgeFraming:
    @pytest.mark.parametrize(
        "dialect,text",
        [
            ("csv", "1,vx\r\n2,vy\r\n"),
            ("tsv", "1\tvx\r\n2\tvy\r\n"),
            ("quoted-csv", '1,"vx"\r\n2,vy\r\n'),
        ],
    )
    def test_crlf_round_trip(self, tmp_path, dialect, text):
        path = tmp_path / "crlf.dat"
        path.write_bytes(text.encode("utf-8"))
        engine = NoDBEngine()
        try:
            kwargs = {} if dialect == "csv" else {"format": dialect}
            engine.attach("t", path, **kwargs)
            assert engine.query("select a2 from t").rows() == [("vx",), ("vy",)]
        finally:
            engine.close()

    @pytest.mark.parametrize("dialect", ["csv", "quoted-csv", "tsv", "jsonl"])
    def test_blank_runs_skipped(self, tmp_path, dialect):
        rows = {"csv": "1,2", "quoted-csv": '"1",2', "tsv": "1\t2",
                "jsonl": "[1, 2]"}[dialect]
        path = tmp_path / "blank.dat"
        path.write_text(f"\n\n{rows}\n\n\n{rows}\n\n")
        engine = NoDBEngine()
        try:
            kwargs = {} if dialect == "csv" else {"format": dialect}
            engine.attach("t", path, **kwargs)
            assert engine.query("select a1 from t").rows() == [(1,), (1,)]
        finally:
            engine.close()

    @pytest.mark.parametrize("dialect", ["csv", "quoted-csv", "tsv"])
    def test_ragged_rows_raise(self, tmp_path, dialect):
        rows = {"csv": ("1,2", "3"), "quoted-csv": ('"1",2', "3"),
                "tsv": ("1\t2", "3")}[dialect]
        path = tmp_path / "ragged.dat"
        path.write_text("\n".join(rows) + "\n")
        engine = NoDBEngine()
        try:
            kwargs = {} if dialect == "csv" else {"format": dialect}
            engine.attach("t", path, **kwargs)
            with pytest.raises(FlatFileError):
                engine.query("select a2 from t")
        finally:
            engine.close()


class TestPositionalMapInvariants:
    @settings(max_examples=20)
    @given(columns=tables(hard=True))
    @pytest.mark.parametrize("dialect", ["quoted-csv", "tsv"])
    def test_spans_land_on_encoded_fields(self, dialect, columns):
        adapter = SPAN_DIALECTS[dialect]()
        rows = list(zip(*[[_fmt(v) for v in col] for col in columns]))
        text = "".join(adapter.encode_row(list(r)) + "\n" for r in rows)
        self._check_spans(adapter, text, rows)

    @settings(max_examples=20)
    @given(columns=tables(hard=False))
    def test_spans_fixed_width(self, columns):
        texts = [[_fmt(v) for v in col] for col in columns]
        widths = tuple(max(max(len(t) for t in col), 1) for col in texts)
        adapter = FixedWidthAdapter(widths)
        rows = list(zip(*texts))
        text = "".join(adapter.encode_row(list(r)) + "\n" for r in rows)
        self._check_spans(adapter, text, rows)

    @staticmethod
    def _check_spans(adapter, text, rows):
        from repro.flatfile.positions import PositionalMap

        ncols = len(rows[0])
        pmap = PositionalMap()
        result = tokenize_dialect(
            text,
            adapter,
            ncols=ncols,
            needed=list(range(ncols)),
            positional_map=pmap,
            learn=True,
        )
        # the pass itself returns the logical values
        for col in range(ncols):
            assert result.fields[col] == [r[col] for r in rows]
        # row offsets land on framing starts
        starts, _ends = adapter.row_bounds(text)
        assert np.array_equal(pmap.row_offsets, starts)
        # every learned span slices to the encoded field, which decodes
        # back to the logical value
        for col in range(ncols):
            assert pmap.can_slice(col)
            s, e = pmap.slices_for(col)
            for row_idx, r in enumerate(rows):
                raw = text[int(s[row_idx]) : int(e[row_idx])]
                assert adapter.decode_field(raw) == r[col]
