"""Format adapters and the dialect sniffer (unit level).

The differential oracle in ``tests/oracle`` checks whole-engine
equivalence; here each adapter's framing/tokenize/decode/encode contract
and every sniffer edge case is pinned down directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FlatFileError, FormatDetectionError
from repro.flatfile.dialects import (
    DelimitedAdapter,
    FixedWidthAdapter,
    JsonLinesAdapter,
    QuotedCsvAdapter,
    TsvAdapter,
    make_adapter,
    sniff_format,
)
from repro.flatfile.files import FlatFile
from repro.flatfile.tokenizer import tokenize_dialect


def frame(adapter, text):
    starts, ends = adapter.row_bounds(text)
    return [text[int(s) : int(e)] for s, e in zip(starts, ends)]


class TestDelimitedAdapter:
    def test_round_trip(self):
        a = DelimitedAdapter(",")
        row = a.encode_row(["1", "x", "2.5"])
        assert row == "1,x,2.5"
        assert a.row_values(row) == ["1", "x", "2.5"]

    def test_spans_cover_fields(self):
        a = DelimitedAdapter(",")
        row = "ab,c,,def"
        spans = list(a.iter_fields(row))
        assert [row[s:e] for s, e, _ in spans] == ["ab", "c", "", "def"]

    def test_encode_rejects_delimiter_in_value(self):
        with pytest.raises(FlatFileError, match="cannot represent"):
            DelimitedAdapter(",").encode_row(["a,b"])

    def test_encode_rejects_newline_in_value(self):
        with pytest.raises(FlatFileError, match="cannot represent"):
            DelimitedAdapter(",").encode_row(["a\nb"])
        with pytest.raises(FlatFileError, match="cannot represent"):
            DelimitedAdapter(",").encode_row(["a\rb"])

    def test_bad_delimiter(self):
        with pytest.raises(FlatFileError, match="delimiter"):
            DelimitedAdapter(",,")


class TestQuotedCsvAdapter:
    def test_decode_quoting_and_doubling(self):
        a = QuotedCsvAdapter()
        assert a.row_values('"a,b",2,"he said ""hi"""') == [
            "a,b",
            "2",
            'he said "hi"',
        ]

    def test_embedded_newline_framing(self):
        a = QuotedCsvAdapter()
        text = '1,"line1\nline2"\n2,simple\n'
        rows = frame(a, text)
        assert rows == ['1,"line1\nline2"', "2,simple"]
        assert a.row_values(rows[0]) == ["1", "line1\nline2"]

    def test_crlf_outside_quotes_trimmed(self):
        a = QuotedCsvAdapter()
        assert frame(a, "1,2\r\n3,4\r\n") == ["1,2", "3,4"]

    def test_cr_inside_quotes_kept(self):
        a = QuotedCsvAdapter()
        rows = frame(a, '1,"a\r\nb"\n')
        assert a.row_values(rows[0]) == ["1", "a\r\nb"]

    def test_encode_round_trip(self):
        a = QuotedCsvAdapter()
        values = ["a,b", 'q"x', "plain", "nl\nnl", ""]
        assert a.row_values(a.encode_row(values)) == values

    def test_unterminated_quote_raises(self):
        a = QuotedCsvAdapter()
        with pytest.raises(FlatFileError, match="unterminated"):
            a.row_bounds('1,"oops\n')
        with pytest.raises(FlatFileError, match="unterminated"):
            list(a.iter_fields('"oops'))

    def test_garbage_after_closing_quote_raises(self):
        with pytest.raises(FlatFileError, match="after closing quote"):
            list(QuotedCsvAdapter().iter_fields('"ok"x,2'))

    def test_spans_include_quotes(self):
        a = QuotedCsvAdapter()
        row = '"a,b",2'
        (s0, e0, raw0), (s1, e1, raw1) = a.iter_fields(row)
        assert row[s0:e0] == '"a,b"' == raw0
        assert a.decode_field(raw0) == "a,b"
        assert row[s1:e1] == "2"


class TestTsvAdapter:
    def test_escape_round_trip(self):
        a = TsvAdapter()
        values = ["a\tb", "c\\d", "e\nf", "g\rh", "plain"]
        assert a.row_values(a.encode_row(values)) == values

    def test_raw_tabs_always_separate(self):
        a = TsvAdapter()
        row = a.encode_row(["x\ty", "z"])
        assert row.count("\t") == 1  # the separator; the literal tab is escaped

    def test_unknown_escape_is_literal(self):
        assert TsvAdapter().decode_field("a\\xb") == "a\\xb"


class TestJsonLinesAdapter:
    def test_object_rows_fix_column_order(self):
        a = JsonLinesAdapter()
        assert a.row_values('{"b": 1, "a": "x"}') == ["1", "x"]
        assert a.embedded_header == ["b", "a"]
        # later rows may permute keys; order stays the first row's
        assert a.row_values('{"a": "y", "b": 2}') == ["2", "y"]

    def test_scalar_rendering(self):
        a = JsonLinesAdapter()
        assert a.row_values('[1, 2.5, "s", true, null]') == [
            "1",
            "2.5",
            "s",
            "true",
            "",
        ]

    def test_mismatched_keys_raise(self):
        a = JsonLinesAdapter()
        a.row_values('{"a": 1}')
        with pytest.raises(FlatFileError, match="keys"):
            a.row_values('{"z": 1}')

    def test_nested_value_raises(self):
        with pytest.raises(FlatFileError, match="nested"):
            JsonLinesAdapter().row_values('{"a": [1, 2]}')

    def test_invalid_json_raises(self):
        with pytest.raises(FlatFileError, match="invalid JSON"):
            JsonLinesAdapter().row_values("{oops")

    def test_encode_round_trip_is_exact_text(self):
        a = JsonLinesAdapter(columns=("x", "y"))
        row = a.encode_row(["1e5", "plain"])
        # values are written as JSON strings so raw text round-trips
        assert a.row_values(row) == ["1e5", "plain"]

    def test_reset_forgets_columns(self):
        a = JsonLinesAdapter()
        a.row_values('{"a": 1}')
        a.reset()
        assert a.columns is None


class TestFixedWidthAdapter:
    def test_round_trip(self):
        a = FixedWidthAdapter((4, 3))
        row = a.encode_row(["ab", "c"])
        assert row == "ab  c  "
        assert a.row_values(row) == ["ab", "c"]

    def test_wrong_row_length_raises(self):
        with pytest.raises(FlatFileError, match="characters"):
            FixedWidthAdapter((4, 3)).row_values("short")

    def test_too_wide_value_raises(self):
        with pytest.raises(FlatFileError, match="wider"):
            FixedWidthAdapter((2,)).encode_row(["abc"])

    def test_trailing_spaces_unrepresentable(self):
        with pytest.raises(FlatFileError, match="trailing spaces"):
            FixedWidthAdapter((5,)).encode_row(["a "])

    def test_line_break_unrepresentable(self):
        with pytest.raises(FlatFileError, match="line break"):
            FixedWidthAdapter((5,)).encode_row(["a\nb"])

    def test_bad_widths(self):
        with pytest.raises(FlatFileError, match="positive"):
            FixedWidthAdapter((0, 3))


class TestMakeAdapter:
    def test_default_is_plain(self):
        assert isinstance(make_adapter(None, ";"), DelimitedAdapter)
        assert make_adapter(None, ";").delimiter == ";"

    def test_auto_defers(self):
        assert make_adapter("auto") is None

    def test_fixed_width_needs_widths(self):
        with pytest.raises(FlatFileError, match="widths"):
            make_adapter("fixed-width")

    def test_unknown_format(self):
        with pytest.raises(FlatFileError, match="unknown format"):
            make_adapter("parquet")


class TestSniffer:
    def test_plain_csv(self):
        a = sniff_format("1,2,3\n4,5,6\n")
        assert isinstance(a, DelimitedAdapter) and a.delimiter == ","

    def test_semicolon_csv(self):
        a = sniff_format("1;2\n3;4\n")
        assert isinstance(a, DelimitedAdapter) and a.delimiter == ";"

    def test_quoted_csv(self):
        assert isinstance(sniff_format('"a,b",2\nc,3\n'), QuotedCsvAdapter)

    def test_tab_means_tsv(self):
        assert isinstance(sniff_format("a\tb\nc\td\n"), TsvAdapter)

    def test_jsonl(self):
        assert isinstance(sniff_format('{"a": 1}\n{"a": 2}\n'), JsonLinesAdapter)

    def test_bare_numbers_are_not_jsonl(self):
        a = sniff_format("1\n2\n3\n")
        assert isinstance(a, DelimitedAdapter)

    def test_fixed_width(self):
        a = sniff_format("ab   12\ncd   34\n")
        assert isinstance(a, FixedWidthAdapter)
        assert sum(a.widths) == 7

    def test_empty_file_refuses_naming_fallback(self):
        with pytest.raises(FormatDetectionError, match="--format/--delimiter"):
            sniff_format("")

    def test_blank_lines_only_refuses(self):
        with pytest.raises(FormatDetectionError, match="empty"):
            sniff_format("\n\n\n")

    def test_ambiguous_delimiters_refuse_naming_fallback(self):
        with pytest.raises(FormatDetectionError) as err:
            sniff_format("a,b;c\nd,e;f\n")
        assert "--delimiter" in str(err.value)
        assert "--format" in str(err.value)

    def test_header_only_file(self):
        a = sniff_format("id,name,qty\n")
        assert isinstance(a, DelimitedAdapter) and a.delimiter == ","

    def test_single_column_file(self):
        a = sniff_format("alpha\nbeta\ngamma\n")
        assert isinstance(a, DelimitedAdapter)

    def test_stray_mid_field_quote_stays_plain(self):
        # '5"2' is data, not quoting; misreading it as quoted-csv would
        # swallow the newline and collapse the two rows into one
        a = sniff_format('1,5"2\n2,6"1\n')
        assert isinstance(a, DelimitedAdapter) and a.delimiter == ","
        assert a.row_values('1,5"2') == ["1", '5"2']

    def test_field_start_quotes_mean_quoted(self):
        assert isinstance(sniff_format('1,"a b"\n2,"c d"\n'), QuotedCsvAdapter)

    def test_single_column_quoted_lines(self):
        a = sniff_format('"a b"\n"c d"\n"e f"\n')
        assert isinstance(a, QuotedCsvAdapter)
        assert a.row_values('"a b"') == ["a b"]

    def test_stray_quote_framing_does_not_merge_rows(self):
        # quoted-csv framing uses the same field-start rule as field
        # tokenization: '5"2' is data, so the newline still ends the row
        a = QuotedCsvAdapter()
        assert frame(a, '"a",5"2\n"b",3\n') == ['"a",5"2', '"b",3']
        assert frame(a, '"a",5"2\n"b\nc",3\n') == ['"a",5"2', '"b\nc",3']

    def test_inconsistent_counts_refuse(self):
        # a comma on some lines only is no delimiter — free text must be
        # refused, not guessed at (splitting some rows and not others)
        with pytest.raises(FormatDetectionError, match="no consistent delimiter"):
            sniff_format("one, two words\nplain line here\n")


class TestAutoAttach:
    def test_lazy_sniff_on_flatfile(self, tmp_path):
        p = tmp_path / "x.tsv"
        p.write_text("a\tb\n1\t2\n")
        f = FlatFile(p, format="auto")
        assert f.stats.bytes_read == 0  # attach-time: no I/O yet
        assert isinstance(f.adapter, TsvAdapter)
        assert f.stats.bytes_read > 0

    def test_auto_reset_resniffs(self, tmp_path):
        p = tmp_path / "x.txt"
        p.write_text("1,2\n3,4\n")
        f = FlatFile(p, format="auto")
        assert isinstance(f.adapter, DelimitedAdapter)
        p.write_text('{"a": 1}\n{"a": 2}\n')
        f.reset_format_state()
        assert isinstance(f.adapter, JsonLinesAdapter)

    def test_explicit_adapter_not_resniffed(self, tmp_path):
        p = tmp_path / "x.jsonl"
        p.write_text('{"a": 1}\n')
        f = FlatFile(p, format="jsonl")
        f.adapter.row_values('{"a": 1}')
        f.reset_format_state()
        assert isinstance(f.adapter, JsonLinesAdapter)
        assert f.adapter.columns is None  # learned state forgotten


class TestTokenizeDialect:
    def test_generic_path_matches_fast_path(self):
        text = "1,2,3\n4,5,6\n7,8,9\n"
        fast = tokenize_dialect(text, DelimitedAdapter(","), ncols=3, needed=[1])
        slow = tokenize_dialect(text, QuotedCsvAdapter(","), ncols=3, needed=[1])
        assert fast.fields[1] == slow.fields[1] == ["2", "5", "8"]
        assert np.array_equal(fast.row_ids, slow.row_ids)

    def test_ragged_row_raises(self):
        with pytest.raises(FlatFileError, match="fewer than"):
            tokenize_dialect(
                "1,2\n3\n", QuotedCsvAdapter(","), ncols=2, needed=[1]
            )

    def test_short_row_past_needed_raises_like_fast_path(self):
        # 'x,y' has the needed columns but is still short of ncols=3;
        # the plain fast path raises here, so every dialect must too
        for adapter in (QuotedCsvAdapter(","), DelimitedAdapter(",")):
            with pytest.raises(FlatFileError, match="fewer than 3"):
                tokenize_dialect(
                    "a,b,c\nx,y\n", adapter, ncols=3, needed=[0, 1]
                )
        with pytest.raises(FlatFileError, match="fewer than 3"):
            tokenize_dialect(
                "[1, 2]\n", JsonLinesAdapter(), ncols=3, needed=[0, 1]
            )

    def test_pushdown_abandons_rows(self):
        res = tokenize_dialect(
            '1,"a"\n2,"b"\n3,"c"\n',
            QuotedCsvAdapter(","),
            ncols=2,
            needed=[0, 1],
            predicates={0: lambda v: int(v) != 2},
        )
        assert res.fields[1] == ["a", "c"]
        assert res.stats.rows_abandoned == 1

    def test_early_abort_skips_bad_tail(self):
        # the field after the needed one is never tokenized cold
        res = tokenize_dialect(
            "1\tx\n2\ty\n",
            TsvAdapter(),
            ncols=2,
            needed=[0],
            early_abort=True,
        )
        assert res.fields[0] == ["1", "2"]

    def test_jsonl_needs_whole_row(self):
        res = tokenize_dialect(
            '{"a": 1, "b": "x"}\n{"a": 2, "b": "y"}\n',
            JsonLinesAdapter(),
            ncols=2,
            needed=[1],
        )
        assert res.fields[1] == ["x", "y"]
