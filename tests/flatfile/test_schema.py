"""Tests for schema inference (paper section 5.6)."""

import pytest

from repro.errors import SchemaInferenceError
from repro.flatfile.schema import (
    ColumnSchema,
    DataType,
    TableSchema,
    classify_value,
    default_column_names,
    infer_schema,
    looks_like_header,
    unify_types,
)


class TestClassify:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("42", DataType.INT64),
            ("-7", DataType.INT64),
            ("0", DataType.INT64),
            ("3.14", DataType.FLOAT64),
            ("-2.5e3", DataType.FLOAT64),
            ("1e10", DataType.FLOAT64),
            ("abc", DataType.STRING),
            ("12abc", DataType.STRING),
            ("", DataType.STRING),
            ("nan", DataType.FLOAT64),
            ("inf", DataType.FLOAT64),
        ],
    )
    def test_classify_value(self, text, expected):
        assert classify_value(text) is expected


class TestUnify:
    def test_same(self):
        for t in DataType:
            assert unify_types(t, t) is t

    def test_int_float_widens(self):
        assert unify_types(DataType.INT64, DataType.FLOAT64) is DataType.FLOAT64
        assert unify_types(DataType.FLOAT64, DataType.INT64) is DataType.FLOAT64

    def test_string_absorbs(self):
        assert unify_types(DataType.INT64, DataType.STRING) is DataType.STRING
        assert unify_types(DataType.STRING, DataType.FLOAT64) is DataType.STRING


class TestInference:
    def test_pure_int_table(self):
        schema = infer_schema([["1", "2"], ["3", "4"]])
        assert [c.dtype for c in schema] == [DataType.INT64, DataType.INT64]
        assert schema.names == ["a1", "a2"]

    def test_mixed_types(self):
        schema = infer_schema([["1", "1.5", "x"], ["2", "2", "y"]])
        assert [c.dtype for c in schema] == [
            DataType.INT64,
            DataType.FLOAT64,
            DataType.STRING,
        ]

    def test_with_header(self):
        schema = infer_schema([["1", "2"]], header=["id", "val"])
        assert schema.names == ["id", "val"]

    def test_empty_sample_rejected(self):
        with pytest.raises(SchemaInferenceError):
            infer_schema([])

    def test_ragged_sample_rejected(self):
        with pytest.raises(SchemaInferenceError, match="ragged"):
            infer_schema([["1", "2"], ["3"]])

    def test_header_arity_mismatch_rejected(self):
        with pytest.raises(SchemaInferenceError):
            infer_schema([["1", "2"]], header=["only_one"])

    def test_empty_field_forces_string(self):
        schema = infer_schema([["1", ""], ["2", "3"]])
        assert schema.columns[1].dtype is DataType.STRING


class TestTableSchema:
    def test_index_case_insensitive(self):
        schema = TableSchema([ColumnSchema("Alpha", DataType.INT64)])
        assert schema.index_of("alpha") == 0
        assert schema.index_of("ALPHA") == 0

    def test_unknown_column(self):
        schema = TableSchema([ColumnSchema("a", DataType.INT64)])
        with pytest.raises(KeyError):
            schema.index_of("b")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaInferenceError):
            TableSchema(
                [ColumnSchema("a", DataType.INT64), ColumnSchema("a", DataType.INT64)]
            )

    def test_default_names(self):
        assert default_column_names(3) == ["a1", "a2", "a3"]


class TestHeaderDetection:
    def test_numeric_first_row_is_data(self):
        assert not looks_like_header(["1", "2"], ["3", "4"])

    def test_text_over_numbers_is_header(self):
        assert looks_like_header(["id", "value"], ["1", "2"])

    def test_text_over_text_is_data(self):
        # All-string table: no way to tell, keep the row as data.
        assert not looks_like_header(["x", "y"], ["a", "b"])

    def test_single_row_file(self):
        assert not looks_like_header(["a", "b"], None)
