"""Tests for flat-file handles, fingerprints and counted reads."""

import os
import time

import pytest

from repro.errors import FlatFileError
from repro.flatfile.files import FileFingerprint, FlatFile


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("1,2\n3,4\n5,6\n")
    return path


class TestBasics:
    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(FlatFileError, match="does not exist"):
            FlatFile(tmp_path / "nope.csv")

    def test_bad_delimiter_rejected(self, csv_file):
        with pytest.raises(FlatFileError, match="delimiter"):
            FlatFile(csv_file, delimiter=",,")

    def test_size(self, csv_file):
        assert FlatFile(csv_file).size_bytes() == len("1,2\n3,4\n5,6\n")

    def test_read_all(self, csv_file):
        f = FlatFile(csv_file)
        assert f.read_all() == "1,2\n3,4\n5,6\n"

    def test_read_range(self, csv_file):
        f = FlatFile(csv_file)
        assert f.read_range(4, 7) == "3,4"

    def test_bad_range_rejected(self, csv_file):
        f = FlatFile(csv_file)
        with pytest.raises(FlatFileError):
            f.read_range(5, 2)
        with pytest.raises(FlatFileError):
            f.read_range(-1, 2)


class TestAccounting:
    def test_bytes_counted(self, csv_file):
        f = FlatFile(csv_file)
        f.read_all()
        f.read_all()
        assert f.stats.bytes_read == 2 * f.size_bytes()
        assert f.stats.read_calls == 2
        assert f.stats.full_scans == 2

    def test_range_reads_not_full_scans(self, csv_file):
        f = FlatFile(csv_file)
        f.read_range(0, 3)
        assert f.stats.full_scans == 0
        assert f.stats.bytes_read == 3

    def test_sample_rows_bounded(self, csv_file):
        f = FlatFile(csv_file)
        rows = f.sample_rows(limit=2)
        assert rows == [["1", "2"], ["3", "4"]]
        assert f.stats.bytes_read <= f.size_bytes()


class TestThrottle:
    def test_bandwidth_throttle_sleeps(self, csv_file):
        size = os.stat(csv_file).st_size
        f = FlatFile(csv_file, bandwidth_bytes_per_sec=size * 20.0)  # ~50 ms
        start = time.perf_counter()
        f.read_all()
        assert time.perf_counter() - start >= 0.04


class TestFingerprint:
    def test_stable_when_unchanged(self, csv_file):
        assert FileFingerprint.of(csv_file) == FileFingerprint.of(csv_file)

    def test_changes_on_edit(self, csv_file):
        before = FileFingerprint.of(csv_file)
        time.sleep(0.01)
        csv_file.write_text("9,9\n")
        after = FileFingerprint.of(csv_file)
        assert before != after
