"""Tests for flat-file handles, fingerprints and counted reads."""

import os
import time

import numpy as np
import pytest

from repro.errors import FlatFileError
from repro.flatfile.files import FileFingerprint, FlatFile, coalesce_ranges


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("1,2\n3,4\n5,6\n")
    return path


class TestBasics:
    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(FlatFileError, match="does not exist"):
            FlatFile(tmp_path / "nope.csv")

    def test_bad_delimiter_rejected(self, csv_file):
        with pytest.raises(FlatFileError, match="delimiter"):
            FlatFile(csv_file, delimiter=",,")

    def test_size(self, csv_file):
        assert FlatFile(csv_file).size_bytes() == len("1,2\n3,4\n5,6\n")

    def test_read_all(self, csv_file):
        f = FlatFile(csv_file)
        assert f.read_all() == "1,2\n3,4\n5,6\n"

    def test_read_range(self, csv_file):
        f = FlatFile(csv_file)
        assert f.read_range(4, 7) == "3,4"

    def test_bad_range_rejected(self, csv_file):
        f = FlatFile(csv_file)
        with pytest.raises(FlatFileError):
            f.read_range(5, 2)
        with pytest.raises(FlatFileError):
            f.read_range(-1, 2)


class TestAccounting:
    def test_bytes_counted(self, csv_file):
        f = FlatFile(csv_file)
        f.read_all()
        f.read_all()
        assert f.stats.bytes_read == 2 * f.size_bytes()
        assert f.stats.read_calls == 2
        assert f.stats.full_scans == 2

    def test_range_reads_not_full_scans(self, csv_file):
        f = FlatFile(csv_file)
        f.read_range(0, 3)
        assert f.stats.full_scans == 0
        assert f.stats.bytes_read == 3

    def test_sample_rows_bounded(self, csv_file):
        f = FlatFile(csv_file)
        rows = f.sample_rows(limit=2)
        assert rows == [["1", "2"], ["3", "4"]]
        assert f.stats.bytes_read <= f.size_bytes()


class TestCoalesce:
    def _merge(self, ranges, max_gap=0):
        starts = np.array([s for s, _ in ranges], dtype=np.int64)
        ends = np.array([e for _, e in ranges], dtype=np.int64)
        ws, we = coalesce_ranges(starts, ends, max_gap)
        return list(zip(ws.tolist(), we.tolist()))

    def test_empty(self):
        assert self._merge([]) == []

    def test_disjoint_stay_separate(self):
        assert self._merge([(0, 3), (10, 12)]) == [(0, 3), (10, 12)]

    def test_touching_merge(self):
        assert self._merge([(0, 3), (3, 6)]) == [(0, 6)]

    def test_overlapping_merge(self):
        assert self._merge([(0, 5), (3, 8)]) == [(0, 8)]

    def test_gap_tolerance(self):
        assert self._merge([(0, 3), (5, 8)], max_gap=2) == [(0, 8)]
        assert self._merge([(0, 3), (6, 8)], max_gap=2) == [(0, 3), (6, 8)]

    def test_unsorted_input(self):
        assert self._merge([(10, 12), (0, 3), (2, 5)]) == [(0, 5), (10, 12)]

    def test_contained_range_absorbed(self):
        assert self._merge([(0, 20), (5, 8), (25, 30)]) == [(0, 20), (25, 30)]

    def test_malformed_rejected(self):
        with pytest.raises(FlatFileError):
            self._merge([(5, 2)])
        with pytest.raises(FlatFileError):
            self._merge([(-1, 2)])
        with pytest.raises(FlatFileError):
            self._merge([(0, 2)], max_gap=-1)


class TestReadWindows:
    def test_reads_only_requested_bytes(self, csv_file):
        f = FlatFile(csv_file)  # "1,2\n3,4\n5,6\n"
        win = f.read_windows(np.array([0, 8]), np.array([3, 11]))
        assert win.buffer == b"1,2" + b"5,6"
        assert f.stats.bytes_read == 6
        assert f.stats.read_calls == 2
        assert f.stats.full_scans == 0

    def test_translate_maps_file_offsets_into_buffer(self, csv_file):
        f = FlatFile(csv_file)
        win = f.read_windows(np.array([0, 8]), np.array([3, 11]))
        local = win.translate(np.array([8, 0, 10]))
        assert [win.buffer[i : i + 1] for i in local.tolist()] == [b"5", b"1", b"6"]

    def test_translate_outside_windows_rejected(self, csv_file):
        f = FlatFile(csv_file)
        win = f.read_windows(np.array([0]), np.array([3]))
        with pytest.raises(FlatFileError):
            win.translate(np.array([7]))

    def test_gap_merges_into_single_read(self, csv_file):
        f = FlatFile(csv_file)
        win = f.read_windows(np.array([0, 5]), np.array([3, 7]), max_gap=4)
        assert f.stats.read_calls == 1
        assert win.buffer == b"1,2\n3,4"

    def test_empty_request(self, csv_file):
        f = FlatFile(csv_file)
        win = f.read_windows(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert win.buffer == b""
        assert f.stats.bytes_read == 0


class TestThrottle:
    def test_bandwidth_throttle_sleeps(self, csv_file):
        size = os.stat(csv_file).st_size
        f = FlatFile(csv_file, bandwidth_bytes_per_sec=size * 20.0)  # ~50 ms
        start = time.perf_counter()
        f.read_all()
        assert time.perf_counter() - start >= 0.04


class TestFingerprint:
    def test_stable_when_unchanged(self, csv_file):
        assert FileFingerprint.of(csv_file) == FileFingerprint.of(csv_file)

    def test_changes_on_edit(self, csv_file):
        before = FileFingerprint.of(csv_file)
        time.sleep(0.01)
        csv_file.write_text("9,9\n")
        after = FileFingerprint.of(csv_file)
        assert before != after
