"""Scalar-parity tests for the vectorized join and aggregate kernels.

The vectorized implementations (argsort + searchsorted run expansion in
``joins.py``; sort-within-group boundary reduction in ``aggregates.py``)
must agree exactly with a deliberately naive scalar reference on random
inputs — duplicates, strings, non-ASCII, empty groups and all.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.aggregates import group_ids, grouped_aggregate
from repro.execution.joins import hash_join, merge_join

# ---------------------------------------------------------------------------
# scalar references
# ---------------------------------------------------------------------------


def scalar_join_pairs(left, right):
    """The obviously correct O(n*m) nested-loop equi-join."""
    return sorted(
        (i, j)
        for i, lv in enumerate(left)
        for j, rv in enumerate(right)
        if lv == rv
    )


def scalar_grouped(func, values, keys, distinct=False):
    """Per-group Python reduction over a dict of lists, in key order."""
    groups: dict = {}
    for k, v in zip(keys, values):
        groups.setdefault(k, []).append(v)
    out = []
    for k in sorted(groups):
        seg = groups[k]
        if distinct:
            seg = sorted(set(seg))
        if func == "count":
            out.append(len(seg))
        elif func == "sum":
            out.append(sum(seg))
        elif func == "min":
            out.append(min(seg))
        elif func == "max":
            out.append(max(seg))
        elif func == "avg":
            out.append(sum(seg) / len(seg))
    return out


def pairs_of(result):
    li, ri = result
    return sorted(zip(li.tolist(), ri.tolist()))


# ---------------------------------------------------------------------------
# joins
# ---------------------------------------------------------------------------

_int_keys = st.lists(st.integers(-5, 5), min_size=0, max_size=40)
_str_keys = st.lists(
    st.sampled_from(["vb", "vc", "vß", "vあ", "vd", "ve"]),
    min_size=0,
    max_size=40,
)


class TestJoinParity:
    @settings(max_examples=120, deadline=None)
    @given(left=_int_keys, right=_int_keys)
    def test_int_keys_match_nested_loop(self, left, right):
        l, r = np.asarray(left, dtype=np.int64), np.asarray(right, dtype=np.int64)
        want = scalar_join_pairs(left, right)
        assert pairs_of(hash_join(l, r)) == want
        assert pairs_of(merge_join(l, r)) == want

    @settings(max_examples=60, deadline=None)
    @given(left=_str_keys, right=_str_keys)
    def test_string_keys_match_nested_loop(self, left, right):
        l = np.asarray(left, dtype=object)
        r = np.asarray(right, dtype=object)
        want = scalar_join_pairs(left, right)
        assert pairs_of(hash_join(l, r)) == want
        assert pairs_of(merge_join(l, r)) == want

    @settings(max_examples=60, deadline=None)
    @given(left=_int_keys, right=_int_keys)
    def test_float_vs_int_keys(self, left, right):
        l = np.asarray(left, dtype=np.float64)
        r = np.asarray(right, dtype=np.int64)
        want = scalar_join_pairs(left, right)
        assert pairs_of(hash_join(l, r)) == want
        assert pairs_of(merge_join(l, r)) == want

    def test_heavy_duplicates_cross_product(self):
        l = np.asarray([7] * 50 + [3] * 3, dtype=np.int64)
        r = np.asarray([3] * 4 + [7] * 20, dtype=np.int64)
        want = scalar_join_pairs(l.tolist(), r.tolist())
        assert len(want) == 50 * 20 + 3 * 4
        assert pairs_of(hash_join(l, r)) == want
        assert pairs_of(merge_join(l, r)) == want

    def test_nan_matches_nothing(self):
        l = np.asarray([1.0, np.nan, 2.0, np.nan])
        r = np.asarray([np.nan, 1.0, np.nan])
        assert pairs_of(hash_join(l, r)) == [(0, 1)]
        assert pairs_of(merge_join(l, r)) == [(0, 1)]

    def test_string_vs_numeric_never_matches(self):
        l = np.asarray(["5", "6"], dtype=object)
        r = np.asarray([5, 6], dtype=np.int64)
        assert pairs_of(hash_join(l, r)) == []
        assert pairs_of(merge_join(l, r)) == []


# ---------------------------------------------------------------------------
# grouped aggregation (DISTINCT / string fallback path)
# ---------------------------------------------------------------------------


def _run_grouped(func, values_list, keys_list, distinct):
    keys = np.asarray(keys_list, dtype=np.int64)
    values = np.asarray(
        values_list,
        dtype=object if isinstance(values_list[0], str) else None,
    )
    order, starts, _ = group_ids([keys])
    return grouped_aggregate(func, values, order, starts, distinct=distinct)


_grouped_ints = st.lists(
    st.tuples(st.integers(-4, 4), st.integers(-9, 9)), min_size=1, max_size=60
)


class TestGroupedParity:
    @settings(max_examples=120, deadline=None)
    @given(rows=_grouped_ints, distinct=st.booleans())
    @pytest.mark.parametrize("func", ["count", "sum", "min", "max", "avg"])
    def test_int_values(self, func, rows, distinct):
        keys = [k for k, _ in rows]
        values = [v for _, v in rows]
        got = _run_grouped(func, values, keys, distinct).tolist()
        want = scalar_grouped(func, values, keys, distinct)
        if func == "avg":
            assert got == pytest.approx(want)
        else:
            assert got == want

    @settings(max_examples=60, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                st.integers(-3, 3),
                st.sampled_from(["vb", "vc", "vß", "vあ", "vd"]),
            ),
            min_size=1,
            max_size=50,
        ),
        distinct=st.booleans(),
    )
    @pytest.mark.parametrize("func", ["count", "min", "max"])
    def test_string_values(self, func, rows, distinct):
        keys = [k for k, _ in rows]
        values = [v for _, v in rows]
        got = _run_grouped(func, values, keys, distinct).tolist()
        assert got == scalar_grouped(func, values, keys, distinct)

    def test_distinct_collapses_nan_like_np_unique(self):
        keys = np.asarray([0, 0, 0, 1, 1], dtype=np.int64)
        values = np.asarray([np.nan, np.nan, 1.0, np.nan, 2.0])
        order, starts, _ = group_ids([keys])
        counts = grouped_aggregate("count", values, order, starts, distinct=True)
        assert counts.tolist() == [2, 2]

    def test_distinct_sum_dedupes_within_group_only(self):
        keys = np.asarray([0, 0, 1, 1], dtype=np.int64)
        values = np.asarray([5, 5, 5, 7], dtype=np.int64)
        order, starts, _ = group_ids([keys])
        sums = grouped_aggregate("sum", values, order, starts, distinct=True)
        assert sums.tolist() == [5, 12]
