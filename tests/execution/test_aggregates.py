"""Tests for global and grouped aggregation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.execution.aggregates import global_aggregate, group_ids, grouped_aggregate


class TestGlobal:
    def test_count_star(self):
        assert global_aggregate("count", None, 7) == 7

    def test_basic_aggregates(self):
        v = np.array([3, 1, 4, 1, 5])
        assert global_aggregate("sum", v, 5) == 14
        assert global_aggregate("min", v, 5) == 1
        assert global_aggregate("max", v, 5) == 5
        assert global_aggregate("avg", v, 5) == pytest.approx(2.8)
        assert global_aggregate("count", v, 5) == 5

    def test_distinct(self):
        v = np.array([1, 1, 2, 2, 3])
        assert global_aggregate("count", v, 5, distinct=True) == 3
        assert global_aggregate("sum", v, 5, distinct=True) == 6

    def test_empty_input_gives_nan(self):
        v = np.empty(0, dtype=np.int64)
        assert math.isnan(global_aggregate("sum", v, 0))
        assert global_aggregate("count", v, 0) == 0

    def test_string_min_max(self):
        v = np.array(["pear", "apple", "fig"], dtype=object)
        assert global_aggregate("min", v, 3) == "apple"
        assert global_aggregate("max", v, 3) == "pear"

    def test_unknown_func(self):
        with pytest.raises(ExecutionError):
            global_aggregate("median", np.array([1]), 1)

    def test_missing_arg(self):
        with pytest.raises(ExecutionError):
            global_aggregate("sum", None, 3)


class TestGrouped:
    def _groups(self, *keys):
        return group_ids([np.asarray(k) for k in keys])

    def test_single_key(self):
        order, starts, key_values = self._groups([2, 1, 2, 1, 3])
        assert key_values[0].tolist() == [1, 2, 3]
        sizes = np.diff(np.append(starts, 5))
        assert sizes.tolist() == [2, 2, 1]

    def test_multi_key(self):
        order, starts, kv = self._groups([1, 1, 2, 2], [9, 9, 8, 9])
        assert kv[0].tolist() == [1, 2, 2]
        assert kv[1].tolist() == [9, 8, 9]

    def test_grouped_sum(self):
        keys = np.array([1, 2, 1, 2, 1])
        values = np.array([10, 20, 30, 40, 50])
        order, starts, _ = group_ids([keys])
        out = grouped_aggregate("sum", values, order, starts)
        assert out.tolist() == [90, 60]

    def test_grouped_min_max_avg_count(self):
        keys = np.array([1, 1, 2])
        values = np.array([5, 3, 7])
        order, starts, _ = group_ids([keys])
        assert grouped_aggregate("min", values, order, starts).tolist() == [3, 7]
        assert grouped_aggregate("max", values, order, starts).tolist() == [5, 7]
        assert grouped_aggregate("avg", values, order, starts).tolist() == [4.0, 7.0]
        assert grouped_aggregate("count", None, order, starts).tolist() == [2, 1]

    def test_grouped_distinct(self):
        keys = np.array([1, 1, 1, 2])
        values = np.array([5, 5, 6, 7])
        order, starts, _ = group_ids([keys])
        out = grouped_aggregate("count", values, order, starts, distinct=True)
        assert out.tolist() == [2, 1]

    def test_grouped_strings(self):
        keys = np.array([1, 2, 1])
        values = np.array(["b", "c", "a"], dtype=object)
        order, starts, _ = group_ids([keys])
        assert grouped_aggregate("min", values, order, starts).tolist() == ["a", "c"]

    def test_empty_input(self):
        order, starts, kv = group_ids([np.empty(0, dtype=np.int64)])
        assert len(starts) == 0
        assert grouped_aggregate("sum", np.empty(0), order, starts).size == 0


class TestGroupedAgainstBruteForce:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(-100, 100)),
            min_size=1,
            max_size=60,
        ),
        st.sampled_from(["sum", "min", "max", "avg", "count"]),
    )
    def test_matches_python_groupby(self, pairs, func):
        keys = np.array([k for k, _ in pairs])
        values = np.array([v for _, v in pairs])
        order, starts, key_values = group_ids([keys])
        got = grouped_aggregate(func, values if func != "count" else values, order, starts)
        expected = {}
        for k, v in pairs:
            expected.setdefault(k, []).append(v)
        for key, result in zip(key_values[0], got):
            vals = expected[int(key)]
            if func == "sum":
                assert result == sum(vals)
            elif func == "min":
                assert result == min(vals)
            elif func == "max":
                assert result == max(vals)
            elif func == "avg":
                assert result == pytest.approx(sum(vals) / len(vals))
            else:
                assert result == len(vals)
