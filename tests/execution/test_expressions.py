"""Direct unit tests for vectorized expression evaluation."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.execution.expressions import eval_expr, eval_predicate
from repro.flatfile.schema import DataType
from repro.sql.binder import (
    BAgg,
    BArith,
    BColumn,
    BCompare,
    BIn,
    BLiteral,
    BLogical,
    BNeg,
    BNot,
)

A = BColumn("t", "a", DataType.INT64)
B = BColumn("t", "b", DataType.FLOAT64)
DATA = {
    "a": np.array([1, 2, 3, 4], dtype=np.int64),
    "b": np.array([0.5, 1.5, 2.5, 3.5]),
}


def resolve(col):
    return DATA[col.name]


def ev(expr):
    return eval_expr(expr, resolve, 4)


class TestLeaves:
    def test_column(self):
        assert ev(A).tolist() == [1, 2, 3, 4]

    def test_literal_broadcast(self):
        assert ev(BLiteral(7)).tolist() == [7, 7, 7, 7]

    def test_negation(self):
        assert ev(BNeg(A)).tolist() == [-1, -2, -3, -4]


class TestArithmetic:
    @pytest.mark.parametrize(
        "op,expected",
        [
            ("+", [1.5, 3.5, 5.5, 7.5]),
            ("-", [0.5, 0.5, 0.5, 0.5]),
            ("*", [0.5, 3.0, 7.5, 14.0]),
        ],
    )
    def test_binary_ops(self, op, expected):
        assert ev(BArith(op, A, B)).tolist() == expected

    def test_division_is_true_division(self):
        out = ev(BArith("/", A, BLiteral(2)))
        assert out.tolist() == [0.5, 1.0, 1.5, 2.0]

    def test_unknown_op(self):
        with pytest.raises(ExecutionError):
            ev(BArith("%", A, B))


class TestComparisons:
    def test_all_operators(self):
        cases = {
            "=": [False, True, False, False],
            "!=": [True, False, True, True],
            "<": [True, False, False, False],
            "<=": [True, True, False, False],
            ">": [False, False, True, True],
            ">=": [False, True, True, True],
        }
        for op, expected in cases.items():
            got = eval_predicate(BCompare(op, A, BLiteral(2)), resolve, 4)
            assert got.tolist() == expected, op


class TestLogical:
    def test_and_or(self):
        gt1 = BCompare(">", A, BLiteral(1))
        lt4 = BCompare("<", A, BLiteral(4))
        assert eval_predicate(BLogical("and", gt1, lt4), resolve, 4).tolist() == [
            False, True, True, False,
        ]
        assert eval_predicate(BLogical("or", gt1, lt4), resolve, 4).tolist() == [
            True, True, True, True,
        ]

    def test_not(self):
        gt2 = BCompare(">", A, BLiteral(2))
        assert eval_predicate(BNot(gt2), resolve, 4).tolist() == [
            True, True, False, False,
        ]

    def test_scalar_mask_broadcast(self):
        true_pred = BCompare("<", BLiteral(1), BLiteral(2))
        assert eval_predicate(true_pred, resolve, 4).tolist() == [True] * 4


class TestInList:
    def test_membership(self):
        expr = BIn(A, (2, 4), negated=False)
        assert eval_predicate(expr, resolve, 4).tolist() == [False, True, False, True]

    def test_negated(self):
        expr = BIn(A, (2, 4), negated=True)
        assert eval_predicate(expr, resolve, 4).tolist() == [True, False, True, False]


class TestErrors:
    def test_aggregate_leaks_are_caught(self):
        with pytest.raises(ExecutionError, match="aggregate"):
            ev(BAgg("sum", A))
