"""Tests for the vectorized executor over in-memory columns."""

import numpy as np
import pytest

from repro.errors import UnsupportedSQLError
from repro.execution.executor import execute_bound_query
from repro.flatfile.schema import ColumnSchema, DataType, TableSchema
from repro.sql.binder import bind
from repro.sql.parser import parse_sql

R_DATA = {
    "a1": np.array([1, 2, 3, 4, 5], dtype=np.int64),
    "a2": np.array([10, 20, 30, 40, 50], dtype=np.int64),
    "name": np.array(["a", "b", "a", "c", "b"], dtype=object),
    "price": np.array([1.0, 2.0, 3.0, 4.0, 5.0]),
}
S_DATA = {
    "k": np.array([3, 4, 5, 6], dtype=np.int64),
    "v": np.array([300, 400, 500, 600], dtype=np.int64),
}


def schemas():
    return {
        "r": TableSchema(
            [
                ColumnSchema("a1", DataType.INT64),
                ColumnSchema("a2", DataType.INT64),
                ColumnSchema("name", DataType.STRING),
                ColumnSchema("price", DataType.FLOAT64),
            ]
        ),
        "s": TableSchema(
            [ColumnSchema("k", DataType.INT64), ColumnSchema("v", DataType.INT64)]
        ),
    }


def run(sql):
    bound = bind(parse_sql(sql), schemas())
    data = {"r": R_DATA, "s": S_DATA}

    def get_column(binding, name):
        table = bound.tables[binding].lower()
        return data[table][name.lower()]

    def nrows_of(binding):
        table = bound.tables[binding].lower()
        return len(next(iter(data[table].values())))

    return execute_bound_query(bound, get_column, nrows_of)


class TestProjection:
    def test_select_columns(self):
        r = run("select a1, a2 from r")
        assert r.column("a1").tolist() == [1, 2, 3, 4, 5]

    def test_select_star(self):
        r = run("select * from r")
        assert r.names == ["a1", "a2", "name", "price"]

    def test_arithmetic(self):
        r = run("select a1 + a2 as s, a1 * 2 as d from r")
        assert r.column("s").tolist() == [11, 22, 33, 44, 55]
        assert r.column("d").tolist() == [2, 4, 6, 8, 10]

    def test_literal_projection(self):
        r = run("select a1, 7 as seven from r limit 2")
        assert r.column("seven").tolist() == [7, 7]


class TestFilter:
    def test_range(self):
        r = run("select a1 from r where a1 > 1 and a1 < 4")
        assert r.column("a1").tolist() == [2, 3]

    def test_or(self):
        r = run("select a1 from r where a1 = 1 or a1 = 5")
        assert r.column("a1").tolist() == [1, 5]

    def test_not(self):
        r = run("select a1 from r where not a1 = 3")
        assert r.column("a1").tolist() == [1, 2, 4, 5]

    def test_in_list(self):
        r = run("select a1 from r where a1 in (2, 4)")
        assert r.column("a1").tolist() == [2, 4]

    def test_not_in(self):
        r = run("select a1 from r where a1 not in (1, 2, 3)")
        assert r.column("a1").tolist() == [4, 5]

    def test_string_equality(self):
        r = run("select a1 from r where name = 'a'")
        assert r.column("a1").tolist() == [1, 3]

    def test_between(self):
        r = run("select a1 from r where a1 between 2 and 4")
        assert r.column("a1").tolist() == [2, 3, 4]

    def test_arithmetic_predicate(self):
        r = run("select a1 from r where a1 + a2 > 33")
        assert r.column("a1").tolist() == [4, 5]

    def test_empty_result(self):
        r = run("select a1 from r where a1 > 100")
        assert r.num_rows == 0


class TestAggregates:
    def test_global(self):
        r = run("select sum(a1), min(a1), max(a1), avg(a1), count(*) from r")
        assert r.rows()[0] == (15, 1, 5, 3.0, 5)

    def test_filtered_aggregate(self):
        r = run("select sum(a2) from r where a1 >= 4")
        assert r.scalar() == 90

    def test_expression_of_aggregates(self):
        r = run("select sum(a1) / count(*) as mean from r")
        assert r.scalar() == pytest.approx(3.0)

    def test_count_distinct(self):
        r = run("select count(distinct name) from r")
        assert r.scalar() == 3

    def test_group_by(self):
        r = run("select name, sum(a1) as s from r group by name order by name")
        assert r.column("name").tolist() == ["a", "b", "c"]
        assert r.column("s").tolist() == [4, 7, 4]

    def test_order_by_aggregate_not_in_select(self):
        r = run("select name from r group by name order by sum(a1) desc")
        # sums: a=4, b=7, c=4 -> b first.
        assert r.column("name").tolist()[0] == "b"

    def test_order_by_hidden_agg_with_having(self):
        r = run(
            "select name from r group by name having count(*) > 1 "
            "order by max(price) desc"
        )
        assert r.column("name").tolist() == ["b", "a"]

    def test_group_by_multiple_aggs(self):
        r = run(
            "select name, min(price) as lo, max(price) as hi from r "
            "group by name order by name"
        )
        assert r.column("lo").tolist() == [1.0, 2.0, 4.0]
        assert r.column("hi").tolist() == [3.0, 5.0, 4.0]

    def test_aggregate_over_empty_selection(self):
        r = run("select count(*), sum(a1) from r where a1 > 99")
        row = r.rows()[0]
        assert row[0] == 0
        assert np.isnan(row[1])


class TestJoins:
    def test_inner_join(self):
        r = run("select a1, v from r join s on a1 = k order by a1")
        assert r.column("a1").tolist() == [3, 4, 5]
        assert r.column("v").tolist() == [300, 400, 500]

    def test_join_with_filters(self):
        r = run("select a1, v from r join s on a1 = k where a1 > 3 and v < 500")
        assert r.rows() == [(4, 400)]

    def test_join_aggregate(self):
        r = run("select sum(v) from r join s on a1 = k")
        assert r.scalar() == 1200

    def test_single_table_join_condition_rejected_at_bind(self):
        from repro.errors import BindError

        with pytest.raises(BindError):
            run("select r.a1 from r join s on r.a1 = r.a2")


class TestOrderLimitDistinct:
    def test_order_desc(self):
        r = run("select a1 from r order by a1 desc")
        assert r.column("a1").tolist() == [5, 4, 3, 2, 1]

    def test_order_by_expression_key(self):
        r = run("select a1, a2 from r order by a2 desc limit 2")
        assert r.column("a1").tolist() == [5, 4]

    def test_limit(self):
        r = run("select a1 from r limit 3")
        assert r.num_rows == 3

    def test_distinct(self):
        r = run("select distinct name from r order by name")
        assert r.column("name").tolist() == ["a", "b", "c"]

    def test_distinct_multi_column(self):
        r = run("select distinct name, a1 / a1 as one from r")
        assert r.num_rows == 3
