"""Tests for join algorithms, incl. equivalence properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.execution.joins import hash_join, hash_join_unique, merge_join


def brute_force(left, right):
    return sorted(
        (i, j)
        for i, lv in enumerate(left)
        for j, rv in enumerate(right)
        if lv == rv
    )


def pairs_of(result):
    li, ri = result
    return sorted(zip(li.tolist(), ri.tolist()))


class TestHashJoin:
    def test_simple_match(self):
        left = np.array([1, 2, 3])
        right = np.array([2, 3, 4])
        assert pairs_of(hash_join(left, right)) == [(1, 0), (2, 1)]

    def test_duplicates_cross_product(self):
        left = np.array([1, 1])
        right = np.array([1, 1, 1])
        assert len(pairs_of(hash_join(left, right))) == 6

    def test_empty_sides(self):
        empty = np.empty(0, dtype=np.int64)
        some = np.array([1])
        assert pairs_of(hash_join(empty, some)) == []
        assert pairs_of(hash_join(some, empty)) == []

    def test_no_matches(self):
        assert pairs_of(hash_join(np.array([1]), np.array([2]))) == []


class TestHashJoinUnique:
    def test_matches_generic(self):
        left = np.array([5, 3, 5, 9])
        right = np.array([3, 5, 7])
        assert pairs_of(hash_join_unique(left, right)) == pairs_of(
            hash_join(left, right)
        )

    def test_rejects_duplicate_right(self):
        with pytest.raises(ExecutionError):
            hash_join_unique(np.array([1]), np.array([2, 2]))


class TestMergeJoin:
    def test_simple(self):
        left = np.array([3, 1, 2])
        right = np.array([2, 3])
        assert pairs_of(merge_join(left, right)) == [(0, 1), (2, 0)]

    def test_duplicates(self):
        left = np.array([1, 1, 2])
        right = np.array([1, 2, 2])
        assert pairs_of(merge_join(left, right)) == brute_force(left, right)


class TestJoinEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(0, 10), max_size=30),
        st.lists(st.integers(0, 10), max_size=30),
    )
    def test_all_algorithms_agree_with_brute_force(self, left, right):
        la = np.array(left, dtype=np.int64)
        ra = np.array(right, dtype=np.int64)
        expected = brute_force(left, right)
        assert pairs_of(hash_join(la, ra)) == expected
        assert pairs_of(merge_join(la, ra)) == expected

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 50), max_size=30),
        st.lists(st.integers(0, 50), max_size=20, unique=True),
    )
    def test_unique_join_agrees(self, left, right):
        la = np.array(left, dtype=np.int64)
        ra = np.array(right, dtype=np.int64)
        assert pairs_of(hash_join_unique(la, ra)) == brute_force(left, right)
