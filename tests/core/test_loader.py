"""Direct unit tests for the adaptive load passes."""

import numpy as np
import pytest

from repro.config import EngineConfig
from repro.core.loader import (
    column_load_pass,
    external_pass,
    full_load_pass,
    partial_load_pass,
)
from repro.ranges import Condition, ValueInterval
from repro.storage.catalog import Catalog


@pytest.fixture
def entry(tmp_path):
    path = tmp_path / "t.csv"
    rows = [f"{i},{i * 2},{i * 3},{i * 4}" for i in range(100)]
    path.write_text("\n".join(rows) + "\n")
    return Catalog().attach("t", path)


CONFIG = EngineConfig()


class TestFullLoad:
    def test_loads_everything(self, entry):
        result = full_load_pass(entry, CONFIG)
        assert result.nrows == 100
        assert set(result.columns) == {"a1", "a2", "a3", "a4"}
        assert result.is_full_rows
        assert result.columns["a3"].tolist() == [i * 3 for i in range(100)]
        assert result.parse.values_parsed == 400


class TestColumnLoad:
    def test_loads_requested_only(self, entry):
        result = column_load_pass(entry, ["a2", "a4"], CONFIG)
        assert set(result.columns) == {"a2", "a4"}
        assert result.is_full_rows
        assert result.parse.values_parsed == 200

    def test_tokenizes_prefix_only(self, entry):
        result = column_load_pass(entry, ["a1"], CONFIG)
        # Early abort: one field per row.
        assert result.tokenizer.fields_tokenized == 100


class TestPartialLoad:
    def test_pushdown_filters_rows(self, entry):
        condition = Condition([("a1", ValueInterval(10, 20))])
        result = partial_load_pass(entry, ["a1", "a3"], condition, CONFIG)
        assert result.row_ids.tolist() == list(range(11, 20))
        assert result.columns["a3"].tolist() == [i * 3 for i in range(11, 20)]
        assert not result.is_full_rows

    def test_condition_on_later_column(self, entry):
        condition = Condition([("a3", ValueInterval(30, 60))])
        result = partial_load_pass(entry, ["a1", "a3"], condition, CONFIG)
        assert result.columns["a1"].tolist() == [
            i for i in range(100) if 30 < i * 3 < 60
        ]

    def test_trivial_condition_loads_all(self, entry):
        result = partial_load_pass(entry, ["a1"], Condition(), CONFIG)
        assert result.is_full_rows

    def test_pushdown_disabled_by_config(self, entry):
        cfg = EngineConfig(predicate_pushdown=False)
        condition = Condition([("a1", ValueInterval(10, 20))])
        result = partial_load_pass(entry, ["a1"], condition, cfg)
        assert result.is_full_rows  # nothing filtered during load


class TestExternalPass:
    def test_tokenizes_whole_rows(self, entry):
        result = external_pass(entry, ["a1"], CONFIG)
        assert result.tokenizer.fields_tokenized == 400  # all fields
        assert result.parse.values_parsed == 100  # but converts only a1

    def test_row_count_discovered(self, entry):
        assert external_pass(entry, ["a2"], CONFIG).nrows == 100


class TestHeaderHandling:
    def test_header_skipped_in_all_passes(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("x,y\n1,10\n2,20\n3,30\n")
        entry = Catalog().attach("h", path)
        full = full_load_pass(entry, CONFIG)
        assert full.nrows == 3
        assert full.columns["x"].tolist() == [1, 2, 3]
        partial = partial_load_pass(
            entry, ["y"], Condition([("y", ValueInterval(15, None))]), CONFIG
        )
        assert partial.columns["y"].tolist() == [20, 30]
