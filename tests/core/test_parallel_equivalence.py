"""Parallel/serial equivalence: the partitioned scan must be invisible.

Property-style guarantee of the partitioned parallel loader: for any
input file, any loading policy and any ``parallel_workers`` in {1, 2, 4},
the engine must produce identical query results, identical merged
positional maps, and identical schema-widening outcomes.  The inputs
deliberately cover the paper-shaped happy path *and* the merge hazards:
ragged field widths, non-ASCII text (character offsets != byte offsets),
blank-line runs (partitions with zero data rows), headers, and values
that force widening deep inside a single partition.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import EngineConfig, NoDBEngine
from repro.errors import ReproError

WORKERS = (1, 2, 4)


def run_engine(path, sql, workers, policy="column_loads", **cfg):
    """One query under one worker count; returns everything comparable."""
    cfg.setdefault("partition_min_bytes", 1)
    config = EngineConfig(policy=policy, parallel_workers=workers, **cfg)
    engine = NoDBEngine(config)
    engine.attach("r", path)
    try:
        result = engine.query(sql)
    except ReproError as exc:
        engine.close()
        return {"error": type(exc).__name__}
    entry = engine.catalog.get("r")
    pmap = entry.positional_map
    out = {
        "rows": result.rows(),
        "schema": engine.schema_of("r"),
        "nrows": entry.table.nrows if entry.table is not None else None,
        "rows_scanned": engine.stats.last().tokenizer.rows_scanned,
        "row_offsets": None
        if pmap.row_offsets is None
        else pmap.row_offsets.tolist(),
        "known_columns": pmap.known_columns(),
        "field_offsets": {
            c: pmap.field_offsets[c].tolist() for c in pmap.known_columns()
        },
        "field_ends": {
            c: pmap.field_ends[c].tolist() for c in sorted(pmap.field_ends)
        },
        "geometry": pmap.text_geometry,
        "partitions": engine.stats.last().parallel_partitions,
    }
    engine.close()
    return out


def assert_equivalent(path, sql, policy="column_loads", expect_parallel=True, **cfg):
    outs = {w: run_engine(path, sql, w, policy=policy, **cfg) for w in WORKERS}
    serial = outs[1]
    for w in (2, 4):
        if "error" in serial:
            assert outs[w] == serial, f"workers={w} diverged for {policy}: {sql}"
            continue
        assert outs[w] == {**serial, "partitions": outs[w]["partitions"]}, (
            f"workers={w} diverged for {policy}: {sql}"
        )
        if expect_parallel:
            assert outs[w]["partitions"] >= 2
    if "error" not in serial:
        assert serial["partitions"] == 0
    return serial


def write(tmp_path, name, lines):
    path = tmp_path / name
    path.write_text("\n".join(lines) + "\n")
    return path


# ---------------------------------------------------------------------------
# property-style random tables
# ---------------------------------------------------------------------------


def random_table(seed: int) -> list[str]:
    """A deterministic random table mixing the merge hazards."""
    rng = random.Random(seed)
    ncols = rng.randint(2, 5)
    words = ["héllo", "wörld", "日本語", "x", "data🎉", "plain", ""]
    lines = []
    if seed % 2:
        lines.append(",".join(f"col{i}" for i in range(ncols)))
    col_kind = [rng.choice(["int", "float", "str"]) for _ in range(ncols)]
    for i in range(rng.randint(150, 400)):
        fields = []
        for kind in col_kind:
            if kind == "int":
                fields.append(str(rng.randint(-10**rng.randint(1, 9), 10**9)))
            elif kind == "float":
                fields.append(f"{rng.uniform(-1e4, 1e4):.{rng.randint(1, 8)}f}")
            else:
                fields.append(rng.choice(words) + str(i))
        lines.append(",".join(fields))
        if rng.random() < 0.05:
            lines.extend([""] * rng.randint(1, 15))
    return lines


@pytest.mark.parametrize("seed", [3, 4, 7, 12, 19])
def test_random_tables_equivalent(tmp_path, seed):
    path = write(tmp_path, f"r{seed}.csv", random_table(seed))
    serial = assert_equivalent(path, "select count(*) from r")
    assert serial["nrows"] is not None


@pytest.mark.parametrize("policy", ["column_loads", "fullload", "external", "partial_v1", "partial_v2"])
def test_every_file_policy_equivalent(tmp_path, policy):
    rng = random.Random(99)
    lines = [f"{rng.randint(0, 10000)},{rng.uniform(0, 100):.3f},{i}" for i in range(600)]
    path = write(tmp_path, "r.csv", lines)
    assert_equivalent(
        path,
        "select sum(a1), avg(a2), count(*) from r where a1 > 100 and a1 < 9000",
        policy=policy,
    )


# ---------------------------------------------------------------------------
# widening outcomes
# ---------------------------------------------------------------------------


def test_int_to_float_widening_equivalent(tmp_path):
    lines = [f"{i},{i * 2}" for i in range(300)]
    lines[257] = "3.25,514"  # float deep in an int-sampled column
    path = write(tmp_path, "r.csv", lines)
    serial = assert_equivalent(path, "select sum(a1) from r")
    assert serial["schema"][0] == ("a1", "float64")


def test_int_to_str_widening_equivalent(tmp_path):
    # A stray string forces the whole column to str in every variant; the
    # parallel merge must rebuild the exact raw text for partitions that
    # had already parsed their slice numerically.
    lines = [f"{i:04d},{i}" for i in range(400)]  # zero-padded: "0007"
    lines[391] = "oops,391"
    path = write(tmp_path, "r.csv", lines)
    serial = assert_equivalent(path, "select count(*) from r")
    assert serial["schema"][0] == ("a1", "str")


def test_str_widening_preserves_exact_text(tmp_path):
    lines = [f"{i:04d},{i}" for i in range(300)]
    lines[250] = "not-a-number,250"
    path = write(tmp_path, "r.csv", lines)
    values = {}
    for w in WORKERS:
        engine = NoDBEngine(
            EngineConfig(parallel_workers=w, partition_min_bytes=1)
        )
        engine.attach("r", path)
        engine.query("select count(*) from r")  # loads (and widens) a1
        pc = engine.catalog.get("r").table.columns["a1"]
        values[w] = pc.values.tolist()
        engine.close()
    # zero-padded text must survive (a numeric round-trip would drop it)
    assert values[1][7] == "0007"
    assert values[1] == values[2] == values[4]


def test_pushdown_widening_equivalent(tmp_path):
    lines = [f"{i},{i * 3}" for i in range(300)]
    lines[222] = "222.75,666"  # widens during predicate evaluation
    path = write(tmp_path, "r.csv", lines)
    serial = assert_equivalent(
        path,
        "select sum(a2) from r where a1 > 10 and a1 < 250",
        policy="partial_v2",
    )
    assert serial["schema"][0] == ("a1", "float64")


# ---------------------------------------------------------------------------
# structural edge cases
# ---------------------------------------------------------------------------


def test_blank_line_runs_make_empty_partitions(tmp_path):
    lines = []
    for i in range(120):
        lines.append(f"{i},{i % 5}")
        if i % 8 == 0:
            lines.extend([""] * 40)  # long blank runs: some partitions empty
    path = write(tmp_path, "r.csv", lines)
    assert_equivalent(path, "select sum(a1), count(*) from r where a2 > 1")


def test_non_ascii_with_header_equivalent(tmp_path):
    rng = random.Random(5)
    words = ["héllo", "wörld", "日本語データ", "émoji🎉"]
    lines = ["name,val"] + [
        f"{rng.choice(words)}{i},{i}" for i in range(500)
    ]
    path = write(tmp_path, "r.csv", lines)
    serial = assert_equivalent(path, "select count(*) from r where val > 100")
    # non-ASCII text: char offsets are not byte offsets -> not sliceable
    assert serial["geometry"][0] > serial["geometry"][1]


def test_ragged_rows_error_identically(tmp_path):
    lines = [f"{i},{i}" for i in range(200)]
    lines[150] = "lonely"
    path = write(tmp_path, "r.csv", lines)
    serial = assert_equivalent(
        path, "select sum(a2) from r", expect_parallel=False
    )
    assert serial == {"error": "FlatFileError"}


def test_crlf_rows_equivalent(tmp_path):
    path = tmp_path / "r.csv"
    path.write_text("\r\n".join(f"{i},{i * 2}" for i in range(300)) + "\r\n")
    assert_equivalent(path, "select sum(a1), max(a2) from r")


def test_small_file_degrades_to_serial(tmp_path):
    path = write(tmp_path, "r.csv", [f"{i},{i}" for i in range(50)])
    out = run_engine(
        path, "select sum(a1) from r", 4, partition_min_bytes=1 << 20
    )
    assert out["partitions"] == 0  # below two minimum-size partitions


def test_parallel_cold_then_warm_selective_path(tmp_path):
    """A parallel cold pass must teach the map well enough that the next
    query takes the selective-read fast path, exactly like serial."""
    lines = [f"{i},{i * 2},{i * 3},{i * 4}" for i in range(3000)]
    path = write(tmp_path, "r.csv", lines)
    engine = NoDBEngine(
        EngineConfig(
            policy="partial_v1", parallel_workers=4, partition_min_bytes=1
        )
    )
    engine.attach("r", path)
    # predicate and projection share a column, so the cold pass learns its
    # slices for every row — the precondition for a selective repeat
    first = engine.query("select sum(a1) from r where a1 > 10 and a1 < 2000")
    assert engine.stats.last().parallel_partitions >= 2
    again = engine.query("select sum(a1) from r where a1 > 10 and a1 < 2000")
    assert again.rows() == first.rows()
    # warm repeat goes selective: strictly less than the whole file
    assert engine.stats.last().file_bytes_read < path.stat().st_size
    engine.close()


def test_forkserver_start_method_equivalent(tmp_path):
    """The thread-safe start method must give the same answers as fork."""
    path = write(tmp_path, "r.csv", [f"{i},{i * 2}" for i in range(400)])
    sql = "select sum(a1), max(a2) from r"
    default = run_engine(path, sql, 2)
    forkserver = run_engine(path, sql, 2, parallel_start_method="forkserver")
    assert forkserver == default
    assert forkserver["partitions"] == 2


def test_result_stats_expose_partitions(tmp_path):
    path = write(tmp_path, "r.csv", [f"{i},{i}" for i in range(500)])
    engine = NoDBEngine(EngineConfig(parallel_workers=2, partition_min_bytes=1))
    engine.attach("r", path)
    result = engine.query("select sum(a1) from r")
    assert result.stats["parallel_partitions"] == 2
    engine.close()


def test_parallel_store_contents_match_serial(tmp_path):
    rng = random.Random(11)
    lines = [f"{rng.randint(0, 999)},{rng.uniform(0, 1):.6f}" for _ in range(800)]
    path = write(tmp_path, "r.csv", lines)
    arrays = {}
    for w in (1, 4):
        engine = NoDBEngine(
            EngineConfig(parallel_workers=w, partition_min_bytes=1)
        )
        engine.attach("r", path)
        engine.query("select sum(a1), sum(a2) from r")
        table = engine.catalog.get("r").table
        arrays[w] = {
            name: pc.values.copy() for name, pc in table.columns.items()
        }
        engine.close()
    assert set(arrays[1]) == set(arrays[4])
    for name in arrays[1]:
        np.testing.assert_array_equal(arrays[1][name], arrays[4][name])
