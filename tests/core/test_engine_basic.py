"""End-to-end engine tests: attach, query, stats, explain, lifecycle."""

import numpy as np
import pytest

from repro import CatalogError, EngineConfig, NoDBEngine
from repro.workload import TableSpec, generate_columns, materialize_csv


class TestZeroInitialization:
    def test_attach_reads_nothing(self, engine_factory):
        engine = engine_factory("column_loads")
        entry = engine.catalog.get("r")
        assert entry.file.stats.bytes_read == 0
        assert entry.schema is None

    def test_tables_listing(self, engine_factory):
        assert engine_factory().tables() == ["r"]

    def test_schema_of_triggers_bounded_inference(self, engine_factory):
        engine = engine_factory()
        schema = engine.schema_of("r")
        assert schema == [("a1", "int64"), ("a2", "int64"), ("a3", "int64"), ("a4", "int64")]
        entry = engine.catalog.get("r")
        assert entry.file.stats.bytes_read < entry.file.size_bytes()

    def test_detach(self, engine_factory):
        engine = engine_factory()
        engine.detach("r")
        assert engine.tables() == []
        with pytest.raises(CatalogError):
            engine.query("select a1 from r")


class TestQueryCorrectness:
    def test_aggregate_matches_numpy(self, engine_factory, small_columns):
        engine = engine_factory("column_loads")
        r = engine.query(
            "select sum(a1), count(*) from r where a1 > 100 and a1 < 300"
        )
        a1 = small_columns[0]
        mask = (a1 > 100) & (a1 < 300)
        assert r.rows()[0] == (a1[mask].sum(), mask.sum())

    def test_projection_matches_numpy(self, engine_factory, small_columns):
        engine = engine_factory("column_loads")
        r = engine.query("select a1, a3 from r where a1 < 10 order by a1")
        a1, a3 = small_columns[0], small_columns[2]
        order = np.argsort(a1[a1 < 10])
        assert r.column("a1").tolist() == sorted(a1[a1 < 10].tolist())
        assert r.column("a3").tolist() == a3[a1 < 10][order].tolist()

    def test_repeat_query_identical(self, engine_factory):
        engine = engine_factory("column_loads")
        sql = "select avg(a2) from r where a1 > 50 and a1 < 450"
        assert engine.query(sql).approx_equal(engine.query(sql))

    def test_mixed_type_table(self, mixed_csv):
        engine = NoDBEngine()
        engine.attach("m", mixed_csv)
        r = engine.query("select name, price from m where qty >= 30 order by price")
        assert r.column("name").tolist() == ["cherry", "elderberry", "date"]
        engine.close()

    def test_group_by_through_engine(self, mixed_csv):
        engine = NoDBEngine()
        engine.attach("m", mixed_csv)
        r = engine.query(
            "select qty / 10 as bucket, count(*) as n from m group by qty / 10 "
            "order by bucket limit 3"
        )
        assert r.column("n").tolist() == [1, 1, 1]
        engine.close()


class TestStatsAndExplain:
    def test_query_stats_recorded(self, engine_factory):
        engine = engine_factory("column_loads")
        engine.query("select sum(a1) from r")
        engine.query("select sum(a1) from r")
        assert len(engine.stats.queries) == 2
        first, second = engine.stats.queries
        assert first.went_to_file and not first.served_from_store
        assert second.served_from_store and not second.went_to_file
        assert first.file_bytes_read > 0
        assert second.file_bytes_read == 0
        assert first.rows_loaded == 500

    def test_result_stats_attached(self, engine_factory):
        engine = engine_factory()
        r = engine.query("select count(*) from r")
        assert r.stats["policy"] == "column_loads"
        assert r.stats["elapsed_s"] > 0

    def test_explain_before_and_after(self, engine_factory):
        engine = engine_factory("column_loads")
        sql = "select sum(a1) from r where a1 > 5 and a1 < 50"
        before = engine.explain(sql)
        assert "nothing loaded yet" in before
        engine.query(sql)
        after = engine.explain(sql)
        assert "fully loaded" in after

    def test_summary_line(self, engine_factory):
        engine = engine_factory()
        engine.query("select count(*) from r")
        line = engine.stats.last().summary()
        assert "src=" in line


class TestContextManager:
    def test_with_statement(self, small_csv):
        with NoDBEngine(EngineConfig(policy="splitfiles")) as engine:
            engine.attach("r", small_csv)
            engine.query("select sum(a2) from r")
            split_dir = engine.config.splitfile_dir
            assert split_dir is not None and any(split_dir.iterdir())
        assert engine.config.splitfile_dir is None  # cleaned up


class TestMultiTable:
    def test_join_through_engine(self, tmp_path):
        from repro.workload.generator import materialize_join_pair

        lp, rp = materialize_join_pair(300, tmp_path / "l.csv", tmp_path / "r.csv")
        engine = NoDBEngine()
        engine.attach("l", lp)
        engine.attach("rt", rp)
        r = engine.query(
            "select count(*) from l join rt on l.a1 = rt.a1"
        )
        assert r.scalar() == 300  # perfect 1-to-1 join
        engine.close()
