"""The selective-read fast path: byte savings and result equivalence.

The positional map is the paper's "table of contents over the flat files"
(section 4.1.5).  Once it knows every row and field offset a pass needs,
``run_pass`` must stop re-reading the whole file: a repeat query reads only
the byte ranges of the fields it touches, strictly less than the file.
These tests pin both halves of that promise — the bytes saved *and* the
answers staying identical to the full-scan route.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import EngineConfig, NoDBEngine
from repro.config import POLICIES
from repro.core.loader import column_load_pass, partial_load_pass
from repro.flatfile.tokenizer import split_rows
from repro.ranges import Condition, ValueInterval
from repro.storage.catalog import Catalog

CONFIG = EngineConfig()


def _write(path, rows, line_ending="\n"):
    path.write_text(line_ending.join(rows) + line_ending)
    return path


class TestRepeatQueryBytes:
    """Acceptance criterion: warm-map repeat query reads < file size."""

    @pytest.fixture
    def csv_file(self, tmp_path):
        rows = [",".join(str(i * 10 + j) for j in range(8)) for i in range(500)]
        return _write(tmp_path / "r.csv", rows)

    def test_partial_v1_repeat_reads_strictly_less(self, csv_file):
        engine = NoDBEngine(EngineConfig(policy="partial_v1"))
        engine.attach("r", csv_file)
        first = engine.query("select sum(a2) from r where a2 > 100")
        cold_bytes = engine.stats.last().file_bytes_read
        second = engine.query("select sum(a2) from r where a2 > 100")
        warm_bytes = engine.stats.last().file_bytes_read
        size = csv_file.stat().st_size
        assert cold_bytes == size  # first touch scans everything
        assert 0 < warm_bytes < size  # the map pays off
        assert engine.stats.last().went_to_file
        assert first.approx_equal(second)
        engine.close()

    def test_toggle_off_restores_full_scans(self, csv_file):
        engine = NoDBEngine(
            EngineConfig(policy="partial_v1", selective_reads=False)
        )
        engine.attach("r", csv_file)
        engine.query("select sum(a2) from r where a2 > 100")
        engine.query("select sum(a2) from r where a2 > 100")
        assert engine.stats.last().file_bytes_read == csv_file.stat().st_size
        engine.close()

    def test_column_load_after_full_row_scan_is_selective(self, csv_file):
        """A query on the last column teaches the map every field range;
        loading any other column afterwards touches only that column."""
        engine = NoDBEngine(EngineConfig(policy="column_loads"))
        engine.attach("r", csv_file)
        engine.query("select sum(a8) from r")  # scans whole rows, learns all
        engine.query("select sum(a3) from r")  # new column: selective load
        q = engine.stats.last()
        assert q.went_to_file
        assert 0 < q.file_bytes_read < csv_file.stat().st_size
        engine.close()

    def test_reload_after_eviction_is_selective(self, csv_file):
        """Eviction drops column data but not the map: reloads stay cheap."""
        engine = NoDBEngine(
            EngineConfig(policy="column_loads", memory_budget_bytes=5000)
        )
        engine.attach("r", csv_file)
        engine.query("select sum(a8) from r")  # learn everything
        engine.query("select sum(a3) from r")  # evicts a8 under the budget
        engine.query("select sum(a8) from r")  # reload of a8
        q = engine.stats.last()
        assert q.went_to_file
        assert 0 < q.file_bytes_read < csv_file.stat().st_size
        engine.close()


class TestEquivalence:
    """Selective route answers == full-scan answers == split_rows truth."""

    @pytest.mark.parametrize(
        "delimiter,line_ending,header",
        [
            (",", "\n", False),
            (";", "\n", False),
            ("|", "\n", True),
            (",", "\r\n", False),
            (",", "\r\n", True),
        ],
    )
    def test_loader_matches_ground_truth(
        self, tmp_path, delimiter, line_ending, header
    ):
        rows = [
            delimiter.join(str(i * 7 + j) for j in range(4)) for i in range(60)
        ]
        if header:
            rows.insert(0, delimiter.join(["w", "x", "y", "z"]))
        path = _write(tmp_path / "t.csv", rows, line_ending)
        entry = Catalog().attach("t", path, delimiter=delimiter)
        names = ["w", "x", "y", "z"] if header else ["a1", "a2", "a3", "a4"]

        cold = column_load_pass(entry, [names[2]], CONFIG)
        warm = column_load_pass(entry, [names[2]], CONFIG)
        # The second pass must have gone selective: fewer bytes than size.
        assert entry.file.stats.full_scans == 1

        truth_rows = split_rows(path.read_text(), delimiter)
        if header:
            truth_rows = truth_rows[1:]
        truth = [int(r[2]) for r in truth_rows]
        assert cold.columns[names[2]].tolist() == truth
        assert warm.columns[names[2]].tolist() == truth
        assert warm.nrows == cold.nrows == len(truth)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_engine_answers_identical_with_and_without_fast_path(
        self, tmp_path, policy
    ):
        rows = [",".join(str(i * 3 + j) for j in range(5)) for i in range(200)]
        path = _write(tmp_path / "t.csv", rows)
        sqls = [
            "select sum(a2), avg(a4) from t where a2 > 30 and a2 < 400",
            "select sum(a2), avg(a4) from t where a2 > 30 and a2 < 400",
            "select count(*) from t",
            "select min(a1), max(a5) from t where a4 > 100",
        ]
        results = {}
        for selective in (True, False):
            engine = NoDBEngine(
                EngineConfig(policy=policy, selective_reads=selective)
            )
            engine.attach("t", path)
            results[selective] = [engine.query(s) for s in sqls]
            engine.close()
        for with_fast, without_fast in zip(results[True], results[False]):
            assert with_fast.approx_equal(without_fast)

    def test_selective_pushdown_filters_like_scan_route(self, tmp_path):
        rows = [f"{i},{i * 2},{i * 3}" for i in range(100)]
        path = _write(tmp_path / "t.csv", rows)
        entry = Catalog().attach("t", path)
        # Teach the map every field range with one full-row scan (a
        # predicate pass abandons rows early and cannot learn a3 itself).
        column_load_pass(entry, ["a3"], CONFIG)
        condition = Condition([("a1", ValueInterval(10, 20))])
        warm = partial_load_pass(entry, ["a1", "a3"], condition, CONFIG)
        assert warm.row_ids.tolist() == list(range(11, 20))
        assert warm.columns["a3"].tolist() == [i * 3 for i in range(11, 20)]
        assert warm.tokenizer.rows_scanned == 100
        assert warm.tokenizer.rows_emitted == 9
        assert warm.tokenizer.rows_abandoned == 91
        # The partial pass went selective: only the teaching pass scanned.
        assert entry.file.stats.full_scans == 1

    def test_predicate_on_later_column_selective(self, tmp_path):
        rows = [f"{i},{i * 2},{i * 3}" for i in range(100)]
        path = _write(tmp_path / "t.csv", rows)
        entry = Catalog().attach("t", path)
        condition = Condition([("a3", ValueInterval(30, 60))])
        partial_load_pass(entry, ["a1", "a3"], condition, CONFIG)
        warm = partial_load_pass(entry, ["a1", "a3"], condition, CONFIG)
        assert warm.columns["a1"].tolist() == [
            i for i in range(100) if 30 < i * 3 < 60
        ]


class TestSafetyGates:
    def test_non_ascii_file_never_goes_selective(self, tmp_path):
        rows = ["1,ä", "2,ö", "3,ü"] + [f"{i},x{i}" for i in range(50)]
        path = _write(tmp_path / "t.csv", rows)
        entry = Catalog().attach("t", path)
        column_load_pass(entry, ["a2"], CONFIG)
        assert not entry.positional_map.sliceable
        column_load_pass(entry, ["a2"], CONFIG)
        # Both passes were full scans: offsets are char-based, file is not.
        assert entry.file.stats.full_scans == 2

    def test_map_disabled_never_goes_selective(self, tmp_path):
        rows = [f"{i},{i}" for i in range(50)]
        path = _write(tmp_path / "t.csv", rows)
        entry = Catalog().attach("t", path)
        cfg = EngineConfig(use_positional_map=False)
        column_load_pass(entry, ["a1"], cfg)
        column_load_pass(entry, ["a1"], cfg)
        assert entry.file.stats.full_scans == 2

    def test_file_edit_invalidates_fast_path(self, tmp_path):
        import time

        path = _write(tmp_path / "t.csv", ["1,2", "3,4"])
        engine = NoDBEngine(EngineConfig(policy="partial_v1"))
        engine.attach("t", path)
        assert engine.query("select sum(a1) from t where a1 > 0").scalar() == 4
        time.sleep(0.02)
        _write(path, ["10,2", "30,4", "50,6"])
        assert engine.query("select sum(a1) from t where a1 > 0").scalar() == 90
        engine.close()

    def test_wide_table_selection_prefers_full_scan(self, tmp_path):
        """Selecting (nearly) every byte falls back to one sequential read."""
        rows = [f"{i},{i}" for i in range(50)]
        path = _write(tmp_path / "t.csv", rows)
        entry = Catalog().attach("t", path)
        column_load_pass(entry, ["a1", "a2"], CONFIG)
        assert entry.positional_map.can_slice(0)
        assert entry.positional_map.can_slice(1)
        column_load_pass(entry, ["a1", "a2"], CONFIG)
        # Both columns cover ~the whole file; windowed reads would not
        # beat a single sequential scan, so the loader does not bother.
        assert entry.file.stats.full_scans == 2
