"""Engine vs NumPy brute force on messy data (duplicates, negatives, floats).

The paper's tables are permutations of unique ints; real files are not.
This property suite generates arbitrary integer/float tables — duplicate
values, negative values, constant columns — and checks the engine against
straight NumPy evaluation for filters, aggregates and group-bys.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EngineConfig, NoDBEngine
from repro.flatfile.writer import write_csv


@st.composite
def messy_tables(draw):
    nrows = draw(st.integers(1, 60))
    ints = draw(
        st.lists(st.integers(-50, 50), min_size=nrows, max_size=nrows)
    )
    floats = draw(
        st.lists(
            st.floats(-100, 100, allow_nan=False, allow_infinity=False),
            min_size=nrows,
            max_size=nrows,
        )
    )
    # Force the float column to stay float even if hypothesis picks ints.
    floats = [f + 0.5 for f in floats]
    groups = draw(
        st.lists(st.integers(0, 4), min_size=nrows, max_size=nrows)
    )
    return (
        np.array(ints, dtype=np.int64),
        np.array(floats, dtype=np.float64),
        np.array(groups, dtype=np.int64),
    )


def make_engine(tmp_path_factory, cols, policy):
    path = tmp_path_factory.mktemp("bf") / "t.csv"
    write_csv(path, cols)
    engine = NoDBEngine(EngineConfig(policy=policy))
    engine.attach("t", path)
    return engine


class TestBruteForce:
    @settings(max_examples=30, deadline=None)
    @given(cols=messy_tables(), lo=st.integers(-60, 60), width=st.integers(0, 80))
    def test_filtered_aggregates(self, cols, lo, width, tmp_path_factory):
        ints, floats, _ = cols
        engine = make_engine(tmp_path_factory, cols, "partial_v2")
        try:
            r = engine.query(
                f"select count(*), sum(a1) from t "
                f"where a1 >= {lo} and a1 <= {lo + width}"
            )
            mask = (ints >= lo) & (ints <= lo + width)
            count, total = r.rows()[0]
            assert count == mask.sum()
            if mask.any():
                assert total == ints[mask].sum()
            else:
                assert np.isnan(total)
        finally:
            engine.close()

    @settings(max_examples=20, deadline=None)
    @given(cols=messy_tables())
    def test_group_by_brute_force(self, cols, tmp_path_factory):
        ints, floats, groups = cols
        engine = make_engine(tmp_path_factory, cols, "column_loads")
        try:
            r = engine.query(
                "select a3, count(*) as n, sum(a1) as s, min(a2) as m "
                "from t group by a3 order by a3"
            )
            expected_keys = np.unique(groups)
            assert r.column("a3").tolist() == expected_keys.tolist()
            for key, n, s, m in zip(
                r.column("a3"), r.column("n"), r.column("s"), r.column("m")
            ):
                mask = groups == key
                assert n == mask.sum()
                assert s == ints[mask].sum()
                assert m == pytest.approx(floats[mask].min())
        finally:
            engine.close()

    @settings(max_examples=20, deadline=None)
    @given(cols=messy_tables(), threshold=st.floats(-50, 50))
    def test_float_predicates(self, cols, threshold, tmp_path_factory):
        ints, floats, _ = cols
        engine = make_engine(tmp_path_factory, cols, "splitfiles")
        try:
            got = engine.query(
                f"select count(*) from t where a2 > {threshold!r}"
            ).scalar()
            assert got == (floats > threshold).sum()
        finally:
            engine.close()
