"""Tests for flat-file edit detection and derived-data invalidation (5.4).

"Every time a flat file is updated, we can simply drop all relevant tables
that have been created with data from this file."
"""

import time

import pytest

from repro import EngineConfig, NoDBEngine, StaleFileError


@pytest.fixture
def editable_csv(tmp_path):
    path = tmp_path / "edit.csv"
    path.write_text("\n".join(f"{i},{i * 10}" for i in range(50)) + "\n")
    return path


def edit(path, nrows=60):
    time.sleep(0.02)  # ensure a distinct mtime
    path.write_text("\n".join(f"{i},{i * 100}" for i in range(nrows)) + "\n")


class TestAutoInvalidate:
    def test_edited_file_reflected_in_answers(self, editable_csv):
        engine = NoDBEngine(EngineConfig(policy="column_loads"))
        engine.attach("t", editable_csv)
        before = engine.query("select sum(a2) from t").scalar()
        edit(editable_csv)
        after = engine.query("select sum(a2) from t").scalar()
        assert before == sum(i * 10 for i in range(50))
        assert after == sum(i * 100 for i in range(60))
        engine.close()

    def test_row_count_change_supported(self, editable_csv):
        engine = NoDBEngine(EngineConfig(policy="partial_v2"))
        engine.attach("t", editable_csv)
        engine.query("select count(*) from t")
        edit(editable_csv, nrows=75)
        assert engine.query("select count(*) from t").scalar() == 75
        engine.close()

    def test_store_dropped_on_edit(self, editable_csv):
        engine = NoDBEngine(EngineConfig(policy="column_loads"))
        engine.attach("t", editable_csv)
        engine.query("select sum(a1) from t")
        assert engine.catalog.get("t").table is not None
        edit(editable_csv)
        engine.query("select sum(a1) from t")
        q = engine.stats.last()
        assert q.went_to_file  # reload happened
        engine.close()

    def test_split_files_invalidated(self, editable_csv, tmp_path):
        engine = NoDBEngine(
            EngineConfig(policy="splitfiles", splitfile_dir=tmp_path / "s")
        )
        engine.attach("t", editable_csv)
        engine.query("select sum(a2) from t")
        split_files = list((tmp_path / "s").iterdir())
        assert split_files
        edit(editable_csv)
        result = engine.query("select sum(a2) from t")
        assert result.scalar() == sum(i * 100 for i in range(60))
        engine.close()

    def test_binary_store_invalidated(self, editable_csv, tmp_path):
        cfg = EngineConfig(
            policy="fullload",
            persist_loads=True,
            binary_store_dir=tmp_path / "bin",
        )
        engine = NoDBEngine(cfg)
        engine.attach("t", editable_csv)
        engine.query("select sum(a2) from t")
        assert engine.binary_store.has("t", "a2")
        edit(editable_csv)
        assert engine.query("select sum(a2) from t").scalar() == sum(
            i * 100 for i in range(60)
        )
        engine.close()

    def test_memory_manager_forgets_dropped_fragments(self, editable_csv):
        engine = NoDBEngine(EngineConfig(policy="column_loads"))
        engine.attach("t", editable_csv)
        engine.query("select sum(a1) from t")
        assert engine.memory.resident_bytes > 0
        edit(editable_csv)
        engine.query("select sum(a1) from t")
        # No stale fragments: resident equals the freshly loaded column.
        assert len(engine.memory.fragments) == 1
        engine.close()


class TestManualMode:
    def test_stale_raises_when_auto_disabled(self, editable_csv):
        engine = NoDBEngine(
            EngineConfig(policy="column_loads", auto_invalidate=False)
        )
        engine.attach("t", editable_csv)
        engine.query("select sum(a1) from t")
        edit(editable_csv)
        with pytest.raises(StaleFileError):
            engine.query("select sum(a1) from t")
        engine.close()

    def test_unloaded_table_never_stale(self, editable_csv):
        engine = NoDBEngine(
            EngineConfig(policy="column_loads", auto_invalidate=False)
        )
        engine.attach("t", editable_csv)
        edit(editable_csv)
        engine.query("select sum(a1) from t")  # first load after the edit: fine
        engine.close()
