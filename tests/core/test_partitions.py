"""Unit tests for the row-range partition planner and its cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import EngineConfig
from repro.core.partitions import (
    Partition,
    PartitionIndex,
    partitions_for,
    plan_partitions,
)
from repro.errors import FlatFileError
from repro.storage.catalog import Catalog


def attach(tmp_path, content: str, **config_kwargs):
    path = tmp_path / "t.csv"
    path.write_text(content)
    entry = Catalog().attach("t", path)
    return entry, EngineConfig(**config_kwargs), path


def make_csv(nrows: int, row: str = "12345,67890") -> str:
    return "\n".join([row] * nrows) + "\n"


class TestPlanPartitions:
    def test_partitions_tile_the_file_exactly(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(make_csv(1000))
        size = path.stat().st_size
        pindex = plan_partitions(path, size, 4)
        assert pindex.partitions[0].byte_start == 0
        assert pindex.partitions[-1].byte_end == size
        for prev, cur in zip(pindex.partitions, pindex.partitions[1:]):
            assert prev.byte_end == cur.byte_start
        assert sum(p.nbytes for p in pindex.partitions) == size

    def test_boundaries_are_newline_aligned(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(make_csv(997, "1,22,333"))
        data = path.read_bytes()
        pindex = plan_partitions(path, len(data), 5)
        assert len(pindex) >= 2
        for p in pindex.partitions[1:]:
            assert data[p.byte_start - 1 : p.byte_start] == b"\n"

    def test_rows_never_straddle_partitions(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(make_csv(503, "abc,def,ghi"))
        data = path.read_bytes()
        pindex = plan_partitions(path, len(data), 4)
        total_rows = 0
        for p in pindex.partitions:
            chunk = data[p.byte_start : p.byte_end].decode("utf-8")
            rows = [r for r in chunk.split("\n") if r]
            assert all(r == "abc,def,ghi" for r in rows)
            total_rows += len(rows)
        assert total_rows == 503

    def test_non_ascii_partitions_decode_independently(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(make_csv(400, "日本語データ,éàü,x"))
        size = path.stat().st_size
        pindex = plan_partitions(path, size, 4)
        assert len(pindex) >= 2
        data = path.read_bytes()
        reassembled = "".join(
            data[p.byte_start : p.byte_end].decode("utf-8")
            for p in pindex.partitions
        )
        assert reassembled == path.read_text()

    def test_one_giant_line_collapses_to_one_partition(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a," + "x" * 50_000 + "\n")
        size = path.stat().st_size
        pindex = plan_partitions(path, size, 4)
        assert len(pindex) == 1
        # probes are bounded: at most one stride per candidate boundary
        assert pindex.probe_bytes <= size

    def test_probe_bytes_are_measured_not_estimated(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(make_csv(1000))
        size = path.stat().st_size
        pindex = plan_partitions(path, size, 4)
        assert 0 < pindex.probe_bytes <= size
        assert pindex.probe_calls >= len(pindex) - 1

    def test_skip_rows_only_on_first_partition(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(make_csv(900))
        size = path.stat().st_size
        pindex = plan_partitions(path, size, 3, skip_rows=1)
        assert pindex.partitions[0].skip_rows == 1
        assert all(p.skip_rows == 0 for p in pindex.partitions[1:])

    def test_nparts_must_be_positive(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(make_csv(10))
        with pytest.raises(FlatFileError):
            plan_partitions(path, path.stat().st_size, 0)


class TestPartitionsFor:
    def test_serial_config_gets_no_partitions(self, tmp_path):
        entry, config, _ = attach(tmp_path, make_csv(1000), parallel_workers=1)
        assert partitions_for(entry, config) is None

    def test_small_file_stays_serial(self, tmp_path):
        entry, config, _ = attach(
            tmp_path,
            make_csv(100),
            parallel_workers=4,
            partition_min_bytes=1 << 20,
        )
        assert partitions_for(entry, config) is None

    def test_partition_count_capped_by_min_bytes(self, tmp_path):
        content = make_csv(1000)  # ~12 KB
        entry, config, _ = attach(
            tmp_path,
            content,
            parallel_workers=8,
            partition_min_bytes=len(content) // 3,
        )
        pindex = partitions_for(entry, config)
        assert pindex is not None
        assert len(pindex) == 3

    def test_plan_is_cached_and_invalidated(self, tmp_path):
        entry, config, path = attach(
            tmp_path, make_csv(1000), parallel_workers=2, partition_min_bytes=64
        )
        first = partitions_for(entry, config)
        assert first is not None
        assert partitions_for(entry, config) is first  # cached
        entry.invalidate()
        assert entry.partitions is None
        again = partitions_for(entry, config)
        assert again is not None and again is not first

    def test_worker_change_recomputes(self, tmp_path):
        entry, config, _ = attach(
            tmp_path, make_csv(2000), parallel_workers=2, partition_min_bytes=64
        )
        two = partitions_for(entry, config)
        config.parallel_workers = 4
        four = partitions_for(entry, config)
        assert two is not None and four is not None
        assert len(four) == 4 and len(two) == 2

    def test_probe_reads_are_accounted(self, tmp_path):
        entry, config, _ = attach(
            tmp_path, make_csv(2000), parallel_workers=4, partition_min_bytes=64
        )
        before = entry.file.stats.bytes_read
        partitions_for(entry, config)
        assert entry.file.stats.bytes_read > before

    def test_degenerate_plan_cached_without_reprobe(self, tmp_path):
        entry, config, _ = attach(
            tmp_path,
            "a," + "x" * 50_000 + "\n",
            parallel_workers=4,
            partition_min_bytes=64,
        )
        assert partitions_for(entry, config) is None  # one giant row
        after_first = entry.file.stats.bytes_read
        assert partitions_for(entry, config) is None
        assert entry.file.stats.bytes_read == after_first  # no re-probe


def test_partition_index_len():
    pindex = PartitionIndex(
        partitions=[Partition(0, 0, 10), Partition(1, 10, 20)],
        requested=2,
        file_size=20,
    )
    assert len(pindex) == 2
    assert pindex.partitions[0].nbytes == 10


def test_workers_zero_resolves_to_cpu_count():
    config = EngineConfig(parallel_workers=0)
    assert config.resolved_parallel_workers() >= 1


def test_negative_workers_rejected():
    with pytest.raises(ValueError):
        EngineConfig(parallel_workers=-1)
    with pytest.raises(ValueError):
        EngineConfig(partition_min_bytes=0)


def test_row_offsets_merge_shape(tmp_path):
    """Partition row counts must sum to the serial row count."""
    content = make_csv(777)
    path = tmp_path / "t.csv"
    path.write_text(content)
    size = path.stat().st_size
    pindex = plan_partitions(path, size, 4)
    data = path.read_bytes()
    counts = [
        len([r for r in data[p.byte_start : p.byte_end].split(b"\n") if r])
        for p in pindex.partitions
    ]
    assert sum(counts) == 777
    assert np.all(np.asarray(counts) > 0)
