"""EngineStatistics parity: vectorized and scalar tokenizer routes.

Regression guard for the work-counter contract: the vectorized kernel
must report exactly the work the scalar pass would have done — "fields
touched" counts only the fields the pass visits (early abort, pushdown
abandonment), never every delimiter the one-shot byte scan located; byte
and parse counters must match too.  If the kernel ever drifts, the
paper's figures (and the bench-regression gate asserting these counters)
would silently measure a different engine.
"""

from __future__ import annotations

import pytest

from repro import EngineConfig, NoDBEngine
from repro.workload import TableSpec, materialize_csv

QUERIES = [
    "select sum(a1) from r",  # early abort: one column
    "select a4 from r where a2 > 120",  # pushdown + scanned-over columns
    "select count(*) from r",
    "select sum(a1) from r",  # warm repeat (selective/store path)
]


@pytest.fixture(scope="module")
def csv_file(tmp_path_factory):
    root = tmp_path_factory.mktemp("veccounters")
    return materialize_csv(TableSpec(nrows=400, ncols=4, seed=311), root / "r.csv")


def _counters(path, policy: str, vectorized: bool):
    engine = NoDBEngine(
        EngineConfig(policy=policy, vectorized_tokenizer=vectorized)
    )
    try:
        engine.attach("r", path)
        out = []
        for sql in QUERIES:
            result = engine.query(sql)
            q = engine.stats.last()
            out.append(
                {
                    "sql": sql,
                    "rows": result.rows(),
                    "rows_scanned": q.tokenizer.rows_scanned,
                    "rows_emitted": q.tokenizer.rows_emitted,
                    "rows_abandoned": q.tokenizer.rows_abandoned,
                    "fields_tokenized": q.tokenizer.fields_tokenized,
                    "chars_scanned": q.tokenizer.chars_scanned,
                    "values_parsed": q.parse.values_parsed,
                    "file_bytes_read": q.file_bytes_read,
                }
            )
        return out
    finally:
        engine.close()


@pytest.mark.parametrize(
    "policy", ["column_loads", "partial_v1", "partial_v2", "external", "fullload"]
)
def test_tokenizer_counters_identical_between_routes(csv_file, policy):
    vec = _counters(csv_file, policy, vectorized=True)
    scalar = _counters(csv_file, policy, vectorized=False)
    assert vec == scalar


def test_fields_touched_counts_only_visited_columns(csv_file):
    """The one-shot delimiter scan must not inflate "fields touched"."""
    engine = NoDBEngine(EngineConfig(policy="column_loads"))
    try:
        engine.attach("r", csv_file)
        engine.query("select sum(a1) from r")
        q = engine.stats.last()
        # 400 rows x 1 needed column — not x 4 located delimiter columns.
        assert q.tokenizer.fields_tokenized == 400
    finally:
        engine.close()
