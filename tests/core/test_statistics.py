"""Tests for the statistics layer (counters behind every figure)."""

import pytest

from repro.core.statistics import EngineStatistics, QueryStats, Stopwatch
from repro.flatfile.parser import ParseStats
from repro.flatfile.tokenizer import TokenizerStats


class TestQueryStats:
    def test_summary_format(self):
        q = QueryStats(sql="select 1", policy="fullload")
        q.served_from_store = True
        q.file_bytes_read = 1234
        line = q.summary()
        assert "src=store" in line
        assert "1234" in line

    def test_tokenizer_merge(self):
        q = QueryStats()
        q.tokenizer.merge(TokenizerStats(rows_scanned=10, fields_tokenized=20))
        q.tokenizer.merge(TokenizerStats(rows_scanned=5, fields_tokenized=5))
        assert q.tokenizer.rows_scanned == 15
        assert q.tokenizer.fields_tokenized == 25

    def test_parse_merge(self):
        q = QueryStats()
        q.parse.merge(ParseStats(values_parsed=7))
        q.parse.merge(ParseStats(values_parsed=3))
        assert q.parse.values_parsed == 10


class TestEngineStatistics:
    def _q(self, bytes_read=0, parsed=0, loaded=0, store=False, file=False):
        q = QueryStats()
        q.file_bytes_read = bytes_read
        q.parse = ParseStats(values_parsed=parsed)
        q.rows_loaded = loaded
        q.served_from_store = store
        q.went_to_file = file
        return q

    def test_totals(self):
        stats = EngineStatistics()
        stats.record(self._q(bytes_read=100, parsed=10, loaded=5, file=True))
        stats.record(self._q(bytes_read=50, parsed=20, store=True))
        assert stats.total_file_bytes == 150
        assert stats.total_values_parsed == 30
        assert stats.total_rows_loaded == 5
        assert stats.queries_from_store == 1
        assert stats.queries_from_file == 1

    def test_last(self):
        stats = EngineStatistics()
        with pytest.raises(IndexError):
            stats.last()
        q = self._q()
        stats.record(q)
        assert stats.last() is q


class TestStopwatch:
    def test_laps_are_disjoint(self):
        import time

        watch = Stopwatch()
        time.sleep(0.01)
        first = watch.lap()
        second = watch.lap()
        assert first >= 0.01
        assert second < first
