"""Zone-map index unit tests: learning, skipping soundness, persistence.

The skip test must be *sound* — a zone is only skipped when no value in
it could satisfy the interval — under every combination of open/closed
bounds, int/float dtypes, and NaN placement.  The reference for
soundness is :meth:`ValueInterval.mask` itself: for any learned column
and any interval, every row the mask keeps must live in a kept zone.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.zonemaps import ColumnZones, ZoneMapIndex
from repro.ranges import ValueInterval


def _index(values: np.ndarray, zone_rows: int = 4) -> ZoneMapIndex:
    zmi = ZoneMapIndex(nrows=len(values), zone_rows=zone_rows)
    zmi.learn(0, values)
    return zmi


def _assert_sound(zmi: ZoneMapIndex, values: np.ndarray, interval: ValueInterval):
    """Every row the mask keeps must sit in a kept zone."""
    keep = zmi.zone_keep_mask(0, interval)
    if keep is None:
        return
    rows = np.nonzero(interval.mask(values))[0]
    assert keep[zmi.zone_of_rows(rows)].all(), (
        f"interval {interval!r} lost qualifying rows to a skipped zone"
    )


# ---------------------------------------------------------------------------
# construction + learning
# ---------------------------------------------------------------------------


def test_nzones_rounds_up():
    assert ZoneMapIndex(nrows=10, zone_rows=4).nzones == 3
    assert ZoneMapIndex(nrows=8, zone_rows=4).nzones == 2
    assert ZoneMapIndex(nrows=1, zone_rows=1024).nzones == 1


def test_invalid_construction_rejected():
    with pytest.raises(ValueError):
        ZoneMapIndex(nrows=0, zone_rows=4)
    with pytest.raises(ValueError):
        ZoneMapIndex(nrows=10, zone_rows=0)
    with pytest.raises(ValueError):
        ColumnZones(
            mins=np.zeros(2), maxs=np.zeros(3), nulls=np.zeros(2, dtype=np.int64)
        )


def test_learn_declines_wrong_length_and_dtype():
    zmi = ZoneMapIndex(nrows=8, zone_rows=4)
    zmi.learn(0, np.arange(7))  # wrong length
    zmi.learn(1, np.array(["a"] * 8, dtype=object))  # non-numeric
    assert not zmi.has(0) and not zmi.has(1)


def test_learn_int_column_exact_stats():
    values = np.array([5, 1, 9, 3, -2, 0, 7, 4], dtype=np.int64)
    zmi = _index(values)
    zones = zmi.columns[0]
    assert zones.mins.tolist() == [1, -2]
    assert zones.maxs.tolist() == [9, 7]
    assert zones.nulls.tolist() == [0, 0]
    assert zones.mins.dtype == np.int64  # native dtype, never rounded


def test_drop_column():
    zmi = _index(np.arange(8))
    assert zmi.has(0)
    zmi.drop_column(0)
    assert not zmi.has(0)
    assert zmi.zone_keep_mask(0, ValueInterval(lo=1)) is None


# ---------------------------------------------------------------------------
# skipping semantics
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("lo_open", (True, False))
@pytest.mark.parametrize("hi_open", (True, False))
def test_open_closed_bounds_exact_at_zone_edges(lo_open, hi_open):
    # zone 0 holds exactly [0..3], zone 1 [4..7]: bounds sitting exactly
    # on zone max/min are where open/closed logic can go wrong.
    values = np.arange(8, dtype=np.int64)
    zmi = _index(values)
    interval = ValueInterval(lo=3, hi=4, lo_open=lo_open, hi_open=hi_open)
    _assert_sound(zmi, values, interval)
    keep = zmi.zone_keep_mask(0, interval)
    # lo=3 open means zone 0 (max 3) cannot match the lower bound
    assert keep[0] == (not lo_open)
    # hi=4 open means zone 1 (min 4) cannot match the upper bound
    assert keep[1] == (not hi_open)


def test_unbounded_interval_declines():
    zmi = _index(np.arange(8))
    assert zmi.zone_keep_mask(0, ValueInterval.unbounded()) is None


def test_non_numeric_and_nan_bounds_decline():
    zmi = _index(np.arange(8))
    assert zmi.zone_keep_mask(0, ValueInterval(lo="x")) is None
    assert zmi.zone_keep_mask(0, ValueInterval(lo=math.nan)) is None
    assert zmi.zone_keep_mask(0, ValueInterval(lo=True)) is None


def test_half_bounded_intervals_skip():
    values = np.arange(16, dtype=np.int64)
    zmi = _index(values)
    # zones hold [0..3] [4..7] [8..11] [12..15]; lo=11 strict excludes
    # zone 2 (max exactly 11)
    keep = zmi.zone_keep_mask(0, ValueInterval(lo=11))
    assert keep.tolist() == [False, False, False, True]
    keep = zmi.zone_keep_mask(0, ValueInterval(hi=4, hi_open=False))
    assert keep.tolist() == [True, True, False, False]


def test_skipping_sound_on_random_data():
    rng = np.random.default_rng(7)
    values = rng.integers(-50, 50, size=100).astype(np.int64)
    zmi = _index(values, zone_rows=8)
    for lo, hi in [(-10, 10), (-60, -49), (49, 60), (0, 0), (-3, 3)]:
        for lo_open in (True, False):
            for hi_open in (True, False):
                _assert_sound(
                    zmi,
                    values,
                    ValueInterval(lo=lo, hi=hi, lo_open=lo_open, hi_open=hi_open),
                )


def test_int64_beyond_float53_precision_not_misskipped():
    # 2**60 and 2**60 + 1 collapse to the same float64; native-dtype
    # stats must keep them distinguishable.
    base = 2**60
    values = np.array([base, base + 1, base + 2, base + 3], dtype=np.int64)
    zmi = _index(values, zone_rows=2)
    keep = zmi.zone_keep_mask(0, ValueInterval(lo=base, hi=base + 2))
    assert keep.tolist() == [True, False]
    _assert_sound(zmi, values, ValueInterval(lo=base, hi=base + 2))


# ---------------------------------------------------------------------------
# NaN semantics (satellite: never skip a zone that could match)
# ---------------------------------------------------------------------------


def test_nan_mixed_zone_keeps_finite_bounds():
    values = np.array([1.0, math.nan, 3.0, math.nan, 100.0, 101.0, 102.0, 103.0])
    zmi = _index(values)
    zones = zmi.columns[0]
    assert zones.mins[0] == 1.0 and zones.maxs[0] == 3.0  # NaNs ignored
    assert zones.nulls.tolist() == [2, 0]
    # finite values in the NaN-mixed zone must stay findable
    _assert_sound(zmi, values, ValueInterval(lo=0.0, hi=4.0))
    keep = zmi.zone_keep_mask(0, ValueInterval(lo=0.0, hi=4.0))
    assert keep.tolist() == [True, False]


def test_all_nan_zone_skipped_exactly_like_the_mask():
    values = np.array([math.nan] * 4 + [1.0, 2.0, 3.0, 4.0])
    zmi = _index(values)
    # Any bounded interval rejects every NaN row via the mask; the
    # all-NaN zone's NaN stats compare False and skip it — same answer.
    for interval in (
        ValueInterval(lo=0.0),
        ValueInterval(hi=10.0),
        ValueInterval(lo=-1.0, hi=1.5, lo_open=False, hi_open=False),
    ):
        _assert_sound(zmi, values, interval)
        keep = zmi.zone_keep_mask(0, interval)
        assert not keep[0], "all-NaN zone must be skipped under any bound"


# ---------------------------------------------------------------------------
# persistence round-trip
# ---------------------------------------------------------------------------


def test_manifest_round_trip_int_and_float():
    zmi = ZoneMapIndex(nrows=10, zone_rows=4)
    zmi.learn(0, np.arange(10, dtype=np.int64) * 3)
    zmi.learn(2, np.array([0.5, math.nan, 2.5, 3.5, math.nan] * 2))
    back = ZoneMapIndex.from_manifest(zmi.as_manifest())
    assert back.nrows == 10 and back.zone_rows == 4
    assert sorted(back.columns) == [0, 2]
    for col in (0, 2):
        a, b = zmi.columns[col], back.columns[col]
        assert a.mins.dtype == b.mins.dtype
        np.testing.assert_array_equal(a.nulls, b.nulls)
        for x, y in ((a.mins, b.mins), (a.maxs, b.maxs)):
            np.testing.assert_array_equal(np.isnan(x) if x.dtype.kind == "f" else x,
                                          np.isnan(y) if y.dtype.kind == "f" else y)
            finite = ~np.isnan(x) if x.dtype.kind == "f" else np.ones(len(x), bool)
            np.testing.assert_array_equal(x[finite], y[finite])


def test_manifest_round_trip_is_json_safe():
    import json

    zmi = ZoneMapIndex(nrows=6, zone_rows=4)
    zmi.learn(1, np.array([math.nan, 1.0, 2.0, math.nan, math.nan, math.nan]))
    wire = json.loads(json.dumps(zmi.as_manifest()))
    back = ZoneMapIndex.from_manifest(wire)
    assert math.isnan(back.columns[1].mins[1])  # all-NaN zone survives


def test_damaged_manifest_raises():
    zmi = ZoneMapIndex(nrows=8, zone_rows=4)
    zmi.learn(0, np.arange(8))
    good = zmi.as_manifest()
    bad = {**good, "columns": {"0": {**good["columns"]["0"], "mins": [1]}}}
    with pytest.raises(ValueError):
        ZoneMapIndex.from_manifest(bad)  # zone count mismatch
    with pytest.raises((ValueError, KeyError)):
        ZoneMapIndex.from_manifest({"nrows": 8})  # missing keys


def test_snapshot_is_isolated_from_later_learning():
    zmi = ZoneMapIndex(nrows=8, zone_rows=4)
    zmi.learn(0, np.arange(8))
    snap = zmi.snapshot()
    zmi.learn(1, np.arange(8).astype(float))
    assert 1 not in snap.columns and 1 in zmi.columns
