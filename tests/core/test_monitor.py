"""Tests for the robustness monitor (paper section 5.5)."""

import pytest

from repro import EngineConfig, NoDBEngine
from repro.core.monitor import RobustnessMonitor
from repro.core.statistics import QueryStats
from repro.flatfile.parser import ParseStats


def fake_query(went_to_file=True, served_from_store=False, parsed=1000, loaded=0):
    q = QueryStats()
    q.went_to_file = went_to_file
    q.served_from_store = served_from_store
    q.parse = ParseStats(values_parsed=parsed)
    q.rows_loaded = loaded
    return q


class TestAdviceHeuristics:
    def test_quiet_before_window_fills(self):
        m = RobustnessMonitor(policy="external", window=8)
        for _ in range(7):
            m.observe(fake_query())
        assert m.advise() is None

    def test_stateless_repeated_work_advice(self):
        m = RobustnessMonitor(policy="external", window=4)
        for _ in range(4):
            m.observe(fake_query(parsed=1000))
        advice = m.advise()
        assert advice is not None
        assert advice.switch_to == "splitfiles"

    def test_stateless_varied_workload_no_advice(self):
        m = RobustnessMonitor(policy="partial_v1", window=4)
        for parsed in (100, 5000, 40000, 100000):
            m.observe(fake_query(parsed=parsed))
        assert m.advise() is None

    def test_v2_never_covered_advice(self):
        m = RobustnessMonitor(policy="partial_v2", window=4)
        for _ in range(4):
            m.observe(fake_query(went_to_file=True, served_from_store=False))
        advice = m.advise()
        assert advice is not None
        assert advice.switch_to == "column_loads"

    def test_v2_with_store_hits_no_advice(self):
        m = RobustnessMonitor(policy="partial_v2", window=4)
        for i in range(4):
            m.observe(fake_query(went_to_file=(i % 2 == 0), served_from_store=(i % 2 == 1)))
        assert m.advise() is None

    def test_thrashing_advice(self):
        m = RobustnessMonitor(policy="column_loads", window=4)
        for i in range(4):
            m.observe(fake_query(loaded=500), evictions_total=i + 10)
        advice = m.advise()
        assert advice is not None
        assert advice.switch_to == "partial_v1"
        assert "thrash" in advice.reason

    def test_healthy_caching_no_advice(self):
        m = RobustnessMonitor(policy="column_loads", window=4)
        for _ in range(4):
            m.observe(
                fake_query(went_to_file=False, served_from_store=True, parsed=0)
            )
        assert m.advise() is None


class TestEngineIntegration:
    def test_monitor_fed_by_engine(self, engine_factory):
        engine = engine_factory("external")
        sql = "select sum(a1) from r where a1 > 5 and a1 < 100"
        for _ in range(8):
            engine.query(sql)
        advice = engine.monitor.advise()
        assert advice is not None
        assert advice.switch_to == "splitfiles"

    def test_well_matched_policy_gets_no_advice(self, engine_factory):
        engine = engine_factory("column_loads")
        sql = "select sum(a1) from r where a1 > 5 and a1 < 100"
        for _ in range(8):
            engine.query(sql)
        assert engine.monitor.advise() is None


# ---------------------------------------------------------------------------
# table-driven: every switch trigger, its boundary, and its suppressors
# ---------------------------------------------------------------------------

#: (case id, policy, window of (went_to_file, served_from_store, parsed,
#: loaded), evictions_total, expected switch_to or None).
SWITCH_TABLE = [
    # --- stateless repeated-work trigger -> splitfiles
    (
        "external_identical_volumes",
        "external",
        [(True, False, 1000, 0)] * 4,
        0,
        "splitfiles",
    ),
    (
        "partial_v1_identical_volumes",
        "partial_v1",
        [(True, False, 500, 0)] * 4,
        0,
        "splitfiles",
    ),
    (
        # hysteresis boundary: hi == lo * 2 still counts as repeated work
        "stateless_volume_exactly_2x",
        "external",
        [(True, False, 1000, 0)] * 2 + [(True, False, 2000, 0)] * 2,
        0,
        "splitfiles",
    ),
    (
        # just past the boundary: hi > lo * 2 means a shifting workload
        "stateless_volume_past_2x",
        "external",
        [(True, False, 1000, 0)] * 2 + [(True, False, 2001, 0)] * 2,
        0,
        None,
    ),
    (
        # one store-served query breaks the all-file-trips precondition
        "stateless_one_store_hit",
        "external",
        [(True, False, 1000, 0)] * 3 + [(False, True, 1000, 0)],
        0,
        None,
    ),
    (
        # parse volume 0 means no real repeated work to amortize
        "stateless_zero_volumes",
        "external",
        [(True, False, 0, 0)] * 4,
        0,
        None,
    ),
    # --- partial_v2 never-covered trigger -> column_loads
    (
        "v2_never_covered",
        "partial_v2",
        [(True, False, 100, 10)] * 4,
        0,
        "column_loads",
    ),
    (
        "v2_single_store_hit_suppresses",
        "partial_v2",
        [(True, False, 100, 10)] * 3 + [(False, True, 0, 0)],
        0,
        None,
    ),
    # --- thrashing trigger (any caching policy) -> partial_v1
    (
        "column_loads_thrash",
        "column_loads",
        [(True, False, 100, 500)] * 4,
        4,
        "partial_v1",
    ),
    (
        "fullload_thrash",
        "fullload",
        [(True, False, 100, 500)] * 4,
        10,
        "partial_v1",
    ),
    (
        "splitfiles_thrash",
        "splitfiles",
        [(True, False, 100, 500)] * 4,
        4,
        "partial_v1",
    ),
    (
        # evictions hysteresis: one below the window length is tolerated
        "thrash_evictions_below_threshold",
        "column_loads",
        [(True, False, 100, 500)] * 4,
        3,
        None,
    ),
    (
        # nothing loaded means evictions are not *this* policy's waste
        "thrash_no_loads",
        "column_loads",
        [(True, False, 100, 0)] * 4,
        10,
        None,
    ),
    (
        # any store hit shows fragments get reused before eviction
        "thrash_with_store_hit",
        "column_loads",
        [(True, False, 100, 500)] * 3 + [(False, True, 0, 0)],
        10,
        None,
    ),
    (
        # stateless policies cannot thrash (they never store)
        "external_never_thrash_advice",
        "external",
        [(True, False, 0, 500)] * 4,
        10,
        None,
    ),
]


@pytest.mark.parametrize(
    "policy,window,evictions,expected",
    [case[1:] for case in SWITCH_TABLE],
    ids=[case[0] for case in SWITCH_TABLE],
)
def test_switch_trigger_table(policy, window, evictions, expected):
    monitor = RobustnessMonitor(policy=policy, window=len(window))
    for went, served, parsed, loaded in window:
        monitor.observe(
            fake_query(
                went_to_file=went,
                served_from_store=served,
                parsed=parsed,
                loaded=loaded,
            ),
            evictions_total=evictions,
        )
    advice = monitor.advise()
    if expected is None:
        assert advice is None, f"unexpected advice: {advice}"
    else:
        assert advice is not None and advice.switch_to == expected
        assert advice.reason  # every switch carries its why


class TestRepeatedColumnTraffic:
    def test_empty_window_is_not_repeated(self):
        assert not RobustnessMonitor._repeated_column_traffic([])

    def test_no_file_trips_is_not_repeated(self):
        window = [fake_query(went_to_file=False, parsed=100)]
        assert not RobustnessMonitor._repeated_column_traffic(window)

    def test_advice_quiet_while_window_refills_after_switch(self):
        """Hysteresis: clearing the history (as the autotuner does after
        a switch) silences advice until a full window of post-switch
        behaviour accumulates."""
        monitor = RobustnessMonitor(policy="external", window=4)
        for _ in range(4):
            monitor.observe(fake_query(parsed=1000))
        assert monitor.advise() is not None
        monitor.history.clear()
        for _ in range(3):
            monitor.observe(fake_query(parsed=1000))
        assert monitor.advise() is None  # window not yet refilled
        monitor.observe(fake_query(parsed=1000))
        assert monitor.advise() is not None
