"""Tests for the robustness monitor (paper section 5.5)."""

from repro import EngineConfig, NoDBEngine
from repro.core.monitor import RobustnessMonitor
from repro.core.statistics import QueryStats
from repro.flatfile.parser import ParseStats


def fake_query(went_to_file=True, served_from_store=False, parsed=1000, loaded=0):
    q = QueryStats()
    q.went_to_file = went_to_file
    q.served_from_store = served_from_store
    q.parse = ParseStats(values_parsed=parsed)
    q.rows_loaded = loaded
    return q


class TestAdviceHeuristics:
    def test_quiet_before_window_fills(self):
        m = RobustnessMonitor(policy="external", window=8)
        for _ in range(7):
            m.observe(fake_query())
        assert m.advise() is None

    def test_stateless_repeated_work_advice(self):
        m = RobustnessMonitor(policy="external", window=4)
        for _ in range(4):
            m.observe(fake_query(parsed=1000))
        advice = m.advise()
        assert advice is not None
        assert advice.switch_to == "splitfiles"

    def test_stateless_varied_workload_no_advice(self):
        m = RobustnessMonitor(policy="partial_v1", window=4)
        for parsed in (100, 5000, 40000, 100000):
            m.observe(fake_query(parsed=parsed))
        assert m.advise() is None

    def test_v2_never_covered_advice(self):
        m = RobustnessMonitor(policy="partial_v2", window=4)
        for _ in range(4):
            m.observe(fake_query(went_to_file=True, served_from_store=False))
        advice = m.advise()
        assert advice is not None
        assert advice.switch_to == "column_loads"

    def test_v2_with_store_hits_no_advice(self):
        m = RobustnessMonitor(policy="partial_v2", window=4)
        for i in range(4):
            m.observe(fake_query(went_to_file=(i % 2 == 0), served_from_store=(i % 2 == 1)))
        assert m.advise() is None

    def test_thrashing_advice(self):
        m = RobustnessMonitor(policy="column_loads", window=4)
        for i in range(4):
            m.observe(fake_query(loaded=500), evictions_total=i + 10)
        advice = m.advise()
        assert advice is not None
        assert advice.switch_to == "partial_v1"
        assert "thrash" in advice.reason

    def test_healthy_caching_no_advice(self):
        m = RobustnessMonitor(policy="column_loads", window=4)
        for _ in range(4):
            m.observe(
                fake_query(went_to_file=False, served_from_store=True, parsed=0)
            )
        assert m.advise() is None


class TestEngineIntegration:
    def test_monitor_fed_by_engine(self, engine_factory):
        engine = engine_factory("external")
        sql = "select sum(a1) from r where a1 > 5 and a1 < 100"
        for _ in range(8):
            engine.query(sql)
        advice = engine.monitor.advise()
        assert advice is not None
        assert advice.switch_to == "splitfiles"

    def test_well_matched_policy_gets_no_advice(self, engine_factory):
        engine = engine_factory("column_loads")
        sql = "select sum(a1) from r where a1 > 5 and a1 < 100"
        for _ in range(8):
            engine.query(sql)
        assert engine.monitor.advise() is None
