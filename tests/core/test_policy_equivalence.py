"""The repository's master invariant (DESIGN.md section 5.1):

    Every loading policy returns identical query results to FullLoad
    (and to the Awk baseline) for the same SQL.

Hypothesis drives randomized conjunctive-range workloads over a shared
dataset; every policy and the scripting baseline must agree on every query
of every sequence, including the stateful interactions (certificate reuse,
split files, eviction) that build up across a sequence.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AwkEngine, EngineConfig, NoDBEngine, POLICIES

NROWS = 500  # matches the session-scoped small_csv fixture


@st.composite
def range_queries(draw):
    """One Q1/Q2-shaped query with random columns, bounds and aggregates."""
    cols = draw(
        st.lists(st.sampled_from(["a1", "a2", "a3", "a4"]), min_size=1, max_size=3, unique=True)
    )
    conjuncts = []
    for col in cols:
        lo = draw(st.integers(-10, NROWS))
        width = draw(st.integers(0, NROWS))
        op_lo = draw(st.sampled_from([">", ">="]))
        op_hi = draw(st.sampled_from(["<", "<="]))
        conjuncts.append(f"{col} {op_lo} {lo} and {col} {op_hi} {lo + width}")
    agg_col = draw(st.sampled_from(cols))
    aggs = draw(
        st.lists(
            st.sampled_from(
                [f"sum({agg_col})", f"min({agg_col})", f"max({agg_col})",
                 f"avg({agg_col})", "count(*)"]
            ),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    return f"select {', '.join(aggs)} from r where {' and '.join(conjuncts)}"


class TestPolicyEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(sqls=st.lists(range_queries(), min_size=1, max_size=5))
    def test_all_policies_agree_on_sequences(self, sqls, small_csv):
        reference = None
        for policy in POLICIES:
            engine = NoDBEngine(EngineConfig(policy=policy))
            engine.attach("r", small_csv)
            try:
                results = [engine.query(sql) for sql in sqls]
            finally:
                engine.close()
            if reference is None:
                reference = results
            else:
                for sql, expected, got in zip(sqls, reference, results):
                    assert expected.approx_equal(got), (
                        f"policy {policy} diverged on {sql}:\n"
                        f"expected {expected.rows()}\n"
                        f"got      {got.rows()}"
                    )

    @settings(max_examples=15, deadline=None)
    @given(sql=range_queries())
    def test_awk_baseline_agrees(self, sql, small_csv):
        engine = NoDBEngine(EngineConfig(policy="fullload"))
        engine.attach("r", small_csv)
        awk = AwkEngine()
        awk.attach("r", small_csv)
        try:
            assert engine.query(sql).approx_equal(awk.query(sql))
        finally:
            engine.close()

    @settings(max_examples=10, deadline=None)
    @given(sqls=st.lists(range_queries(), min_size=2, max_size=4))
    def test_v2_reuse_does_not_corrupt(self, sqls, small_csv):
        """Run each query twice under V2: the repeat must match the first."""
        engine = NoDBEngine(EngineConfig(policy="partial_v2"))
        engine.attach("r", small_csv)
        try:
            for sql in sqls:
                first = engine.query(sql)
                second = engine.query(sql)
                assert first.approx_equal(second), sql
        finally:
            engine.close()

    @settings(max_examples=10, deadline=None)
    @given(sqls=st.lists(range_queries(), min_size=2, max_size=6))
    def test_eviction_preserves_answers(self, sqls, small_csv):
        """A tiny memory budget forces constant eviction; answers hold."""
        unbounded = NoDBEngine(EngineConfig(policy="column_loads"))
        tight = NoDBEngine(
            EngineConfig(policy="column_loads", memory_budget_bytes=6000)
        )
        unbounded.attach("r", small_csv)
        tight.attach("r", small_csv)
        try:
            for sql in sqls:
                assert unbounded.query(sql).approx_equal(tight.query(sql)), sql
        finally:
            unbounded.close()
            tight.close()
