"""Appends aren't rewrites: incremental maintenance for growing logs.

A pure tail-append — the file grew, the prior region is byte-identical —
must *extend* the learned state (positional map, fully loaded columns,
zone maps, partition plan, persisted entry) instead of wiping it, while
structures whose answers genuinely changed (crackers, cached results)
still invalidate.  Everything else (head edits, truncation, same-size
rewrites) keeps the full-invalidation behavior of section 5.4.
"""

import os
import time

import pytest

from repro import EngineConfig, NoDBEngine
from repro.errors import FlatFileError
from repro.flatfile.files import FileFingerprint, detect_tail_append


def write_rows(path, rng):
    path.write_text("".join(f"{i},{i * 3},{i % 11}\n" for i in rng))


def append_rows(path, rng):
    time.sleep(0.002)  # distinct mtime even on coarse filesystems
    with open(path, "a") as fh:
        for i in rng:
            fh.write(f"{i},{i * 3},{i % 11}\n")


@pytest.fixture
def growing_csv(tmp_path):
    path = tmp_path / "log.csv"
    write_rows(path, range(500))
    return path


# ---------------------------------------------------------------------------
# detection
# ---------------------------------------------------------------------------


class TestDetectTailAppend:
    def test_pure_append_detected(self, growing_csv):
        old = FileFingerprint.of(growing_csv)
        append_rows(growing_csv, range(500, 520))
        new = FileFingerprint.of(growing_csv)
        assert detect_tail_append(growing_csv, old, new)

    def test_same_size_rewrite_rejected(self, growing_csv):
        old = FileFingerprint.of(growing_csv)
        text = growing_csv.read_text()
        growing_csv.write_text("9" + text[1:])
        new = FileFingerprint.of(growing_csv)
        assert not detect_tail_append(growing_csv, old, new)

    def test_truncation_rejected(self, growing_csv):
        old = FileFingerprint.of(growing_csv)
        growing_csv.write_text(growing_csv.read_text()[: old.size // 2])
        new = FileFingerprint.of(growing_csv)
        assert not detect_tail_append(growing_csv, old, new)

    def test_grow_with_head_edit_rejected(self, growing_csv):
        old = FileFingerprint.of(growing_csv)
        text = growing_csv.read_text()
        growing_csv.write_text("9" + text[1:] + "777,2331,7\n")
        new = FileFingerprint.of(growing_csv)
        assert not detect_tail_append(growing_csv, old, new)

    def test_grow_with_old_tail_edit_rejected(self, growing_csv):
        # The last bytes of the old region changed: the probe of the old
        # tail region must catch it even though the head (first 4 KiB)
        # is untouched and the file grew.
        old = FileFingerprint.of(growing_csv)
        text = growing_csv.read_text()
        growing_csv.write_text(text[:-2] + "9\n" + "777,2331,7\n")
        new = FileFingerprint.of(growing_csv)
        assert not detect_tail_append(growing_csv, old, new)

    def test_missing_file_rejected(self, growing_csv):
        old = FileFingerprint.of(growing_csv)
        append_rows(growing_csv, range(500, 510))
        new = FileFingerprint.of(growing_csv)
        growing_csv.unlink()
        assert not detect_tail_append(growing_csv, old, new)

    def test_none_fingerprints_rejected(self, growing_csv):
        fp = FileFingerprint.of(growing_csv)
        assert not detect_tail_append(growing_csv, None, fp)
        assert not detect_tail_append(growing_csv, fp, None)


class TestFingerprintProbeRace:
    def test_vanished_file_raises_clean_error(self, tmp_path):
        """stat-to-probe race: a missing file must surface as the
        library's own error type, never a raw OSError."""
        with pytest.raises(FlatFileError):
            FileFingerprint.of(tmp_path / "never-existed.csv")

    def test_manifest_roundtrip_carries_both_probes(self, growing_csv):
        fp = FileFingerprint.of(growing_csv)
        assert fp.head and fp.tail
        again = FileFingerprint.from_manifest(fp.as_manifest())
        assert again == fp


# ---------------------------------------------------------------------------
# extension through the engine
# ---------------------------------------------------------------------------


class TestAppendExtension:
    def test_warm_table_extends_and_answers_match(self, growing_csv):
        engine = NoDBEngine(EngineConfig(policy="column_loads"))
        engine.attach("t", growing_csv)
        cold = engine.query("select sum(a1), sum(a2) from t")
        cold_bytes = cold.stats["file_bytes_read"]
        append_rows(growing_csv, range(500, 505))
        result = engine.query("select sum(a1), sum(a2) from t")
        assert result.rows()[0] == (
            sum(range(505)),
            sum(i * 3 for i in range(505)),
        )
        assert engine.stats.counters.append_extensions == 1
        # Only the appended region (plus the boundary byte) was read.
        assert result.stats["file_bytes_read"] <= cold_bytes * 0.1
        engine.close()

    def test_extension_covers_filters_over_new_rows(self, growing_csv):
        engine = NoDBEngine(EngineConfig(policy="column_loads"))
        engine.attach("t", growing_csv)
        engine.query("select sum(a1) from t where a1 > 100")
        append_rows(growing_csv, range(500, 540))
        got = engine.query("select count(*) from t where a1 >= 498").scalar()
        assert got == 42
        assert engine.stats.counters.append_extensions == 1
        engine.close()

    def test_positional_map_and_partitions_extended(self, growing_csv):
        engine = NoDBEngine(EngineConfig(policy="column_loads"))
        engine.attach("t", growing_csv)
        engine.query("select a1, a2, a3 from t")
        entry = engine.catalog.get("t")
        old_size = entry.file.size_bytes()
        append_rows(growing_csv, range(500, 520))
        engine.query("select sum(a1) from t")
        assert entry.table.nrows == 520
        pm = entry.positional_map
        assert pm.nrows == 520
        if entry.partitions is not None:
            assert entry.partitions.file_size == entry.file.size_bytes()
            tail = entry.partitions.partitions[-1]
            assert tail.byte_start == old_size
        engine.close()

    def test_zone_maps_extended_and_still_skip(self, growing_csv):
        engine = NoDBEngine(
            EngineConfig(policy="column_loads", zone_map_rows=64)
        )
        engine.attach("t", growing_csv)
        engine.query("select a1, a2, a3 from t")
        entry = engine.catalog.get("t")
        append_rows(growing_csv, range(500, 700))
        engine.query("select count(*) from t")
        if entry.zone_maps is not None:
            assert entry.zone_maps.nrows == 700
        got = engine.query("select sum(a1) from t where a1 > 650").scalar()
        assert got == sum(range(651, 700))
        engine.close()

    def test_multiple_appends_stack(self, growing_csv):
        engine = NoDBEngine(EngineConfig(policy="column_loads"))
        engine.attach("t", growing_csv)
        engine.query("select sum(a1) from t")
        total = 500
        for step in range(3):
            append_rows(growing_csv, range(total, total + 7))
            total += 7
            assert engine.query("select count(*) from t").scalar() == total
        assert engine.stats.counters.append_extensions == 3
        engine.close()

    def test_ragged_last_line_append_still_correct(self, growing_csv):
        """Appending onto a file whose old content lacks a trailing
        newline cannot be framed as a standalone tail; the engine must
        fall back to full invalidation and still answer correctly."""
        growing_csv.write_text(growing_csv.read_text()[:-1])  # strip \n
        engine = NoDBEngine(EngineConfig(policy="column_loads"))
        engine.attach("t", growing_csv)
        engine.query("select count(*) from t")
        time.sleep(0.002)
        with open(growing_csv, "a") as fh:
            fh.write("\n500,1500,5\n")
        assert engine.query("select count(*) from t").scalar() == 501
        assert engine.stats.counters.append_extensions == 0
        engine.close()

    def test_blank_line_append_rebrands_without_reload(self, growing_csv):
        engine = NoDBEngine(EngineConfig(policy="column_loads"))
        engine.attach("t", growing_csv)
        engine.query("select sum(a1) from t")
        time.sleep(0.002)
        with open(growing_csv, "a") as fh:
            fh.write("\n\n")
        assert engine.query("select count(*) from t").scalar() == 500
        engine.close()

    def test_knob_off_forces_full_invalidation(self, growing_csv):
        engine = NoDBEngine(
            EngineConfig(policy="column_loads", append_extension=False)
        )
        engine.attach("t", growing_csv)
        engine.query("select sum(a1) from t")
        append_rows(growing_csv, range(500, 510))
        assert engine.query("select count(*) from t").scalar() == 510
        assert engine.stats.counters.append_extensions == 0
        engine.close()

    def test_crackers_invalidated_on_append(self, growing_csv):
        engine = NoDBEngine(
            EngineConfig(policy="column_loads", crack_after=1)
        )
        engine.attach("t", growing_csv)
        engine.query("select sum(a2) from t")
        for _ in range(3):
            engine.query("select sum(a2) from t where a1 > 100")
        entry = engine.catalog.get("t")
        had_crackers = bool(entry.crackers)
        append_rows(growing_csv, range(500, 520))
        got = engine.query("select sum(a2) from t where a1 > 100").scalar()
        assert got == sum(i * 3 for i in range(101, 520))
        if had_crackers:
            # rebuilt (or empty) over the new row set, never stale
            for cracker in entry.crackers.values():
                assert len(cracker) == 520
        engine.close()

    def test_result_cache_invalidated_on_append(self, growing_csv):
        engine = NoDBEngine(
            EngineConfig(policy="column_loads", result_cache=True)
        )
        engine.attach("t", growing_csv)
        q = "select count(*) from t"
        assert engine.query(q).scalar() == 500
        assert engine.query(q).scalar() == 500  # cached
        append_rows(growing_csv, range(500, 510))
        assert engine.query(q).scalar() == 510
        engine.close()


class TestNonAppendStillInvalidates:
    @pytest.mark.parametrize(
        "mutate",
        [
            pytest.param(
                lambda text: "9" + text[1:] + "900,2700,9\n", id="head-edit-grow"
            ),
            pytest.param(lambda text: text[: len(text) // 2], id="truncate"),
            pytest.param(lambda text: "8" + text[1:], id="same-size-rewrite"),
        ],
    )
    def test_full_invalidation(self, growing_csv, mutate):
        engine = NoDBEngine(EngineConfig(policy="column_loads"))
        engine.attach("t", growing_csv)
        engine.query("select sum(a1) from t")
        text = growing_csv.read_text()
        time.sleep(0.002)
        new_text = mutate(text)
        growing_csv.write_text(new_text)
        expected = sum(
            int(line.split(",")[0])
            for line in new_text.splitlines()
            if line.strip()
        )
        assert engine.query("select sum(a1) from t").scalar() == expected
        assert engine.stats.counters.append_extensions == 0
        engine.close()


# ---------------------------------------------------------------------------
# append during a query (pre-read fingerprint branding)
# ---------------------------------------------------------------------------


class TestAppendDuringQuery:
    def test_mid_load_append_observed_by_next_query(self, growing_csv):
        """An append landing between the pre-read fingerprint capture
        and load completion must leave the entry branded with the *pre*
        fingerprint — even when the provision fails after the table was
        created — so the next query detects the growth instead of
        serving the old rows under the new file identity."""
        engine = NoDBEngine(EngineConfig(policy="column_loads"))
        engine.attach("t", growing_csv)
        entry = engine.catalog.get("t")

        real_ensure_table = entry.ensure_table
        boom = RuntimeError("injected failure after ensure_table")

        def ensure_then_append_then_fail(nrows):
            table = real_ensure_table(nrows)
            append_rows(growing_csv, range(500, 520))
            raise boom

        entry.ensure_table = ensure_then_append_then_fail
        with pytest.raises(RuntimeError):
            engine.query("select sum(a1) from t")
        entry.ensure_table = real_ensure_table

        # The failed load branded the (old-bytes) table with the
        # pre-read fingerprint; the append since then must be seen.
        assert engine.query("select count(*) from t").scalar() == 520
        engine.close()

    def test_forged_mtime_append_during_load(self, growing_csv):
        """Same race, adversarial flavor: the mid-load append forges the
        mtime back to the pre-load value.  Size still differs from the
        pre-read fingerprint, so the next query must observe it."""
        engine = NoDBEngine(EngineConfig(policy="column_loads"))
        engine.attach("t", growing_csv)
        entry = engine.catalog.get("t")
        stat = os.stat(growing_csv)

        real_ensure_table = entry.ensure_table

        def ensure_then_append(nrows):
            table = real_ensure_table(nrows)
            with open(growing_csv, "a") as fh:
                fh.write("555,1665,5\n")
            os.utime(growing_csv, ns=(stat.st_atime_ns, stat.st_mtime_ns))
            return table

        entry.ensure_table = ensure_then_append
        engine.query("select sum(a1) from t")
        entry.ensure_table = real_ensure_table

        assert engine.query("select count(*) from t").scalar() == 501
        engine.close()


# ---------------------------------------------------------------------------
# persistence across restarts
# ---------------------------------------------------------------------------


class TestAppendAcrossRestart:
    def test_restart_then_append_extends_persisted_state(self, tmp_path):
        path = tmp_path / "log.csv"
        write_rows(path, range(800))
        store = tmp_path / "store"
        cfg = dict(policy="column_loads", store_dir=store)

        a = NoDBEngine(EngineConfig(**cfg))
        a.attach("t", path)
        a.query("select sum(a1), sum(a2) from t")
        a.flush_persistent_store()
        a.close()

        append_rows(path, range(800, 840))

        b = NoDBEngine(EngineConfig(**cfg))
        b.attach("t", path)
        result = b.query("select sum(a1), sum(a2) from t")
        assert result.rows()[0] == (
            sum(range(840)),
            sum(i * 3 for i in range(840)),
        )
        counters = b.stats.counters
        assert counters.restart_warm_hits == 1
        assert counters.append_extensions == 1
        # The persisted entry was re-branded, not wiped.
        assert counters.store_invalidations == 0
        b.flush_persistent_store()
        b.close()

        # Third engine: the extended state persisted under the new
        # fingerprint restores with no raw-file I/O at all.
        c = NoDBEngine(EngineConfig(**cfg))
        c.attach("t", path)
        result = c.query("select sum(a1), sum(a2) from t")
        assert result.rows()[0] == (
            sum(range(840)),
            sum(i * 3 for i in range(840)),
        )
        assert c.stats.counters.restart_warm_hits == 1
        assert result.stats["file_bytes_read"] == 0
        c.close()

    def test_restart_with_rewrite_still_invalidates_store(self, tmp_path):
        path = tmp_path / "log.csv"
        write_rows(path, range(100))
        store = tmp_path / "store"
        cfg = dict(policy="column_loads", store_dir=store)

        a = NoDBEngine(EngineConfig(**cfg))
        a.attach("t", path)
        a.query("select sum(a1) from t")
        a.flush_persistent_store()
        a.close()

        time.sleep(0.002)
        write_rows(path, range(200))  # grew, but head bytes differ? no —
        # range(200) shares the first 100 lines with range(100), so force
        # a real head edit to make this a rewrite, not an append:
        text = path.read_text()
        path.write_text("9" + text[1:])

        b = NoDBEngine(EngineConfig(**cfg))
        b.attach("t", path)
        assert b.query("select count(*) from t").scalar() == 200
        assert b.stats.counters.append_extensions == 0
        assert b.stats.counters.restart_warm_hits == 0
        b.close()
