"""Tests for adaptive-store lifetime under a memory budget (5.1.3 / 5.5)."""

import numpy as np
import pytest

from repro import EngineConfig, NoDBEngine

Q = {
    "a1": "select sum(a1) from r where a1 > 10 and a1 < 400",
    "a2": "select sum(a2) from r where a2 > 10 and a2 < 400",
    "a3": "select sum(a3) from r where a3 > 10 and a3 < 400",
    "a4": "select sum(a4) from r where a4 > 10 and a4 < 400",
}
# One fully loaded 500-row int column costs ~4 KB logical (+ mask).
ONE_COLUMN = 4500


class TestBudgetEnforcement:
    def test_resident_bytes_within_budget_after_queries(self, engine_factory):
        budget = 2 * ONE_COLUMN
        engine = engine_factory("column_loads", memory_budget_bytes=budget)
        for sql in Q.values():
            engine.query(sql)
        assert engine.memory.resident_bytes <= budget

    def test_eviction_happened(self, engine_factory):
        engine = engine_factory("column_loads", memory_budget_bytes=2 * ONE_COLUMN)
        for sql in Q.values():
            engine.query(sql)
        assert engine.memory.stats.evictions >= 2
        table = engine.catalog.get("r").table
        assert len(table.fully_loaded_columns()) <= 2

    def test_evicted_column_reloads_on_demand(self, engine_factory):
        engine = engine_factory("column_loads", memory_budget_bytes=ONE_COLUMN)
        first = engine.query(Q["a1"]).scalar()
        engine.query(Q["a2"])  # evicts a1
        again = engine.query(Q["a1"])
        assert engine.stats.last().went_to_file
        assert again.scalar() == first

    def test_unbounded_never_evicts(self, engine_factory):
        engine = engine_factory("column_loads")
        for sql in Q.values():
            engine.query(sql)
        assert engine.memory.stats.evictions == 0
        assert len(engine.catalog.get("r").table.fully_loaded_columns()) == 4

    def test_multi_column_query_larger_than_budget_still_answers(
        self, engine_factory, small_columns
    ):
        engine = engine_factory("column_loads", memory_budget_bytes=ONE_COLUMN)
        r = engine.query(
            "select sum(a1), sum(a2), sum(a3), sum(a4) from r"
        )
        expected = tuple(int(c.sum()) for c in small_columns)
        assert r.rows()[0] == expected

    def test_partial_v2_fragments_also_governed(self, engine_factory):
        engine = engine_factory("partial_v2", memory_budget_bytes=1500)
        engine.query(Q["a1"])
        engine.query(Q["a2"])
        engine.query(Q["a3"])
        assert engine.memory.resident_bytes <= 1500


class TestWorstCaseScenario:
    def test_never_reused_loads_all_wasted(self, engine_factory):
        """Paper 5.5: queries that never re-touch loaded parts waste every
        load; the stats make the waste observable."""
        engine = engine_factory("column_loads", memory_budget_bytes=ONE_COLUMN)
        for sql in Q.values():
            engine.query(sql)
        assert engine.stats.queries_from_store == 0
        assert engine.memory.stats.bytes_evicted > 0
