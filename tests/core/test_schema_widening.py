"""Schema widening and pushdown error domains.

Schema inference samples a bounded prefix (128 rows), so a perfectly valid
CSV can carry a float — or text — in an int-sampled column beyond the
sample window.  That must widen the column type and retry, never crash the
query; and when a pushdown predicate meets an unparseable field, the error
must come from the ``repro.errors`` family, not leak a raw ``ValueError``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import EngineConfig, NoDBEngine
from repro.config import POLICIES
from repro.core.loader import column_load_pass, partial_load_pass
from repro.errors import FlatFileError, ReproError
from repro.flatfile.schema import DataType
from repro.ranges import Condition, ValueInterval
from repro.storage.catalog import Catalog

CONFIG = EngineConfig()


@pytest.fixture
def late_float_csv(tmp_path):
    """The ISSUE repro: rows ``i,2i`` for i<200, with row 150 = 150.5,300."""
    rows = [f"{i},{i * 2}" if i != 150 else "150.5,300" for i in range(200)]
    path = tmp_path / "late_float.csv"
    path.write_text("\n".join(rows) + "\n")
    return path


@pytest.fixture
def late_text_csv(tmp_path):
    rows = [f"{i},{i * 2}" if i != 150 else "oops,300" for i in range(200)]
    path = tmp_path / "late_text.csv"
    path.write_text("\n".join(rows) + "\n")
    return path


EXPECTED_SUM = sum(i for i in range(200) if i != 150) + 150.5


class TestWidening:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_late_float_widens_under_every_policy(self, late_float_csv, policy):
        with NoDBEngine(EngineConfig(policy=policy)) as engine:
            engine.attach("t", late_float_csv)
            result = engine.query("select sum(a1) from t")
            assert result.scalar() == pytest.approx(EXPECTED_SUM)
            # The schema records the widening.
            assert ("a1", "float64") in engine.schema_of("t")

    def test_widened_column_repeat_queries_work(self, late_float_csv):
        with NoDBEngine(EngineConfig(policy="column_loads")) as engine:
            engine.attach("t", late_float_csv)
            first = engine.query("select sum(a1) from t")
            second = engine.query("select sum(a1) from t")
            assert first.approx_equal(second)
            assert engine.stats.last().served_from_store

    def test_loader_returns_float_array(self, late_float_csv):
        entry = Catalog().attach("t", late_float_csv)
        result = column_load_pass(entry, ["a1"], CONFIG)
        assert result.columns["a1"].dtype == np.float64
        assert entry.schema.columns[0].dtype is DataType.FLOAT64

    def test_str_fallback_as_last_resort(self, late_text_csv):
        entry = Catalog().attach("t", late_text_csv)
        result = column_load_pass(entry, ["a1"], CONFIG)
        assert result.columns["a1"].dtype == object
        assert entry.schema.columns[0].dtype is DataType.STRING
        assert result.columns["a1"][150] == "oops"
        assert result.columns["a1"][0] == "0"

    def test_partial_v2_fragments_survive_numeric_widening(self, late_float_csv):
        """Fragments stored as int64 before the widening row is reached are
        converted, not lost, and later queries still answer correctly."""
        with NoDBEngine(EngineConfig(policy="partial_v2")) as engine:
            engine.attach("t", late_float_csv)
            # Pushdown on a2 keeps the pass away from a1's row 150, so a1
            # fragments are stored as int64: no widening yet.
            engine.query("select sum(a1) from t where a2 < 200")
            assert ("a1", "int64") in engine.schema_of("t")
            # Now a pass that meets row 150 widens the stored fragment too.
            result = engine.query("select sum(a1) from t")
            assert result.scalar() == pytest.approx(EXPECTED_SUM)
            assert ("a1", "float64") in engine.schema_of("t")

    def test_pushdown_predicate_widens_int_to_float(self, late_float_csv):
        """Under pushdown the predicate itself hits 150.5 first."""
        with NoDBEngine(EngineConfig(policy="partial_v1")) as engine:
            engine.attach("t", late_float_csv)
            result = engine.query("select sum(a1) from t where a1 > 100")
            expected = sum(i for i in range(101, 200) if i != 150) + 150.5
            assert result.scalar() == pytest.approx(expected)


class TestPushdownErrorDomain:
    @pytest.mark.parametrize("policy", ["partial_v1", "partial_v2"])
    def test_unparseable_predicate_field_raises_typed_error(
        self, late_text_csv, policy
    ):
        with NoDBEngine(EngineConfig(policy=policy)) as engine:
            engine.attach("t", late_text_csv)
            with pytest.raises(ReproError) as excinfo:
                engine.query("select sum(a2) from t where a1 > 100")
            assert isinstance(excinfo.value, FlatFileError)
            assert excinfo.value.__cause__ is not None

    def test_loader_level_predicate_error_is_typed(self, late_text_csv):
        entry = Catalog().attach("t", late_text_csv)
        condition = Condition([("a1", ValueInterval(100, None))])
        with pytest.raises(FlatFileError, match="pushdown predicate"):
            partial_load_pass(entry, ["a2"], condition, CONFIG)

    def test_str_column_predicate_mismatch_is_typed(self, late_text_csv):
        """A predicate comparing a str-widened column against numeric
        bounds fails in the library's error family, not with TypeError."""
        entry = Catalog().attach("t", late_text_csv)
        column_load_pass(entry, ["a1"], CONFIG)  # widens a1 to str
        with pytest.raises(FlatFileError, match="pushdown predicate"):
            partial_load_pass(
                entry, ["a2"], Condition([("a1", ValueInterval(100, None))]), CONFIG
            )
