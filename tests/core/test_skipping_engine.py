"""Engine-level learned skipping: zone maps + cracking through the facade.

Covers the full stack ISSUE terms: zones learned as a by-product of cold
scans and consulted by selective reads; crackers built on the warm path
once the advisor deems a predicate column hot; both invalidated by file
edits; both counters surfaced through ``EngineStatistics.snapshot()``;
zone maps surviving an engine restart via the persistent store.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import EngineConfig
from repro.core.engine import NoDBEngine


def _write_clustered(path, nrows=4000, ncols=3):
    """a1 sorted (real zone skipping), a2 modular, a3 float."""
    with open(path, "w") as f:
        for i in range(nrows):
            f.write(f"{i},{i % 17},{i * 0.25:.2f}\n")
    return path


@pytest.fixture
def csv_file(tmp_path):
    return _write_clustered(tmp_path / "t.csv")


RANGE_Q = "select sum(a2) from t where a1 > 500 and a1 < 540"


# ---------------------------------------------------------------------------
# zone maps
# ---------------------------------------------------------------------------


class TestZoneMaps:
    def test_cold_scan_learns_zones_as_side_effect(self, csv_file):
        with NoDBEngine(EngineConfig(policy="column_loads", zone_map_rows=256)) as e:
            e.attach("t", csv_file)
            e.query("select sum(a1), sum(a3) from t")
            entry = e.catalog.get("t")
            assert entry.zone_maps is not None
            assert sorted(entry.zone_maps.columns) == [0, 2]
            assert entry.zone_maps.zone_rows == 256

    def test_selective_read_skips_zones_and_counts(self, csv_file):
        cfg = EngineConfig(policy="partial_v1", zone_map_rows=256, cracking=False)
        with NoDBEngine(cfg) as e:
            e.attach("t", csv_file)
            e.query("select sum(a1), sum(a2) from t")  # teach posmap + zones
            full_bytes = e.stats.last().file_bytes_read
            r = e.query(RANGE_Q)
            q = e.stats.last()
            assert r.scalar() == sum(i % 17 for i in range(501, 540))
            assert q.zone_map_skips > 0
            assert q.file_bytes_read < full_bytes / 10
            # the skipped rows are accounted as abandoned, keeping the
            # tokenizer invariant scanned == emitted + abandoned
            tok = q.tokenizer
            assert tok.rows_scanned == tok.rows_emitted + tok.rows_abandoned
            counters = e.stats.snapshot()["counters"]
            assert counters["zone_map_skips"] == q.zone_map_skips

    def test_zone_maps_disabled_by_config(self, csv_file):
        cfg = EngineConfig(policy="partial_v1", zone_maps=False, cracking=False)
        with NoDBEngine(cfg) as e:
            e.attach("t", csv_file)
            e.query("select sum(a1), sum(a2) from t")
            assert e.catalog.get("t").zone_maps is None
            e.query(RANGE_Q)
            assert e.stats.last().zone_map_skips == 0

    def test_answers_identical_with_and_without_zone_maps(self, csv_file):
        answers = []
        for zone_maps in (True, False):
            cfg = EngineConfig(
                policy="partial_v1", zone_maps=zone_maps, zone_map_rows=128
            )
            with NoDBEngine(cfg) as e:
                e.attach("t", csv_file)
                e.query("select sum(a1), sum(a2), sum(a3) from t")
                answers.append(
                    [
                        e.query(q).rows()
                        for q in (
                            RANGE_Q,
                            "select count(*) from t where a1 >= 3999",
                            "select min(a3) from t where a1 > 4100",  # empty
                            "select sum(a2) from t where a1 < 0",  # empty
                        )
                    ]
                )
        # repr-compare: empty aggregates yield NaN, and NaN != NaN
        assert repr(answers[0]) == repr(answers[1])

    def test_file_edit_drops_zone_maps(self, csv_file):
        with NoDBEngine(EngineConfig(policy="column_loads")) as e:
            e.attach("t", csv_file)
            e.query("select sum(a1) from t")
            assert e.catalog.get("t").zone_maps is not None
            _write_clustered(csv_file, nrows=100)
            e.query("select sum(a1) from t")
            zmi = e.catalog.get("t").zone_maps
            assert zmi is None or zmi.nrows == 100

    def test_zone_maps_survive_restart(self, tmp_path):
        csv = _write_clustered(tmp_path / "t.csv")
        store = tmp_path / "store"
        cfg = dict(policy="partial_v1", store_dir=store, zone_map_rows=256)
        with NoDBEngine(EngineConfig(**cfg)) as a:
            a.attach("t", csv)
            a.query("select sum(a1), sum(a2) from t")
            a.flush_persistent_store()
            learned = sorted(a.catalog.get("t").zone_maps.columns)
        with NoDBEngine(EngineConfig(**cfg)) as b:
            b.attach("t", csv)
            r = b.query(RANGE_Q)
            assert r.scalar() == sum(i % 17 for i in range(501, 540))
            assert b.stats.snapshot()["counters"]["restart_warm_hits"] == 1
            entry = b.catalog.get("t")
            assert entry.zone_maps is not None
            assert sorted(entry.zone_maps.columns) == learned
            # restored zones must actually skip
            assert b.stats.last().zone_map_skips > 0


# ---------------------------------------------------------------------------
# cracking
# ---------------------------------------------------------------------------


class TestCracking:
    def test_warm_range_scans_build_a_cracker(self, csv_file):
        cfg = EngineConfig(policy="column_loads", crack_after=2)
        with NoDBEngine(cfg) as e:
            e.attach("t", csv_file)
            expected = e.query(RANGE_Q).scalar()  # cold load
            e.query(RANGE_Q)  # warm #1: advisor count 1 < 2
            assert not e.catalog.get("t").crackers
            got = e.query(RANGE_Q).scalar()  # warm #2: cracks
            assert got == expected
            entry = e.catalog.get("t")
            assert "a1" in entry.crackers
            q = e.stats.last()
            assert q.served_by_cracker and q.cracks > 0
            counters = e.stats.snapshot()["counters"]
            assert counters["cracks"] > 0

    def test_cracked_answers_match_mask_route(self, csv_file):
        queries = [
            "select sum(a2), min(a3), max(a1) from t where a1 > 100 and a1 < 700",
            "select count(*) from t where a1 >= 100 and a1 <= 700",
            "select sum(a2) from t where a1 > 100 and a1 < 700 and a2 > 5",
            "select sum(a2) from t where a1 > 5000",  # empty
            "select a1, a3 from t where a1 > 3990",  # projection, file order
        ]
        answers = []
        for cracking in (True, False):
            cfg = EngineConfig(
                policy="column_loads", cracking=cracking, crack_after=1
            )
            with NoDBEngine(cfg) as e:
                e.attach("t", csv_file)
                out = []
                for q in queries:
                    for _ in range(3):  # cold, warm-mask/crack, cracked
                        out.append(e.query(q).rows())
                answers.append(out)
        # repr-compare: empty aggregates yield NaN, and NaN != NaN
        assert repr(answers[0]) == repr(answers[1])

    def test_cracking_disabled_by_config(self, csv_file):
        cfg = EngineConfig(policy="column_loads", cracking=False, crack_after=1)
        with NoDBEngine(cfg) as e:
            e.attach("t", csv_file)
            for _ in range(4):
                e.query(RANGE_Q)
            assert not e.catalog.get("t").crackers
            assert e.stats.snapshot()["counters"]["cracks"] == 0

    def test_file_edit_drops_crackers_and_advisor_state(self, csv_file):
        cfg = EngineConfig(policy="column_loads", crack_after=1)
        with NoDBEngine(cfg) as e:
            e.attach("t", csv_file)
            e.query(RANGE_Q)
            e.query(RANGE_Q)
            entry = e.catalog.get("t")
            assert entry.crackers
            key = entry.cracker_key("a1")
            assert key in e.memory.fragments
            _write_clustered(csv_file, nrows=2000)
            r = e.query(RANGE_Q)
            assert r.scalar() == sum(i % 17 for i in range(501, 540))
            assert key not in e.memory.fragments
            assert not e.monitor.cracking.counts

    def test_cracker_charged_to_memory_budget(self, csv_file):
        cfg = EngineConfig(policy="column_loads", crack_after=1)
        with NoDBEngine(cfg) as e:
            e.attach("t", csv_file)
            e.query(RANGE_Q)
            e.query(RANGE_Q)
            entry = e.catalog.get("t")
            key = entry.cracker_key("a1")
            assert key in e.memory.fragments
            cracker = entry.crackers["a1"]
            assert (
                e.memory.fragments[key].nbytes
                == cracker.values.nbytes + cracker.rowids.nbytes
            )
            # the registered dropper (what eviction invokes) drops the
            # cracker itself
            e.memory.fragments[key].dropper()
            assert "a1" not in entry.crackers

    def test_detach_forgets_cracker_memory(self, csv_file):
        cfg = EngineConfig(policy="column_loads", crack_after=1)
        with NoDBEngine(cfg) as e:
            e.attach("t", csv_file)
            e.query(RANGE_Q)
            e.query(RANGE_Q)
            key = e.catalog.get("t").cracker_key("a1")
            assert key in e.memory.fragments
            e.detach("t")
            assert key not in e.memory.fragments
