"""Concurrent queries against one engine (paper section 5.4).

"Multiple queries might be asking for the same column at the same time,
meaning that these queries have to touch and update the same loaded table
with data brought from the flat file."

The engine implements the paper's "simple solution": loading/metadata is
serialized, execution runs over immutable fragment snapshots.  These tests
hammer one engine from many threads and require every answer to equal the
single-threaded ground truth — including while eviction and invalidation
churn the store underneath.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import EngineConfig, NoDBEngine, POLICIES
from repro.workload import TableSpec, generate_columns, materialize_csv


@pytest.fixture(scope="module")
def data(tmp_path_factory):
    spec = TableSpec(nrows=3000, ncols=4, seed=55)
    path = materialize_csv(spec, tmp_path_factory.mktemp("conc") / "r.csv")
    return path, generate_columns(spec)


def ground_truth(columns, lo, hi):
    a1 = columns[0]
    mask = (a1 > lo) & (a1 < hi)
    return int(a1[mask].sum()), int(mask.sum())


@pytest.mark.parametrize("policy", ["column_loads", "partial_v2", "splitfiles"])
def test_parallel_queries_all_correct(data, policy, tmp_path):
    path, columns = data
    engine = NoDBEngine(EngineConfig(policy=policy, splitfile_dir=tmp_path / "s"))
    engine.attach("r", path)
    rng = np.random.default_rng(2)
    jobs = []
    for _ in range(40):
        lo = int(rng.integers(0, 2000))
        hi = lo + int(rng.integers(1, 800))
        jobs.append((lo, hi))

    def run(job):
        lo, hi = job
        r = engine.query(
            f"select sum(a1), count(*) from r where a1 > {lo} and a1 < {hi}"
        )
        return job, (int(r.rows()[0][0]) if r.rows()[0][1] else 0, int(r.rows()[0][1]))

    with ThreadPoolExecutor(max_workers=8) as pool:
        results = list(pool.map(run, jobs))

    for (lo, hi), got in results:
        total, count = ground_truth(columns, lo, hi)
        expected = (total if count else 0, count)
        assert got == expected, f"range ({lo},{hi})"
    engine.close()


def test_parallel_queries_under_eviction(data):
    path, columns = data
    engine = NoDBEngine(
        EngineConfig(policy="column_loads", memory_budget_bytes=3000 * 8 + 1024)
    )
    engine.attach("r", path)

    def run(i):
        col = f"a{(i % 4) + 1}"
        r = engine.query(f"select sum({col}) from r")
        return col, int(r.scalar())

    with ThreadPoolExecutor(max_workers=6) as pool:
        results = list(pool.map(run, range(24)))

    expected = {f"a{i + 1}": int(columns[i].sum()) for i in range(4)}
    for col, got in results:
        assert got == expected[col]
    assert engine.memory.stats.evictions > 0  # churn actually happened
    engine.close()


def test_concurrent_queries_during_file_edit(tmp_path):
    """Readers racing an *atomic* file replacement see old or new data,
    never garbage.  (In-place truncate-and-rewrite is inherently unsafe
    for any reader, DBMS or not — editors and exporters rename.)"""
    import os

    path = tmp_path / "live.csv"
    path.write_text("\n".join(f"{i},{i}" for i in range(100)) + "\n")
    engine = NoDBEngine(EngineConfig(policy="partial_v2"))
    engine.attach("t", path)
    stop = threading.Event()
    errors: list[Exception] = []
    valid_answers = {sum(range(100)), sum(range(150))}

    def reader():
        while not stop.is_set():
            try:
                got = int(engine.query("select sum(a2) from t").scalar())
                assert got in valid_answers, got
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)
                return

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for t in threads:
        t.start()
    time.sleep(0.05)
    staging = tmp_path / "live.csv.tmp"
    staging.write_text("\n".join(f"{i},{i}" for i in range(150)) + "\n")
    os.replace(staging, path)  # atomic swap: readers see old XOR new
    time.sleep(0.15)
    stop.set()
    for t in threads:
        t.join()
    engine.close()
    assert not errors, errors[0]
