"""Tests for policy switching and the auto-tuning loop (section 5.3)."""

import numpy as np
import pytest

from repro import EngineConfig, NoDBEngine
from repro.core.autotuner import AutoTuningEngine

SQL = "select sum(a1), avg(a2) from r where a1 > 50 and a1 < 300"


class TestSetPolicy:
    def test_switch_preserves_answers(self, engine_factory):
        engine = engine_factory("external")
        before = engine.query(SQL)
        engine.set_policy("column_loads")
        after = engine.query(SQL)
        again = engine.query(SQL)
        assert before.approx_equal(after)
        assert engine.stats.last().served_from_store

    def test_switch_keeps_loaded_store(self, engine_factory):
        engine = engine_factory("fullload")
        engine.query(SQL)
        engine.set_policy("partial_v2")
        engine.query(SQL)
        q = engine.stats.last()
        assert q.served_from_store  # full certificates survive the switch
        assert q.file_bytes_read == 0

    def test_partial_fragments_superseded_by_column_loads(self, engine_factory):
        engine = engine_factory("partial_v2")
        engine.query(SQL)
        engine.set_policy("column_loads")
        result = engine.query(SQL)
        table = engine.catalog.get("r").table
        assert sorted(table.fully_loaded_columns()) == ["a1", "a2"]
        ref = engine_factory("fullload").query(SQL)
        assert result.approx_equal(ref)

    def test_unknown_policy_rejected_without_corruption(self, engine_factory):
        engine = engine_factory("column_loads")
        with pytest.raises(ValueError):
            engine.set_policy("voodoo")
        assert engine.config.policy == "column_loads"
        engine.query(SQL)  # still works

    def test_noop_switch(self, engine_factory):
        engine = engine_factory("column_loads")
        engine.set_policy("column_loads")
        assert engine.config.policy == "column_loads"


class TestAutoTuningEngine:
    def test_switches_away_from_stateless_on_repeats(self, small_csv):
        with AutoTuningEngine(
            EngineConfig(policy="external"), cooldown=8
        ) as auto:
            auto.attach("r", small_csv)
            results = [auto.query(SQL) for _ in range(12)]
            assert auto.policy == "splitfiles"
            assert len(auto.switches) == 1
            switch = auto.switches[0]
            assert switch.from_policy == "external"
            assert "re-read" in switch.reason
            # Every answer identical before/after the switch.
            assert all(r.approx_equal(results[0]) for r in results)

    def test_no_switch_for_healthy_policy(self, small_csv):
        with AutoTuningEngine(
            EngineConfig(policy="column_loads"), cooldown=4
        ) as auto:
            auto.attach("r", small_csv)
            for _ in range(12):
                auto.query(SQL)
            assert auto.policy == "column_loads"
            assert not auto.switches

    def test_cooldown_prevents_flapping(self, small_csv):
        with AutoTuningEngine(
            EngineConfig(policy="external"), cooldown=50
        ) as auto:
            auto.attach("r", small_csv)
            for _ in range(20):
                auto.query(SQL)
            # Advice exists, but the cooldown hasn't elapsed yet.
            assert not auto.switches
            assert auto.policy == "external"

    def test_switch_log_records_query_index(self, small_csv):
        with AutoTuningEngine(
            EngineConfig(policy="external"), cooldown=8
        ) as auto:
            auto.attach("r", small_csv)
            for _ in range(10):
                auto.query(SQL)
            assert auto.switches[0].query_index == 8

    def test_no_switch_exactly_one_query_before_cooldown(self, small_csv):
        """Boundary: the switch can fire at query == cooldown, not before."""
        with AutoTuningEngine(
            EngineConfig(policy="external"), cooldown=8
        ) as auto:
            auto.attach("r", small_csv)
            for _ in range(7):
                auto.query(SQL)
            assert not auto.switches  # advice exists but cooldown gates it
            auto.query(SQL)
            assert len(auto.switches) == 1

    def test_window_cleared_after_switch_prevents_double_fire(self, small_csv):
        """Hysteresis: post-switch, the stale pre-switch window must not
        trigger a second switch — the monitor history is cleared and the
        cooldown restarts from the switch."""
        with AutoTuningEngine(
            EngineConfig(policy="external"), cooldown=8
        ) as auto:
            auto.attach("r", small_csv)
            for _ in range(9):
                auto.query(SQL)
            assert len(auto.switches) == 1
            assert auto.engine.monitor.history == [] or len(
                auto.engine.monitor.history
            ) < 8
            for _ in range(10):
                auto.query(SQL)
            # splitfiles now serves from the store: healthy, no flapping.
            assert len(auto.switches) == 1
            assert auto.policy == "splitfiles"

    def test_advice_matching_current_policy_not_logged(self, small_csv, monkeypatch):
        """advise() returning the already-running policy is a no-op."""
        from repro.core.monitor import PolicyAdvice

        with AutoTuningEngine(
            EngineConfig(policy="column_loads"), cooldown=2
        ) as auto:
            auto.attach("r", small_csv)
            monkeypatch.setattr(
                auto.engine.monitor,
                "advise",
                lambda: PolicyAdvice(switch_to="column_loads", reason="noop"),
            )
            for _ in range(6):
                auto.query(SQL)
            assert not auto.switches
            assert auto.policy == "column_loads"
