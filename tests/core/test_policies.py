"""Per-policy behaviour tests: what gets loaded, kept, reused.

These tests pin down the *mechanisms* behind the paper's curves — which
queries touch the file, how much is parsed, what the store retains — rather
than wall-clock times, which the benches cover.
"""

import numpy as np
import pytest

from repro import EngineConfig, NoDBEngine


SQL_A12 = "select sum(a1), avg(a2) from r where a1 > 100 and a1 < 260 and a2 > 150 and a2 < 310"
SQL_A34 = "select sum(a3), avg(a4) from r where a3 > 100 and a3 < 260 and a4 > 150 and a4 < 310"
SQL_ZOOM = "select sum(a1), avg(a2) from r where a1 > 120 and a1 < 240 and a2 > 160 and a2 < 300"


class TestFullLoad:
    def test_first_query_loads_everything(self, engine_factory):
        engine = engine_factory("fullload")
        engine.query(SQL_A12)
        table = engine.catalog.get("r").table
        assert sorted(table.fully_loaded_columns()) == ["a1", "a2", "a3", "a4"]
        assert engine.stats.last().parse.values_parsed == 4 * 500

    def test_second_query_touches_nothing(self, engine_factory):
        engine = engine_factory("fullload")
        engine.query(SQL_A12)
        engine.query(SQL_A34)
        q = engine.stats.last()
        assert q.served_from_store
        assert q.file_bytes_read == 0
        assert q.parse.values_parsed == 0


class TestExternal:
    def test_every_query_reparses(self, engine_factory):
        engine = engine_factory("external")
        engine.query(SQL_A12)
        engine.query(SQL_A12)
        for q in engine.stats.queries:
            assert q.went_to_file
            assert not q.served_from_store
            assert q.file_bytes_read > 0

    def test_store_stays_empty(self, engine_factory):
        engine = engine_factory("external")
        engine.query(SQL_A12)
        table = engine.catalog.get("r").table
        assert table.loaded_columns() == []

    def test_tokenizes_whole_rows(self, engine_factory):
        engine = engine_factory("external")
        engine.query(SQL_A12)
        # 4 columns x 500 rows, all tokenized despite needing only 2.
        assert engine.stats.last().tokenizer.fields_tokenized == 2000


class TestColumnLoads:
    def test_loads_only_needed_columns(self, engine_factory):
        engine = engine_factory("column_loads")
        engine.query(SQL_A12)
        table = engine.catalog.get("r").table
        assert sorted(table.fully_loaded_columns()) == ["a1", "a2"]
        assert engine.stats.last().parse.values_parsed == 2 * 500

    def test_workload_shift_loads_increment(self, engine_factory):
        engine = engine_factory("column_loads")
        engine.query(SQL_A12)
        engine.query(SQL_A34)
        q = engine.stats.last()
        assert q.went_to_file
        assert q.parse.values_parsed == 2 * 500
        table = engine.catalog.get("r").table
        assert sorted(table.fully_loaded_columns()) == ["a1", "a2", "a3", "a4"]

    def test_repeat_is_store_served(self, engine_factory):
        engine = engine_factory("column_loads")
        engine.query(SQL_A12)
        engine.query(SQL_A12)
        assert engine.stats.last().served_from_store

    def test_never_loaded_columns_stay_out(self, engine_factory):
        engine = engine_factory("column_loads")
        engine.query("select sum(a1) from r")
        table = engine.catalog.get("r").table
        assert table.fully_loaded_columns() == ["a1"]


class TestPartialV1:
    def test_nothing_retained(self, engine_factory):
        engine = engine_factory("partial_v1")
        engine.query(SQL_A12)
        table = engine.catalog.get("r").table
        assert table.loaded_columns() == []

    def test_parses_less_than_column_load(self, engine_factory, small_columns):
        engine = engine_factory("partial_v1")
        engine.query(SQL_A12)
        parsed = engine.stats.last().parse.values_parsed
        # Pushdown parses a1 for all rows and a2 only where a1 qualifies;
        # the final materialization parses both fields of qualifying rows.
        a1, a2 = small_columns[0], small_columns[1]
        q_a1 = ((a1 > 100) & (a1 < 260)).sum()
        q_both = ((a1 > 100) & (a1 < 260) & (a2 > 150) & (a2 < 310)).sum()
        assert parsed == 500 + q_a1 + 2 * q_both
        assert parsed < 2 * 500  # strictly less than a two-column load

    def test_repeat_query_still_goes_to_file(self, engine_factory):
        engine = engine_factory("partial_v1")
        engine.query(SQL_A12)
        engine.query(SQL_A12)
        assert all(q.went_to_file for q in engine.stats.queries)

    def test_without_pushdown_parses_all_rows(self, engine_factory):
        engine = engine_factory("partial_v1", predicate_pushdown=False)
        engine.query(SQL_A12)
        assert engine.stats.last().parse.values_parsed == 2 * 500


class TestPartialV2:
    def test_fragments_retained_with_certificates(self, engine_factory):
        engine = engine_factory("partial_v2")
        engine.query(SQL_A12)
        table = engine.catalog.get("r").table
        a1 = table.columns["a1"]
        assert 0 < a1.loaded_count < 500
        assert len(a1.certificates) == 1

    def test_repeat_served_from_store(self, engine_factory):
        engine = engine_factory("partial_v2")
        engine.query(SQL_A12)
        first = engine.query(SQL_A12)
        q = engine.stats.last()
        assert q.served_from_store
        assert q.file_bytes_read == 0

    def test_zoom_in_served_from_store(self, engine_factory):
        engine = engine_factory("partial_v2")
        wide = engine.query(SQL_A12)
        narrow = engine.query(SQL_ZOOM)
        assert engine.stats.last().served_from_store

    def test_zoom_out_goes_back_to_file(self, engine_factory):
        engine = engine_factory("partial_v2")
        engine.query(SQL_ZOOM)
        engine.query(SQL_A12)  # wider than what is certified
        assert engine.stats.last().went_to_file

    def test_store_answers_match_file_answers(self, engine_factory):
        engine = engine_factory("partial_v2")
        first = engine.query(SQL_A12)
        second = engine.query(SQL_A12)
        assert first.approx_equal(second)

    def test_unconditional_query_certifies_full(self, engine_factory):
        engine = engine_factory("partial_v2")
        engine.query("select sum(a1) from r")
        engine.query("select sum(a1) from r where a1 > 3 and a1 < 9")
        assert engine.stats.last().served_from_store


class TestSplitFiles:
    def test_first_touch_splits(self, engine_factory):
        engine = engine_factory("splitfiles")
        engine.query(SQL_A34)  # needs late columns -> splits everything
        q = engine.stats.last()
        assert q.split_files_written >= 4
        split = engine.catalog.get("r").split_catalog
        assert all(h.kind == "single" for h in split.homes.values())

    def test_later_loads_read_single_files(self, engine_factory, small_csv):
        engine = engine_factory("splitfiles")
        engine.query(SQL_A34)
        source_bytes = engine.catalog.get("r").file.stats.bytes_read
        engine.query(SQL_A12)  # a1, a2 now come from single files
        assert engine.catalog.get("r").file.stats.bytes_read == source_bytes
        q = engine.stats.last()
        assert q.went_to_file  # read split files, not the original
        assert q.rows_loaded == 1000

    def test_early_columns_split_less(self, engine_factory):
        engine = engine_factory("splitfiles")
        engine.query(SQL_A12)  # needs a1,a2: splits a1,a2 + remainder
        split = engine.catalog.get("r").split_catalog
        assert split.homes[0].kind == "single"
        assert split.homes[1].kind == "single"
        assert split.homes[2].kind == "remainder"
        assert split.homes[3].kind == "remainder"

    def test_remainder_resplit_on_demand(self, engine_factory):
        engine = engine_factory("splitfiles")
        engine.query(SQL_A12)
        engine.query("select sum(a3) from r")
        split = engine.catalog.get("r").split_catalog
        assert split.homes[2].kind == "single"
        # a4 moved to a fresh (smaller) remainder, away from the original.
        assert split.homes[3].kind == "remainder"
        assert split.homes[3].file.path != split.source.path
        engine.query("select sum(a4) from r")
        assert split.homes[3].kind == "single"

    def test_split_results_match(self, engine_factory):
        a = engine_factory("splitfiles")
        b = engine_factory("fullload")
        assert a.query(SQL_A34).approx_equal(b.query(SQL_A34))
        assert a.query(SQL_A12).approx_equal(b.query(SQL_A12))


class TestSplitFilesDialectFallback:
    """Non-plain dialects cannot be cracked; splitfiles must degrade."""

    def test_jsonl_degrades_to_column_loads(self, tmp_path):
        p = tmp_path / "d.jsonl"
        p.write_text(
            '{"a1": 1, "a2": 10}\n{"a1": 2, "a2": 20}\n{"a1": 3, "a2": 30}\n'
        )
        engine = NoDBEngine(EngineConfig(policy="splitfiles"))
        try:
            engine.attach("r", p, format="jsonl")
            result = engine.query("select sum(a2) from r where a1 > 1")
            assert result.scalar() == 50
            assert engine.catalog.get("r").split_catalog is None  # never cracked
            # the fallback still populates the adaptive store
            table = engine.catalog.get("r").table
            assert table is not None and table.columns
        finally:
            engine.close()

    def test_quoted_csv_degrades_but_plain_still_cracks(
        self, tmp_path, engine_factory
    ):
        p = tmp_path / "d.csv"
        p.write_text('1,"a,x"\n2,"b,y"\n')
        engine = NoDBEngine(EngineConfig(policy="splitfiles"))
        try:
            engine.attach("r", p, format="quoted-csv")
            assert engine.query("select count(*) from r").scalar() == 2
            assert engine.catalog.get("r").split_catalog is None
        finally:
            engine.close()
        plain = engine_factory("splitfiles")
        plain.query("select sum(a1) from r")
        assert plain.catalog.get("r").split_catalog is not None  # plain still cracks
