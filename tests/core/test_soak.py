"""Soak test: a long mixed session with churn everywhere at once.

60 queries interleaving range scans, group-bys and joins under a tight
memory budget, with a mid-session file edit, a policy switch and an
explicit cache clear — every answer checked against a freshly computed
ground truth.  If any piece of state (certificates, positional map, split
files, eviction bookkeeping, binary store) survives where it should not,
this is where it surfaces.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import EngineConfig, NoDBEngine
from repro.flatfile.writer import write_csv


def make_data(tmp_path, nrows, seed):
    rng = np.random.default_rng(seed)
    cols = [
        rng.integers(0, nrows, nrows).astype(np.int64),
        rng.integers(0, nrows, nrows).astype(np.int64),
        rng.integers(0, 8, nrows).astype(np.int64),
    ]
    return write_csv(tmp_path / f"soak{seed}.csv", cols), cols


def test_sixty_query_soak(tmp_path):
    path, cols = make_data(tmp_path, 1500, seed=1)
    dim_path = write_csv(
        tmp_path / "dim.csv",
        [np.arange(8, dtype=np.int64), (np.arange(8, dtype=np.int64) + 1) * 100],
    )
    engine = NoDBEngine(
        EngineConfig(policy="partial_v2", memory_budget_bytes=40_000)
    )
    engine.attach("t", path)
    engine.attach("d", dim_path)
    rng = np.random.default_rng(99)
    dim_map = {k: (k + 1) * 100 for k in range(8)}

    def check_range(lo, hi):
        got = engine.query(
            f"select count(*), sum(a1) from t where a1 > {lo} and a1 < {hi}"
        ).rows()[0]
        mask = (cols[0] > lo) & (cols[0] < hi)
        assert got[0] == mask.sum()
        if mask.any():
            assert got[1] == cols[0][mask].sum()

    def check_group():
        got = engine.query(
            "select a3, count(*) as n from t group by a3 order by a3"
        )
        keys, counts = np.unique(cols[2], return_counts=True)
        assert got.column("a3").tolist() == keys.tolist()
        assert got.column("n").tolist() == counts.tolist()

    def check_join():
        got = engine.query(
            "select sum(d.a2) from t join d on t.a3 = d.a1"
        ).scalar()
        assert got == sum(dim_map[k] for k in cols[2])

    for step in range(60):
        kind = step % 3
        if kind == 0:
            lo = int(rng.integers(0, 1400))
            check_range(lo, lo + int(rng.integers(1, 300)))
        elif kind == 1:
            check_group()
        else:
            check_join()

        if step == 20:
            # Mid-session file replacement (atomic): new contents.
            time.sleep(0.01)
            _, new_cols = make_data(tmp_path, 1500, seed=2)
            staging = tmp_path / "soak2.csv"
            os.replace(staging, path)
            cols = new_cols
        if step == 35:
            engine.set_policy("column_loads")
        if step == 50:
            engine.clear_cache()

    assert len(engine.stats.queries) == 60
    engine.close()


def test_clear_cache_frees_and_reloads(tmp_path):
    path, cols = make_data(tmp_path, 500, seed=3)
    engine = NoDBEngine(EngineConfig(policy="column_loads"))
    engine.attach("t", path)
    first = engine.query("select sum(a1) from t").scalar()
    assert engine.memory.resident_bytes > 0
    engine.clear_cache()
    assert engine.memory.resident_bytes == 0
    assert engine.catalog.get("t").table is None
    again = engine.query("select sum(a1) from t")
    assert engine.stats.last().went_to_file
    assert again.scalar() == first
    engine.close()


def test_clear_cache_single_table(tmp_path):
    p1, _ = make_data(tmp_path, 200, seed=4)
    p2, _ = make_data(tmp_path, 200, seed=5)
    engine = NoDBEngine(EngineConfig(policy="column_loads"))
    engine.attach("one", p1)
    engine.attach("two", p2)
    engine.query("select sum(a1) from one")
    engine.query("select sum(a1) from two")
    engine.clear_cache("one")
    assert engine.catalog.get("one").table is None
    assert engine.catalog.get("two").table is not None
    engine.close()
