"""Concurrency stress suite for the serving layer.

Barrier-synchronized thread gangs hammer one engine with mixed read
workloads over shared and disjoint tables, maximizing interleavings of
warm reads, shared cold scans, result-cache probes and evictions.  The
invariants:

* every answer equals the single-threaded ground truth (no lost
  updates, no torn views);
* a cold (table, column-set) generation is raw-loaded at most once for
  store-keeping policies (shared-scan batching);
* the serving-layer counters add up exactly — every table view is
  counted once as warm hit, shared-scan reuse or shared-scan load, and
  every query once as cache hit or miss.

The gang size scales with ``REPRO_CONCURRENCY`` (default 4); the CI
``stress`` job runs the suite at 2 and 8, three times each, under
pytest-timeout.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import EngineConfig, NoDBEngine
from repro.workload import TableSpec, generate_columns, materialize_csv

#: Gang size for every stress test (CI stress job sets 2 and 8).
CONCURRENCY = max(2, int(os.environ.get("REPRO_CONCURRENCY", "4")))


def _make_tables(tmp_path, n: int, nrows: int = 1200):
    """n disjoint CSVs plus their in-memory ground-truth columns."""
    specs = [TableSpec(nrows=nrows, ncols=3, seed=700 + i) for i in range(n)]
    paths = [
        materialize_csv(spec, tmp_path / f"t{i}.csv") for i, spec in enumerate(specs)
    ]
    truths = [generate_columns(spec) for spec in specs]
    return paths, truths


def _run_gang(nthreads: int, job):
    """Run ``job(i)`` on ``nthreads`` threads, all released together."""
    barrier = threading.Barrier(nthreads)

    def wrapped(i):
        barrier.wait()
        return job(i)

    with ThreadPoolExecutor(max_workers=nthreads) as pool:
        return list(pool.map(wrapped, range(nthreads)))


def _counters_add_up(engine, views_expected: int) -> None:
    c = engine.stats.counters
    provided = c.warm_hits + c.shared_scan_reuses + c.shared_scan_loads
    assert provided == views_expected, (
        f"counters don't add up: {c.snapshot()} != {views_expected} views"
    )


class TestDisjointTables:
    def test_parallel_cold_loads_one_per_table(self, tmp_path):
        """Each thread owns one table: loads never contend or duplicate."""
        paths, truths = _make_tables(tmp_path, CONCURRENCY)
        engine = NoDBEngine(EngineConfig(policy="column_loads"))
        try:
            for i, path in enumerate(paths):
                engine.attach(f"t{i}", path)

            def job(i):
                r = engine.query(f"select sum(a1), count(*) from t{i}")
                return i, int(r.rows()[0][0]), int(r.rows()[0][1])

            for i, total, count in _run_gang(CONCURRENCY, job):
                assert total == int(truths[i][0].sum())
                assert count == len(truths[i][0])
            # one shared-scan load per table, zero duplicates
            assert engine.stats.counters.shared_scan_loads == CONCURRENCY
            assert engine.stats.max_loads_per_signature() == 1
            _counters_add_up(engine, views_expected=CONCURRENCY)
        finally:
            engine.close()

    def test_warm_reads_fully_parallel(self, tmp_path):
        """After a serial warm-up, gangs only ever take the read side."""
        paths, truths = _make_tables(tmp_path, 2)
        engine = NoDBEngine(EngineConfig(policy="column_loads"))
        try:
            for i, path in enumerate(paths):
                engine.attach(f"t{i}", path)
                engine.query(f"select sum(a1) from t{i}")
            loads_before = engine.stats.counters.shared_scan_loads

            def job(i):
                t = i % 2
                r = engine.query(f"select sum(a1) from t{t}")
                return t, int(r.scalar())

            for t, got in _run_gang(CONCURRENCY, job):
                assert got == int(truths[t][0].sum())
            assert engine.stats.counters.shared_scan_loads == loads_before
            assert engine.stats.counters.warm_hits >= CONCURRENCY
        finally:
            engine.close()


class TestSharedTable:
    @pytest.mark.parametrize("policy", ["column_loads", "fullload", "splitfiles"])
    def test_one_cold_load_per_column_set_generation(self, policy, tmp_path):
        """A gang racing one cold table performs exactly one raw load."""
        paths, truths = _make_tables(tmp_path, 1)
        engine = NoDBEngine(
            EngineConfig(policy=policy, splitfile_dir=tmp_path / "splits")
        )
        try:
            engine.attach("r", paths[0])
            expected = int(truths[0][1].sum())

            def job(i):
                return int(engine.query("select sum(a2) from r").scalar())

            for got in _run_gang(CONCURRENCY, job):
                assert got == expected
            assert engine.stats.max_loads_per_signature() == 1
            assert engine.stats.counters.shared_scan_loads == 1
            _counters_add_up(engine, views_expected=CONCURRENCY)
        finally:
            engine.close()

    def test_follower_queries_report_zero_file_bytes(self, tmp_path):
        """Per-query I/O is attributed to the thread that did it: the one
        shared-scan leader reports the raw read, every follower 0."""
        paths, _ = _make_tables(tmp_path, 1)
        engine = NoDBEngine(EngineConfig(policy="column_loads"))
        try:
            engine.attach("r", paths[0])

            def job(i):
                return engine.query("select sum(a1) from r").scalar()

            _run_gang(CONCURRENCY, job)
            per_query = [q.file_bytes_read for q in engine.stats.queries]
            assert sum(1 for b in per_query if b > 0) == 1, per_query
            # per-query deltas never exceed the engine-wide file counter
            entry = engine.catalog.get("r")
            assert sum(per_query) <= entry.file.stats.bytes_read
        finally:
            engine.close()

    def test_generation_resets_after_invalidation(self, tmp_path):
        """Editing the file starts a new generation: one more load, and
        the old generation's ledger entry is untouched."""
        paths, truths = _make_tables(tmp_path, 1, nrows=50)
        engine = NoDBEngine(EngineConfig(policy="column_loads"))
        try:
            engine.attach("r", paths[0])
            engine.query("select sum(a1) from r")
            # rewrite the file (row count kept, values changed)
            rows = [f"{i * 3},{i},{i}" for i in range(50)]
            staging = tmp_path / "staging.csv"
            staging.write_text("\n".join(rows) + "\n")
            os.replace(staging, paths[0])

            def job(i):
                return int(engine.query("select sum(a1) from r").scalar())

            expected = sum(i * 3 for i in range(50))
            for got in _run_gang(CONCURRENCY, job):
                assert got == expected
            # one load in generation 0, one in generation 1, none duplicated
            assert engine.stats.max_loads_per_signature() == 1
            generations = {sig[2] for sig in engine.stats.loads_by_signature}
            assert generations == {0, 1}
        finally:
            engine.close()

    def test_mixed_column_sets_do_not_duplicate(self, tmp_path):
        """Different threads want different column sets of one cold table:
        each distinct set loads at most once."""
        paths, truths = _make_tables(tmp_path, 1)
        engine = NoDBEngine(EngineConfig(policy="column_loads"))
        try:
            engine.attach("r", paths[0])
            cols = ["a1", "a2", "a3"]

            def job(i):
                col = cols[i % 3]
                return col, int(engine.query(f"select sum({col}) from r").scalar())

            for col, got in _run_gang(CONCURRENCY, job):
                idx = int(col[1]) - 1
                assert got == int(truths[0][idx].sum())
            assert engine.stats.max_loads_per_signature() == 1
            _counters_add_up(engine, views_expected=CONCURRENCY)
        finally:
            engine.close()


class TestMixedWorkload:
    def test_shared_plus_disjoint_under_eviction(self, tmp_path):
        """Random mixed reads over 3 tables with a tight budget: every
        answer still equals ground truth while eviction churns."""
        paths, truths = _make_tables(tmp_path, 3)
        engine = NoDBEngine(
            EngineConfig(
                policy="column_loads",
                memory_budget_bytes=2 * 1200 * 8 + 1024,
            )
        )
        try:
            for i, path in enumerate(paths):
                engine.attach(f"t{i}", path)
            rng = np.random.default_rng(9)
            jobs = []
            for _ in range(CONCURRENCY * 6):
                t = int(rng.integers(0, 3))
                c = int(rng.integers(1, 4))
                jobs.append((t, c))

            def job(i):
                t, c = jobs[i]
                got = int(engine.query(f"select sum(a{c}) from t{t}").scalar())
                return t, c, got

            results = _run_gang(min(CONCURRENCY, len(jobs)), job)
            # then drain the rest serially for extra churn
            for t, c in jobs[len(results):]:
                got = int(engine.query(f"select sum(a{c}) from t{t}").scalar())
                assert got == int(truths[t][c - 1].sum())
            for t, c, got in results:
                assert got == int(truths[t][c - 1].sum())
            assert engine.memory.stats.evictions > 0
        finally:
            engine.close()


class TestResultCacheConcurrency:
    def test_gang_on_one_query_hits_cache(self, tmp_path):
        """Hits + misses == queries; repeats are served from the cache."""
        paths, truths = _make_tables(tmp_path, 1)
        engine = NoDBEngine(EngineConfig(policy="column_loads", result_cache=True))
        try:
            engine.attach("r", paths[0])
            engine.query("select sum(a1) from r")  # populate

            def job(i):
                return int(engine.query("select sum(a1) from r").scalar())

            expected = int(truths[0][0].sum())
            for got in _run_gang(CONCURRENCY, job):
                assert got == expected
            c = engine.stats.counters
            assert c.result_cache_hits + c.result_cache_misses == len(
                engine.stats.queries
            )
            assert c.result_cache_hits >= CONCURRENCY  # all gang queries hit
        finally:
            engine.close()

    def test_cache_races_file_edit_never_stale(self, tmp_path):
        """Readers racing an atomic rewrite see old XOR new totals only."""
        path = tmp_path / "live.csv"
        path.write_text("\n".join(f"{i},{i}" for i in range(80)) + "\n")
        engine = NoDBEngine(EngineConfig(policy="column_loads", result_cache=True))
        old_total = sum(range(80))
        new_total = sum(range(120))
        errors: list[Exception] = []
        stop = threading.Event()
        try:
            engine.attach("t", path)

            def reader():
                while not stop.is_set():
                    try:
                        got = int(engine.query("select sum(a2) from t").scalar())
                        assert got in (old_total, new_total), got
                    except Exception as exc:  # pragma: no cover - reporting
                        errors.append(exc)
                        return

            threads = [
                threading.Thread(target=reader) for _ in range(CONCURRENCY)
            ]
            for t in threads:
                t.start()
            staging = tmp_path / "live.csv.tmp"
            staging.write_text("\n".join(f"{i},{i}" for i in range(120)) + "\n")
            os.replace(staging, path)
            time.sleep(0.15)  # let readers observe the new file
            stop.set()
            for t in threads:
                t.join()
            assert not errors, errors[0]
            final = int(engine.query("select sum(a2) from t").scalar())
            assert final == new_total
        finally:
            stop.set()
            engine.close()


class TestDetachUnderLoad:
    def test_detach_racing_splitfiles_cold_load_no_deadlock(self, tmp_path):
        """Regression: detach (engine lock -> table lock) must not invert
        against the splitfiles cold path (table lock -> splits lock)."""
        paths, truths = _make_tables(tmp_path, 2, nrows=400)
        engine = NoDBEngine(
            EngineConfig(
                policy="splitfiles",
                splitfile_dir=tmp_path / "splits",
                # throttle stretches the cold load so detach really races it
                io_bandwidth_bytes_per_sec=2 * 2**20,
            )
        )
        try:
            engine.attach("keep", paths[0])
            engine.attach("drop", paths[1])
            started = threading.Event()

            def load():
                started.set()
                return int(engine.query("select sum(a1) from keep").scalar())

            def drop():
                started.wait(5)
                engine.detach("drop")
                return True

            with ThreadPoolExecutor(max_workers=2) as pool:
                f_load = pool.submit(load)
                f_drop = pool.submit(drop)
                assert f_drop.result(timeout=30)
                assert f_load.result(timeout=30) == int(truths[0][0].sum())
            assert engine.tables() == ["keep"]
        finally:
            engine.close()


class TestDetachTombstone:
    def test_tombstoned_entry_refuses_to_serve(self, tmp_path):
        """A query that resolved an entry a concurrent detach then
        tombstoned must fail like a post-detach lookup, not silently
        repopulate the unlisted entry."""
        from repro.errors import CatalogError

        paths, _ = _make_tables(tmp_path, 1, nrows=50)
        engine = NoDBEngine(EngineConfig(policy="column_loads"))
        try:
            engine.attach("r", paths[0])
            engine.query("select sum(a1) from r")
            entry = engine.catalog.get("r")
            entry.detached = True  # what detach() sets under the write lock
            with pytest.raises(CatalogError, match="detached"):
                engine.query("select sum(a1) from r")
        finally:
            entry.detached = False
            engine.close()


class TestPolicySwitchUnderLoad:
    def test_set_policy_mid_gang_keeps_answers(self, tmp_path):
        """Switching policies while a gang queries never corrupts answers."""
        paths, truths = _make_tables(tmp_path, 1)
        engine = NoDBEngine(EngineConfig(policy="column_loads"))
        try:
            engine.attach("r", paths[0])
            expected = int(truths[0][0].sum())
            barrier = threading.Barrier(CONCURRENCY + 1)

            def job(i):
                barrier.wait()
                return int(engine.query("select sum(a1) from r").scalar())

            with ThreadPoolExecutor(max_workers=CONCURRENCY + 1) as pool:
                futures = [pool.submit(job, i) for i in range(CONCURRENCY)]
                barrier.wait()
                engine.set_policy("partial_v2")
                for future in futures:
                    assert future.result() == expected
        finally:
            engine.close()
