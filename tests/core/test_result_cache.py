"""The query-result cache: correctness, invalidation, budget accounting.

The dangerous property of a result cache is serving a *stale* answer —
a result computed from bytes the file no longer contains.  The
Hypothesis suite below drives random interleavings of queries, appends,
rewrites (including the mtime-granularity same-size rewrite edge case)
and cache-clearing against one engine, and after every step requires
the answer to equal a fresh re-read of the file.  The unit tests pin
the cache's LRU/limit behaviour and its MemoryManager integration.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EngineConfig, NoDBEngine
from repro.core.result_cache import (
    FileSignature,
    QueryResultCache,
    result_nbytes,
)
from repro.result import QueryResult
from repro.storage.memory import MemoryManager


def _write_rows(path, values):
    """One int column per line."""
    path.write_text("\n".join(str(v) for v in values) + "\n")


def _result(values) -> QueryResult:
    return QueryResult(names=["x"], columns=[np.asarray(values, dtype=np.int64)])


# ---------------------------------------------------------------------------
# unit: cache mechanics
# ---------------------------------------------------------------------------


class TestCacheMechanics:
    def test_lookup_roundtrip_and_counters(self, tmp_path):
        f = tmp_path / "a.csv"
        _write_rows(f, [1, 2, 3])
        cache = QueryResultCache(max_entries=4)
        sig = {"t": FileSignature.of(f)}
        key = QueryResultCache.key_for("q1", ["t"])
        assert cache.lookup(key, sig) is None
        cache.store(key, _result([6]), sig)
        hit = cache.lookup(key, sig)
        assert hit is not None and int(hit.columns[0][0]) == 6
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_signature_mismatch_drops_entry(self, tmp_path):
        f = tmp_path / "a.csv"
        _write_rows(f, [1, 2, 3])
        cache = QueryResultCache(max_entries=4)
        key = QueryResultCache.key_for("q1", ["t"])
        cache.store(key, _result([6]), {"t": FileSignature.of(f)})
        _write_rows(f, [4, 5, 6])
        assert cache.lookup(key, {"t": FileSignature.of(f)}) is None
        assert cache.stats.invalidations == 1
        assert len(cache) == 0

    def test_lru_entry_cap(self, tmp_path):
        f = tmp_path / "a.csv"
        _write_rows(f, [1])
        cache = QueryResultCache(max_entries=2)
        sig = {"t": FileSignature.of(f)}
        keys = [QueryResultCache.key_for(f"q{i}", ["t"]) for i in range(3)]
        for key in keys:
            cache.store(key, _result([1]), sig)
        assert len(cache) == 2
        assert cache.lookup(keys[0], sig) is None  # oldest evicted
        assert cache.lookup(keys[2], sig) is not None
        assert cache.stats.evictions == 1

    def test_invalidate_table_drops_only_its_results(self, tmp_path):
        fa, fb = tmp_path / "a.csv", tmp_path / "b.csv"
        _write_rows(fa, [1])
        _write_rows(fb, [2])
        cache = QueryResultCache(max_entries=8)
        ka = QueryResultCache.key_for("qa", ["a"])
        kb = QueryResultCache.key_for("qb", ["b"])
        cache.store(ka, _result([1]), {"a": FileSignature.of(fa)})
        cache.store(kb, _result([2]), {"b": FileSignature.of(fb)})
        assert cache.invalidate_table("a") == 1
        assert cache.lookup(ka, {"a": FileSignature.of(fa)}) is None
        assert cache.lookup(kb, {"b": FileSignature.of(fb)}) is not None

    def test_bytes_charged_and_evictable_by_memory_manager(self, tmp_path):
        f = tmp_path / "a.csv"
        _write_rows(f, [1])
        big = _result(list(range(2000)))  # 16 kB of int64
        budget = result_nbytes(big) + 512
        memory = MemoryManager(budget_bytes=budget)
        cache = QueryResultCache(memory=memory, max_entries=8)
        sig = {"t": FileSignature.of(f)}
        k1 = QueryResultCache.key_for("q1", ["t"])
        k2 = QueryResultCache.key_for("q2", ["t"])
        cache.store(k1, big, sig)
        assert memory.resident_bytes >= result_nbytes(big)
        cache.store(k2, big, sig)  # exceeds budget: LRU result evicted
        assert cache.lookup(k1, sig) is None
        assert cache.lookup(k2, sig) is not None
        assert memory.stats.evictions >= 1
        assert cache.stats.evictions >= 1

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            QueryResultCache(max_entries=0)

    def test_caller_mutation_cannot_poison_cache(self, tmp_path):
        """The storer keeps its own arrays; hit results are read-only."""
        f = tmp_path / "a.csv"
        _write_rows(f, [1, 2, 3])
        cache = QueryResultCache(max_entries=4)
        sig = {"t": FileSignature.of(f)}
        key = QueryResultCache.key_for("q", ["t"])
        mine = _result([1, 2, 3])
        cache.store(key, mine, sig)
        mine.columns[0][0] = 999  # storer mutates its own copy: fine
        hit = cache.lookup(key, sig)
        assert int(hit.columns[0][0]) == 1  # cache unaffected
        with pytest.raises((ValueError, RuntimeError)):
            hit.columns[0][0] = 777  # hit results fail loudly on write
        again = cache.lookup(key, sig)
        assert int(again.columns[0][0]) == 1


# ---------------------------------------------------------------------------
# unit: the mtime-granularity edge cases
# ---------------------------------------------------------------------------


def _force_stat(path, mtime_ns: int) -> None:
    st = os.stat(path)
    os.utime(path, ns=(st.st_atime_ns, mtime_ns))


class TestMtimeEdgeCases:
    def test_same_size_replace_with_forged_mtime(self, tmp_path):
        """os.replace with identical size AND mtime: inode still differs."""
        f = tmp_path / "a.csv"
        _write_rows(f, [10, 20, 30])
        old = os.stat(f)
        engine = NoDBEngine(EngineConfig(policy="column_loads", result_cache=True))
        try:
            engine.attach("t", f)
            assert int(engine.query("select sum(a1) from t").scalar()) == 60
            staging = tmp_path / "staging.csv"
            _write_rows(staging, [40, 20, 30])  # same byte length
            os.replace(staging, f)
            _force_stat(f, old.st_mtime_ns)
            assert os.stat(f).st_size == old.st_size
            assert os.stat(f).st_mtime_ns == old.st_mtime_ns
            assert int(engine.query("select sum(a1) from t").scalar()) == 90
        finally:
            engine.close()

    @pytest.mark.parametrize("policy", ["external", "column_loads", "partial_v2"])
    def test_in_place_same_size_forged_mtime_content_probe(self, policy, tmp_path):
        """In-place rewrite preserving size, mtime AND inode: only the
        fingerprint's content probe can tell — and it must, for the
        result cache AND the adaptive store (same mechanism: were the
        store's staleness weaker, its stale fragments would poison the
        cache under the fresh signature)."""
        f = tmp_path / "a.csv"
        _write_rows(f, [10, 20, 30])
        old = os.stat(f)
        engine = NoDBEngine(EngineConfig(policy=policy, result_cache=True))
        try:
            engine.attach("t", f)
            assert int(engine.query("select sum(a1) from t").scalar()) == 60
            with open(f, "r+") as fh:  # in-place: same inode
                fh.write("40")
            _force_stat(f, old.st_mtime_ns)
            st = os.stat(f)
            assert (st.st_size, st.st_mtime_ns, st.st_ino) == (
                old.st_size,
                old.st_mtime_ns,
                old.st_ino,
            )
            assert int(engine.query("select sum(a1) from t").scalar()) == 90
            assert engine.result_cache.stats.invalidations >= 1
            # repeats must also be right (no poisoned cache entry)
            assert int(engine.query("select sum(a1) from t").scalar()) == 90
        finally:
            engine.close()


class TestReattachIsolation:
    def test_reattach_same_file_new_options_never_hits_old_results(self, tmp_path):
        """Cache keys carry the attachment epoch: detach + re-attach of
        the same unchanged file under different parse options must not
        serve (or be poisoned by) the old attachment's cached results."""
        f = tmp_path / "a.csv"
        f.write_text("1,2\n3,4\n")
        engine = NoDBEngine(EngineConfig(policy="column_loads", result_cache=True))
        try:
            engine.attach("t", f)  # delimiter ','
            first = engine.query("select a1 from t").to_dict()
            assert [int(v) for v in first["a1"]] == [1, 3]
            engine.query("select a1 from t")  # cached now
            engine.detach("t")
            engine.attach("t", f, delimiter=";")  # same file, one str column
            second = engine.query("select a1 from t").to_dict()
            assert [str(v) for v in second["a1"]] == ["1,2", "3,4"]
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# property: random query/edit/evict interleavings never serve stale
# ---------------------------------------------------------------------------

_STEPS = st.lists(
    st.one_of(
        st.tuples(st.just("query"), st.integers(0, 2)),
        st.tuples(st.just("append"), st.integers(1, 99)),
        st.tuples(st.just("rewrite"), st.integers(100, 999)),
        st.tuples(st.just("rewrite_same_size"), st.integers(100, 999)),
        st.tuples(st.just("clear_store"), st.just(0)),
    ),
    min_size=1,
    max_size=12,
)

_QUERIES = [
    "select sum(a1) from t",
    "select count(*) from t",
    "select min(a1), max(a1) from t",
]


def _expected(rows: list[int], qidx: int):
    if qidx == 0:
        return (sum(rows),)
    if qidx == 1:
        return (len(rows),)
    return (min(rows), max(rows))


@settings(max_examples=25, deadline=None)
@given(steps=_STEPS, policy=st.sampled_from(["column_loads", "external"]))
def test_never_serves_stale_result(steps, policy, tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("rc-prop")
    f = tmp_path / "t.csv"
    rows = [100, 200, 300]
    _write_rows(f, rows)
    engine = NoDBEngine(
        EngineConfig(policy=policy, result_cache=True, max_cached_results=4)
    )
    try:
        engine.attach("t", f)
        for op, arg in steps:
            if op == "query":
                got = tuple(
                    int(v) for v in engine.query(_QUERIES[arg]).rows()[0]
                )
                assert got == _expected(rows, arg), (op, arg, rows)
            elif op == "append":
                rows = rows + [arg]
                with open(f, "a") as fh:
                    fh.write(f"{arg}\n")
            elif op == "rewrite":
                rows = [arg] * len(rows) + [arg]
                staging = tmp_path / "s.csv"
                _write_rows(staging, rows)
                os.replace(staging, f)
            elif op == "rewrite_same_size":
                # same row count, same byte length, forged mtime
                old = os.stat(f)
                rows = [arg if len(str(v)) == len(str(arg)) else v for v in rows]
                staging = tmp_path / "s.csv"
                _write_rows(staging, rows)
                os.replace(staging, f)
                _force_stat(f, old.st_mtime_ns)
            elif op == "clear_store":
                engine.clear_cache("t")
        # drain: one final answer must match the final file
        got = tuple(int(v) for v in engine.query(_QUERIES[0]).rows()[0])
        assert got == _expected(rows, 0)
    finally:
        engine.close()
