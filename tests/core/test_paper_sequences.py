"""The paper's exact query sequences, replayed under every policy.

Deterministic end-to-end coverage: the Figure 3, Figure 4 and exploration
sequences must produce identical answers under all six loading policies
and the Awk baseline — the same invariant the hypothesis suite checks with
random queries, here pinned to the workloads the benches time.
"""

import pytest

from repro import AwkEngine, EngineConfig, NoDBEngine, POLICIES
from repro.workload import (
    TableSpec,
    exploration_sequence,
    figure3_sequence,
    figure4_sequence,
    materialize_csv,
)

NROWS = 400


@pytest.fixture(scope="module")
def narrow_csv(tmp_path_factory):
    return materialize_csv(
        TableSpec(nrows=NROWS, ncols=4, seed=61),
        tmp_path_factory.mktemp("seq") / "narrow.csv",
    )


@pytest.fixture(scope="module")
def wide12_csv(tmp_path_factory):
    return materialize_csv(
        TableSpec(nrows=NROWS, ncols=12, seed=62),
        tmp_path_factory.mktemp("seq") / "wide12.csv",
    )


def reference_results(path, sqls):
    engine = NoDBEngine(EngineConfig(policy="fullload"))
    engine.attach("r", path)
    results = [engine.query(s) for s in sqls]
    engine.close()
    return results


SEQUENCES = {
    "figure3": (lambda: figure3_sequence(NROWS, seed=5), "narrow"),
    "figure4": (lambda: figure4_sequence(NROWS, ncols=12, seed=6), "wide"),
    "exploration": (
        lambda: exploration_sequence(NROWS, depth=4, regions=2, seed=7),
        "narrow",
    ),
}


@pytest.mark.parametrize("policy", [p for p in POLICIES if p != "fullload"])
@pytest.mark.parametrize("sequence_name", list(SEQUENCES))
def test_sequence_equivalence(policy, sequence_name, narrow_csv, wide12_csv):
    make_seq, which = SEQUENCES[sequence_name]
    path = narrow_csv if which == "narrow" else wide12_csv
    sqls = [q.sql for q in make_seq()]
    expected = reference_results(path, sqls)

    engine = NoDBEngine(EngineConfig(policy=policy))
    engine.attach("r", path)
    try:
        for sql, ref in zip(sqls, expected):
            got = engine.query(sql)
            assert got.approx_equal(ref), f"{policy} diverged on {sql}"
    finally:
        engine.close()


@pytest.mark.parametrize("sequence_name", ["figure3", "exploration"])
def test_awk_sequence_equivalence(sequence_name, narrow_csv):
    make_seq, _ = SEQUENCES[sequence_name]
    sqls = [q.sql for q in make_seq()]
    expected = reference_results(narrow_csv, sqls)
    awk = AwkEngine()
    awk.attach("r", narrow_csv)
    for sql, ref in zip(sqls, expected):
        assert awk.query(sql).approx_equal(ref), sql
