"""Multi-file tables: a glob or directory attach backed by part files.

"New data arrived" should be just "a new part file appeared": each part
carries its own fingerprint, positional map, partitions and zone maps,
parts are served independently (partition-parallel per part) and merged
by a late union, and the part set is re-discovered on every query.
"""

import time

import pytest

from repro import EngineConfig, NoDBEngine
from repro.errors import CatalogError
from repro.storage.catalog import Catalog, MultiFileEntry, has_glob_magic


def write_part(path, rng, mult=2):
    path.write_text("".join(f"{i},{i * mult}\n" for i in rng))


@pytest.fixture
def parts_dir(tmp_path):
    d = tmp_path / "parts"
    d.mkdir()
    write_part(d / "part-000.csv", range(100))
    write_part(d / "part-001.csv", range(100, 250))
    return d


class TestAttachDetection:
    def test_glob_magic(self):
        assert has_glob_magic("logs/part-*.csv")
        assert has_glob_magic("logs/part-?.csv")
        assert has_glob_magic("logs/part-[01].csv")
        assert not has_glob_magic("logs/part-000.csv")

    def test_glob_attach_creates_multi_entry(self, parts_dir):
        catalog = Catalog()
        entry = catalog.attach("t", str(parts_dir / "part-*.csv"))
        assert isinstance(entry, MultiFileEntry)

    def test_directory_attach_creates_multi_entry(self, parts_dir):
        catalog = Catalog()
        entry = catalog.attach("t", parts_dir)
        assert isinstance(entry, MultiFileEntry)

    def test_plain_file_attach_unchanged(self, parts_dir):
        catalog = Catalog()
        entry = catalog.attach("t", parts_dir / "part-000.csv")
        assert not isinstance(entry, MultiFileEntry)

    def test_empty_parts_skipped(self, parts_dir):
        (parts_dir / "part-002.csv").write_text("")
        catalog = Catalog()
        entry = catalog.attach("t", str(parts_dir / "part-*.csv"))
        assert len(entry.refresh()[0]) == 2

    def test_no_match_is_clean_error_on_first_use(self, tmp_path):
        engine = NoDBEngine(EngineConfig())
        engine.attach("t", str(tmp_path / "nothing-*.csv"))
        with pytest.raises(CatalogError, match="no data files match"):
            engine.query("select count(*) from t")
        engine.close()


class TestServing:
    def test_union_answers(self, parts_dir):
        engine = NoDBEngine(EngineConfig())
        engine.attach("t", str(parts_dir / "part-*.csv"))
        result = engine.query("select count(*), sum(a1), sum(a2) from t")
        assert result.rows()[0] == (
            250,
            sum(range(250)),
            sum(i * 2 for i in range(250)),
        )
        engine.close()

    def test_filters_and_projection_span_parts(self, parts_dir):
        engine = NoDBEngine(EngineConfig())
        engine.attach("t", str(parts_dir / "part-*.csv"))
        got = engine.query("select sum(a2) from t where a1 >= 95 and a1 < 105")
        assert got.scalar() == sum(i * 2 for i in range(95, 105))
        engine.close()

    def test_second_query_serves_warm(self, parts_dir):
        engine = NoDBEngine(EngineConfig())
        engine.attach("t", str(parts_dir / "part-*.csv"))
        engine.query("select sum(a1) from t")
        result = engine.query("select sum(a1) from t")
        assert result.stats["file_bytes_read"] == 0
        engine.close()

    def test_new_part_picked_up_without_reattach(self, parts_dir):
        engine = NoDBEngine(EngineConfig())
        engine.attach("t", str(parts_dir / "part-*.csv"))
        assert engine.query("select count(*) from t").scalar() == 250
        write_part(parts_dir / "part-002.csv", range(250, 300))
        assert engine.query("select count(*) from t").scalar() == 300
        engine.close()

    def test_new_part_does_not_rescan_old_parts(self, parts_dir):
        engine = NoDBEngine(EngineConfig())
        engine.attach("t", str(parts_dir / "part-*.csv"))
        engine.query("select sum(a1) from t")
        write_part(parts_dir / "part-002.csv", range(250, 260))
        new_bytes = (parts_dir / "part-002.csv").stat().st_size
        result = engine.query("select sum(a1) from t")
        assert result.scalar() == sum(range(260))
        # only the new part was read (schema sample + scan), never the
        # old parts — which dwarf it
        assert result.stats["file_bytes_read"] <= 3 * new_bytes
        engine.close()

    def test_append_to_one_part_extends_it(self, parts_dir):
        engine = NoDBEngine(EngineConfig())
        engine.attach("t", str(parts_dir / "part-*.csv"))
        engine.query("select sum(a1) from t")
        time.sleep(0.002)
        with open(parts_dir / "part-001.csv", "a") as fh:
            fh.write("900,1800\n")
        assert engine.query("select sum(a1) from t").scalar() == (
            sum(range(250)) + 900
        )
        assert engine.stats.counters.append_extensions == 1
        engine.close()

    def test_removed_part_dropped(self, parts_dir):
        engine = NoDBEngine(EngineConfig())
        engine.attach("t", str(parts_dir / "part-*.csv"))
        assert engine.query("select count(*) from t").scalar() == 250
        (parts_dir / "part-001.csv").unlink()
        assert engine.query("select count(*) from t").scalar() == 100
        engine.close()

    def test_count_star_only(self, parts_dir):
        engine = NoDBEngine(EngineConfig())
        engine.attach("t", str(parts_dir / "part-*.csv"))
        assert engine.query("select count(*) from t").scalar() == 250
        engine.close()

    def test_directory_attach_serves(self, parts_dir):
        engine = NoDBEngine(EngineConfig())
        engine.attach("t", parts_dir)
        assert engine.query("select count(*) from t").scalar() == 250
        engine.close()

    def test_schema_of(self, parts_dir):
        engine = NoDBEngine(EngineConfig())
        engine.attach("t", str(parts_dir / "part-*.csv"))
        assert engine.schema_of("t") == [("a1", "int64"), ("a2", "int64")]
        engine.close()

    def test_explain_lists_parts(self, parts_dir):
        engine = NoDBEngine(EngineConfig())
        engine.attach("t", str(parts_dir / "part-*.csv"))
        engine.query("select sum(a1) from t")
        text = engine.explain("select a1 from t where a1 > 5")
        assert "multi-file table" in text
        assert "part-000.csv" in text
        engine.close()

    def test_detach_multi(self, parts_dir):
        engine = NoDBEngine(EngineConfig())
        engine.attach("t", str(parts_dir / "part-*.csv"))
        engine.query("select sum(a1) from t")
        engine.detach("t")
        assert "t" not in engine.tables()
        with pytest.raises(CatalogError):
            engine.query("select sum(a1) from t")
        engine.close()


class TestSchemaReconciliation:
    def test_widest_dtype_wins_across_parts(self, tmp_path):
        (tmp_path / "a.csv").write_text("1,2\n3,4\n")
        (tmp_path / "b.csv").write_text("5.5,6\n7.25,8\n")
        engine = NoDBEngine(EngineConfig())
        engine.attach("m", str(tmp_path / "*.csv"))
        assert engine.schema_of("m") == [("a1", "float64"), ("a2", "int64")]
        got = engine.query("select sum(a1) from m").scalar()
        assert abs(got - 16.75) < 1e-9
        engine.close()

    def test_string_widening_preserves_raw_text(self, tmp_path):
        # "007" parsed under an int sibling would come back "7"; the
        # union path must re-parse the raw text, not stringify numbers.
        (tmp_path / "a.csv").write_text("007,1\n008,2\n")
        (tmp_path / "b.csv").write_text("vx,3\n")
        engine = NoDBEngine(EngineConfig())
        engine.attach("s", str(tmp_path / "*.csv"))
        rows = sorted(v for (v,) in engine.query("select a1 from s").rows())
        assert rows == ["007", "008", "vx"]
        engine.close()

    def test_column_count_mismatch_is_clean_error(self, tmp_path):
        (tmp_path / "a.csv").write_text("1,2\n")
        (tmp_path / "b.csv").write_text("1,2,3\n")
        engine = NoDBEngine(EngineConfig())
        engine.attach("m", str(tmp_path / "*.csv"))
        with pytest.raises(CatalogError, match="does not fit the table"):
            engine.query("select count(*) from m")
        engine.close()

    def test_header_name_mismatch_is_clean_error(self, tmp_path):
        (tmp_path / "a.csv").write_text("x,y\n1,2\n")
        (tmp_path / "b.csv").write_text("x,z\n3,4\n")
        engine = NoDBEngine(EngineConfig())
        engine.attach("m", str(tmp_path / "*.csv"))
        with pytest.raises(CatalogError, match="does not fit the table"):
            engine.query("select count(*) from m")
        engine.close()

    def test_headered_parts_union(self, tmp_path):
        (tmp_path / "a.csv").write_text("x,y\n1,2\n3,4\n")
        (tmp_path / "b.csv").write_text("x,y\n5,6\n")
        engine = NoDBEngine(EngineConfig())
        engine.attach("m", str(tmp_path / "*.csv"))
        assert engine.query("select sum(x), sum(y) from m").rows()[0] == (9, 12)
        engine.close()
