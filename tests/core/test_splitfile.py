"""Unit tests for the split-file (file cracking) catalog."""

import numpy as np
import pytest

from repro.core.splitfile import SplitFileCatalog
from repro.flatfile.files import FlatFile
from repro.flatfile.writer import write_csv


@pytest.fixture
def setup(tmp_path):
    cols = [np.arange(i * 100, i * 100 + 20, dtype=np.int64) for i in range(5)]
    path = write_csv(tmp_path / "src.csv", cols)
    catalog = SplitFileCatalog(
        source=FlatFile(path),
        directory=tmp_path / "splits",
        ncols=5,
        table_key="t",
    )
    return catalog, cols


def expected_text(col):
    return [str(v) for v in col]


class TestFetch:
    def test_fetch_from_original(self, setup):
        catalog, cols = setup
        result = catalog.fetch_columns([1])
        assert list(result.fields[1]) == expected_text(cols[1])

    def test_fetch_creates_singles_and_remainder(self, setup):
        catalog, cols = setup
        catalog.fetch_columns([1])
        assert catalog.homes[0].kind == "single"
        assert catalog.homes[1].kind == "single"
        for c in (2, 3, 4):
            assert catalog.homes[c].kind == "remainder"
        # The three tail columns share one remainder file.
        assert catalog.homes[2].file is catalog.homes[3].file

    def test_fetch_from_single_exact_bytes(self, setup):
        catalog, cols = setup
        catalog.fetch_columns([0])
        single = catalog.homes[0].file
        before = single.stats.bytes_read
        result = catalog.fetch_columns([0])
        assert list(result.fields[0]) == expected_text(cols[0])
        assert single.stats.bytes_read - before == single.size_bytes()

    def test_fetch_from_remainder_resplits(self, setup):
        catalog, cols = setup
        catalog.fetch_columns([0])  # singles: 0; remainder: 1..4
        result = catalog.fetch_columns([2])
        assert list(result.fields[2]) == expected_text(cols[2])
        assert catalog.homes[1].kind == "single"
        assert catalog.homes[2].kind == "single"
        assert catalog.homes[3].kind == "remainder"

    def test_fetch_multiple_mixed_homes(self, setup):
        catalog, cols = setup
        catalog.fetch_columns([1])
        result = catalog.fetch_columns([0, 3])
        assert list(result.fields[0]) == expected_text(cols[0])
        assert list(result.fields[3]) == expected_text(cols[3])

    def test_last_column(self, setup):
        catalog, cols = setup
        result = catalog.fetch_columns([4])
        assert list(result.fields[4]) == expected_text(cols[4])
        assert all(h.kind == "single" for h in catalog.homes.values())

    def test_out_of_range(self, setup):
        catalog, _ = setup
        from repro.errors import FlatFileError

        with pytest.raises(FlatFileError):
            catalog.fetch_columns([7])


class TestReassembly:
    def test_all_columns_recoverable_after_any_split_sequence(self, setup):
        catalog, cols = setup
        catalog.fetch_columns([3])
        catalog.fetch_columns([4])
        catalog.fetch_columns([0, 2])
        for i, col in enumerate(cols):
            got = catalog.fetch_columns([i]).fields[i]
            assert list(got) == expected_text(col), f"column {i} corrupted by splitting"


class TestAccounting:
    def test_files_written_counted(self, setup):
        catalog, _ = setup
        r = catalog.fetch_columns([1])
        assert r.files_written == 3  # col0, col1 singles + remainder
        assert catalog.files_written == 3

    def test_bytes_on_disk_grows(self, setup):
        catalog, _ = setup
        assert catalog.bytes_on_disk() == 0
        catalog.fetch_columns([2])
        assert catalog.bytes_on_disk() > 0

    def test_io_bytes_read_excludes_original(self, setup):
        catalog, _ = setup
        catalog.fetch_columns([1])
        assert catalog.io_bytes_read() == 0  # only the original was read
        catalog.fetch_columns([1])
        assert catalog.io_bytes_read() > 0  # now a single file was read


class TestDestroy:
    def test_destroy_removes_files_and_resets(self, setup):
        catalog, cols = setup
        catalog.fetch_columns([4])
        paths = [h.file.path for h in catalog.homes.values()]
        catalog.destroy()
        assert all(h.kind == "original" for h in catalog.homes.values())
        for p in paths:
            if p != catalog.source.path:
                assert not p.exists()
        # Still functional after destroy.
        got = catalog.fetch_columns([2]).fields[2]
        assert list(got) == expected_text(cols[2])


class TestHeaderedSource:
    def test_skip_rows_respected(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("x,y\n1,2\n3,4\n")
        catalog = SplitFileCatalog(
            source=FlatFile(path),
            directory=tmp_path / "s",
            ncols=2,
            table_key="h",
            skip_rows=1,
        )
        assert list(catalog.fetch_columns([1]).fields[1]) == ["2", "4"]
        # Singles must not contain the header.
        assert list(catalog.fetch_columns([1]).fields[1]) == ["2", "4"]
