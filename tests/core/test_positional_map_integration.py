"""Integration tests: the positional map measurably reduces tokenization.

Section 4.1.5: "Every time we touch a file, we learn a bit more about its
structure ... identifying and exploiting this knowledge in the future can
bring significant benefits."
"""

import pytest

from repro import EngineConfig, NoDBEngine


@pytest.fixture
def wide_engine_factory(wide_csv):
    engines = []

    def make(**kwargs):
        engine = NoDBEngine(EngineConfig(policy="column_loads", **kwargs))
        engine.attach("w", wide_csv)
        engines.append(engine)
        return engine

    yield make
    for e in engines:
        e.close()


EARLY = "select sum(a1), avg(a2) from w where a1 > 5 and a1 < 250"
LATE = "select sum(a11), avg(a12) from w where a11 > 5 and a11 < 250"
MID = "select sum(a6) from w"


class TestLearning:
    def test_map_populated_by_loads(self, wide_engine_factory):
        engine = wide_engine_factory(use_positional_map=True)
        engine.query(EARLY)
        pmap = engine.catalog.get("w").positional_map
        assert pmap.nrows == 300
        assert pmap.knows_column(0)
        assert pmap.knows_column(1)

    def test_map_disabled_stays_empty(self, wide_engine_factory):
        engine = wide_engine_factory(use_positional_map=False)
        engine.query(EARLY)
        pmap = engine.catalog.get("w").positional_map
        assert pmap.nrows is None


class TestExploitation:
    def test_second_load_tokenizes_less_with_map(self, wide_csv):
        def fields_tokenized(use_map: bool) -> int:
            engine = NoDBEngine(
                EngineConfig(policy="column_loads", use_positional_map=use_map)
            )
            engine.attach("w", wide_csv)
            engine.query(MID)  # learn offsets of columns up to a6
            engine.query(LATE)  # then load the last two columns
            count = engine.stats.last().tokenizer.fields_tokenized
            engine.close()
            return count

        with_map = fields_tokenized(True)
        without_map = fields_tokenized(False)
        assert with_map < without_map

    def test_map_does_not_change_answers(self, wide_csv):
        results = []
        for use_map in (True, False):
            engine = NoDBEngine(
                EngineConfig(policy="column_loads", use_positional_map=use_map)
            )
            engine.attach("w", wide_csv)
            engine.query(MID)
            results.append(engine.query(LATE))
            engine.close()
        assert results[0].approx_equal(results[1])

    def test_map_helps_partial_loads_too(self, wide_csv):
        def parsed(use_map: bool) -> int:
            engine = NoDBEngine(
                EngineConfig(policy="partial_v2", use_positional_map=use_map)
            )
            engine.attach("w", wide_csv)
            engine.query(MID)
            engine.query(LATE)
            total = engine.stats.last().tokenizer.fields_tokenized
            engine.close()
            return total

        assert parsed(True) < parsed(False)

    def test_map_cleared_on_invalidation(self, tmp_path):
        import time

        path = tmp_path / "t.csv"
        path.write_text("1,2\n3,4\n")
        engine = NoDBEngine(EngineConfig(policy="column_loads"))
        engine.attach("t", path)
        engine.query("select sum(a2) from t")
        assert engine.catalog.get("t").positional_map.nrows == 2
        time.sleep(0.02)
        path.write_text("1,2\n3,4\n5,6\n")
        engine.query("select sum(a2) from t")
        assert engine.catalog.get("t").positional_map.nrows == 3
        engine.close()
