"""Tests for EngineConfig validation."""

import pytest

from repro.config import POLICIES, EngineConfig


def test_default_policy_is_valid():
    assert EngineConfig().policy in POLICIES


@pytest.mark.parametrize("policy", POLICIES)
def test_all_policies_accepted(policy):
    assert EngineConfig(policy=policy).policy == policy


def test_unknown_policy_rejected():
    with pytest.raises(ValueError, match="unknown policy"):
        EngineConfig(policy="magic")


def test_bad_budget_rejected():
    with pytest.raises(ValueError, match="memory_budget_bytes"):
        EngineConfig(memory_budget_bytes=0)


def test_bad_eviction_policy_rejected():
    with pytest.raises(ValueError, match="eviction policy"):
        EngineConfig(eviction_policy="random")


def test_persist_requires_binary_dir():
    with pytest.raises(ValueError, match="binary_store_dir"):
        EngineConfig(persist_loads=True)


def test_resolve_splitfile_dir_creates_and_reuses(tmp_path):
    cfg = EngineConfig(splitfile_dir=tmp_path / "splits")
    d1 = cfg.resolve_splitfile_dir()
    assert d1.exists()
    assert cfg.resolve_splitfile_dir() == d1


def test_resolve_splitfile_dir_defaults_to_tempdir():
    cfg = EngineConfig()
    d = cfg.resolve_splitfile_dir()
    assert d.exists()
    assert "repro-splitfiles" in d.name
