"""The exported surface of ``repro`` is a contract — assert it exactly.

Satellite of the serving-layer redesign: ``repro.__all__`` *is* the
supported API.  This suite pins the export list, the error taxonomy's
wire codes, and the ``connect()`` facade semantics, so accidental
additions or removals fail loudly in review.
"""

from __future__ import annotations

import pytest

import repro
from repro.api import table_names_for
from repro.errors import ERROR_CODES, ReproError, error_from_payload

EXPECTED_EXPORTS = {
    # facade
    "Connection",
    "connect",
    # engines
    "AutoTuningEngine",
    "NoDBEngine",
    # baselines (oracle reference, not the application path)
    "AwkEngine",
    "CSVEngine",
    # configuration
    "EngineConfig",
    "POLICIES",
    # results
    "QueryResult",
    # error taxonomy
    "BadRequestError",
    "BindError",
    "BudgetExceededError",
    "CatalogError",
    "ExecutionError",
    "FlatFileError",
    "FormatDetectionError",
    "NotFoundError",
    "OverloadedError",
    "QueryTimeoutError",
    "ReproError",
    "SQLSyntaxError",
    "SchemaInferenceError",
    "StaleFileError",
    "TableConflictError",
    "UnknownResultError",
    "UnsupportedSQLError",
    # metadata
    "__version__",
}

EXPECTED_CODES = {
    "sql_syntax": 400,
    "sql_unsupported": 400,
    "bind": 400,
    "bad_request": 400,
    "catalog": 404,
    "not_found": 404,
    "unknown_result": 404,
    "table_conflict": 409,
    "stale_file": 409,
    "flat_file": 422,
    "schema_inference": 422,
    "format_detection": 422,
    "overloaded": 429,
    "internal": 500,
    "internal_error": 500,
    "execution": 500,
    "budget_exceeded": 503,
    "draining": 503,
    "query_timeout": 504,
}


def test_all_is_exactly_the_supported_surface():
    assert set(repro.__all__) == EXPECTED_EXPORTS
    for name in repro.__all__:
        assert getattr(repro, name) is not None, f"{name} exported but missing"


def test_every_exported_error_subclasses_reproerror():
    errors = [
        getattr(repro, name)
        for name in repro.__all__
        if name.endswith("Error")
    ]
    assert all(issubclass(cls, ReproError) for cls in errors)


def test_wire_codes_and_http_statuses_are_stable():
    # Codes are wire protocol: renaming one is a breaking change.
    assert {c: cls.http_status for c, cls in ERROR_CODES.items()} == {
        c: s for c, s in EXPECTED_CODES.items() if c != "internal"
    }
    assert ReproError.code == "internal"
    assert ReproError.http_status == 500


def test_error_payload_roundtrip():
    for cls in ERROR_CODES.values():
        exc = cls.__new__(cls)
        ReproError.__init__(exc, "boom")
        payload = exc.to_payload()
        back = error_from_payload(payload)
        assert type(back) is cls
        assert back.message == "boom"
    unknown = error_from_payload({"error": "from_the_future", "message": "hm"})
    assert type(unknown) is ReproError


def test_connect_single_file_attaches_as_t(small_csv):
    with repro.connect(small_csv) as conn:
        assert conn.tables() == ["t"]
        assert conn.execute("select count(*) from t").rows() == [(500,)]
        assert conn.stats()["queries"] == 1


def test_connect_many_files_attach_as_t1_tn(small_csv, wide_csv):
    assert table_names_for(1) == ["t"]
    assert table_names_for(3) == ["t1", "t2", "t3"]
    with repro.connect(small_csv, wide_csv) as conn:
        assert conn.tables() == ["t1", "t2"]


def test_connect_rejects_mixed_local_and_remote_arguments(small_csv):
    with pytest.raises(ValueError):
        repro.connect(small_csv, url="http://localhost:1")
    with pytest.raises(ValueError):
        repro.connect(small_csv, config=repro.EngineConfig(), policy="fullload")


def test_connection_close_is_idempotent(small_csv):
    conn = repro.connect(small_csv, policy="column_loads")
    assert conn.engine.config.policy == "column_loads"
    conn.close()
    conn.close()


def test_connect_url_returns_remote_connection():
    from repro.client import RemoteConnection

    conn = repro.connect(url="http://127.0.0.1:1/")
    assert isinstance(conn, RemoteConnection)
    assert conn.url == "http://127.0.0.1:1"
