"""Differential-testing oracle harness for the format-adapter layer.

The oracle is :class:`repro.baselines.csv_engine.CSVEngine` — the
external policy that re-reads and re-tokenizes the raw file on every
query, keeping nothing.  It is the slowest, most obviously correct way
to answer a query over a flat file, which makes it the reference: for
any dialect rendering of a random table and any workload, every adaptive
policy, worker count and cold/warm repetition must return exactly the
oracle's results.

This module holds the pieces the test files share: random-table
strategies (Hypothesis), dialect renderers, workload generation, result
normalization and the compare loop itself.
"""

from __future__ import annotations

import math
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
from hypothesis import strategies as st

from repro import EngineConfig, NoDBEngine
from repro.baselines.csv_engine import CSVEngine
from repro.config import POLICIES
from repro.flatfile.dialects import (
    DelimitedAdapter,
    FixedWidthAdapter,
    JsonLinesAdapter,
    QuotedCsvAdapter,
    TsvAdapter,
)
from repro.flatfile.writer import format_value, write_csv

#: Every dialect the adapter layer supports, oracle-tested in full.
DIALECTS = ("csv", "quoted-csv", "tsv", "jsonl", "fixed-width")

__all__ = [
    "DIALECTS",
    "POLICIES",
    "compare_engine_to_oracle",
    "make_workload",
    "normalize",
    "oracle_results",
    "render_table",
    "run_workload_concurrently",
    "tables",
]


# ---------------------------------------------------------------------------
# random tables
# ---------------------------------------------------------------------------

# No digits and none of n/a/i/f/e (nan / inf / 1e5 lookalikes), so string
# columns always classify as strings; representable in every dialect.
_SAFE_LETTERS = "bcdghjklmpqrstuvwxyzßéあ素"


def _string_values():
    return st.text(alphabet=_SAFE_LETTERS, max_size=6).map(lambda s: "v" + s)


def _payload_column():
    return st.one_of(
        st.lists(st.integers(-10**6, 10**6), min_size=1),
        st.lists(st.integers(-8000, 8000).map(lambda n: n / 8), min_size=1),
        st.lists(_string_values(), min_size=1),
    )


def tables():
    """Random tables: first column always int (predicates target it)."""

    def build(draw_tuple):
        key_vals, payload_cols, nrows = draw_tuple
        cols = [[key_vals[i % len(key_vals)] for i in range(nrows)]]
        for col in payload_cols:
            cols.append([col[i % len(col)] for i in range(nrows)])
        return cols

    return st.tuples(
        st.lists(st.integers(-1000, 1000), min_size=1),
        st.lists(_payload_column(), min_size=0, max_size=2),
        st.integers(1, 12),
    ).map(build)


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def render_table(directory: Path, columns, dialect: str):
    """Write ``columns`` in ``dialect``; return (path, attach kwargs)."""
    if dialect == "fixed-width":
        texts = [[format_value(v) for v in col] for col in columns]
        widths = tuple(max(max(len(t) for t in col), 1) for col in texts)
        adapter = FixedWidthAdapter(widths)
        kwargs: dict = {"format": "fixed-width", "fixed_widths": widths}
    elif dialect == "jsonl":
        adapter = JsonLinesAdapter()
        kwargs = {"format": "jsonl"}
    elif dialect == "quoted-csv":
        adapter = QuotedCsvAdapter(",")
        kwargs = {"format": "quoted-csv"}
    elif dialect == "tsv":
        adapter = TsvAdapter()
        kwargs = {"format": "tsv"}
    elif dialect == "csv":
        adapter = DelimitedAdapter(",")
        kwargs = {}
    else:
        raise ValueError(f"unknown dialect {dialect!r}")
    path = directory / f"table-{dialect.replace('-', '')}.dat"
    write_csv(path, columns, adapter=adapter)
    return path, kwargs


# ---------------------------------------------------------------------------
# workloads
# ---------------------------------------------------------------------------


def make_workload(columns, bounds: tuple[int, int]) -> list[str]:
    """A deterministic workload exercising the loading machinery.

    Mixes projections (touch string columns too), filtered aggregates
    (pushdown + early abort), count(*) (row framing), and a repeat of
    the first query (warm positional-map path).
    """
    names = [f"a{i + 1}" for i in range(len(columns))]
    numeric = [
        n
        for n, col in zip(names, columns)
        if isinstance(col[0], (int, float))
    ]
    lo, hi = sorted(bounds)
    queries = [f"select {', '.join(names)} from t"]
    queries.append(f"select count(*) from t where a1 > {lo}")
    if numeric:
        aggs = ", ".join(f"sum({n}), min({n}), max({n})" for n in numeric[:2])
        queries.append(f"select {aggs} from t where a1 > {lo} and a1 < {hi}")
    queries.append(f"select {names[-1]} from t where a1 < {hi}")
    queries.append(queries[0])  # warm repeat inside the same engine
    return queries


# ---------------------------------------------------------------------------
# result normalization + comparison
# ---------------------------------------------------------------------------


def normalize(result) -> list[tuple]:
    """Result rows as plain Python scalars (NaN made comparable)."""
    out = []
    for row in result.rows():
        cells = []
        for cell in row:
            if isinstance(cell, (np.floating, float)):
                value = float(cell)
                cells.append("NaN" if math.isnan(value) else value)
            elif isinstance(cell, (np.integer, int)):
                cells.append(int(cell))
            else:
                cells.append(str(cell))
        out.append(tuple(cells))
    return out


def oracle_results(path, kwargs, queries) -> list[list[tuple]]:
    """The CSV-engine oracle's answer to every query, in order."""
    oracle = CSVEngine()
    try:
        oracle.attach("t", path, **kwargs)
        return [normalize(oracle.query(q)) for q in queries]
    finally:
        oracle.close()


def run_workload_concurrently(
    engine, queries, nthreads: int
) -> list[list[list[tuple]]]:
    """Replay ``queries`` from ``nthreads`` threads against one engine.

    Every thread runs the *whole* workload in order, all released
    together by a barrier to maximize interleavings (shared cold scans,
    racing warm reads, result-cache races).  Returns the normalized
    per-thread answer lists; any thread exception is re-raised.
    """
    barrier = threading.Barrier(nthreads)

    def replay(_: int) -> list[list[tuple]]:
        barrier.wait()
        return [normalize(engine.query(q)) for q in queries]

    with ThreadPoolExecutor(max_workers=nthreads) as pool:
        return list(pool.map(replay, range(nthreads)))


def compare_engine_to_oracle(
    path,
    kwargs,
    queries,
    expected: list[list[tuple]],
    policy: str,
    label: str,
    **config_kwargs,
) -> NoDBEngine:
    """Run the workload cold on a fresh engine and diff every answer.

    Returns the (closed) engine so callers can inspect its stats.
    """
    engine = NoDBEngine(EngineConfig(policy=policy, **config_kwargs))
    try:
        engine.attach("t", path, **kwargs)
        for i, (query, want) in enumerate(zip(queries, expected)):
            got = normalize(engine.query(query))
            assert got == want, (
                f"[{label}] policy={policy} query#{i} {query!r}: "
                f"engine {got!r} != oracle {want!r}"
            )
    finally:
        engine.close()
    return engine
