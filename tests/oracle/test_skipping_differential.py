"""Differential testing of the skipping stack (zone maps + cracking).

Skipping must be invisible in answers: with aggressive settings (crack
on the first warm range scan, tiny zones so random tables really have
skippable zones), every dialect × policy must still equal the CSVEngine
oracle — serially, concurrently, and across an engine restart through
the persistent store.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings

from harness import (
    DIALECTS,
    POLICIES,
    compare_engine_to_oracle,
    make_workload,
    normalize,
    oracle_results,
    run_workload_concurrently,
    tables,
    render_table,
)

from repro import EngineConfig, NoDBEngine

#: Aggressive skipping: crack on the first warm range scan, zones small
#: enough that even 12-row Hypothesis tables have several.
SKIP_KWARGS = dict(crack_after=1, zone_map_rows=4)


def make_skipping_workload(columns, bounds: tuple[int, int]) -> list[str]:
    """The shared workload plus repeated range scans (cracking triggers
    only on *warm* range queries, so each range query runs three times)."""
    queries = make_workload(columns, bounds)
    lo, hi = sorted(bounds)
    ranged = [
        f"select count(*) from t where a1 > {lo} and a1 < {hi}",
        f"select min(a1), max(a1) from t where a1 >= {lo} and a1 <= {hi}",
        f"select count(*) from t where a1 < {lo}",
    ]
    for q in ranged:
        queries.extend([q, q, q])
    return queries


def _sorted_first_column(columns):
    """Cluster a1 so zone min/max actually exclude zones."""
    out = [sorted(columns[0])] + [list(c) for c in columns[1:]]
    return out


@settings(max_examples=4, deadline=None)
@given(columns=tables())
@pytest.mark.parametrize("dialect", DIALECTS)
def test_skipping_matches_oracle_every_policy(dialect, columns):
    """Random tables: all six policies with skipping forced on."""
    with tempfile.TemporaryDirectory(prefix="repro-skip-") as tmp:
        path, kwargs = render_table(Path(tmp), columns, dialect)
        queries = make_skipping_workload(columns, bounds=(-100, 400))
        expected = oracle_results(path, kwargs, queries)
        for policy in POLICIES:
            compare_engine_to_oracle(
                path,
                kwargs,
                queries,
                expected,
                policy,
                label=f"{dialect} skipping",
                **SKIP_KWARGS,
            )


@settings(max_examples=4, deadline=None)
@given(columns=tables().map(_sorted_first_column))
def test_skipping_matches_oracle_on_clustered_tables(columns):
    """Sorted a1 maximizes real zone exclusions; answers must not move."""
    with tempfile.TemporaryDirectory(prefix="repro-skip-") as tmp:
        path, kwargs = render_table(Path(tmp), columns, "csv")
        queries = make_skipping_workload(columns, bounds=(-100, 400))
        expected = oracle_results(path, kwargs, queries)
        for policy in ("partial_v1", "partial_v2", "column_loads"):
            compare_engine_to_oracle(
                path,
                kwargs,
                queries,
                expected,
                policy,
                label="clustered skipping",
                **SKIP_KWARGS,
            )


@settings(max_examples=3, deadline=None)
@given(columns=tables())
@pytest.mark.parametrize("policy", ("column_loads", "splitfiles", "fullload"))
def test_concurrent_skipping_matches_oracle(policy, columns):
    """Two threads replaying the workload against one engine: racing
    warm serves may build/use crackers concurrently under the read lock;
    every thread's every answer must equal the oracle."""
    with tempfile.TemporaryDirectory(prefix="repro-skip-") as tmp:
        path, kwargs = render_table(Path(tmp), columns, "csv")
        queries = make_skipping_workload(columns, bounds=(-100, 400))
        expected = oracle_results(path, kwargs, queries)
        engine = NoDBEngine(
            EngineConfig(policy=policy, result_cache=False, **SKIP_KWARGS)
        )
        try:
            engine.attach("t", path, **kwargs)
            per_thread = run_workload_concurrently(engine, queries, nthreads=2)
            for tid, answers in enumerate(per_thread):
                assert answers == expected, f"thread {tid} drifted from oracle"
        finally:
            engine.close()


@settings(max_examples=3, deadline=None)
@given(columns=tables().map(_sorted_first_column))
def test_restart_skipping_matches_oracle(columns):
    """Engine A learns zones and persists; engine B restores them and
    serves skipping-assisted answers that must still equal the oracle."""
    with tempfile.TemporaryDirectory(prefix="repro-skip-") as tmp:
        path, kwargs = render_table(Path(tmp), columns, "csv")
        queries = make_skipping_workload(columns, bounds=(-100, 400))
        expected = oracle_results(path, kwargs, queries)
        store = Path(tmp) / "store"
        cfg = dict(policy="partial_v2", store_dir=store, **SKIP_KWARGS)
        a = NoDBEngine(EngineConfig(**cfg))
        try:
            a.attach("t", path, **kwargs)
            for q, want in zip(queries, expected):
                assert normalize(a.query(q)) == want
            a.flush_persistent_store()
        finally:
            a.close()
        b = NoDBEngine(EngineConfig(**cfg))
        try:
            b.attach("t", path, **kwargs)
            for i, (q, want) in enumerate(zip(queries, expected)):
                got = normalize(b.query(q))
                assert got == want, f"restart query#{i} {q!r}: {got!r} != {want!r}"
        finally:
            b.close()


def test_skipping_actually_fires_on_deterministic_table(tmp_path):
    """Guard against the suite above passing vacuously: on a clustered
    table with repeated warm range scans, both counters must move."""
    path = tmp_path / "t.csv"
    # Three columns: the selective path only engages when the query's
    # column windows save a meaningful fraction of the file.
    with open(path, "w") as f:
        for i in range(2000):
            f.write(f"{i},{i % 5},{i * 0.5:.2f}\n")
    q = "select sum(a2) from t where a1 > 100 and a1 < 140"
    engine = NoDBEngine(
        EngineConfig(policy="column_loads", crack_after=1, zone_map_rows=64)
    )
    try:
        engine.attach("t", path)
        for _ in range(3):
            engine.query(q)
        assert engine.stats.snapshot()["counters"]["cracks"] > 0
    finally:
        engine.close()
    engine = NoDBEngine(
        EngineConfig(policy="partial_v1", cracking=False, zone_map_rows=64)
    )
    try:
        engine.attach("t", path)
        engine.query("select sum(a1), sum(a2) from t")  # teach zones
        engine.query(q)
        assert engine.stats.snapshot()["counters"]["zone_map_skips"] > 0
    finally:
        engine.close()
