"""Append differential testing: extended state vs. a from-scratch scan.

The correctness bar for incremental maintenance is absolute: after any
byte suffix is appended to an attached file — complete rows, a ragged
partial last line, CRLF line endings, a suffix completing a previously
partial line — a warm engine's answers must be *byte-identical* to those
of a fresh engine cold-scanning the final file.  Whether the engine
extended its learned state or fell back to full invalidation is an
efficiency detail the answers must never betray.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from harness import make_workload, normalize, tables

from repro import EngineConfig, NoDBEngine
from repro.flatfile.writer import format_value


def _render_lines(columns) -> list[str]:
    nrows = len(columns[0])
    return [
        ",".join(format_value(col[i]) for col in columns) for i in range(nrows)
    ]


def _cold_answers(path, queries) -> list[list[tuple]]:
    engine = NoDBEngine(EngineConfig(policy="column_loads"))
    try:
        engine.attach("t", path)
        return [normalize(engine.query(q)) for q in queries]
    finally:
        engine.close()


@settings(max_examples=25, deadline=None)
@given(
    columns=tables(),
    split_frac=st.floats(0.05, 0.95),
    crlf=st.booleans(),
    ragged_final=st.booleans(),
    align_to_line=st.booleans(),
)
def test_any_appended_suffix_equals_cold_scan(
    columns, split_frac, crlf, ragged_final, align_to_line
):
    """Split a random rendering at a random *byte*; serve the prefix
    warm, append the rest, and diff every answer against a cold scan."""
    newline = "\r\n" if crlf else "\n"
    lines = _render_lines(columns)
    text = newline.join(lines) + ("" if ragged_final else newline)

    if newline not in text:
        return  # single ragged line: no split leaves a complete first row
    # keep the first row complete in the base so schema inference over the
    # prefix sees the full column set
    first = text.find(newline) + len(newline)
    if align_to_line:
        # cut right after a line terminator: the pure tail-append shape
        ends = [
            i + len(newline)
            for i in range(len(text))
            if text.startswith(newline, i)
        ]
        cut = ends[min(len(ends) - 1, max(0, int(split_frac * len(ends))))]
    else:
        # cut anywhere, possibly mid-line or inside a CRLF pair
        cut = min(len(text), max(first, int(split_frac * len(text))))
    base, suffix = text[:cut], text[cut:]
    if not suffix:
        return  # nothing appended; nothing to test

    queries = make_workload(columns, bounds=(-100, 400))
    with tempfile.TemporaryDirectory(prefix="repro-append-oracle-") as tmp:
        path = Path(tmp) / "grow.csv"
        path.write_bytes(base.encode())

        engine = NoDBEngine(EngineConfig(policy="column_loads"))
        try:
            engine.attach("t", path)
            for q in queries:
                # warm the learned state over the prefix, best-effort: a
                # mid-line cut can leave a base whose last row is garbage
                # (or truncates a column the query names); the contract
                # under test is only the *post-append* answers.
                try:
                    engine.query(q)
                except Exception:
                    pass

            with open(path, "ab") as fh:
                fh.write(suffix.encode())

            expected = _cold_answers(path, queries)
            for i, (q, want) in enumerate(zip(queries, expected)):
                got = normalize(engine.query(q))
                assert got == want, (
                    f"query#{i} {q!r} after append (crlf={crlf}, "
                    f"ragged={ragged_final}, aligned={align_to_line}): "
                    f"warm {got!r} != cold {want!r}"
                )
        finally:
            engine.close()


@settings(max_examples=10, deadline=None)
@given(columns=tables(), nparts=st.integers(2, 4))
def test_multi_file_union_equals_single_file_scan(columns, nparts):
    """The same rows split across N part files and attached by glob must
    answer exactly like the single concatenated file."""
    lines = _render_lines(columns)
    queries = make_workload(columns, bounds=(-100, 400))
    with tempfile.TemporaryDirectory(prefix="repro-multi-oracle-") as tmp:
        tmp_path = Path(tmp)
        whole = tmp_path / "whole.csv"
        whole.write_text("\n".join(lines) + "\n")
        expected = _cold_answers(whole, queries)

        per_part = max(1, (len(lines) + nparts - 1) // nparts)
        for i in range(0, len(lines), per_part):
            chunk = lines[i : i + per_part]
            (tmp_path / f"part-{i:04d}.csv").write_text(
                "\n".join(chunk) + "\n"
            )

        engine = NoDBEngine(EngineConfig(policy="column_loads"))
        try:
            engine.attach("t", str(tmp_path / "part-*.csv"))
            for i, (q, want) in enumerate(zip(queries, expected)):
                got = normalize(engine.query(q))
                assert got == want, (
                    f"query#{i} {q!r} over {nparts} parts: "
                    f"union {got!r} != single-file {want!r}"
                )
                # and again, warm
                got = normalize(engine.query(q))
                assert got == want, f"warm repeat of query#{i}"
        finally:
            engine.close()
