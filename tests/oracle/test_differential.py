"""Differential testing: every dialect × policy × workers vs. the oracle.

Randomized tables and workloads (Hypothesis) are rendered in every
dialect the adapter layer supports; the adaptive engine under every
loading policy — cold and warm, serial and partitioned-parallel — must
return results identical to the :class:`CSVEngine` oracle (the external
policy, which re-reads and re-tokenizes the file on every query and so
cannot be wrong about dialect decoding without the whole substrate being
wrong, in which case the plain-CSV cross-check below catches it).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings

from harness import (
    DIALECTS,
    POLICIES,
    compare_engine_to_oracle,
    make_workload,
    normalize,
    oracle_results,
    render_table,
    tables,
)

from repro import EngineConfig, NoDBEngine
from repro.core.partitions import warm_pool
from repro.workload import TableSpec, generate_columns

#: Acceptance matrix: worker counts the parallel sweep must cover.
WORKER_COUNTS = (1, 2, 4)


@settings(max_examples=6)
@given(columns=tables())
@pytest.mark.parametrize("dialect", DIALECTS)
def test_every_policy_matches_oracle(dialect, columns):
    """Random table + workload: all six policies equal the oracle."""
    with tempfile.TemporaryDirectory(prefix="repro-oracle-") as tmp:
        path, kwargs = render_table(Path(tmp), columns, dialect)
        queries = make_workload(columns, bounds=(-100, 400))
        expected = oracle_results(path, kwargs, queries)
        for policy in POLICIES:
            compare_engine_to_oracle(
                path, kwargs, queries, expected, policy, label=dialect
            )


@pytest.mark.parametrize("dialect", ("csv", "tsv", "fixed-width"))
def test_every_policy_matches_oracle_with_kernel_forced_off(dialect, tmp_path):
    """Scalar-tokenizer ablation: ``vectorized_tokenizer=False`` for every
    policy must still equal the oracle — and equal the kernel route.

    This keeps the scalar path (the fallback for ragged/anchored text and
    the reference the vectorized differential suite diffs against) under
    the same end-to-end oracle as the default configuration.
    """
    columns = _seeded_table(nrows=150, ncols=3)
    path, kwargs = render_table(tmp_path, columns, dialect)
    queries = make_workload(columns, bounds=(40, 360))
    expected = oracle_results(path, kwargs, queries)
    for policy in POLICIES:
        compare_engine_to_oracle(
            path,
            kwargs,
            queries,
            expected,
            policy,
            label=f"{dialect} scalar-tokenizer",
            vectorized_tokenizer=False,
        )


@settings(max_examples=6)
@given(columns=tables())
def test_dialects_agree_with_each_other(columns):
    """One logical table, five renderings: identical answers everywhere.

    This is the cross-check that keeps the oracle honest: the oracle for
    each dialect shares the adapter with the engine under test, but the
    plain-CSV rendering exercises the original (paper-validated)
    substrate, so any dialect whose decoding drifts from plain CSV fails
    here even if engine and oracle drift together.
    """
    with tempfile.TemporaryDirectory(prefix="repro-oracle-") as tmp:
        queries = make_workload(columns, bounds=(-100, 400))
        reference = None
        for dialect in DIALECTS:
            path, kwargs = render_table(Path(tmp), columns, dialect)
            got = oracle_results(path, kwargs, queries)
            if reference is None:
                reference = got
            else:
                assert got == reference, f"dialect {dialect} drifts from csv"


def _seeded_table(nrows: int = 400, ncols: int = 4) -> list[list]:
    cols = generate_columns(TableSpec(nrows=nrows, ncols=ncols, seed=977))
    return [c.tolist() for c in cols]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("dialect", DIALECTS)
def test_worker_counts_match_oracle(dialect, workers, tmp_path):
    """Cold + warm answers are identical at every worker count.

    ``partition_min_bytes`` is forced tiny so multi-worker configs really
    partition (where the dialect allows it); quoted CSV must instead
    degrade to a serial scan — and still answer identically.
    """
    columns = _seeded_table()
    path, kwargs = render_table(tmp_path, columns, dialect)
    queries = make_workload(columns, bounds=(40, 360))
    expected = oracle_results(path, kwargs, queries)
    if workers > 1:
        warm_pool(workers)
    for policy in ("column_loads", "partial_v2", "fullload"):
        engine = NoDBEngine(
            EngineConfig(
                policy=policy,
                parallel_workers=workers,
                partition_min_bytes=64,
            )
        )
        try:
            engine.attach("t", path, **kwargs)
            partitions_seen = 0
            for i, (query, want) in enumerate(zip(queries, expected)):
                got = normalize(engine.query(query))
                assert got == want, (
                    f"[{dialect} workers={workers}] policy={policy} "
                    f"query#{i} {query!r}: {got!r} != {want!r}"
                )
                partitions_seen = max(
                    partitions_seen, engine.stats.last().parallel_partitions
                )
            if workers > 1 and dialect == "quoted-csv":
                # records may span newlines: partitioning must decline
                assert partitions_seen == 0
            elif workers > 1 and policy != "partial_v2":
                assert partitions_seen >= 2
        finally:
            engine.close()


@pytest.mark.parametrize("dialect", DIALECTS)
def test_cold_vs_warm_engine_restart(dialect, tmp_path):
    """A fresh engine (cold file state) equals a long-lived warm one."""
    columns = _seeded_table(nrows=120, ncols=3)
    path, kwargs = render_table(tmp_path, columns, dialect)
    queries = make_workload(columns, bounds=(10, 110))
    expected = oracle_results(path, kwargs, queries)
    # warm: one engine runs the workload twice back to back
    engine = NoDBEngine(EngineConfig(policy="column_loads"))
    try:
        engine.attach("t", path, **kwargs)
        for lap in range(2):
            for i, (query, want) in enumerate(zip(queries, expected)):
                got = normalize(engine.query(query))
                assert got == want, (
                    f"[{dialect}] warm lap {lap} query#{i}: "
                    f"{got!r} != {want!r}"
                )
    finally:
        engine.close()
