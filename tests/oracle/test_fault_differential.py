"""Chaos differential oracle: random faults must never change answers.

The resilience contract, stated as an oracle: under *any* fault plan,
every query either returns exactly what the serial re-reading
:class:`~repro.baselines.csv_engine.CSVEngine` oracle returns, or raises
a taxonomy :class:`~repro.errors.ReproError` — never a wrong answer,
never a silent drop, and never a leaked pin, scan flight or admission
slot afterwards.  Fault plans, tables, dialects and engine knobs are all
drawn from one seeded RNG, so every failure reproduces from its seed
(override the seed list with ``REPRO_CHAOS_SEEDS=7,8,9``).

CI runs this under ``pytest-timeout`` (the ``chaos`` job): a deadlock
introduced on any degraded path fails the build instead of hanging it.
"""

from __future__ import annotations

import os
import random
import threading
import time

import pytest

from repro import EngineConfig, NoDBEngine
from repro.client import RemoteConnection
from repro.config import POLICIES
from repro.errors import ReproError
from repro.faults import FaultPlan, FaultSpec
from repro.server import ReproServer

from harness import (
    DIALECTS,
    make_workload,
    normalize,
    oracle_results,
    render_table,
)

SEEDS = [
    int(s)
    for s in os.environ.get("REPRO_CHAOS_SEEDS", "101,202,303").split(",")
    if s.strip()
]

#: Points that can fire inside the engine's own query path.
ENGINE_POINTS = (
    "flatfile.read",
    "flatfile.short_read",
    "persist.write",
    "persist.read",
    "pool.worker",
)
#: The serving layer adds request crashes and result-disk faults.
SERVER_POINTS = ENGINE_POINTS + (
    "server.request",
    "results.write",
    "results.read",
    "results.unlink",
)


# ---------------------------------------------------------------------------
# seeded generators
# ---------------------------------------------------------------------------


def _random_table(rng: random.Random) -> list[list]:
    nrows = rng.randint(20, 120)
    columns: list[list] = [[rng.randint(-1000, 1000) for _ in range(nrows)]]
    for _ in range(rng.randint(0, 2)):
        kind = rng.choice(("int", "float", "str"))
        if kind == "int":
            columns.append([rng.randint(-(10**6), 10**6) for _ in range(nrows)])
        elif kind == "float":
            columns.append([rng.randint(-8000, 8000) / 8 for _ in range(nrows)])
        else:
            letters = "bcdghjklmpqrstuvwxyz"
            columns.append(
                [
                    "v" + "".join(rng.choices(letters, k=rng.randint(0, 5)))
                    for _ in range(nrows)
                ]
            )
    return columns


def _random_plan(rng: random.Random, points: tuple[str, ...]) -> FaultPlan:
    """A random mix of transient bursts and low-probability persistent faults."""
    specs: dict[str, FaultSpec] = {}
    for point in points:
        roll = rng.random()
        if roll < 0.35:
            continue  # this point stays healthy
        if roll < 0.55:
            specs[point] = FaultSpec(
                times=None, probability=rng.choice((0.1, 0.25, 0.5))
            )
        else:
            specs[point] = FaultSpec(
                times=rng.randint(1, 3), after=rng.randint(0, 2)
            )
    return FaultPlan(specs, seed=rng.randint(0, 2**20))


def _random_config(rng: random.Random, tmp_path, tag: str) -> EngineConfig:
    workers = rng.choice((1, 2))
    return EngineConfig(
        policy=rng.choice(POLICIES),
        fault_plan=None,  # set by the caller
        io_retry_backoff_s=0.0,
        io_retry_attempts=rng.choice((2, 3)),
        parallel_workers=workers,
        partition_min_bytes=64 if workers > 1 else 1 << 20,
        store_dir=(tmp_path / f"store-{tag}") if rng.random() < 0.5 else None,
        persist_failure_limit=rng.choice((1, 3)),
    )


def _check_workload(engine, queries, expected, failures: list) -> None:
    """Each answer is the oracle's, or a clean taxonomy error."""
    for i, (query, want) in enumerate(zip(queries, expected)):
        try:
            got = normalize(engine.query(query))
        except ReproError as exc:
            failures.append((i, exc))
            continue
        assert got == want, (
            f"query#{i} {query!r} under faults: {got!r} != oracle {want!r}"
        )


def _assert_engine_clean(engine) -> None:
    with engine.memory._lock:
        pinned = {
            key: frag.pins
            for key, frag in engine.memory.fragments.items()
            if frag.pins
        }
    assert not pinned, f"pinned fragments leaked under faults: {pinned}"
    assert engine._scan_gate.in_flight() == 0, "shared-scan flights leaked"


# ---------------------------------------------------------------------------
# engine phase
# ---------------------------------------------------------------------------


@pytest.mark.timeout(180)
@pytest.mark.parametrize("seed", SEEDS)
def test_engine_answers_match_oracle_under_random_faults(seed, tmp_path):
    rng = random.Random(seed)
    for round_no in range(4):
        columns = _random_table(rng)
        dialect = rng.choice(DIALECTS)
        directory = tmp_path / f"round{round_no}"
        directory.mkdir()
        path, kwargs = render_table(directory, columns, dialect)
        bounds = (rng.randint(-1000, 0), rng.randint(0, 1000))
        queries = make_workload(columns, bounds)
        expected = oracle_results(path, kwargs, queries)

        config = _random_config(rng, directory, f"{seed}-{round_no}")
        config.fault_plan = _random_plan(rng, ENGINE_POINTS)
        failures: list = []
        with NoDBEngine(config) as engine:
            try:
                engine.attach("t", path, **kwargs)
            except ReproError:
                continue  # attach died cleanly under faults: acceptable
            _check_workload(engine, queries, expected, failures)
            # Replay warm: a query that failed mid-load must not have
            # left half-loaded state that changes later answers.
            _check_workload(engine, queries, expected, failures)
            _assert_engine_clean(engine)


@pytest.mark.timeout(180)
@pytest.mark.parametrize("seed", SEEDS)
def test_concurrent_engine_answers_match_oracle_under_random_faults(
    seed, tmp_path
):
    rng = random.Random(seed * 31 + 5)
    columns = _random_table(rng)
    path, kwargs = render_table(tmp_path, columns, rng.choice(DIALECTS))
    queries = make_workload(columns, (rng.randint(-1000, 0), rng.randint(0, 1000)))
    expected = oracle_results(path, kwargs, queries)

    config = _random_config(rng, tmp_path, str(seed))
    config.fault_plan = _random_plan(rng, ENGINE_POINTS)
    nthreads = 3
    barrier = threading.Barrier(nthreads)
    errors: list = []

    with NoDBEngine(config) as engine:
        engine_failures: list = []
        try:
            engine.attach("t", path, **kwargs)
        except ReproError:
            return  # attach died cleanly under faults: acceptable

        def replay():
            try:
                barrier.wait(timeout=60)
                _check_workload(engine, queries, expected, engine_failures)
            except BaseException as exc:  # assertion or leak → fail the test
                errors.append(exc)

        threads = [
            threading.Thread(target=replay, daemon=True) for _ in range(nthreads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, f"concurrent chaos violations: {errors!r}"
        _assert_engine_clean(engine)


# ---------------------------------------------------------------------------
# HTTP phase
# ---------------------------------------------------------------------------


@pytest.mark.timeout(180)
@pytest.mark.parametrize("seed", SEEDS)
def test_served_answers_match_oracle_under_random_faults(seed, tmp_path):
    rng = random.Random(seed * 17 + 3)
    columns = _random_table(rng)
    path, kwargs = render_table(tmp_path, columns, "csv")
    queries = make_workload(columns, (rng.randint(-1000, 0), rng.randint(0, 1000)))
    expected = oracle_results(path, kwargs, queries)

    config = _random_config(rng, tmp_path, str(seed))
    config.fault_plan = _random_plan(rng, SERVER_POINTS)
    engine = NoDBEngine(config)
    try:
        engine.attach("t", path, **kwargs)
    except ReproError:
        engine.close()
        return  # attach died cleanly under faults: acceptable
    with ReproServer(engine, port=0, owns_engine=True) as server:
        server.start()
        nclients = 3
        barrier = threading.Barrier(nclients)
        errors: list = []

        def run_client(n: int):
            conn = RemoteConnection(
                server.url,
                client_id=f"chaos-{n}",
                max_retries=2,
                backoff_s=0.001,
                retry_after_cap_s=0.01,
            )
            try:
                barrier.wait(timeout=60)
                for i, (query, want) in enumerate(zip(queries, expected)):
                    try:
                        got = normalize(conn.execute(query))
                    except ReproError:
                        continue  # clean refusal/failure: acceptable
                    assert got == want, (
                        f"client {n} query#{i} {query!r}: "
                        f"{got!r} != oracle {want!r}"
                    )
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=run_client, args=(n,), daemon=True)
            for n in range(nclients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, f"served chaos violations: {errors!r}"

        # No admission slot may outlive its request (done-callbacks can
        # land a beat after the response, hence the short grace loop).
        deadline = time.monotonic() + 10
        while server.admission.snapshot()["inflight"] > 0:
            assert time.monotonic() < deadline, (
                f"admission slots leaked: {server.admission.snapshot()}"
            )
            time.sleep(0.01)
        _assert_engine_clean(server.engine)
