"""Concurrent differential testing: the serving layer vs. the serial oracle.

The concurrency tentpole (per-table RW locks, shared-scan batching, the
query-result cache) must be *invisible* in every answer: for every
dialect × policy × thread count × engine state (cold store, warm store,
populated result cache), replaying a workload from K concurrent threads
against one engine must produce exactly the answers the serial
single-threaded :class:`CSVEngine` oracle (the external policy) gives.

Shared-scan batching additionally has an observable efficiency contract:
for store-keeping policies, a cold (table, column-set) generation is
loaded from the raw file **at most once** no matter how many threads
raced for it — asserted through ``EngineStatistics.loads_by_signature``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings

from harness import (
    DIALECTS,
    POLICIES,
    make_workload,
    oracle_results,
    render_table,
    run_workload_concurrently,
    tables,
)

from repro import EngineConfig, NoDBEngine
from repro.workload import TableSpec, generate_columns

#: Thread counts of the acceptance matrix.
THREAD_COUNTS = (2, 4)

#: Engine states the matrix must cover: a cold store, a store pre-warmed
#: by one serial replay, and a pre-populated result cache.
STATES = ("cold", "warm", "cached")

#: Policies that keep loaded fragments — only these can promise "one raw
#: load per cold (table, column-set) generation" (stateless policies
#: re-scan per query by design).
STORE_KEEPING = ("fullload", "column_loads", "splitfiles")


def _seeded_table(nrows: int = 160, ncols: int = 3) -> list[list]:
    cols = generate_columns(TableSpec(nrows=nrows, ncols=ncols, seed=1311))
    return [c.tolist() for c in cols]


def _assert_threads_match_oracle(results, expected, label: str) -> None:
    for tid, answers in enumerate(results):
        for i, (got, want) in enumerate(zip(answers, expected)):
            assert got == want, (
                f"[{label}] thread {tid} query#{i}: {got!r} != {want!r}"
            )


def _run_state(engine, queries, expected, state: str, nthreads: int, label: str):
    if state in ("warm", "cached"):
        # one serial replay first: fills the store — and, under
        # result_cache=True, the cache.
        for i, (query, want) in enumerate(zip(queries, expected)):
            from harness import normalize

            got = normalize(engine.query(query))
            assert got == want, f"[{label}] serial prewarm query#{i}"
    results = run_workload_concurrently(engine, queries, nthreads)
    _assert_threads_match_oracle(results, expected, label)


@pytest.mark.parametrize("nthreads", THREAD_COUNTS)
@pytest.mark.parametrize("dialect", DIALECTS)
def test_concurrent_matrix_matches_oracle(dialect, nthreads, tmp_path):
    """dialect × policy × {2,4} threads × cold/warm/cached == oracle."""
    columns = _seeded_table()
    path, kwargs = render_table(tmp_path, columns, dialect)
    queries = make_workload(columns, bounds=(-50, 420))
    expected = oracle_results(path, kwargs, queries)
    for policy in POLICIES:
        for state in STATES:
            label = f"{dialect} {policy} {state} x{nthreads}"
            engine = NoDBEngine(
                EngineConfig(policy=policy, result_cache=(state == "cached"))
            )
            try:
                engine.attach("t", path, **kwargs)
                _run_state(engine, queries, expected, state, nthreads, label)
                counters = engine.stats.counters
                if state == "cached":
                    # the serial prewarm filled the cache: the concurrent
                    # replay must actually hit it.
                    assert counters.result_cache_hits > 0, label
                    assert (
                        counters.result_cache_hits + counters.result_cache_misses
                        == len(engine.stats.queries)
                    ), label
                if policy in STORE_KEEPING:
                    assert engine.stats.max_loads_per_signature() <= 1, (
                        f"{label}: duplicate raw-file load for one cold "
                        f"(table, column-set) generation: "
                        f"{engine.stats.loads_by_signature}"
                    )
            finally:
                engine.close()


@pytest.mark.parametrize("policy", STORE_KEEPING)
def test_shared_scan_batching_one_load_per_generation(policy, tmp_path):
    """N threads × one cold table: exactly one raw load per column-set."""
    columns = _seeded_table(nrows=300)
    path, kwargs = render_table(tmp_path, columns, "csv")
    names = [f"a{i + 1}" for i in range(len(columns))]
    query = f"select {', '.join(f'sum({n})' for n in names)} from t"
    engine = NoDBEngine(EngineConfig(policy=policy))
    try:
        engine.attach("t", path, **kwargs)
        expected = oracle_results(path, kwargs, [query])[0]
        results = run_workload_concurrently(engine, [query], nthreads=8)
        for answers in results:
            assert answers[0] == expected
        # All 8 threads asked for the same cold column-set: shared-scan
        # batching must have loaded the raw file exactly once.
        assert engine.stats.counters.shared_scan_loads == 1
        assert engine.stats.max_loads_per_signature() == 1
        counters = engine.stats.counters
        assert (
            counters.warm_hits
            + counters.shared_scan_reuses
            + counters.shared_scan_loads
            == 8
        )
    finally:
        engine.close()


@pytest.mark.parametrize("nthreads", THREAD_COUNTS)
@pytest.mark.parametrize("policy", POLICIES)
def test_concurrent_with_persistent_store_and_restart(policy, nthreads, tmp_path):
    """Persistence must be invisible too: with a persistent store enabled,
    a workload split across a simulated restart — engine A runs it
    concurrently and exits, a fresh engine B on the same ``store_dir``
    replays all of it concurrently — equals the serial oracle, and the
    store-keeping policies actually restore restart-warm."""
    columns = _seeded_table()
    path, kwargs = render_table(tmp_path, columns, "csv")
    queries = make_workload(columns, bounds=(-50, 420))
    expected = oracle_results(path, kwargs, queries)
    store_dir = tmp_path / "store"
    cfg = dict(policy=policy, store_dir=store_dir)
    label = f"persist {policy} x{nthreads}"

    engine_a = NoDBEngine(EngineConfig(**cfg))
    try:
        engine_a.attach("t", path, **kwargs)
        results = run_workload_concurrently(engine_a, queries, nthreads)
        _assert_threads_match_oracle(results, expected, f"{label} phase A")
        engine_a.flush_persistent_store()
    finally:
        engine_a.close()

    engine_b = NoDBEngine(EngineConfig(**cfg))
    try:
        engine_b.attach("t", path, **kwargs)
        results = run_workload_concurrently(engine_b, queries, nthreads)
        _assert_threads_match_oracle(results, expected, f"{label} phase B")
        counters = engine_b.stats.counters
        if policy in STORE_KEEPING:
            assert engine_a.stats.counters.persist_writes >= 1, label
            assert counters.restart_warm_hits >= 1, (
                f"{label}: engine B never restored from the store "
                f"(counters: {counters.snapshot()})"
            )
            assert engine_b.stats.max_loads_per_signature() <= 1, label
    finally:
        engine_b.close()


@pytest.mark.parametrize("nthreads", THREAD_COUNTS)
@pytest.mark.parametrize("policy", STORE_KEEPING)
def test_concurrent_replay_across_append_matches_oracle(policy, nthreads, tmp_path):
    """Growth must be invisible too: replay a workload concurrently, append
    rows to the live file, replay again — both phases equal the serial
    oracle over the bytes of their moment, and the stale fingerprint was
    recognized as an append (state extended, not wiped)."""
    columns = _seeded_table()
    path, kwargs = render_table(tmp_path, columns, "csv")
    queries = make_workload(columns, bounds=(-50, 420))
    expected = oracle_results(path, kwargs, queries)
    label = f"append {policy} x{nthreads}"

    engine = NoDBEngine(EngineConfig(policy=policy))
    try:
        engine.attach("t", path, **kwargs)
        results = run_workload_concurrently(engine, queries, nthreads)
        _assert_threads_match_oracle(results, expected, f"{label} pre")

        extra = [[v + 7 for v in col[:40]] for col in columns]
        from repro.flatfile.writer import format_value

        with open(path, "a") as fh:
            for i in range(len(extra[0])):
                fh.write(",".join(format_value(c[i]) for c in extra) + "\n")

        expected_after = oracle_results(path, kwargs, queries)
        assert expected_after != expected  # the append must be visible
        results = run_workload_concurrently(engine, queries, nthreads)
        _assert_threads_match_oracle(results, expected_after, f"{label} post")
        counters = engine.stats.counters
        assert counters.append_extensions >= 1, (
            f"{label}: stale fingerprint was not recognized as an append "
            f"(counters: {counters.snapshot()})"
        )
        assert counters.store_invalidations == 0, label
    finally:
        engine.close()


@pytest.mark.parametrize("nthreads", THREAD_COUNTS)
@pytest.mark.parametrize("policy", POLICIES)
def test_concurrent_multi_file_matches_oracle_on_concatenation(
    policy, nthreads, tmp_path
):
    """A glob attach over split part files must answer — under concurrent
    replay — exactly like the oracle over the concatenated file (for
    headerless CSV, concatenation *is* the union)."""
    columns = _seeded_table()
    whole, kwargs = render_table(tmp_path, columns, "csv")
    half = len(columns[0]) // 2
    parts_dir = tmp_path / "parts"
    parts_dir.mkdir()
    text = whole.read_text().splitlines(keepends=True)
    (parts_dir / "part-000.csv").write_text("".join(text[:half]))
    (parts_dir / "part-001.csv").write_text("".join(text[half:]))

    queries = make_workload(columns, bounds=(-50, 420))
    expected = oracle_results(whole, kwargs, queries)
    label = f"multi {policy} x{nthreads}"

    engine = NoDBEngine(EngineConfig(policy=policy))
    try:
        engine.attach("t", str(parts_dir / "part-*.csv"), **kwargs)
        results = run_workload_concurrently(engine, queries, nthreads)
        _assert_threads_match_oracle(results, expected, f"{label} cold")
        results = run_workload_concurrently(engine, queries, nthreads)
        _assert_threads_match_oracle(results, expected, f"{label} warm")
    finally:
        engine.close()


@settings(max_examples=4, deadline=None)
@given(columns=tables())
@pytest.mark.parametrize("policy", POLICIES)
def test_hypothesis_workloads_concurrent(policy, columns):
    """Random tables/workloads: 2-thread replay equals the serial oracle,
    cold and with the result cache enabled."""
    with tempfile.TemporaryDirectory(prefix="repro-conc-oracle-") as tmp:
        path, kwargs = render_table(Path(tmp), columns, "csv")
        queries = make_workload(columns, bounds=(-100, 400))
        expected = oracle_results(path, kwargs, queries)
        for cached in (False, True):
            engine = NoDBEngine(EngineConfig(policy=policy, result_cache=cached))
            try:
                engine.attach("t", path, **kwargs)
                results = run_workload_concurrently(engine, queries, nthreads=2)
                _assert_threads_match_oracle(
                    results, expected, f"{policy} cached={cached}"
                )
            finally:
                engine.close()
