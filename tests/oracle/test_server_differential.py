"""Differential oracle for the serving layer: HTTP clients vs CSVEngine.

The acceptance bar of the network layer: several concurrent clients
attach the *same* raw file over the wire and replay a workload, and
every answer — fetched page by page through the HTTP protocol — must
equal the serial CSV-engine oracle's answer, while the shared engine
performs at most one cold load per (table, column-set) signature.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import EngineConfig, NoDBEngine
from repro.client import RemoteConnection
from repro.server import ReproServer

from harness import make_workload, normalize, oracle_results, render_table

NTHREADS = 4


def deterministic_columns(seed: int = 7, nrows: int = 400):
    rng = np.random.default_rng(seed)
    return [
        [int(v) for v in rng.integers(-1000, 1000, nrows)],
        [int(v) for v in rng.integers(-500, 500, nrows)],
        [float(v) / 8 for v in rng.integers(-8000, 8000, nrows)],
        ["v" + "bcdghjklmp"[v] for v in rng.integers(0, 10, nrows)],
    ]


@pytest.mark.parametrize("policy", ["column_loads", "partial_v2"])
def test_concurrent_http_clients_match_serial_oracle(tmp_path, policy):
    columns = deterministic_columns()
    path, kwargs = render_table(tmp_path, columns, "csv")
    queries = make_workload(columns, (-400, 400))
    expected = oracle_results(path, kwargs, queries)

    engine = NoDBEngine(EngineConfig(policy=policy, result_cache=True))
    with ReproServer(engine, port=0, owns_engine=True) as server:
        server.start()
        barrier = threading.Barrier(NTHREADS)

        def replay(i: int) -> list[list[tuple]]:
            conn = RemoteConnection(server.url, client_id=f"client-{i}")
            # Every client attaches the same file itself: concurrent
            # identical attaches must converge on one attachment.
            conn.attach("t", path, **kwargs)
            barrier.wait()
            answers = []
            for sql in queries:
                result = conn.execute(sql, page_size=64)
                answers.append(normalize(result.to_result()))
            return answers

        with ThreadPoolExecutor(max_workers=NTHREADS) as pool:
            per_client = list(pool.map(replay, range(NTHREADS)))

        for i, answers in enumerate(per_client):
            for j, (got, want) in enumerate(zip(answers, expected)):
                assert got == want, (
                    f"client#{i} query#{j} {queries[j]!r}: "
                    f"served {got!r} != oracle {want!r}"
                )
        # One shared engine behind all clients: at most one cold load
        # per (table, column-set) generation despite 4x replays.
        assert engine.stats.max_loads_per_signature() <= 1


def test_pages_reassemble_to_the_oracle_answer(tmp_path):
    columns = deterministic_columns(seed=11)
    path, kwargs = render_table(tmp_path, columns, "csv")
    query = "select a1, a3, a4 from t where a1 > -400"
    expected = oracle_results(path, kwargs, [query])[0]

    engine = NoDBEngine(EngineConfig())
    with ReproServer(engine, port=0, owns_engine=True) as server:
        server.start()
        conn = RemoteConnection(server.url)
        conn.attach("t", path, **kwargs)
        for page_size in (1, 17, 1000):
            result = conn.execute(query, page_size=page_size)
            rows = [
                row for page in result.pages() for row in normalize(page)
            ]
            assert rows == expected
