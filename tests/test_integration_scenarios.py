"""End-to-end scenarios crossing many subsystems at once.

These are the "downstream user" tests: realistic sessions, messy files,
failure injection — everything going through the public API only.
"""

import time

import numpy as np
import pytest

from repro import (
    CatalogError,
    EngineConfig,
    FlatFileError,
    NoDBEngine,
    POLICIES,
    SQLSyntaxError,
)
from repro.workload import TableSpec, materialize_csv


class TestMixedTypeSessions:
    @pytest.fixture
    def sales_csv(self, tmp_path):
        rng = np.random.default_rng(8)
        path = tmp_path / "sales.csv"
        lines = ["region,product,units,price"]
        regions = ["north", "south", "east", "west"]
        for i in range(400):
            lines.append(
                f"{regions[i % 4]},p{i % 10},{int(rng.integers(1, 50))},"
                f"{float(rng.uniform(0.5, 99.5)):.2f}"
            )
        path.write_text("\n".join(lines) + "\n")
        return path

    @pytest.mark.parametrize("policy", POLICIES)
    def test_headered_mixed_table_under_every_policy(self, sales_csv, policy):
        with NoDBEngine(EngineConfig(policy=policy)) as engine:
            engine.attach("sales", sales_csv)
            r = engine.query(
                "select region, sum(units) as total, avg(price) as mean_price "
                "from sales where units >= 10 group by region order by region"
            )
            assert r.column("region").tolist() == ["east", "north", "south", "west"]
            assert all(v > 0 for v in r.column("total"))

    def test_string_filters(self, sales_csv):
        with NoDBEngine() as engine:
            engine.attach("sales", sales_csv)
            north = engine.query(
                "select count(*) from sales where region = 'north'"
            ).scalar()
            assert north == 100
            not_north = engine.query(
                "select count(*) from sales where region != 'north'"
            ).scalar()
            assert not_north == 300

    def test_distinct_and_in(self, sales_csv):
        with NoDBEngine() as engine:
            engine.attach("sales", sales_csv)
            r = engine.query(
                "select distinct region from sales "
                "where region in ('north', 'south') order by region"
            )
            assert r.column("region").tolist() == ["north", "south"]


class TestJoinSessions:
    @pytest.fixture
    def star_files(self, tmp_path):
        """A small star schema: facts + a dimension file."""
        facts = tmp_path / "facts.csv"
        lines = []
        rng = np.random.default_rng(12)
        for i in range(300):
            lines.append(f"{i},{int(rng.integers(0, 5))},{int(rng.integers(1, 100))}")
        facts.write_text("\n".join(lines) + "\n")

        dims = tmp_path / "dims.csv"
        dims.write_text("\n".join(f"{d},{(d + 1) * 1000}" for d in range(5)) + "\n")
        return facts, dims

    @pytest.mark.parametrize("policy", ["fullload", "column_loads", "partial_v2", "splitfiles"])
    def test_join_under_adaptive_policies(self, star_files, policy):
        facts, dims = star_files
        with NoDBEngine(EngineConfig(policy=policy)) as engine:
            engine.attach("f", facts)
            engine.attach("d", dims)
            r = engine.query(
                "select sum(f.a3 * d.a2) from f join d on f.a2 = d.a1"
            )
            # Ground truth by brute force.
            frows = [
                tuple(map(int, line.split(",")))
                for line in facts.read_text().strip().split("\n")
            ]
            dmap = {d: (d + 1) * 1000 for d in range(5)}
            expected = sum(v * dmap[k] for _, k, v in frows)
            assert r.scalar() == expected

    def test_join_loads_only_join_and_output_columns(self, star_files):
        facts, dims = star_files
        with NoDBEngine(EngineConfig(policy="column_loads")) as engine:
            engine.attach("f", facts)
            engine.attach("d", dims)
            engine.query("select count(*) from f join d on f.a2 = d.a1")
            f_table = engine.catalog.get("f").table
            assert f_table.fully_loaded_columns() == ["a2"]


class TestFailureInjection:
    def test_ragged_file_in_sample_raises_clean_error(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("1,2,3\n4,5,6\n7,8\n9,10,11\n")
        with NoDBEngine() as engine:
            engine.attach("t", path)
            with pytest.raises(FlatFileError, match="ragged sample"):
                engine.query("select sum(a3) from t")

    def test_ragged_row_beyond_sample_raises_clean_error(self, tmp_path):
        good_rows = "\n".join(f"{i},{i},{i}" for i in range(200))
        path = tmp_path / "ragged2.csv"
        path.write_text(good_rows + "\n7,8\n")
        with NoDBEngine() as engine:
            engine.attach("t", path)
            with pytest.raises(FlatFileError, match="fewer than"):
                engine.query("select sum(a3) from t")

    def test_unparseable_value_raises_with_type(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,2\n3,4\n5,oops\n")
        with NoDBEngine() as engine:
            engine.attach("t", path)
            # Schema inference sees 'oops' in the sample -> column a2 is a
            # string column; numeric aggregation over it is a bind error.
            from repro import BindError

            with pytest.raises(BindError):
                engine.query("select sum(a2) from t")

    def test_late_corruption_widens_then_fails_loudly(self, tmp_path):
        """A non-numeric value *beyond* the inference sample widens the
        column to str instead of crashing the load; the numeric aggregate
        over the now-textual column then fails loudly, never silently."""
        good_rows = "\n".join(f"{i},{i}" for i in range(200))
        path = tmp_path / "late.csv"
        path.write_text(good_rows + "\nxxx,5\n")
        with NoDBEngine() as engine:
            engine.attach("t", path)
            from repro.errors import ExecutionError

            with pytest.raises(ExecutionError, match="string column"):
                engine.query("select sum(a1) from t")
            # The table stays queryable: the other column still aggregates
            # and the widened column still answers count/min/max.
            assert engine.query("select sum(a2) from t").scalar() == sum(range(200)) + 5
            assert engine.query("select count(a1) from t").scalar() == 201

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with NoDBEngine() as engine:
            engine.attach("t", path)
            with pytest.raises(CatalogError, match="empty"):
                engine.query("select count(*) from t")

    def test_missing_file_rejected_at_attach(self, tmp_path):
        with NoDBEngine() as engine:
            with pytest.raises(FlatFileError, match="does not exist"):
                engine.attach("t", tmp_path / "ghost.csv")

    def test_sql_error_does_not_poison_engine(self, small_csv):
        with NoDBEngine() as engine:
            engine.attach("r", small_csv)
            with pytest.raises(SQLSyntaxError):
                engine.query("select from where")
            assert engine.query("select count(*) from r").scalar() == 500


class TestDelimiters:
    def test_pipe_delimited(self, tmp_path):
        path = tmp_path / "pipes.psv"
        path.write_text("1|2\n3|4\n5|6\n")
        with NoDBEngine() as engine:
            engine.attach("t", path, delimiter="|")
            assert engine.query("select sum(a2) from t").scalar() == 12

    def test_tab_delimited_with_splitfiles(self, tmp_path):
        path = tmp_path / "tabs.tsv"
        path.write_text("1\t2\t3\n4\t5\t6\n")
        with NoDBEngine(EngineConfig(policy="splitfiles")) as engine:
            engine.attach("t", path, delimiter="\t")
            assert engine.query("select sum(a3) from t").scalar() == 9
            assert engine.query("select sum(a1) from t").scalar() == 5


class TestLongSession:
    def test_policy_switch_mid_session_via_new_engine(self, tmp_path):
        """The documented migration path: reattach under another policy."""
        spec = TableSpec(nrows=2000, ncols=4, seed=77)
        path = materialize_csv(spec, tmp_path / "r.csv")
        sql = "select sum(a1) from r where a1 > 100 and a1 < 900"

        first = NoDBEngine(EngineConfig(policy="external"))
        first.attach("r", path)
        expected = first.query(sql).scalar()
        advice_engine_result = first.query(sql).scalar()
        first.close()

        second = NoDBEngine(EngineConfig(policy="splitfiles"))
        second.attach("r", path)
        assert second.query(sql).scalar() == expected == advice_engine_result
        second.close()

    def test_hundred_query_session_consistency(self, small_csv, small_columns):
        rng = np.random.default_rng(3)
        with NoDBEngine(EngineConfig(policy="partial_v2")) as engine:
            engine.attach("r", small_csv)
            a1 = small_columns[0]
            for _ in range(100):
                lo = int(rng.integers(0, 400))
                hi = lo + int(rng.integers(1, 100))
                got = engine.query(
                    f"select count(*) from r where a1 > {lo} and a1 < {hi}"
                ).scalar()
                assert got == ((a1 > lo) & (a1 < hi)).sum()
