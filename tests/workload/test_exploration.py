"""Tests for the exploratory zoom workload and its V2 interaction."""

import pytest

from repro import EngineConfig, NoDBEngine
from repro.workload import exploration_sequence


class TestSequenceStructure:
    def test_nesting(self):
        seq = exploration_sequence(1000, depth=4, regions=2)
        # Within each region, every query's ranges nest in the previous.
        per_region = len(seq) // 2
        for r in range(2):
            chunk = seq[r * per_region : (r + 1) * per_region]
            for prev, cur in zip(chunk, chunk[1:]):
                for (plo, phi), (clo, chi) in zip(prev.bounds, cur.bounds):
                    assert plo <= clo and chi <= phi

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            exploration_sequence(100, depth=0)

    def test_deterministic(self):
        a = [q.sql for q in exploration_sequence(500, seed=3)]
        b = [q.sql for q in exploration_sequence(500, seed=3)]
        assert a == b


class TestZoomWorkloadOnPolicies:
    def test_v2_serves_all_zoom_ins_from_store(self, small_csv):
        engine = NoDBEngine(EngineConfig(policy="partial_v2"))
        engine.attach("r", small_csv)
        seq = exploration_sequence(500, depth=4, regions=1, seed=9)
        for q in seq:
            engine.query(q.sql)
        # First query loads; every nested zoom-in is covered by its cert.
        flags = [q.served_from_store for q in engine.stats.queries]
        assert flags[0] is False
        assert all(flags[1:])
        engine.close()

    def test_v2_zoom_answers_match_fullload(self, small_csv):
        v2 = NoDBEngine(EngineConfig(policy="partial_v2"))
        full = NoDBEngine(EngineConfig(policy="fullload"))
        v2.attach("r", small_csv)
        full.attach("r", small_csv)
        for q in exploration_sequence(500, depth=4, regions=2, seed=21):
            assert v2.query(q.sql).approx_equal(full.query(q.sql)), q.sql
        v2.close()
        full.close()

    def test_v1_never_benefits_from_zooming(self, small_csv):
        engine = NoDBEngine(EngineConfig(policy="partial_v1"))
        engine.attach("r", small_csv)
        for q in exploration_sequence(500, depth=4, regions=1, seed=9):
            engine.query(q.sql)
        assert engine.stats.queries_from_store == 0
        engine.close()

    def test_v2_beats_v1_on_file_bytes(self, small_csv):
        def total_bytes(policy):
            engine = NoDBEngine(EngineConfig(policy=policy))
            engine.attach("r", small_csv)
            for q in exploration_sequence(500, depth=5, regions=2, seed=33):
                engine.query(q.sql)
            total = engine.stats.total_file_bytes
            engine.close()
            return total

        assert total_bytes("partial_v2") < 0.5 * total_bytes("partial_v1")
