"""Tests for dataset generation and query templates."""

import numpy as np
import pytest

from repro.workload.generator import (
    TableSpec,
    generate_columns,
    generate_join_pair,
    materialize_csv,
)
from repro.workload.queries import (
    figure3_sequence,
    figure4_sequence,
    make_q1,
    make_q2,
)


class TestGenerator:
    def test_columns_are_permutations(self):
        spec = TableSpec(nrows=100, ncols=3, seed=1)
        for col in generate_columns(spec):
            assert sorted(col.tolist()) == list(range(100))

    def test_deterministic(self):
        spec = TableSpec(nrows=50, ncols=2, seed=9)
        a = generate_columns(spec)
        b = generate_columns(spec)
        assert all((x == y).all() for x, y in zip(a, b))

    def test_different_seeds_differ(self):
        a = generate_columns(TableSpec(nrows=50, ncols=1, seed=1))[0]
        b = generate_columns(TableSpec(nrows=50, ncols=1, seed=2))[0]
        assert (a != b).any()

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            TableSpec(nrows=0, ncols=1)

    def test_materialize_round_trip(self, tmp_path):
        spec = TableSpec(nrows=10, ncols=2, seed=4)
        path = materialize_csv(spec, tmp_path / "t.csv")
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 10
        cols = generate_columns(spec)
        first_row = lines[0].split(",")
        assert int(first_row[0]) == cols[0][0]

    def test_join_pair_keys_match(self):
        left, right = generate_join_pair(100, payload_cols=2)
        assert sorted(left[0].tolist()) == sorted(right[0].tolist())
        assert len(left) == 3 and len(right) == 3


class TestQueryTemplates:
    def test_q1_shape(self):
        q = make_q1(1000)
        assert "sum(a1)" in q.sql and "min(a4)" in q.sql
        assert q.columns == ("a1", "a2", "a3", "a4")

    def test_q2_columns(self):
        q = make_q2(1000, "a7", "a8")
        assert "sum(a7)" in q.sql and "avg(a8)" in q.sql

    def test_selectivity_approximate(self):
        """The conjunction selects ~10% of rows on independent uniform data."""
        spec = TableSpec(nrows=20000, ncols=2, seed=3)
        a1, a2 = generate_columns(spec)
        rng = np.random.default_rng(11)
        rates = []
        for _ in range(10):
            q = make_q2(20000, "a1", "a2", selectivity=0.10, rng=rng)
            (v1, v2), (v3, v4) = q.bounds
            mask = (a1 > v1) & (a1 < v2) & (a2 > v3) & (a2 < v4)
            rates.append(mask.mean())
        assert 0.05 < float(np.mean(rates)) < 0.15

    def test_bounds_inside_domain(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            q = make_q2(1000, "a1", "a2", rng=rng)
            for lo, hi in q.bounds:
                assert -1 <= lo < hi <= 1001


class TestSequences:
    def test_figure3_structure(self):
        seq = figure3_sequence(1000)
        assert len(seq) == 20
        assert all(q.columns == ("a1", "a2") for q in seq[:10])
        assert all(q.columns == ("a3", "a4") for q in seq[10:])

    def test_figure4_structure(self):
        seq = figure4_sequence(1000, ncols=12)
        assert len(seq) == 12
        # First pair hits the last two file columns (worst case for splits).
        assert seq[0].columns == ("a11", "a12")
        # Each query is immediately rerun.
        for i in range(0, 12, 2):
            assert seq[i].sql == seq[i + 1].sql
        # All column pairs distinct across runs.
        pairs = {seq[i].columns for i in range(0, 12, 2)}
        assert len(pairs) == 6

    def test_figure4_odd_columns_rejected(self):
        with pytest.raises(ValueError):
            figure4_sequence(100, ncols=11)

    def test_sequences_deterministic(self):
        a = [q.sql for q in figure3_sequence(500, seed=7)]
        b = [q.sql for q in figure3_sequence(500, seed=7)]
        assert a == b
