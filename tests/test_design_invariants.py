"""Remaining DESIGN.md section-5 invariants not covered elsewhere."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EngineConfig, NoDBEngine
from repro.cracking.cracker import CrackerColumn
from repro.flatfile.schema import DataType
from repro.flatfile.writer import write_csv
from repro.ranges import ValueInterval
from repro.storage.catalog import Catalog


class TestInvariant8SchemaRoundTrip:
    """Schema inference on generated files returns the generating schema."""

    @settings(max_examples=25, deadline=None)
    @given(
        spec=st.lists(
            st.sampled_from(["int", "float", "str"]), min_size=1, max_size=6
        ),
        nrows=st.integers(2, 30),
    )
    def test_generated_schema_recovered(self, spec, nrows, tmp_path_factory):
        rng = np.random.default_rng(42)
        columns = []
        for kind in spec:
            if kind == "int":
                columns.append(rng.integers(-1000, 1000, nrows))
            elif kind == "float":
                # Guarantee a non-integral value so the column stays float.
                vals = rng.uniform(-10, 10, nrows)
                vals[0] = 0.5
                columns.append(vals)
            else:
                choices = np.array(["xx", "yy", "zz"], dtype=object)
                columns.append(choices[rng.integers(0, 3, nrows)])
        path = tmp_path_factory.mktemp("schema") / "t.csv"
        write_csv(path, columns)
        entry = Catalog().attach("t", path)
        inferred = [c.dtype for c in entry.ensure_schema()]
        expected = {
            "int": DataType.INT64,
            "float": DataType.FLOAT64,
            "str": DataType.STRING,
        }
        assert inferred == [expected[k] for k in spec]


class TestFloatCracking:
    """Cracking works on float columns, not just the paper's int tables."""

    def test_float_range_select(self):
        rng = np.random.default_rng(9)
        values = rng.uniform(0, 1, 500)
        c = CrackerColumn(values)
        interval = ValueInterval(0.25, 0.75)
        got = np.sort(c.select_values(interval))
        expected = np.sort(values[interval.mask(values)])
        assert np.array_equal(got, expected)
        c.check_invariants()

    def test_mixed_bounds(self):
        values = np.array([0.1, 0.2, 0.3, 0.4])
        c = CrackerColumn(values)
        got = c.select_values(
            ValueInterval(0.2, 0.4, lo_open=False, hi_open=True)
        )
        assert sorted(got.tolist()) == [0.2, 0.3]


class TestExplainResiduals:
    def test_residual_flag_reported(self, small_csv):
        engine = NoDBEngine(EngineConfig(policy="partial_v2"))
        engine.attach("r", small_csv)
        text = engine.explain(
            "select sum(a1) from r where a1 > 5 and (a2 > 1 or a3 > 1)"
        )
        assert "residual predicates present" in text
        engine.close()

    def test_partial_state_reported(self, small_csv):
        engine = NoDBEngine(EngineConfig(policy="partial_v2"))
        engine.attach("r", small_csv)
        engine.query("select sum(a1) from r where a1 > 5 and a1 < 100")
        text = engine.explain("select sum(a1) from r where a1 > 5 and a1 < 100")
        assert "partially loaded" in text
        assert "certificates" in text
        engine.close()


class TestResidualPredicatesThroughPolicies:
    """Residual (non-range) predicates must not break partial coverage."""

    @pytest.mark.parametrize("policy", ["partial_v2", "column_loads", "splitfiles"])
    def test_or_predicates_correct(self, small_csv, small_columns, policy):
        engine = NoDBEngine(EngineConfig(policy=policy))
        engine.attach("r", small_csv)
        got = engine.query(
            "select count(*) from r where a1 > 100 and a1 < 400 "
            "and (a2 < 50 or a2 > 450)"
        ).scalar()
        a1, a2 = small_columns[0], small_columns[1]
        mask = (a1 > 100) & (a1 < 400) & ((a2 < 50) | (a2 > 450))
        assert got == mask.sum()
        engine.close()

    def test_v2_residual_never_certified_too_broadly(self, small_csv, small_columns):
        """After a query with a residual, a *wider* residual query must
        not be served from a store that lacks its rows."""
        engine = NoDBEngine(EngineConfig(policy="partial_v2"))
        engine.attach("r", small_csv)
        engine.query(
            "select count(*) from r where a1 > 100 and a1 < 200 and (a2 < 50 or a2 > 450)"
        )
        a1, a2 = small_columns[0], small_columns[1]
        got = engine.query(
            "select count(*) from r where a1 > 100 and a1 < 200 and (a2 < 100 or a2 > 400)"
        ).scalar()
        mask = (a1 > 100) & (a1 < 200) & ((a2 < 100) | (a2 > 400))
        assert got == mask.sum()
        engine.close()
