"""The fault-injection harness and the resilience paths it exercises.

Unit coverage of :mod:`repro.faults` (plans, specs, parsing, the retry
helper) plus integration coverage of each degraded mode: transient-read
retry, short-read detection, persist-failure degradation to warm-only
serving, restore-failure fallback to cold scans, and pool-crash serial
fallback.  Every injected failure runs the *production* handler — no
monkeypatching of engine internals.
"""

from __future__ import annotations

import pytest

from repro import EngineConfig, NoDBEngine
from repro.errors import FlatFileError
from repro.faults import (
    ENV_FAULTS,
    ENV_SEED,
    FAULT_POINTS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    retry_io,
)


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "data.csv"
    rows = "\n".join(f"{i},{i * 2},v{i}" for i in range(200))
    path.write_text("a1,a2,a3\n" + rows + "\n")
    return path


def _count(tmp_path_engine, sql="select count(*) from r"):
    return int(tmp_path_engine.query(sql).scalar())


# ---------------------------------------------------------------------------
# FaultPlan / FaultSpec units
# ---------------------------------------------------------------------------


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(times=-1)
        with pytest.raises(ValueError):
            FaultSpec(probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec(after=-2)
        FaultSpec(times=None)  # persistent is legal

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultPlan({"flatfile.reed": FaultSpec()})
        plan = FaultPlan()
        with pytest.raises(ValueError):
            plan.check("not.a.point")


class TestFaultPlan:
    def test_transient_fires_exactly_times(self):
        plan = FaultPlan({"flatfile.read": FaultSpec(times=2)})
        fired = 0
        for _ in range(10):
            try:
                plan.check("flatfile.read")
            except InjectedFault as exc:
                assert exc.point == "flatfile.read"
                fired += 1
        assert fired == 2
        assert plan.fired() == {"flatfile.read": 2}
        assert plan.snapshot()["points"]["flatfile.read"] == {
            "checks": 10,
            "fired": 2,
        }

    def test_persistent_always_fires(self):
        plan = FaultPlan({"persist.write": FaultSpec(times=None)})
        for _ in range(5):
            with pytest.raises(InjectedFault):
                plan.check("persist.write")

    def test_after_skips_leading_checks(self):
        plan = FaultPlan({"server.request": FaultSpec(times=1, after=3)})
        for _ in range(3):
            plan.check("server.request")  # not yet due
        with pytest.raises(InjectedFault):
            plan.check("server.request")

    def test_unconfigured_point_never_fires(self):
        plan = FaultPlan({"persist.write": FaultSpec(times=None)})
        for point in sorted(FAULT_POINTS - {"persist.write"}):
            plan.check(point)  # no-op

    def test_probability_is_seed_deterministic(self):
        def firing_pattern(seed):
            plan = FaultPlan(
                {"flatfile.read": FaultSpec(times=None, probability=0.5)},
                seed=seed,
            )
            return [plan.should_fire("flatfile.read") for _ in range(64)]

        a, b = firing_pattern(7), firing_pattern(7)
        assert a == b
        assert any(a) and not all(a)  # actually probabilistic
        assert firing_pattern(8) != a  # and seed-sensitive

    def test_truncate_shortens_when_fired(self):
        plan = FaultPlan({"flatfile.short_read": FaultSpec(times=1)})
        data = b"0123456789"
        cut = plan.truncate("flatfile.short_read", data)
        assert 0 < len(cut) < len(data)
        assert data.startswith(cut)
        # Exhausted: subsequent reads come back whole.
        assert plan.truncate("flatfile.short_read", data) == data

    def test_injected_fault_is_oserror(self):
        exc = InjectedFault("persist.write", 3)
        assert isinstance(exc, OSError)
        assert exc.ordinal == 3


class TestParse:
    def test_grammar(self):
        plan = FaultPlan.parse(
            "flatfile.read=2, persist.write=*, server.request=1:0.5:4",
            seed=11,
        )
        assert plan.seed == 11
        assert plan.specs["flatfile.read"] == FaultSpec(times=2)
        assert plan.specs["persist.write"] == FaultSpec(times=None)
        assert plan.specs["server.request"] == FaultSpec(
            times=1, probability=0.5, after=4
        )

    def test_bare_point_means_once(self):
        assert FaultPlan.parse("results.write").specs["results.write"] == FaultSpec(
            times=1
        )

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("flatfile.read=1:2:3:4")
        with pytest.raises(ValueError):
            FaultPlan.parse("nonsense.point=1")

    def test_from_env(self):
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({ENV_FAULTS: "  "}) is None
        plan = FaultPlan.from_env({ENV_FAULTS: "flatfile.read=3", ENV_SEED: "9"})
        assert plan.seed == 9
        assert plan.specs["flatfile.read"].times == 3


class TestRetryIO:
    def test_succeeds_after_transient_failures(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        retries = []
        got = retry_io(
            flaky,
            attempts=3,
            backoff_s=0.0,
            on_retry=lambda n, exc: retries.append(n),
        )
        assert got == "ok"
        assert retries == [1, 2]

    def test_reraises_when_exhausted(self):
        def broken():
            raise OSError("permanent")

        with pytest.raises(OSError, match="permanent"):
            retry_io(broken, attempts=2, backoff_s=0.0)

    def test_non_oserror_passes_through_immediately(self):
        calls = []

        def bug():
            calls.append(1)
            raise ValueError("not I/O")

        with pytest.raises(ValueError):
            retry_io(bug, attempts=3, backoff_s=0.0)
        assert len(calls) == 1

    def test_validates_attempts(self):
        with pytest.raises(ValueError):
            retry_io(lambda: None, attempts=0)


# ---------------------------------------------------------------------------
# flat-file resilience: retry + short reads
# ---------------------------------------------------------------------------


class TestFlatFileRetry:
    def test_transient_read_faults_are_retried_and_counted(self, csv_path):
        plan = FaultPlan({"flatfile.read": FaultSpec(times=2)})
        config = EngineConfig(fault_plan=plan, io_retry_backoff_s=0.0)
        with NoDBEngine(config) as engine:
            engine.attach("r", csv_path)
            assert int(engine.query("select count(*) from r").scalar()) == 200
            qstats = engine.stats.last()
            assert qstats.io_retries >= 2
            assert engine.stats.snapshot()["counters"]["io_retries"] >= 2
        assert plan.fired()["flatfile.read"] == 2

    def test_persistent_read_fault_raises_taxonomy_error(self, csv_path):
        plan = FaultPlan({"flatfile.read": FaultSpec(times=None)})
        config = EngineConfig(fault_plan=plan, io_retry_backoff_s=0.0)
        with NoDBEngine(config) as engine:
            engine.attach("r", csv_path)
            with pytest.raises(FlatFileError):
                engine.query("select count(*) from r")

    def test_short_read_detected_and_retried(self, csv_path):
        plan = FaultPlan({"flatfile.short_read": FaultSpec(times=1)})
        config = EngineConfig(fault_plan=plan, io_retry_backoff_s=0.0)
        with NoDBEngine(config) as engine:
            engine.attach("r", csv_path)
            assert int(engine.query("select count(*) from r").scalar()) == 200
            assert engine.stats.last().io_retries >= 1

    def test_retry_attempts_knob_bounds_the_retries(self, csv_path):
        # More consecutive faults than attempts: the query must fail.
        plan = FaultPlan({"flatfile.read": FaultSpec(times=5)})
        config = EngineConfig(
            fault_plan=plan, io_retry_attempts=2, io_retry_backoff_s=0.0
        )
        with NoDBEngine(config) as engine:
            engine.attach("r", csv_path)
            with pytest.raises(FlatFileError):
                engine.query("select count(*) from r")


# ---------------------------------------------------------------------------
# persistent-store resilience: degrade to warm-only
# ---------------------------------------------------------------------------


class TestPersistDegradation:
    def test_write_failures_never_fail_queries(self, tmp_path, csv_path):
        plan = FaultPlan({"persist.write": FaultSpec(times=None)})
        config = EngineConfig(
            store_dir=tmp_path / "store", fault_plan=plan, io_retry_backoff_s=0.0
        )
        with NoDBEngine(config) as engine:
            engine.attach("r", csv_path)
            assert int(engine.query("select count(*) from r").scalar()) == 200
            engine.flush_persistent_store()  # must NOT raise: degraded mode
            snap = engine.stats.snapshot()["counters"]
            assert snap["persist_failures"] >= 1
            assert snap["persist_writes"] == 0
            # The query path is unharmed: warm serving still works.
            assert int(engine.query("select count(*) from r").scalar()) == 200

    def test_store_goes_read_only_after_consecutive_failures(
        self, tmp_path, csv_path
    ):
        plan = FaultPlan({"persist.write": FaultSpec(times=None)})
        config = EngineConfig(
            store_dir=tmp_path / "store",
            fault_plan=plan,
            persist_failure_limit=2,
            io_retry_backoff_s=0.0,
        )
        other = tmp_path / "other.csv"
        other.write_text("b1\n1\n2\n3\n")
        with NoDBEngine(config) as engine:
            engine.attach("r", csv_path)
            engine.attach("s", other)
            engine.query("select count(*) from r")
            engine.query("select count(*) from s")
            engine.flush_persistent_store()
            assert engine._persist_read_only
            failures_at_cutoff = engine.stats.snapshot()["counters"][
                "persist_failures"
            ]
            # Read-only store: new loads schedule no further writes.
            engine.clear_cache("r")
            engine.query("select count(*) from r")
            engine.flush_persistent_store()
            assert (
                engine.stats.snapshot()["counters"]["persist_failures"]
                == failures_at_cutoff
            )

    def test_restore_failure_falls_back_to_cold_scan(self, tmp_path, csv_path):
        store = tmp_path / "store"
        with NoDBEngine(EngineConfig(store_dir=store)) as warm:
            warm.attach("r", csv_path)
            warm.query("select count(*) from r")
            warm.flush_persistent_store()
        plan = FaultPlan({"persist.read": FaultSpec(times=1)})
        config = EngineConfig(
            store_dir=store, fault_plan=plan, io_retry_backoff_s=0.0
        )
        with NoDBEngine(config) as engine:
            engine.attach("r", csv_path)
            assert int(engine.query("select count(*) from r").scalar()) == 200
            snap = engine.stats.snapshot()["counters"]
            assert snap["persist_failures"] >= 1
            assert snap["restart_warm_hits"] == 0


# ---------------------------------------------------------------------------
# pool-crash resilience: serial fallback
# ---------------------------------------------------------------------------


class TestPoolCrashFallback:
    def test_pool_crash_falls_back_to_serial_with_same_answer(self, csv_path):
        baseline_config = EngineConfig(
            parallel_workers=2, partition_min_bytes=1
        )
        with NoDBEngine(baseline_config) as engine:
            engine.attach("r", csv_path)
            want = engine.query("select sum(a1), count(*) from r").rows()

        plan = FaultPlan({"pool.worker": FaultSpec(times=None)})
        config = EngineConfig(
            parallel_workers=2,
            partition_min_bytes=1,
            fault_plan=plan,
            io_retry_backoff_s=0.0,
        )
        with NoDBEngine(config) as engine:
            engine.attach("r", csv_path)
            got = engine.query("select sum(a1), count(*) from r")
            assert got.rows() == want
            # The fallback really was serial: no partitions recorded.
            assert engine.stats.last().parallel_partitions == 0
        assert plan.fired()["pool.worker"] >= 1
