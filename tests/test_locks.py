"""Unit tests for the serving-layer concurrency primitives."""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.locks import RWLock, SingleFlight


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        inside = threading.Barrier(3, timeout=5)

        def reader():
            with lock.read_locked():
                inside.wait()  # all three readers in simultaneously

        with ThreadPoolExecutor(max_workers=3) as pool:
            list(pool.map(lambda _: reader(), range(3)))

    def test_writer_excludes_readers_and_writers(self):
        lock = RWLock()
        counter = {"value": 0, "max_seen": 0}

        def writer(_):
            with lock.write_locked():
                counter["value"] += 1
                counter["max_seen"] = max(counter["max_seen"], counter["value"])
                time.sleep(0.001)
                counter["value"] -= 1

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(writer, range(16)))
        assert counter["max_seen"] == 1

    def test_waiting_writer_blocks_new_readers(self):
        """Writer preference: once a writer waits, new readers queue."""
        lock = RWLock()
        lock.acquire_read()
        writer_waiting = threading.Event()
        writer_done = threading.Event()
        order: list[str] = []

        def writer():
            writer_waiting.set()
            with lock.write_locked():
                order.append("writer")
            writer_done.set()

        def late_reader():
            writer_waiting.wait(5)
            time.sleep(0.01)  # ensure the writer is parked first
            with lock.read_locked():
                order.append("reader")

        tw = threading.Thread(target=writer)
        tr = threading.Thread(target=late_reader)
        tw.start()
        writer_waiting.wait(5)
        tr.start()
        time.sleep(0.02)
        lock.release_read()  # unblocks the writer, then the reader
        tw.join(5)
        tr.join(5)
        assert order == ["writer", "reader"]

    def test_release_without_acquire_raises(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()

    def test_write_then_read_interleave(self):
        lock = RWLock()
        with lock.write_locked():
            pass
        with lock.read_locked():
            pass  # lock fully released after the writer


class TestSingleFlight:
    def test_single_leader_many_followers(self):
        gate = SingleFlight()
        roles: list[bool] = []
        barrier = threading.Barrier(6, timeout=5)
        release = threading.Event()

        def contender(_):
            barrier.wait()
            if gate.lead_or_wait("key"):
                release.wait(5)
                roles.append(True)
                gate.done("key")
            else:
                roles.append(False)

        with ThreadPoolExecutor(max_workers=6) as pool:
            futures = [pool.submit(contender, i) for i in range(6)]
            time.sleep(0.02)
            release.set()
            for future in futures:
                future.result(timeout=5)
        assert roles.count(True) == 1
        assert roles.count(False) == 5

    def test_distinct_keys_fly_independently(self):
        gate = SingleFlight()
        assert gate.lead_or_wait("a")
        assert gate.lead_or_wait("b")  # different key: not blocked
        assert gate.in_flight() == 2
        gate.done("a")
        gate.done("b")
        assert gate.in_flight() == 0

    def test_done_without_flight_raises(self):
        gate = SingleFlight()
        with pytest.raises(RuntimeError):
            gate.done("ghost")

    def test_new_flight_after_done(self):
        gate = SingleFlight()
        assert gate.lead_or_wait("k")
        gate.done("k")
        assert gate.lead_or_wait("k")  # key reusable once the flight lands
        gate.done("k")
