"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main, table_names


def run_cli(*argv, stdin_text=""):
    stdin = io.StringIO(stdin_text)
    stdout = io.StringIO()
    stderr = io.StringIO()
    code = main(list(argv), stdin=stdin, stdout=stdout, stderr=stderr)
    return code, stdout.getvalue(), stderr.getvalue()


class TestOneShot:
    def test_single_file_query(self, small_csv):
        code, out, err = run_cli("select count(*) from t", str(small_csv))
        assert code == 0, err
        assert "500" in out

    def test_aggregate_query(self, small_csv):
        code, out, _ = run_cli(
            "select sum(a1) from t where a1 > 100 and a1 < 103", str(small_csv)
        )
        assert code == 0
        assert "203" in out  # 101 + 102

    def test_multiple_files_t1_t2(self, small_csv, wide_csv):
        code, out, err = run_cli(
            "select count(*) from t1 join t2 on t1.a1 = t2.a1",
            str(small_csv),
            str(wide_csv),
        )
        assert code == 0, err
        assert "300" in out  # wide has 300 rows, keys 0..299 all in small

    def test_policy_flag(self, small_csv):
        code, out, _ = run_cli(
            "--policy", "splitfiles", "select sum(a2) from t", str(small_csv)
        )
        assert code == 0

    def test_stats_flag(self, small_csv):
        code, out, _ = run_cli(
            "--stats", "select count(*) from t", str(small_csv)
        )
        assert code == 0
        assert "bytes read" in out

    def test_explain_flag(self, small_csv):
        code, out, _ = run_cli(
            "--explain", "select sum(a1) from t where a1 > 5", str(small_csv)
        )
        assert code == 0
        assert "needed columns: a1" in out

    def test_delimiter_flag(self, tmp_path):
        path = tmp_path / "p.psv"
        path.write_text("1|2\n3|4\n")
        code, out, _ = run_cli(
            "--delimiter", "|", "select sum(a2) from t", str(path)
        )
        assert code == 0
        assert "6" in out


class TestErrors:
    def test_no_files(self):
        code, _, err = run_cli("select 1")
        assert code == 1
        assert "no data files" in err

    def test_no_sql(self, small_csv):
        code, _, err = run_cli(str(small_csv))
        # The file path lands in the sql slot; binding fails cleanly.
        assert code == 1

    def test_missing_file(self, tmp_path):
        code, _, err = run_cli("select 1 from t", str(tmp_path / "nope.csv"))
        assert code == 1
        assert "does not exist" in err

    def test_bad_sql(self, small_csv):
        code, _, err = run_cli("selekt banana", str(small_csv))
        assert code == 1
        assert "error" in err


class TestShell:
    def test_shell_session(self, small_csv):
        code, out, _ = run_cli(
            "--shell",
            str(small_csv),
            stdin_text="select count(*) from t\n\\q\n",
        )
        assert code == 0
        assert "500" in out
        assert "tables: t" in out

    def test_shell_recovers_from_errors(self, small_csv):
        code, out, _ = run_cli(
            "--shell",
            str(small_csv),
            stdin_text="select nope from t\nselect count(*) from t\nquit\n",
        )
        assert code == 0
        assert "error:" in out
        assert "500" in out


class TestAutoTuning:
    def test_auto_flag(self, small_csv):
        code, out, _ = run_cli(
            "--auto", "select count(*) from t", str(small_csv)
        )
        assert code == 0


class TestFormats:
    def test_format_jsonl(self, tmp_path):
        p = tmp_path / "d.jsonl"
        p.write_text('{"id": 1, "qty": 10}\n{"id": 2, "qty": 20}\n')
        code, out, err = run_cli(
            "--format", "jsonl", "select sum(qty) from t", str(p)
        )
        assert code == 0, err
        assert "30" in out

    def test_format_quoted_csv(self, tmp_path):
        p = tmp_path / "d.csv"
        p.write_text('1,"a,b"\n2,"c\nd"\n')
        code, out, err = run_cli(
            "--format", "quoted-csv", "select count(*) from t", str(p)
        )
        assert code == 0, err
        assert "2" in out

    def test_format_fixed_width(self, tmp_path):
        p = tmp_path / "d.txt"
        p.write_text("1  ab \n22 c  \n")
        code, out, err = run_cli(
            "--format", "fixed-width", "--fixed-widths", "3,3",
            "select sum(a1) from t", str(p),
        )
        assert code == 0, err
        assert "23" in out

    def test_format_auto_sniffs_tsv(self, tmp_path):
        p = tmp_path / "d.tsv"
        p.write_text("1\t5\n2\t6\n")
        code, out, err = run_cli(
            "--format", "auto", "select sum(a2) from t", str(p)
        )
        assert code == 0, err
        assert "11" in out

    def test_format_auto_ambiguous_names_fallback(self, tmp_path):
        p = tmp_path / "d.dat"
        p.write_text("a,b;c\nd,e;f\n")
        code, _, err = run_cli(
            "--format", "auto", "select count(*) from t", str(p)
        )
        assert code == 1
        assert "--delimiter" in err and "--format" in err

    def test_bad_fixed_widths_flag(self, tmp_path):
        p = tmp_path / "d.txt"
        p.write_text("1  ab \n")
        code, _, err = run_cli(
            "--format", "fixed-width", "--fixed-widths", "3,x",
            "select count(*) from t", str(p),
        )
        assert code == 1
        assert "--fixed-widths" in err


class TestPersistentStore:
    def test_store_dir_round_trip_and_cache_commands(self, tmp_path):
        p = tmp_path / "d.csv"
        p.write_text("a,b\n1,2\n3,4\n")
        store = tmp_path / "store"

        code, out, _ = run_cli(
            "--store-dir", str(store), "select sum(a) from t", str(p)
        )
        assert code == 0 and "4" in out

        code, out, _ = run_cli("cache", "list", "--store-dir", str(store))
        assert code == 0
        assert "d.csv" in out and "rows=2" in out

        code, out, _ = run_cli("cache", "clear", "--store-dir", str(store))
        assert code == 0 and "cleared 1 entry" in out

        code, out, _ = run_cli("cache", "list", "--store-dir", str(store))
        assert code == 0 and "empty" in out

    def test_no_persistent_store_bypasses(self, tmp_path):
        p = tmp_path / "d.csv"
        p.write_text("a\n1\n")
        store = tmp_path / "store"
        code, _, _ = run_cli(
            "--store-dir", str(store), "--no-persistent-store",
            "select count(*) from t", str(p),
        )
        assert code == 0
        code, out, _ = run_cli("cache", "list", "--store-dir", str(store))
        assert code == 0 and "empty" in out


def test_table_names():
    from pathlib import Path

    assert table_names([Path("a")]) == ["t"]
    assert table_names([Path("a"), Path("b")]) == ["t1", "t2"]


class TestJsonMode:
    def test_json_is_the_wire_encoding(self, small_csv):
        import json

        code, out, err = run_cli(
            "--json", "select sum(a1), count(*) from t", str(small_csv)
        )
        assert code == 0, err
        payload = json.loads(out)
        assert payload["dtypes"] == ["int64", "int64"]
        assert payload["columns"][1] == [500]

        from repro.result import QueryResult

        assert QueryResult.from_json_dict(payload).num_rows == 1


class TestServeSubcommand:
    def test_build_server_from_args(self, small_csv):
        from repro.cli import build_serve_arg_parser, build_server_from_args

        args = build_serve_arg_parser().parse_args(
            [
                str(small_csv),
                "--port", "0",
                "--policy", "column_loads",
                "--max-inflight", "3",
                "--query-timeout", "9",
                "--page-size", "123",
                "--result-ttl", "45",
            ]
        )
        server = build_server_from_args(args)
        try:
            assert server.engine.tables() == ["t"]
            assert server.admission.max_inflight == 3
            assert server.query_timeout_s == 9.0
            assert server.default_page_size == 123
            assert server.results.ttl_s == 45.0
            assert server.owns_engine
        finally:
            server.close()

    def test_serve_roundtrip_over_a_socket(self, small_csv):
        from repro.cli import build_serve_arg_parser, build_server_from_args
        from repro.client import RemoteConnection

        args = build_serve_arg_parser().parse_args([str(small_csv), "--port", "0"])
        server = build_server_from_args(args)
        try:
            server.start()
            conn = RemoteConnection(server.url)
            assert conn.tables() == ["t"]
            assert conn.execute("select count(*) from t").rows() == [(500,)]
        finally:
            server.close()
