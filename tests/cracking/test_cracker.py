"""Tests for database cracking — invariants and answer correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cracking.cracker import CrackerColumn
from repro.errors import ExecutionError
from repro.ranges import ValueInterval


class TestCrackBasics:
    def test_preserves_multiset(self):
        values = np.array([5, 3, 8, 1, 9, 2])
        c = CrackerColumn(values)
        c.crack(5, inclusive=False)
        assert sorted(c.values.tolist()) == sorted(values.tolist())

    def test_original_array_untouched(self):
        values = np.array([5, 3, 8])
        c = CrackerColumn(values)
        c.crack(5, inclusive=False)
        assert values.tolist() == [5, 3, 8]

    def test_lt_cut_partitions(self):
        c = CrackerColumn(np.array([5, 3, 8, 1, 9, 2]))
        pos = c.crack(5, inclusive=False)
        assert set(c.values[:pos]) == {3, 1, 2}
        assert set(c.values[pos:]) == {5, 8, 9}

    def test_le_cut_partitions(self):
        c = CrackerColumn(np.array([5, 3, 8, 1, 9, 2]))
        pos = c.crack(5, inclusive=True)
        assert set(c.values[:pos]) == {3, 1, 2, 5}

    def test_crack_idempotent(self):
        c = CrackerColumn(np.array([4, 2, 6]))
        p1 = c.crack(4, inclusive=False)
        moved = c.stats.rows_moved
        p2 = c.crack(4, inclusive=False)
        assert p1 == p2
        assert c.stats.rows_moved == moved

    def test_rowids_track_values(self):
        values = np.array([50, 30, 80, 10])
        c = CrackerColumn(values)
        c.crack(40, inclusive=False)
        for v, rid in zip(c.values, c.rowids):
            assert values[rid] == v

    def test_non_numeric_rejected(self):
        with pytest.raises(ExecutionError):
            CrackerColumn(np.array(["a", "b"], dtype=object))


class TestSelect:
    def test_open_interval(self):
        c = CrackerColumn(np.arange(100))
        vals = c.select_values(ValueInterval(10, 20))
        assert sorted(vals.tolist()) == list(range(11, 20))

    def test_closed_interval(self):
        c = CrackerColumn(np.arange(100))
        vals = c.select_values(ValueInterval(10, 20, lo_open=False, hi_open=False))
        assert sorted(vals.tolist()) == list(range(10, 21))

    def test_half_bounded(self):
        c = CrackerColumn(np.arange(10))
        assert sorted(c.select_values(ValueInterval(7, None)).tolist()) == [8, 9]
        assert sorted(c.select_values(ValueInterval(None, 2)).tolist()) == [0, 1]

    def test_unbounded(self):
        c = CrackerColumn(np.arange(5))
        assert len(c.select_values(ValueInterval.unbounded())) == 5

    def test_rowids_answer(self):
        values = np.array([9, 1, 7, 3, 5])
        c = CrackerColumn(values)
        rows = c.select_rowids(ValueInterval(2, 8))
        assert sorted(values[rows].tolist()) == [3, 5, 7]

    def test_pieces_shrink_work(self):
        rng = np.random.default_rng(5)
        c = CrackerColumn(rng.permutation(10000))
        c.select_values(ValueInterval(1000, 2000))
        moved_first = c.stats.rows_moved
        c.select_values(ValueInterval(1200, 1800))
        moved_second = c.stats.rows_moved - moved_first
        assert moved_second < moved_first


values_lists = st.lists(st.integers(0, 100), min_size=1, max_size=80)


class TestCrackingProperties:
    @settings(max_examples=60, deadline=None)
    @given(values_lists, st.lists(st.tuples(st.integers(0, 100), st.booleans()), max_size=8))
    def test_invariants_after_crack_sequence(self, values, cracks):
        c = CrackerColumn(np.array(values, dtype=np.int64))
        for pivot, inclusive in cracks:
            c.crack(pivot, inclusive=inclusive)
        c.check_invariants()
        assert sorted(c.values.tolist()) == sorted(values)
        base = np.array(values)
        assert all(base[r] == v for v, r in zip(c.values, c.rowids))

    @settings(max_examples=60, deadline=None)
    @given(
        values_lists,
        st.lists(
            st.tuples(
                st.integers(0, 100), st.integers(0, 100),
                st.booleans(), st.booleans(),
            ),
            min_size=1,
            max_size=6,
        ),
    )
    def test_select_matches_numpy(self, values, queries):
        arr = np.array(values, dtype=np.int64)
        c = CrackerColumn(arr)
        for lo, hi, lo_open, hi_open in queries:
            interval = ValueInterval(lo, hi, lo_open=lo_open, hi_open=hi_open)
            got = sorted(c.select_values(interval).tolist())
            expected = sorted(arr[interval.mask(arr)].tolist())
            assert got == expected
            got_rows = sorted(c.select_rowids(interval).tolist())
            expected_rows = sorted(np.nonzero(interval.mask(arr))[0].tolist())
            assert got_rows == expected_rows
