"""Tests for query execution over cracked columns."""

import numpy as np
import pytest

from repro.cracking.executor import CrackingExecutor
from repro.errors import ExecutionError
from repro.ranges import Condition, ValueInterval


@pytest.fixture
def table():
    rng = np.random.default_rng(3)
    return {
        "a1": rng.permutation(1000).astype(np.int64),
        "a2": rng.permutation(1000).astype(np.int64),
    }


def q1_condition(lo1, hi1, lo2, hi2):
    return Condition(
        [("a1", ValueInterval(lo1, hi1)), ("a2", ValueInterval(lo2, hi2))]
    )


class TestSelect:
    def test_matches_numpy(self, table):
        ex = CrackingExecutor(dict(table))
        cond = q1_condition(100, 400, 200, 900)
        rows = ex.select_rowids(cond)
        mask = (
            (table["a1"] > 100)
            & (table["a1"] < 400)
            & (table["a2"] > 200)
            & (table["a2"] < 900)
        )
        assert sorted(rows.tolist()) == np.nonzero(mask)[0].tolist()

    def test_trivial_condition_returns_all(self, table):
        ex = CrackingExecutor(dict(table))
        assert len(ex.select_rowids(Condition())) == 1000

    def test_repeated_queries_converge(self, table):
        ex = CrackingExecutor(dict(table))
        cond = q1_condition(100, 400, 200, 900)
        ex.select_rowids(cond)
        moved_first = ex.crackers["a1"].stats.rows_moved
        ex.select_rowids(cond)
        assert ex.crackers["a1"].stats.rows_moved == moved_first

    def test_ragged_rejected(self):
        with pytest.raises(ExecutionError):
            CrackingExecutor({"a": np.arange(3), "b": np.arange(4)})


class TestAggregate:
    def test_aggregates_match_numpy(self, table):
        ex = CrackingExecutor(dict(table))
        cond = q1_condition(50, 700, 100, 800)
        result = ex.aggregate(
            cond, [("sum", "a1"), ("min", "a2"), ("max", "a1"), ("avg", "a2"), ("count", "*")]
        )
        mask = (
            (table["a1"] > 50)
            & (table["a1"] < 700)
            & (table["a2"] > 100)
            & (table["a2"] < 800)
        )
        a1, a2 = table["a1"][mask], table["a2"][mask]
        row = result.rows()[0]
        assert row[0] == a1.sum()
        assert row[1] == a2.min()
        assert row[2] == a1.max()
        assert row[3] == pytest.approx(a2.mean())
        assert row[4] == mask.sum()

    def test_count_star_only(self, table):
        ex = CrackingExecutor(dict(table))
        r = ex.aggregate(q1_condition(0, 100, 0, 1000), [("count", "*")])
        mask = (
            (table["a1"] > 0)
            & (table["a1"] < 100)
            & (table["a2"] > 0)
            & (table["a2"] < 1000)
        )
        assert r.scalar() == mask.sum()
