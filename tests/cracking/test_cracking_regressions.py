"""Regression tests for the dormant-module bugs fixed when cracking was
wired into the warm path.

* ``CrackingExecutor.select_rowids`` crashed with ``StopIteration`` on a
  trivial condition over a zero-column table (``next(iter(...))`` on an
  empty dict).
* ``CrackerColumn.rowids`` was typed ``np.ndarray`` but defaulted to
  ``None``; it is now declared Optional and narrowed in ``__post_init__``.
* ``CrackerColumn.crack`` on a NaN pivot silently produced a degenerate
  cut; it now raises a clean :class:`ExecutionError`.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cracking.cracker import CrackerColumn
from repro.cracking.executor import CrackingExecutor
from repro.errors import ExecutionError
from repro.ranges import Condition, ValueInterval


def test_empty_condition_on_zero_column_table():
    ex = CrackingExecutor(columns={})
    rowids = ex.select_rowids(Condition())
    assert rowids.dtype == np.int64
    assert len(rowids) == 0


def test_empty_condition_enumerates_all_rows():
    ex = CrackingExecutor(columns={"a1": np.array([5, 6, 7])})
    assert ex.select_rowids(Condition()).tolist() == [0, 1, 2]


def test_count_star_on_zero_column_table():
    ex = CrackingExecutor(columns={})
    assert ex.aggregate(Condition(), [("count", "*")]).scalar() == 0


def test_rowids_narrowed_after_post_init():
    c = CrackerColumn(np.array([3, 1, 2], dtype=np.int64))
    assert c.rowids is not None
    assert c.rowids.tolist() == [0, 1, 2]
    # an explicit permutation is copied, not aliased
    perm = np.array([2, 0, 1], dtype=np.int64)
    c2 = CrackerColumn(np.array([7, 8, 9]), rowids=perm)
    perm[0] = 99
    assert c2.rowids.tolist() == [2, 0, 1]


@pytest.mark.parametrize("pivot", (math.nan, float("nan"), np.float64("nan")))
@pytest.mark.parametrize("inclusive", (True, False))
def test_nan_pivot_raises_clean_execution_error(pivot, inclusive):
    c = CrackerColumn(np.array([1.0, 2.0, 3.0]))
    with pytest.raises(ExecutionError, match="NaN pivot"):
        c.crack(pivot, inclusive=inclusive)
    # the refused crack must leave no partial state behind
    assert c.cuts == []
    assert c.stats.cracks == 0
    c.check_invariants()


def test_nan_bounded_interval_raises_through_select():
    c = CrackerColumn(np.array([1.0, 2.0, 3.0]))
    with pytest.raises(ExecutionError, match="NaN pivot"):
        c.select_rowids(ValueInterval(lo=math.nan))


def test_nan_values_in_data_stay_selectable():
    """NaN *data* (as opposed to NaN pivots) must keep working: NaN rows
    compare False against every cut and end up right of it."""
    arr = np.array([5.0, math.nan, 1.0, math.nan, 3.0])
    c = CrackerColumn(arr)
    interval = ValueInterval(lo=0.0, hi=4.0)
    got = sorted(c.select_rowids(interval).tolist())
    expected = sorted(np.nonzero(interval.mask(arr))[0].tolist())
    assert got == expected
    c.check_invariants()
