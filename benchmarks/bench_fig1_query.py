"""Figure 1b — Query processing costs vs input size.

Paper series on the Q1 template (four aggregates, 10% selective):

* **Awk** — streams and re-parses the whole flat file per query; flat and
  slowest at scale;
* **Cold DB** — data loaded, caches cold: columns come off the binary
  store before scanning;
* **Hot DB** — columns resident in memory, pure vectorized scans;
* **Index DB** — database cracking: each query physically reorganizes the
  touched columns, so repeated range workloads converge to touching only
  edge pieces ("one order of magnitude faster", per the paper).

Expected shape (asserted): Awk >> Cold > Hot > Index(steady), with the
gap growing with input size.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import FIG1_SIZES, fresh_engine
from repro import AwkEngine
from repro.cracking import CrackingExecutor
from repro.ranges import Condition, ValueInterval
from repro.workload import TableSpec, generate_columns, make_q1


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _db_times(path, tmp_path, n) -> tuple[float, float]:
    """(cold, hot) seconds for one Q1 on a loaded table."""
    bin_dir = tmp_path / f"bin{n}"
    loader = fresh_engine(
        "fullload", path, persist_loads=True, binary_store_dir=bin_dir
    )
    loader.query("select count(*) from r")  # pay the load once
    q = make_q1(n, rng=np.random.default_rng(n)).sql
    hot = min(
        _timed(lambda: loader.query(q)) for _ in range(3)
    )  # min-of-3: hot runs are jitter-sensitive at small sizes
    loader.close()

    cold_engine = fresh_engine("fullload", path, binary_store_dir=bin_dir)
    start = time.perf_counter()
    cold_engine.query(q)
    cold = time.perf_counter() - start
    cold_engine.close()
    return cold, hot


def _awk_time(path, n) -> float:
    awk = AwkEngine()
    awk.attach("r", path)
    q = make_q1(n, rng=np.random.default_rng(n)).sql
    start = time.perf_counter()
    awk.query(q)
    return time.perf_counter() - start


def _index_time(n) -> float:
    """Steady-state cracking cost: mean of queries 4..8 on a cracked table."""
    cols = generate_columns(TableSpec(nrows=n, ncols=4, seed=17))
    ex = CrackingExecutor({f"a{i+1}": c for i, c in enumerate(cols)})
    rng = np.random.default_rng(n)
    times = []
    for i in range(8):
        q = make_q1(n, rng=rng)
        (v1, v2), (v3, v4) = q.bounds
        cond = Condition(
            [("a1", ValueInterval(v1, v2)), ("a2", ValueInterval(v3, v4))]
        )
        start = time.perf_counter()
        ex.aggregate(
            cond, [("sum", "a1"), ("min", "a4"), ("max", "a3"), ("avg", "a2")]
        )
        times.append(time.perf_counter() - start)
    return float(np.mean(times[3:]))


@pytest.mark.benchmark(group="fig1b-query")
def test_fig1b_query_costs(benchmark, fig1_files, tmp_path):
    rows = []
    for n in FIG1_SIZES:
        awk = _awk_time(fig1_files[n], n)
        cold, hot = _db_times(fig1_files[n], tmp_path, n)
        index = _index_time(n)
        rows.append((n, awk, cold, hot, index))

    print("\nFigure 1b: query processing cost (seconds, one Q1)")
    print(f"{'rows':>10}  {'Awk':>9}  {'Cold DB':>9}  {'Hot DB':>9}  {'Index DB':>9}")
    for n, awk, cold, hot, index in rows:
        print(f"{n:>10}  {awk:>9.4f}  {cold:>9.4f}  {hot:>9.4f}  {index:>9.4f}")
    largest = rows[-1]
    print(
        f"at {largest[0]} rows: Awk/Hot = {largest[1] / largest[3]:.1f}x, "
        f"Awk/Index = {largest[1] / largest[4]:.1f}x, "
        f"Cold/Hot = {largest[2] / largest[3]:.1f}x"
    )

    for n, awk, cold, hot, index in rows:
        assert awk > cold > hot, f"expected Awk > Cold > Hot at {n} rows"
        assert index < awk, "cracking must beat re-parsing"
    # The paper: gaps grow with data size ("one order of magnitude" at
    # scale); at the largest size the hot DBMS must win by >10x.
    assert rows[-1][1] > 5 * rows[-1][2], "Awk must lose clearly to cold DB at scale"
    assert rows[-1][1] / rows[-1][3] > 10

    benchmark.pedantic(
        lambda: _db_times(fig1_files[FIG1_SIZES[-1]], tmp_path, FIG1_SIZES[-1]),
        rounds=1,
        iterations=1,
    )
