"""Bulk-tokenization kernel throughput: vectorized vs scalar cold scans.

The innermost loop of every cold first pass is tokenization.  This bench
measures it in isolation — same raw bytes, same needed columns, same
positional-map learning — through both routes of
:func:`repro.flatfile.tokenizer.tokenize_bytes`:

* ``vectorized=True``  — the NumPy byte-scan kernel
  (:mod:`repro.flatfile.vectorized`);
* ``vectorized=False`` — the scalar ``str.find`` tokenizer the paper's
  cost model was validated against.

Before timing anything it asserts the two routes emit identical fields,
row ids and **work counters** (rows/fields touched, chars scanned) — the
regression gate leans on those counters staying exact, so a counter
drift fails the bench outright rather than producing pretty-but-wrong
throughput.

Script mode (what the CI ``bench-regression`` job runs)::

    PYTHONPATH=src python -m benchmarks.bench_tokenize --quick --json out.json

Gated metrics: ``csv_cold_mb_s`` (the kernel's cold plain-CSV
tokenization throughput; the baseline pins it at >= 3x the scalar
route's historical ~3 MB/s engine figure), ``csv_scalar_mb_s`` (the
fallback path must not rot either) and ``speedup_vs_scalar``.
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro.bench.harness import (
    BenchReport,
    bench_arg_parser,
    dataset_rows,
    iterations,
)
from repro.flatfile.dialects import (
    DelimitedAdapter,
    FixedWidthAdapter,
    TsvAdapter,
)
from repro.flatfile.positions import PositionalMap
from repro.flatfile.tokenizer import tokenize_bytes
from repro.flatfile.writer import write_csv
from repro.workload import TableSpec, generate_columns

NCOLS = 8
#: The cold-scan shape the paper's workloads take: a query touching a
#: couple of attributes out of a wide row.
NEEDED = [0, 1]
FULL_ROWS = 1_200_000  # ~55 MB of plain CSV
QUICK_ROWS = 150_000  # ~7 MB
REPEATS = 3


def _tokenize_once(data: bytes, adapter, vectorized: bool):
    pmap = PositionalMap()
    start = time.perf_counter()
    result = tokenize_bytes(
        data,
        adapter,
        ncols=NCOLS,
        needed=NEEDED,
        positional_map=pmap,
        vectorized=vectorized,
    )
    return time.perf_counter() - start, result


def _best_mb_s(data: bytes, adapter, vectorized: bool, repeats: int) -> float:
    best = min(
        _tokenize_once(data, adapter, vectorized)[0] for _ in range(repeats)
    )
    return (len(data) / 2**20) / best


def main(argv: list[str] | None = None) -> int:
    parser = bench_arg_parser(
        "Cold tokenization throughput: vectorized kernel vs scalar path."
    )
    args = parser.parse_args(argv)
    rows = dataset_rows(args, FULL_ROWS, QUICK_ROWS)
    repeats = iterations(args, REPEATS)
    columns = generate_columns(TableSpec(nrows=rows, ncols=NCOLS, seed=61))

    with tempfile.TemporaryDirectory(prefix="repro-tokenize-") as tmp:
        root = Path(tmp)
        csv_adapter = DelimitedAdapter(",")
        csv_data = write_csv(root / "r.csv", columns, adapter=csv_adapter).read_bytes()

        # Counters and outputs must be exactly equal before speed matters.
        _, vec = _tokenize_once(csv_data, csv_adapter, True)
        _, scalar = _tokenize_once(csv_data, csv_adapter, False)
        if vars(vec.stats) != vars(scalar.stats):
            print(
                f"FATAL: work counters differ: vectorized {vars(vec.stats)} "
                f"!= scalar {vars(scalar.stats)}",
                file=sys.stderr,
            )
            return 1
        if vec.row_ids.tolist() != scalar.row_ids.tolist() or any(
            [str(v) for v in vec.fields[c]] != list(scalar.fields[c])
            for c in NEEDED
        ):
            print("FATAL: vectorized output differs from scalar", file=sys.stderr)
            return 1

        csv_mb_s = _best_mb_s(csv_data, csv_adapter, True, repeats)
        scalar_mb_s = _best_mb_s(csv_data, csv_adapter, False, repeats)

        tsv_adapter = TsvAdapter()
        tsv_data = write_csv(root / "r.tsv", columns, adapter=tsv_adapter).read_bytes()
        tsv_mb_s = _best_mb_s(tsv_data, tsv_adapter, True, repeats)

        width = max(
            len(str(int(v))) for col in columns for v in (col.min(), col.max())
        ) + 1
        fw_adapter = FixedWidthAdapter(tuple([width] * NCOLS))
        fw_data = write_csv(root / "r.fw", columns, adapter=fw_adapter).read_bytes()
        fw_mb_s = _best_mb_s(fw_data, fw_adapter, True, repeats)

    report = BenchReport(
        bench="tokenize",
        metrics={
            "csv_cold_mb_s": csv_mb_s,
            "csv_scalar_mb_s": scalar_mb_s,
            "speedup_vs_scalar": csv_mb_s / scalar_mb_s,
        },
        info={
            "rows": rows,
            "ncols": NCOLS,
            "needed": NEEDED,
            "repeats": repeats,
            "file_mb": round(len(csv_data) / 2**20, 1),
            "tsv_cold_mb_s": round(tsv_mb_s, 1),
            "fixed_width_cold_mb_s": round(fw_mb_s, 1),
            "counters_equal": True,
            "quick": args.quick,
        },
    )
    report.emit(args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
