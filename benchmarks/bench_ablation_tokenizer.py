"""Ablation A2 — the tokenizer tricks of section 3.2.

Two independent toggles, measured on the Figure 3 dataset:

* **early abort** — "once all required columns are found the tokenization
  for this row can stop": tokenize-everything vs stop-at-last-needed, on
  a query touching the first two of four columns;
* **predicate pushdown** — "abandon the tokenization of a row as soon as
  a predicate fails": partial loads with and without pushdown.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import FIG3_ROWS, fresh_engine
from repro.workload import make_q2

import numpy as np


def _first_query(fig3_file, policy: str, **config) -> tuple[float, int, int]:
    engine = fresh_engine(policy, fig3_file, **config)
    q = make_q2(FIG3_ROWS, "a1", "a2", rng=np.random.default_rng(7)).sql
    start = time.perf_counter()
    engine.query(q)
    elapsed = time.perf_counter() - start
    stats = engine.stats.last()
    fields = stats.tokenizer.fields_tokenized
    parsed = stats.parse.values_parsed
    engine.close()
    return elapsed, fields, parsed


@pytest.mark.benchmark(group="ablation-tokenizer")
def test_early_abort_ablation(benchmark, fig3_file):
    fast, fields_fast, _ = _first_query(
        fig3_file, "column_loads", tokenizer_early_abort=True
    )
    slow, fields_slow, _ = _first_query(
        fig3_file, "column_loads", tokenizer_early_abort=False
    )
    print("\nAblation A2a: early row abort (load a1,a2 of a 4-column file)")
    print(f"  with abort:    {fast:.4f}s  fields={fields_fast}")
    print(f"  without abort: {slow:.4f}s  fields={fields_slow}")
    # Needed columns are the first two of four: stopping after a2 halves
    # the tokenization work.
    assert fields_fast <= 0.6 * fields_slow
    benchmark.pedantic(
        lambda: _first_query(fig3_file, "column_loads"), rounds=1, iterations=1
    )


@pytest.mark.benchmark(group="ablation-tokenizer")
def test_predicate_pushdown_ablation(benchmark, fig3_file):
    push, _, parsed_push = _first_query(
        fig3_file, "partial_v1", predicate_pushdown=True
    )
    nopush, _, parsed_nopush = _first_query(
        fig3_file, "partial_v1", predicate_pushdown=False
    )
    print("\nAblation A2b: predicate pushdown into loading (10% selective Q2)")
    print(f"  with pushdown:    {push:.4f}s  parsed={parsed_push}")
    print(f"  without pushdown: {nopush:.4f}s  parsed={parsed_nopush}")
    # Pushdown parses a1 everywhere but a2 only where a1 qualified
    # (~sqrt(10%) of rows), plus the qualifying materialization.
    assert parsed_push < 0.85 * parsed_nopush
    benchmark.pedantic(
        lambda: _first_query(fig3_file, "partial_v1"), rounds=1, iterations=1
    )
