"""Persistent adaptive store: cold vs restart-warm vs in-process warm.

The cache's whole value proposition is the restart: a fresh engine
pointed at a warm ``store_dir`` should answer its first query from the
persisted positional map and memmapped columns — a handful of small
binary reads — instead of re-paying the cold CSV scan.  This bench
measures the three warmth tiers on the same file and workload:

* **cold** — fresh engine, empty store: pays tokenize + parse + load,
  then persists off the query path;
* **restart-warm** — fresh engine, warm store: restores the entry and
  serves without touching the raw file;
* **in-process warm** — second query on a live engine: the in-memory
  adaptive store, the upper bound persistence is chasing.

Two invariants are enforced here, before the regression gate even runs
(a broken cache must not look like a slow one):

* restart-warm answers are byte-identical to cold answers;
* the restart-warm first query reads < 20% of the cold first query's
  raw-file bytes (it actually reads zero; the bound leaves room for a
  future policy that tops up partial state).

Script mode (what the CI ``bench-regression`` job runs)::

    PYTHONPATH=src python -m benchmarks.bench_persistence --quick --json out.json

Gated metrics: ``restart_warm_speedup`` (first cold query time over
first restart-warm query time; FATAL below 3x — the acceptance bar —
regardless of tolerance) and ``restart_bytes_saved_frac`` (fraction of
cold raw-file bytes the restart avoided).
"""

from __future__ import annotations

import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro import EngineConfig, NoDBEngine
from repro.bench.harness import BenchReport, bench_arg_parser, dataset_rows
from repro.flatfile.writer import write_csv
from repro.workload import TableSpec, generate_columns

NCOLS = 6
FULL_ROWS = 400_000  # ~16 MB of plain CSV
QUICK_ROWS = 80_000
MIN_SPEEDUP = 3.0
MAX_BYTES_FRAC = 0.2

QUERIES = (
    "select sum(a1), avg(a2) from t where a1 > 100",
    "select min(a3), max(a4) from t where a2 < 900",
)


def _run(engine, path) -> tuple[list, float, int]:
    """Attach + run the workload; returns (answers, first-query seconds,
    first-query raw-file bytes)."""
    engine.attach("t", path)
    answers = []
    start = time.perf_counter()
    answers.append(engine.query(QUERIES[0]).rows())
    first_s = time.perf_counter() - start
    first_bytes = engine.stats.last().file_bytes_read
    for sql in QUERIES[1:]:
        answers.append(engine.query(sql).rows())
    return answers, first_s, first_bytes


def main(argv: list[str] | None = None) -> int:
    parser = bench_arg_parser(
        "Persistent store: cold vs restart-warm vs in-process warm serving."
    )
    args = parser.parse_args(argv)
    rows = dataset_rows(args, FULL_ROWS, QUICK_ROWS)
    columns = generate_columns(TableSpec(nrows=rows, ncols=NCOLS, seed=2011))

    tmp = Path(tempfile.mkdtemp(prefix="repro-persistence-"))
    try:
        path = write_csv(tmp / "r.csv", columns)
        store_dir = tmp / "store"
        config = dict(policy="column_loads", store_dir=store_dir)

        # cold: empty store; persist happens off the query path, so the
        # measured first query does not include serialization time.
        engine = NoDBEngine(EngineConfig(**config))
        cold_answers, cold_s, cold_bytes = _run(engine, path)
        engine.flush_persistent_store()
        persist_writes = engine.stats.counters.persist_writes
        engine.close()

        # restart-warm: a fresh engine on the warm store.
        engine = NoDBEngine(EngineConfig(**config))
        warm_answers, restart_s, restart_bytes = _run(engine, path)
        restart_hits = engine.stats.counters.restart_warm_hits

        # in-process warm: repeat the first query on the live engine.
        start = time.perf_counter()
        engine.query(QUERIES[0])
        inproc_s = time.perf_counter() - start
        engine.close()

        if warm_answers != cold_answers:
            print("FATAL: restart-warm answers differ from cold", file=sys.stderr)
            return 1
        if restart_hits < 1 or persist_writes < 1:
            print(
                f"FATAL: store never engaged (persist_writes={persist_writes}, "
                f"restart_warm_hits={restart_hits})",
                file=sys.stderr,
            )
            return 1
        bytes_frac = restart_bytes / cold_bytes if cold_bytes else 1.0
        if bytes_frac >= MAX_BYTES_FRAC:
            print(
                f"FATAL: restart-warm first query read {restart_bytes:,} raw "
                f"bytes = {bytes_frac:.0%} of cold ({cold_bytes:,}); "
                f"bound is {MAX_BYTES_FRAC:.0%}",
                file=sys.stderr,
            )
            return 1
        speedup = cold_s / restart_s
        if speedup < MIN_SPEEDUP:
            print(
                f"FATAL: restart-warm first query only {speedup:.2f}x faster "
                f"than cold ({restart_s * 1e3:.1f} ms vs {cold_s * 1e3:.1f} ms); "
                f"bar is {MIN_SPEEDUP}x",
                file=sys.stderr,
            )
            return 1
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    report = BenchReport(
        bench="persistence",
        metrics={
            "restart_warm_speedup": speedup,
            "restart_bytes_saved_frac": 1.0 - bytes_frac,
        },
        info={
            "rows": rows,
            "ncols": NCOLS,
            "cold_first_ms": round(cold_s * 1e3, 2),
            "restart_warm_first_ms": round(restart_s * 1e3, 2),
            "inprocess_warm_ms": round(inproc_s * 1e3, 2),
            "cold_first_bytes": cold_bytes,
            "restart_warm_first_bytes": restart_bytes,
            "persist_writes": persist_writes,
            "quick": args.quick,
        },
    )
    report.emit(args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
