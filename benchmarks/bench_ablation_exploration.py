"""Ablation A5 — exploratory zoom workloads and the table of contents.

Section 3.1.2 motivates partial loading with the exploring scientist who
"walks through the data space, periodically zooming in and out".  This
bench runs nested zoom-in sequences (each query's ranges strictly inside
the previous query's) and measures how each policy's state helps:

* Partial Loads V2's value-range certificates cover every zoom-in — zero
  file trips after the first query of each region;
* Column Loads also answers from the store (it loaded whole columns), but
  paid a larger first query;
* Partial Loads V1 re-reads the file for every single zoom step.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import FIG3_ROWS, fresh_engine
from repro.bench import run_sequence
from repro.workload import exploration_sequence


@pytest.mark.benchmark(group="ablation-exploration")
def test_zoom_workload(benchmark, fig3_file):
    sqls = [
        q.sql
        for q in exploration_sequence(FIG3_ROWS, depth=5, regions=3, seed=71)
    ]
    series = {}
    for policy in ("partial_v2", "column_loads", "partial_v1"):
        engine = fresh_engine(policy, fig3_file)
        series[policy] = run_sequence(policy, engine, sqls)
        engine.close()

    print(f"\nAblation A5: exploratory zoom workload ({len(sqls)} queries, "
          "3 regions x 5 zoom levels)")
    print(f"{'policy':>14}  {'total ms':>9}  {'store hits':>10}  {'file bytes':>12}")
    for policy, s in series.items():
        hits = sum(s.from_store)
        print(
            f"{policy:>14}  {s.total_s * 1e3:>9.1f}  {hits:>10}  "
            f"{sum(s.bytes_read):>12,}"
        )

    v2, column, v1 = series["partial_v2"], series["column_loads"], series["partial_v1"]
    # V2 covers every zoom-in: only the first query per region hits the file.
    assert sum(v2.from_store) == len(sqls) - 3
    # V1 never improves.
    assert sum(v1.from_store) == 0
    # The stateless policy reads an order of magnitude more raw bytes.
    assert sum(v1.bytes_read) > 4 * sum(v2.bytes_read)
    # And costs several times more wall clock over the session (factor
    # kept below the typical ~3x measurement to absorb machine jitter).
    assert v1.total_s > 2.2 * v2.total_s

    benchmark.pedantic(
        lambda: run_sequence(
            "bench", fresh_engine("partial_v2", fig3_file), sqls[:5]
        ),
        rounds=1,
        iterations=1,
    )
