"""Concurrent query serving — aggregate throughput vs. the global lock.

The serving tentpole replaced the paper section 5.4 "simple solution"
(one engine-wide lock) with per-table reader–writer locks, shared-scan
batching and an optional result cache.  This bench quantifies the claim
that justifies the complexity: a gang of threads querying **disjoint**
tables must achieve well over the single-lock aggregate throughput,
because their cold loads — dominated by raw-file I/O — now overlap
instead of queueing.

Raw-file reads use the engine's simulated-bandwidth throttle so the
bench models the disk-bound regime the paper's figures live in (and so
the measured ratio reflects lock scheduling, not the Python VM's
ability to parse CSV on N cores at once).  The ``--concurrency`` knob
sets the gang size, serve-style.

Script mode (what the CI ``bench-regression`` job runs)::

    PYTHONPATH=src python -m benchmarks.bench_concurrent --quick --json out.json

Gated metric: ``speedup_disjoint`` — aggregate queries/second of the
per-table-locked engine over the ``global_lock=True`` baseline, 4
threads over 4 disjoint tables.  The committed baseline floor encodes
the >= 1.5x acceptance bar.
"""

from __future__ import annotations

import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro import EngineConfig, NoDBEngine
from repro.bench.harness import BenchReport, bench_arg_parser, dataset_rows
from repro.workload import TableSpec, materialize_csv

CONCURRENCY = 4
FULL_ROWS = 120_000  # per table
QUICK_ROWS = 12_000
#: Simulated raw-file read bandwidth: low enough that cold loads are
#: genuinely disk-bound (sleeps release the GIL, so overlap is real).
BANDWIDTH = 2 * 2**20  # 2 MB/s
#: Queries per thread per run (first is the cold load, the rest warm).
QUERIES_PER_THREAD = 3


def _gang_run(
    paths: list[Path],
    nthreads: int,
    global_lock: bool,
    result_cache: bool = False,
) -> tuple[float, int, list]:
    """One cold engine, ``nthreads`` threads each owning one table.

    Returns (wall seconds, queries run, answers) — answers are compared
    across variants to keep the bench honest.
    """
    engine = NoDBEngine(
        EngineConfig(
            policy="column_loads",
            global_lock=global_lock,
            result_cache=result_cache,
            io_bandwidth_bytes_per_sec=BANDWIDTH,
        )
    )
    try:
        for i, path in enumerate(paths):
            engine.attach(f"t{i}", path)
        barrier = threading.Barrier(nthreads)

        def worker(i: int):
            table = f"t{i % len(paths)}"
            barrier.wait()
            answers = []
            for _ in range(QUERIES_PER_THREAD):
                r = engine.query(f"select sum(a1), avg(a2) from {table}")
                answers.append(r.rows())
            return answers

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=nthreads) as pool:
            answers = list(pool.map(worker, range(nthreads)))
        elapsed = time.perf_counter() - start
        return elapsed, nthreads * QUERIES_PER_THREAD, answers
    finally:
        engine.close()


def main(argv: list[str] | None = None) -> int:
    parser = bench_arg_parser(
        "Aggregate throughput of concurrent serving vs. the global lock."
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=CONCURRENCY,
        metavar="N",
        help=f"gang size / disjoint table count (default: {CONCURRENCY})",
    )
    args = parser.parse_args(argv)
    rows = dataset_rows(args, FULL_ROWS, QUICK_ROWS)
    nthreads = max(2, args.concurrency)

    with tempfile.TemporaryDirectory(prefix="repro-conc-") as tmp:
        paths = [
            materialize_csv(
                TableSpec(nrows=rows, ncols=4, seed=600 + i),
                Path(tmp) / f"t{i}.csv",
            )
            for i in range(nthreads)
        ]

        global_s, nq, global_answers = _gang_run(paths, nthreads, global_lock=True)
        concurrent_s, _, concurrent_answers = _gang_run(
            paths, nthreads, global_lock=False
        )
        if concurrent_answers != global_answers:
            print("FATAL: concurrent answers differ from global-lock", file=sys.stderr)
            return 1

        # Result-cache hit rate on repeats, reported (not gated: absolute
        # hit latency is machine noise at this scale).
        cached_s, _, cached_answers = _gang_run(
            paths, nthreads, global_lock=False, result_cache=True
        )
        if cached_answers != global_answers:
            print("FATAL: cached answers differ from global-lock", file=sys.stderr)
            return 1

    speedup = global_s / concurrent_s
    report = BenchReport(
        bench="concurrent",
        metrics={
            "speedup_disjoint": speedup,
            "concurrent_qps": nq / concurrent_s,
        },
        info={
            "rows_per_table": rows,
            "tables": nthreads,
            "threads": nthreads,
            "queries": nq,
            "global_lock_qps": round(nq / global_s, 2),
            "result_cache_qps": round(nq / cached_s, 2),
            "quick": args.quick,
        },
    )
    report.emit(args.json)

    if not args.quick and speedup < 1.5:
        print(
            f"FATAL: concurrent speedup {speedup:.2f}x at {nthreads} threads "
            "over disjoint tables is below the 1.5x acceptance floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
