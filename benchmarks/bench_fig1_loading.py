"""Figure 1a — Loading/Initialization costs vs input size.

Paper setting: a 4-attribute unique-int table at 10^5..10^9 rows; the DBMS
pays a full load (tokenize + parse + write its internal format) before any
query, while Awk pays nothing.  The paper's curve additionally shows the
memory wall: at 1B rows the loader starts writing to disk and the cost
stops scaling gracefully.

Reproduced here at scaled sizes: the "DB" series is a full load with
binary persistence; the "DB (disk-bound)" series adds a simulated write
bandwidth, recreating the knee; "Awk" is identically zero by construction
(printed for completeness).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import FIG1_SIZES, fresh_engine


def _load_seconds(path, tmp_path, persist: bool, write_bw: float | None) -> float:
    config = {}
    if persist:
        config = {
            "persist_loads": True,
            "binary_store_dir": tmp_path / f"bin-{time.monotonic_ns()}",
            "binary_write_bandwidth": write_bw,
        }
    engine = fresh_engine("fullload", path, **config)
    start = time.perf_counter()
    engine.query("select count(*) from r")  # triggers the complete load
    elapsed = time.perf_counter() - start
    engine.close()
    return elapsed


@pytest.mark.benchmark(group="fig1a-loading")
def test_fig1a_loading_costs(benchmark, fig1_files, tmp_path):
    rows = []
    for n in FIG1_SIZES:
        plain = _load_seconds(fig1_files[n], tmp_path, persist=True, write_bw=None)
        # Simulated slow disk: 20 MB/s writes — the 1B-tuple memory wall.
        bound = _load_seconds(fig1_files[n], tmp_path, persist=True, write_bw=20e6)
        rows.append((n, plain, bound))

    print("\nFigure 1a: loading/initialization cost (seconds)")
    print(f"{'rows':>10}  {'Awk':>8}  {'DB load':>10}  {'DB (disk-bound)':>16}")
    for n, plain, bound in rows:
        print(f"{n:>10}  {0.0:>8.3f}  {plain:>10.3f}  {bound:>16.3f}")

    # Shape assertions: load cost grows with input size; Awk pays nothing.
    times = [t for _, t, _ in rows]
    assert times == sorted(times), "load cost must grow with input size"
    assert times[-1] / times[0] > 4, "load cost must scale steeply with rows"
    disk_bound = [b for _, _, b in rows]
    assert all(b >= t for (_, t, _), b in zip(rows, disk_bound))

    # pytest-benchmark datum: the full load at the largest size.
    benchmark.pedantic(
        lambda: _load_seconds(fig1_files[FIG1_SIZES[-1]], tmp_path, True, None),
        rounds=1,
        iterations=1,
    )
