"""Gate bench results against the committed baseline (CI `bench-regression`).

Reads ``BENCH_BASELINE.json`` plus one or more current bench JSON files
(produced by ``benchmarks/*.py --quick --json out.json``) and fails when
any gated metric regressed by more than the tolerance.  Every gated
metric is throughput-shaped — higher is better — so the rule is simply::

    current >= baseline * (1 - tolerance)

A bench or metric present in the baseline but missing from the current
results is a hard failure too: a silently-skipped bench must not look
like a pass.  Refresh the baseline after an intentional perf change with::

    PYTHONPATH=src python -m benchmarks.bench_selective_read --quick --json sel.json
    PYTHONPATH=src python -m benchmarks.bench_parallel_scan  --quick --json par.json
    python benchmarks/check_regression.py --baseline BENCH_BASELINE.json \
        --update sel.json par.json

Stdlib-only on purpose: the gate must run before (and regardless of)
the project's own dependencies.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_TOLERANCE = 0.25


def load_current(paths: list[Path]) -> dict[str, dict]:
    """Index current bench payloads by bench name."""
    benches: dict[str, dict] = {}
    for path in paths:
        payload = json.loads(path.read_text())
        name = payload.get("bench")
        if not name:
            raise SystemExit(f"{path}: not a bench payload (no 'bench' key)")
        benches[name] = payload
    return benches


def compare(
    baseline: dict, current: dict[str, dict], tolerance: float
) -> list[str]:
    """Return a list of failure messages (empty = gate passes)."""
    failures: list[str] = []
    for bench, entry in sorted(baseline.get("benches", {}).items()):
        got = current.get(bench)
        if got is None:
            failures.append(f"{bench}: no current result for baselined bench")
            continue
        got_metrics = got.get("metrics", {})
        for metric, base_value in sorted(entry.get("metrics", {}).items()):
            if metric not in got_metrics:
                failures.append(f"{bench}.{metric}: missing from current result")
                continue
            value = got_metrics[metric]
            floor = base_value * (1 - tolerance)
            status = "ok" if value >= floor else "REGRESSED"
            print(
                f"  {bench}.{metric}: baseline {base_value:.4g}, "
                f"current {value:.4g}, floor {floor:.4g} -> {status}"
            )
            if value < floor:
                failures.append(
                    f"{bench}.{metric}: {value:.4g} < floor {floor:.4g} "
                    f"(baseline {base_value:.4g}, tolerance {tolerance:.0%})"
                )
    return failures


def write_baseline(path: Path, current: dict[str, dict], tolerance: float) -> None:
    baseline = {
        "tolerance": tolerance,
        "benches": {
            name: {"metrics": payload.get("metrics", {}), "env": payload.get("env", {})}
            for name, payload in sorted(current.items())
        },
    }
    path.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"wrote baseline {path} from {len(current)} bench result(s)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "current", nargs="+", type=Path, help="bench JSON outputs to check"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_BASELINE.json",
        help="committed baseline file (default: repo-root BENCH_BASELINE.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional regression (default: baseline's, "
        f"else {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the current results instead of gating",
    )
    args = parser.parse_args(argv)

    current = load_current(args.current)
    if args.update:
        tolerance = args.tolerance
        if tolerance is None and args.baseline.exists():
            # preserve a hand-tuned tolerance across refreshes
            tolerance = json.loads(args.baseline.read_text()).get("tolerance")
        if tolerance is None:
            tolerance = DEFAULT_TOLERANCE
        write_baseline(args.baseline, current, tolerance)
        return 0

    if not args.baseline.exists():
        print(f"FATAL: baseline {args.baseline} not found", file=sys.stderr)
        return 1
    baseline = json.loads(args.baseline.read_text())
    tolerance = (
        args.tolerance
        if args.tolerance is not None
        else baseline.get("tolerance", DEFAULT_TOLERANCE)
    )
    print(f"bench regression gate (tolerance {tolerance:.0%})")
    failures = compare(baseline, current, tolerance)
    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
