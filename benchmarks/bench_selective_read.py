"""Ablation A6 — the selective-read fast path (positional map as I/O index).

The positional map's end game (paper section 4.1.5): once the byte range of
every needed field is known, a repeat query should not re-read the flat
file — only the bytes the answer needs.  Workload: on a wide table under
``partial_v1`` (which goes back to the file on *every* query), run the same
single-column range query repeatedly.  With selective reads the repeat
queries fetch a sliver of the file through coalesced window reads and a
vectorized gather; without, every repeat is a full scan and re-tokenize.

Script mode (what the CI ``bench-regression`` job runs)::

    PYTHONPATH=src python -m benchmarks.bench_selective_read --quick --json out.json
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

import pytest

from benchmarks.conftest import fresh_engine
from repro.bench.harness import BenchReport, bench_arg_parser, dataset_rows
from repro.workload import TableSpec, materialize_csv

QUERY = "select sum(a3), count(*) from r where a3 > 50 and a3 < 900000"
FULL_REPEATS = 5
SCRIPT_REPEATS = 15  # script mode: more repeats, steadier warm-path timing
NCOLS = 12
FULL_ROWS = 20_000
QUICK_ROWS = 12_000


def _repeat_cost(
    fig4_file, selective: bool, repeats: int = FULL_REPEATS
) -> tuple[float, int, float]:
    engine = fresh_engine(
        "partial_v1", fig4_file, selective_reads=selective
    )
    first = engine.query(QUERY)  # cold: full scan, teaches the map
    start = time.perf_counter()
    for _ in range(repeats):
        result = engine.query(QUERY)
    elapsed = (time.perf_counter() - start) / repeats
    repeat_bytes = engine.stats.last().file_bytes_read
    assert result.approx_equal(first)
    engine.close()
    return elapsed, repeat_bytes, fig4_file.stat().st_size


@pytest.mark.benchmark(group="selective-read")
def test_selective_read_repeat_queries(benchmark, fig4_file):
    with_time, with_bytes, size = _repeat_cost(fig4_file, True)
    without_time, without_bytes, _ = _repeat_cost(fig4_file, False)

    print("\nAblation A6: selective reads (repeat 1-column query, partial_v1)")
    print(f"{'variant':>14}  {'seconds':>9}  {'bytes read':>12}  {'of file':>8}")
    print(f"{'selective':>14}  {with_time:>9.4f}  {with_bytes:>12}  {with_bytes / size:>7.1%}")
    print(f"{'full scan':>14}  {without_time:>9.4f}  {without_bytes:>12}  {without_bytes / size:>7.1%}")
    print(f"speedup: {without_time / with_time:.2f}x, "
          f"bytes saved: {1 - with_bytes / without_bytes:.0%}")

    # The whole point: a warm repeat query touches strictly less file.
    assert with_bytes < size
    assert without_bytes == size
    assert with_time < without_time

    benchmark.pedantic(
        lambda: _repeat_cost(fig4_file, True), rounds=1, iterations=1
    )


def main(argv: list[str] | None = None) -> int:
    args = bench_arg_parser(
        "Warm repeat-query cost with and without selective reads."
    ).parse_args(argv)
    rows = dataset_rows(args, FULL_ROWS, QUICK_ROWS)
    # Warm repeats cost milliseconds but steady the gated speedup metric,
    # so --quick shrinks the dataset, never the repeat count.
    repeats = args.repeats if args.repeats is not None else SCRIPT_REPEATS

    with tempfile.TemporaryDirectory(prefix="repro-selread-") as tmp:
        path = materialize_csv(
            TableSpec(nrows=rows, ncols=NCOLS, seed=29), Path(tmp) / "r.csv"
        )
        with_time, with_bytes, size = _repeat_cost(path, True, repeats)
        without_time, without_bytes, _ = _repeat_cost(path, False, repeats)

    report = BenchReport(
        bench="selective_read",
        metrics={
            "speedup": without_time / with_time,
            "bytes_saved_frac": 1 - with_bytes / without_bytes,
        },
        info={
            "rows": rows,
            "repeats": repeats,
            "file_mb": round(size / 2**20, 2),
            "repeat_bytes": with_bytes,
            "quick": args.quick,
        },
    )
    report.emit(args.json)

    if not (with_bytes < size and without_bytes == size):
        print("FATAL: selective repeat did not save bytes", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
