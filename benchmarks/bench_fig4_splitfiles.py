"""Figure 4 — Adaptive loading with file reorganization.

Paper setting: 10^9-row, 12-attribute table; Q2 queries; every two queries
touch a fresh attribute pair (the second of each pair is an exact rerun);
the very first query asks for the *last* two file attributes — the worst
case for splitting, best case for demonstrating it.  Series: MonetDB
(trimmed at 11,000 s in the paper), Column Loads, Partial Loads V2, Split
Files.

Paper's headline shapes, asserted below:

* Split Files' first query is several times cheaper than MonetDB's
  ("roughly 4 times smaller"), even though it splits the whole file;
* on later *new-column* queries Split Files produces the smallest peaks —
  "2 times faster than Partial Loads and 5 times faster than Column
  Loads" — because it reads only the per-column files it needs;
* every rerun is served at MonetDB steady-state speed by all caching
  policies.

MonetDB here runs with binary persistence (a real load writes the
internal format), matching what its 11,000 s figure includes.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import FIG4_ROWS, fresh_engine
from repro.bench import print_series_table, run_sequence
from repro.workload import figure4_sequence

NEW_COLUMN_QUERIES = [2, 4, 6, 8, 10]  # 0-based indices of later cold peaks
RERUNS = [1, 3, 5, 7, 9, 11]


@pytest.mark.benchmark(group="fig4")
def test_fig4_adaptive_loading_with_file_reorganization(
    benchmark, fig4_file, tmp_path
):
    sqls = [q.sql for q in figure4_sequence(FIG4_ROWS, ncols=12, seed=131)]
    series = []
    for label, policy, config in [
        (
            "MonetDB",
            "fullload",
            {"persist_loads": True, "binary_store_dir": tmp_path / "monet-bin"},
        ),
        ("Column Loads", "column_loads", {}),
        ("Partial Loads V2", "partial_v2", {}),
        ("Split Files", "splitfiles", {"splitfile_dir": tmp_path / "splits"}),
    ]:
        engine = fresh_engine(policy, fig4_file, **config)
        series.append(run_sequence(label, engine, sqls))
        engine.close()
    monet, column, v2, split = series

    print_series_table(
        f"Figure 4: adaptive loading with file reorganization ({FIG4_ROWS} "
        "rows x 12 cols; q1 needs the last two file columns; odd queries are "
        "reruns)",
        series,
    )
    peaks = lambda s: float(np.mean([s.times_s[i] for i in NEW_COLUMN_QUERIES]))
    print(
        f"first query: MonetDB/Split = {monet.times_s[0] / split.times_s[0]:.1f}x "
        "(paper ~4x)\n"
        f"later peaks: ColumnLoads/Split = {peaks(column) / peaks(split):.1f}x "
        "(paper ~5x), "
        f"PartialV2/Split = {peaks(v2) / peaks(split):.1f}x (paper ~2x)"
    )

    # --- Shape assertions -------------------------------------------------
    # First query.  NOTE: the paper's ~4x MonetDB/Split gap compresses to
    # ~1x in pure Python, where per-field tokenization (paid by both
    # contenders) dominates typed parsing (paid for all 12 columns only by
    # the full load) — see EXPERIMENTS.md.  The *mechanism* is asserted
    # exactly via the deterministic parse counters: split converts only 2
    # of the 12 columns on query 1, and its cost stays in MonetDB's
    # ballpark rather than above it.
    assert split.values_parsed[0] < 0.25 * monet.values_parsed[0]
    assert split.times_s[0] < 1.5 * monet.times_s[0]
    # Partial V2 materializes only qualifying rows: strictly less parse
    # work than a whole-column load.  Wall clock is only sanity-bounded:
    # in pure Python the per-row pushdown callable costs about what the
    # skipped parses save at this scale (see EXPERIMENTS.md), whereas the
    # paper's C implementation banks the savings.
    assert v2.values_parsed[0] < column.values_parsed[0]
    assert v2.times_s[0] <= 2.0 * column.times_s[0]
    # Later new-column peaks: split reads tiny per-column files and wins.
    assert peaks(split) < 0.6 * peaks(v2)
    assert peaks(split) < 0.5 * peaks(column)
    # Reruns are store-served under every caching policy.
    for s in (monet, column, v2, split):
        assert all(s.from_store[i] for i in RERUNS), s.label
    # Rerun speed matches MonetDB steady state (same order of magnitude).
    monet_steady = float(np.mean([monet.times_s[i] for i in RERUNS]))
    split_steady = float(np.mean([split.times_s[i] for i in RERUNS]))
    assert split_steady < 5 * monet_steady

    benchmark.pedantic(
        lambda: run_sequence(
            "bench",
            fresh_engine("splitfiles", fig4_file, splitfile_dir=tmp_path / "s2"),
            sqls[:2],
        ),
        rounds=1,
        iterations=1,
    )
