"""Learned skipping: zone-map selectivity sweep + cracking warm path.

Two halves, matching the two layers of the skipping stack:

* **Zone maps** (``partial_v1`` + selective reads): after a teaching
  pass learns the positional map and zone statistics, a ~1%-selectivity
  range query on the clustered key column must read a small fraction of
  the bytes — and run in a fraction of the time — of the identical
  engine with ``zone_maps=False``.  Low-selectivity warm work trends
  toward O(result), not O(file).
* **Cracking** (``column_loads`` warm path): with the column resident,
  repeated range scans answered through the cracker index must beat the
  full-column mask route.

Hard-fails (exit 1) rather than reporting pretty-but-wrong numbers when
the machinery silently stops engaging: zone-map skips and cracks must
both be visible in the engine's own counters, answers must match between
the on/off configurations, and the low-selectivity query must read less
than 10% of the bytes the no-zone-maps route reads.

Script mode (what the CI ``bench-regression`` job runs)::

    PYTHONPATH=src python -m benchmarks.bench_skipping --quick --json out.json

Gated metrics: ``zone_bytes_saved_frac`` (fraction of warm-query file
bytes zone maps avoid), ``zone_speedup`` and ``crack_speedup`` (warm
latency ratios, skipping off / on).
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro.bench.harness import BenchReport, bench_arg_parser, dataset_rows
from repro.config import EngineConfig
from repro.core.engine import NoDBEngine

NCOLS = 4
FULL_ROWS = 400_000
QUICK_ROWS = 100_000
REPEATS = 5
ZONE_ROWS = 1024
#: ~1% selectivity on the clustered key column.
SELECTIVITY = 0.01


def _write_clustered(path: Path, nrows: int) -> Path:
    """Key column sorted (zone min/max really exclude), payloads mixed."""
    with open(path, "w") as f:
        for i in range(nrows):
            f.write(f"{i},{i % 97},{(i * 7) % 1003},{i * 0.25:.2f}\n")
    return path


def _range_query(nrows: int) -> str:
    lo = int(nrows * 0.5)
    hi = lo + max(int(nrows * SELECTIVITY), 1)
    return f"select sum(a2), max(a3) from r where a1 > {lo} and a1 < {hi}"


def _best_warm(engine, query: str, repeats: int) -> tuple[float, int]:
    """(best latency, bytes read by the last run) of a repeated query."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        engine.query(query)
        best = min(best, time.perf_counter() - start)
    return best, engine.stats.last().file_bytes_read


def _zone_half(path: Path, nrows: int, repeats: int, query: str):
    """Warm selective-read latency/bytes with and without zone maps."""
    out = {}
    for zone_maps in (True, False):
        cfg = EngineConfig(
            policy="partial_v1",
            zone_maps=zone_maps,
            zone_map_rows=ZONE_ROWS,
            cracking=False,
            result_cache=False,
        )
        with NoDBEngine(cfg) as engine:
            engine.attach("r", path)
            # Teaching pass: learns the positional map (and, when
            # enabled, zone statistics) as side effects of one full parse.
            engine.query("select sum(a1), sum(a2), sum(a3) from r")
            best, nbytes = _best_warm(engine, query, repeats)
            answer = engine.query(query).rows()
            skips = engine.stats.snapshot()["counters"]["zone_map_skips"]
            out[zone_maps] = (best, nbytes, repr(answer), skips)
    return out


def _crack_half(path: Path, repeats: int, query: str):
    """Warm range-scan latency through the cracker vs full-column masks."""
    out = {}
    for cracking in (True, False):
        cfg = EngineConfig(
            policy="column_loads",
            cracking=cracking,
            crack_after=1,
            zone_maps=False,
            result_cache=False,
        )
        with NoDBEngine(cfg) as engine:
            engine.attach("r", path)
            engine.query(query)  # cold load of the three columns
            engine.query(query)  # first warm serve (builds the cracker)
            best, _ = _best_warm(engine, query, repeats)
            answer = engine.query(query).rows()
            cracks = engine.stats.snapshot()["counters"]["cracks"]
            out[cracking] = (best, repr(answer), cracks)
    return out


def main(argv: list[str] | None = None) -> int:
    parser = bench_arg_parser(
        "Learned skipping: zone maps on selective reads, cracking warm path."
    )
    args = parser.parse_args(argv)
    rows = dataset_rows(args, FULL_ROWS, QUICK_ROWS)
    query = _range_query(rows)

    with tempfile.TemporaryDirectory(prefix="repro-skipping-") as tmp:
        path = _write_clustered(Path(tmp) / "r.csv", rows)
        file_bytes = path.stat().st_size

        zones = _zone_half(path, rows, REPEATS, query)
        (zt, zbytes, zanswer, zskips) = zones[True]
        (nt, nbytes, nanswer, _) = zones[False]
        if zanswer != nanswer:
            print("FATAL: zone-map answers differ from the unskipped route",
                  file=sys.stderr)
            return 1
        if zskips <= 0:
            print("FATAL: zone maps never skipped a zone", file=sys.stderr)
            return 1
        if zbytes > 0.10 * max(nbytes, 1):
            print(
                f"FATAL: low-selectivity warm query read {zbytes} bytes with "
                f"zone maps vs {nbytes} without (>10%): skipping stopped "
                "engaging",
                file=sys.stderr,
            )
            return 1

        cracked = _crack_half(path, REPEATS, query)
        (ct, canswer, cracks) = cracked[True]
        (mt, manswer, _) = cracked[False]
        if canswer != manswer:
            print("FATAL: cracked answers differ from the mask route",
                  file=sys.stderr)
            return 1
        if cracks <= 0:
            print("FATAL: the warm path never cracked a column", file=sys.stderr)
            return 1

    report = BenchReport(
        bench="skipping",
        metrics={
            "zone_bytes_saved_frac": 1.0 - zbytes / max(nbytes, 1),
            "zone_speedup": nt / zt,
            "crack_speedup": mt / ct,
        },
        info={
            "rows": rows,
            "ncols": NCOLS,
            "selectivity": SELECTIVITY,
            "repeats": REPEATS,
            "file_mb": round(file_bytes / 2**20, 1),
            "zone_rows": ZONE_ROWS,
            "warm_bytes_with_zones": zbytes,
            "warm_bytes_without_zones": nbytes,
            "zone_skips": zskips,
            "cracks": cracks,
            "zone_warm_ms": round(zt * 1e3, 2),
            "nozone_warm_ms": round(nt * 1e3, 2),
            "crack_warm_ms": round(ct * 1e3, 2),
            "mask_warm_ms": round(mt * 1e3, 2),
            "quick": args.quick,
        },
    )
    report.emit(args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
