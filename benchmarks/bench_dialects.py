"""Dialect-adapter overheads: cold scans and warm repeats per format.

The format-adapter layer must not tax the paper's original fast path:
plain CSV still takes the ``str.find`` tokenizer, and the other dialects
pay only their intrinsic decode cost (quote state machine, backslash
unescape, ``json.loads``, fixed-width slicing).  This bench renders the
same logical table in every dialect, runs the same cold aggregation
query through a fresh engine per dialect, verifies all answers agree,
and reports per-dialect cold throughput plus the plain-CSV warm repeat
(the positional-map selective path the regression gate already guards
from another angle).

Script mode (what the CI ``bench-regression`` job runs)::

    PYTHONPATH=src python -m benchmarks.bench_dialects --quick --json out.json

Gated metrics are throughput-shaped (MB/s of the *rendered* file, higher
is better).  Only plain CSV and the cheap structural dialects are gated;
the JSON decode cost is reported as info (it is dominated by
``json.loads``, whose speed is the interpreter's business, not ours).
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro import EngineConfig, NoDBEngine
from repro.bench.harness import BenchReport, bench_arg_parser, dataset_rows
from repro.flatfile.dialects import (
    DelimitedAdapter,
    FixedWidthAdapter,
    JsonLinesAdapter,
    QuotedCsvAdapter,
    TsvAdapter,
)
from repro.flatfile.writer import write_csv
from repro.workload import TableSpec, generate_columns

QUERY = "select sum(a1), avg(a2) from r where a1 > 100"
NCOLS = 4
FULL_ROWS = 400_000
QUICK_ROWS = 60_000


def _render_all(columns, root: Path) -> dict[str, tuple[Path, dict]]:
    texts_max = max(
        len(str(int(v))) for col in columns for v in (col.min(), col.max())
    )
    widths = tuple([texts_max + 1] * len(columns))
    out: dict[str, tuple[Path, dict]] = {}
    out["csv"] = (
        write_csv(root / "r.csv", columns, adapter=DelimitedAdapter(",")),
        {},
    )
    out["quoted_csv"] = (
        write_csv(root / "r.qcsv", columns, adapter=QuotedCsvAdapter(",")),
        {"format": "quoted-csv"},
    )
    out["tsv"] = (
        write_csv(root / "r.tsv", columns, adapter=TsvAdapter()),
        {"format": "tsv"},
    )
    out["jsonl"] = (
        write_csv(root / "r.jsonl", columns, adapter=JsonLinesAdapter()),
        {"format": "jsonl"},
    )
    out["fixed_width"] = (
        write_csv(root / "r.fw", columns, adapter=FixedWidthAdapter(widths)),
        {"format": "fixed-width", "fixed_widths": widths},
    )
    return out


def _timed_queries(path: Path, attach_kwargs: dict) -> tuple[float, float, list]:
    """(cold_seconds, warm_seconds, rows) for one fresh engine."""
    engine = NoDBEngine(EngineConfig(policy="column_loads"))
    try:
        engine.attach("r", path, **attach_kwargs)
        start = time.perf_counter()
        rows = engine.query(QUERY).rows()
        cold = time.perf_counter() - start
        start = time.perf_counter()
        engine.query(QUERY)
        warm = time.perf_counter() - start
        return cold, warm, rows
    finally:
        engine.close()


def main(argv: list[str] | None = None) -> int:
    parser = bench_arg_parser(
        "Cold-scan and warm-repeat throughput of every format dialect."
    )
    args = parser.parse_args(argv)
    rows = dataset_rows(args, FULL_ROWS, QUICK_ROWS)
    columns = generate_columns(TableSpec(nrows=rows, ncols=NCOLS, seed=53))

    with tempfile.TemporaryDirectory(prefix="repro-dialects-") as tmp:
        rendered = _render_all(columns, Path(tmp))
        cold_mb_s: dict[str, float] = {}
        warm_s: dict[str, float] = {}
        answers = {}
        for name, (path, kwargs) in rendered.items():
            size_mb = path.stat().st_size / 2**20
            cold, warm, got = _timed_queries(path, kwargs)
            cold_mb_s[name] = size_mb / cold
            warm_s[name] = warm
            answers[name] = got
        baseline = answers["csv"]
        for name, got in answers.items():
            if got != baseline:
                print(
                    f"FATAL: dialect {name} answered {got!r}, csv answered "
                    f"{baseline!r}",
                    file=sys.stderr,
                )
                return 1

    report = BenchReport(
        bench="dialects",
        metrics={
            # gated: the original fast path and the cheap structural dialects
            "csv_cold_mb_s": cold_mb_s["csv"],
            "tsv_cold_mb_s": cold_mb_s["tsv"],
            "fixed_width_cold_mb_s": cold_mb_s["fixed_width"],
            "quoted_csv_cold_mb_s": cold_mb_s["quoted_csv"],
        },
        info={
            "rows": rows,
            "quick": args.quick,
            "jsonl_cold_mb_s": round(cold_mb_s["jsonl"], 2),
            **{f"{k}_warm_ms": round(v * 1e3, 2) for k, v in warm_s.items()},
        },
    )
    report.emit(args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
