"""Incremental append maintenance: growing a warm table must cost O(tail).

The growing-log scenario: a table is served warm (positional map,
partitions, zone maps all learned), then ~1% more rows land at the end
of the file.  With append extension the next query must absorb just the
tail — re-tokenize the appended bytes, extend the learned structures in
place — instead of wiping the store and re-parsing the whole file.

Hard-fails (exit 1) rather than reporting pretty-but-wrong numbers when
the machinery silently stops engaging: the stale fingerprint must be
recognized as an append (``append_extensions`` counter), the post-append
query must read no more than 10% of the cold-scan bytes, and its answer
must equal both the independently computed truth and a from-scratch
engine on the grown file.

Script mode (what the CI ``bench-regression`` job runs)::

    PYTHONPATH=src python -m benchmarks.bench_append --quick --json out.json

Gated metrics: ``append_bytes_saved_frac`` (fraction of the cold-scan
bytes the post-append query avoids) and ``append_speedup`` (cold scan
time / post-append absorb time).
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro.bench.harness import BenchReport, bench_arg_parser, dataset_rows
from repro.config import EngineConfig
from repro.core.engine import NoDBEngine

NCOLS = 4
FULL_ROWS = 400_000
QUICK_ROWS = 100_000
#: Appended tail, as a fraction of the base row count.
APPEND_FRAC = 0.01
QUERY = "select count(*), sum(a1), sum(a2), min(a3), max(a4) from g"


def _row(i: int) -> str:
    return f"{i},{i % 97},{(i * 7) % 1003},{i * 0.25:.2f}\n"


def _write_rows(path: Path, rng, mode: str = "w") -> None:
    with open(path, mode) as f:
        for i in rng:
            f.write(_row(i))


def _truth(nrows: int) -> tuple:
    return (
        nrows,
        sum(range(nrows)),
        sum(i % 97 for i in range(nrows)),
        0,
        round(max(i * 0.25 for i in range(nrows)), 2),
    )


def _normalize(rows) -> tuple:
    (row,) = rows
    return tuple(round(v, 2) if isinstance(v, float) else int(v) for v in row)


def main(argv: list[str] | None = None) -> int:
    parser = bench_arg_parser(
        "Append 1% to a warm table; the next query must absorb the tail."
    )
    args = parser.parse_args(argv)
    rows = dataset_rows(args, FULL_ROWS, QUICK_ROWS)
    tail_rows = max(int(rows * APPEND_FRAC), 1)

    with tempfile.TemporaryDirectory(prefix="repro-append-") as tmp:
        path = Path(tmp) / "g.csv"
        _write_rows(path, range(rows))
        cold_bytes_on_disk = path.stat().st_size

        with NoDBEngine(EngineConfig(policy="column_loads")) as engine:
            engine.attach("g", path)
            start = time.perf_counter()
            engine.query(QUERY)  # cold scan: parses the whole file
            cold_s = time.perf_counter() - start
            cold_bytes = engine.stats.last().file_bytes_read

            _write_rows(path, range(rows, rows + tail_rows), mode="a")
            grown_bytes_on_disk = path.stat().st_size

            start = time.perf_counter()
            answer = _normalize(engine.query(QUERY).rows())
            absorb_s = time.perf_counter() - start
            absorb_bytes = engine.stats.last().file_bytes_read
            extensions = engine.stats.counters.append_extensions
            invalidations = engine.stats.counters.store_invalidations

            start = time.perf_counter()
            engine.query(QUERY)  # fully warm again
            warm_s = time.perf_counter() - start

        if extensions < 1 or invalidations > 0:
            print(
                f"FATAL: the append was not absorbed in place "
                f"(append_extensions={extensions}, "
                f"store_invalidations={invalidations})",
                file=sys.stderr,
            )
            return 1
        if absorb_bytes > 0.10 * max(cold_bytes, 1):
            print(
                f"FATAL: post-append query read {absorb_bytes} bytes vs "
                f"{cold_bytes} cold (>10%): the tail was not absorbed "
                "incrementally",
                file=sys.stderr,
            )
            return 1
        want = _truth(rows + tail_rows)
        if answer != want:
            print(
                f"FATAL: post-append answer {answer!r} != truth {want!r}",
                file=sys.stderr,
            )
            return 1
        with NoDBEngine(EngineConfig(policy="column_loads")) as fresh:
            fresh.attach("g", path)
            scratch = _normalize(fresh.query(QUERY).rows())
        if answer != scratch:
            print(
                f"FATAL: post-append answer {answer!r} != from-scratch "
                f"engine {scratch!r}",
                file=sys.stderr,
            )
            return 1

    report = BenchReport(
        bench="append",
        metrics={
            "append_bytes_saved_frac": 1.0 - absorb_bytes / max(cold_bytes, 1),
            "append_speedup": cold_s / absorb_s,
        },
        info={
            "rows": rows,
            "tail_rows": tail_rows,
            "ncols": NCOLS,
            "file_mb": round(grown_bytes_on_disk / 2**20, 1),
            "tail_bytes": grown_bytes_on_disk - cold_bytes_on_disk,
            "cold_bytes": cold_bytes,
            "absorb_bytes": absorb_bytes,
            "cold_ms": round(cold_s * 1e3, 2),
            "absorb_ms": round(absorb_s * 1e3, 2),
            "warm_ms": round(warm_s * 1e3, 2),
            "append_extensions": extensions,
            "quick": args.quick,
        },
    )
    report.emit(args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
