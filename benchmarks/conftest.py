"""Shared benchmark fixtures: scaled datasets and engine builders.

Dataset sizes default to values that keep the whole bench suite under a
few minutes of wall-clock on a laptop while preserving the paper's cost
*shapes* (see DESIGN.md's substitution table).  Set ``REPRO_BENCH_SCALE``
to a float to grow or shrink everything proportionally, e.g.::

    REPRO_BENCH_SCALE=4 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from repro import EngineConfig, NoDBEngine
from repro.workload import TableSpec, materialize_csv
from repro.workload.generator import materialize_join_pair

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int) -> int:
    return max(100, int(n * SCALE))


#: Figure 1 input-size axis (paper: 10^5 .. 10^9 tuples; scaled here).
FIG1_SIZES = [scaled(10_000), scaled(50_000), scaled(200_000)]
FIG3_ROWS = scaled(50_000)
FIG4_ROWS = scaled(20_000)
JOIN_ROWS = scaled(60_000)


@pytest.fixture(scope="session")
def fig1_files(tmp_path_factory):
    """One 4-column CSV per Figure 1 input size."""
    root = tmp_path_factory.mktemp("fig1")
    return {
        n: materialize_csv(TableSpec(nrows=n, ncols=4, seed=17), root / f"r{n}.csv")
        for n in FIG1_SIZES
    }


@pytest.fixture(scope="session")
def fig3_file(tmp_path_factory):
    root = tmp_path_factory.mktemp("fig3")
    return materialize_csv(
        TableSpec(nrows=FIG3_ROWS, ncols=4, seed=23), root / "r.csv"
    )


@pytest.fixture(scope="session")
def fig4_file(tmp_path_factory):
    root = tmp_path_factory.mktemp("fig4")
    return materialize_csv(
        TableSpec(nrows=FIG4_ROWS, ncols=12, seed=29), root / "r.csv"
    )


@pytest.fixture(scope="session")
def join_files(tmp_path_factory):
    root = tmp_path_factory.mktemp("join")
    return materialize_join_pair(
        JOIN_ROWS, root / "left.csv", root / "right.csv", payload_cols=3, seed=31
    )


def fresh_engine(policy: str, path, table: str = "r", **config) -> NoDBEngine:
    engine = NoDBEngine(EngineConfig(policy=policy, **config))
    engine.attach(table, path)
    return engine
