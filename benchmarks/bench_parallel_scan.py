"""Partitioned parallel cold scans — first-pass latency vs. worker count.

The adaptive-loading promise is that query latency amortizes parsing, but
the *first* pass over a file is irreducible tokenize-and-parse work, and
serially it scales linearly with file size.  This bench measures that
cold-start cost with and without the partitioned parallel scan: the same
cold aggregation query over the same generated file, once with
``parallel_workers=1`` (the serial route) and once with ``parallel_workers
= 4`` (row-range partitions over a process pool), verifying the answers
are identical before reporting throughput.

Two regimes are measured:

* **CPU-bound** (page-cached file, no throttle): ``serial_mb_s`` and
  ``parallel_mb_s``, the raw tokenize-and-parse rates.  Their ratio is
  reported as ``cpu_speedup`` but only *gated* on machines with enough
  cores — a process pool cannot beat the clock on one core, and CI
  runner classes vary.
* **Disk-bound** (simulated-bandwidth throttle, the regime a genuinely
  cold scan lives in): the gated ``speedup`` metric.  Each partition
  worker pays its own share of the simulated disk time in-process, so
  partitioned reads overlap the way N workers streaming N byte ranges
  do on real hardware — this is deterministic across runner classes,
  which is what a committed baseline needs.

Script mode (what the CI ``bench-regression`` job runs)::

    PYTHONPATH=src python -m benchmarks.bench_parallel_scan --quick --json out.json

Full mode (no ``--quick``) sizes the file at >= 100 MB and, on machines
with at least 4 CPUs, additionally *requires* a >= 2x CPU-bound
cold-parse speedup at 4 workers — the paper-scale claim this subsystem
exists for.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
from pathlib import Path

import pytest

from benchmarks.conftest import fresh_engine, scaled
from repro.bench.harness import BenchReport, bench_arg_parser, dataset_rows
from repro.core.partitions import warm_pool
from repro.workload import TableSpec, materialize_csv

QUERY = "select sum(a1), avg(a2) from r where a1 > 100"
NCOLS = 8
WORKERS = 4
FULL_ROWS = 2_400_000  # ~110 MB at ~47 bytes/row
QUICK_ROWS = 150_000  # ~7 MB
SPEEDUP_FLOOR = 2.0


def _cold_query(
    path: Path,
    workers: int,
    partition_min_bytes: int = 1 << 20,
    bandwidth: float | None = None,
):
    """Time one cold first-pass query; return (seconds, partitions, rows).

    The shared worker pool is warmed first: its start-up is a
    once-per-process cost (services pay it at boot, not per scan), so it
    does not belong inside the measured cold-scan latency.  ``bandwidth``
    switches on the simulated-disk throttle (bytes/second) for the
    disk-bound regime.
    """
    if workers > 1:
        warm_pool(workers)
    engine = fresh_engine(
        "column_loads",
        path,
        parallel_workers=workers,
        partition_min_bytes=partition_min_bytes,
        io_bandwidth_bytes_per_sec=bandwidth,
    )
    start = time.perf_counter()
    result = engine.query(QUERY)
    elapsed = time.perf_counter() - start
    partitions = engine.stats.last().parallel_partitions
    rows = result.rows()
    engine.close()
    return elapsed, partitions, rows


@pytest.fixture(scope="session")
def parallel_file(tmp_path_factory):
    root = tmp_path_factory.mktemp("parallel")
    return materialize_csv(
        TableSpec(nrows=scaled(120_000), ncols=NCOLS, seed=41), root / "r.csv"
    )


@pytest.mark.benchmark(group="parallel-scan")
def test_parallel_scan_cold_load(benchmark, parallel_file):
    serial_s, serial_parts, serial_rows = _cold_query(parallel_file, 1)
    parallel_s, parts, rows = _cold_query(
        parallel_file, WORKERS, partition_min_bytes=64 * 1024
    )
    size = parallel_file.stat().st_size

    print("\nParallel partitioned cold scan")
    print(f"{'variant':>10}  {'seconds':>9}  {'partitions':>10}")
    print(f"{'serial':>10}  {serial_s:>9.4f}  {serial_parts:>10}")
    print(f"{'parallel':>10}  {parallel_s:>9.4f}  {parts:>10}")
    print(f"file: {size:,} bytes, speedup {serial_s / parallel_s:.2f}x")

    # The whole point: same answer, genuinely partitioned.
    assert rows == serial_rows
    assert serial_parts == 0
    assert parts >= 2

    benchmark.pedantic(
        lambda: _cold_query(parallel_file, WORKERS, 64 * 1024),
        rounds=1,
        iterations=1,
    )


def main(argv: list[str] | None = None) -> int:
    parser = bench_arg_parser(
        "Cold first-pass scan throughput, serial vs. partitioned parallel."
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=WORKERS,
        help=f"parallel worker count (default: {WORKERS})",
    )
    args = parser.parse_args(argv)
    rows = dataset_rows(args, FULL_ROWS, QUICK_ROWS)

    with tempfile.TemporaryDirectory(prefix="repro-parscan-") as tmp:
        path = materialize_csv(
            TableSpec(nrows=rows, ncols=NCOLS, seed=41), Path(tmp) / "r.csv"
        )
        size = path.stat().st_size
        size_mb = size / 2**20
        serial_s, _, serial_rows = _cold_query(path, 1)
        parallel_s, parts, par_rows = _cold_query(path, args.workers)
        if par_rows != serial_rows:
            print("FATAL: parallel result differs from serial", file=sys.stderr)
            return 1
        # Disk-bound regime: simulated disk sized so transfer time
        # dominates the (now vectorized) parse time.  Partition workers
        # overlap their shares of it; the serial scan pays it in full.
        bandwidth = size / max(serial_s, 1e-9) / 2.0
        disk_serial_s, _, _ = _cold_query(path, 1, bandwidth=bandwidth)
        disk_parallel_s, _, disk_rows = _cold_query(
            path, args.workers, bandwidth=bandwidth
        )
        if disk_rows != serial_rows:
            print("FATAL: disk-bound result differs from serial", file=sys.stderr)
            return 1

    cpu_speedup = serial_s / parallel_s
    speedup = disk_serial_s / disk_parallel_s
    report = BenchReport(
        bench="parallel_scan",
        metrics={
            "serial_mb_s": size_mb / serial_s,
            "parallel_mb_s": size_mb / parallel_s,
            "speedup": speedup,
        },
        info={
            "rows": rows,
            "file_mb": round(size_mb, 1),
            "workers": args.workers,
            "partitions": parts,
            "cpu_speedup": round(cpu_speedup, 2),
            "disk_bandwidth_mb_s": round(bandwidth / 2**20, 1),
            "disk_serial_s": round(disk_serial_s, 4),
            "disk_parallel_s": round(disk_parallel_s, 4),
            "quick": args.quick,
        },
    )
    report.emit(args.json)

    if parts < 2:
        print("FATAL: parallel run did not partition the file", file=sys.stderr)
        return 1
    if speedup < 1.0:
        print(
            f"FATAL: disk-bound partitioned scan speedup {speedup:.2f}x at "
            f"{args.workers} workers is below 1.0x — partitioning lost to "
            "its own overhead",
            file=sys.stderr,
        )
        return 1
    enforce = not args.quick and (os.cpu_count() or 1) >= args.workers
    if enforce and cpu_speedup < SPEEDUP_FLOOR:
        print(
            f"FATAL: CPU-bound cold-parse speedup {cpu_speedup:.2f}x at "
            f"{args.workers} workers is below the {SPEEDUP_FLOOR:.1f}x floor "
            f"({size_mb:.0f} MB file, {os.cpu_count()} CPUs)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
