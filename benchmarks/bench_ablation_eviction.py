"""Ablation A3 — adaptive-store lifetime under a memory budget (5.1.3/5.5).

Sweeps the memory budget while a cyclic workload touches all four columns
of the Figure 3 table repeatedly.  With a budget below the working set the
engine thrashes (every query reloads from the flat file — the paper's
worst-case scenario); once the working set fits, steady state is pure
store service.  Also exercises the robustness monitor's thrashing advice.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import FIG3_ROWS, fresh_engine

CYCLE = [
    "select sum(a1) from r where a1 > 10 and a1 < 5000",
    "select sum(a2) from r where a2 > 10 and a2 < 5000",
    "select sum(a3) from r where a3 > 10 and a3 < 5000",
    "select sum(a4) from r where a4 > 10 and a4 < 5000",
] * 3

ONE_COLUMN = FIG3_ROWS * 8 + FIG3_ROWS // 8 + 64


def _run_cycle(fig3_file, budget: int | None):
    engine = fresh_engine("column_loads", fig3_file, memory_budget_bytes=budget)
    start = time.perf_counter()
    for sql in CYCLE:
        engine.query(sql)
    elapsed = time.perf_counter() - start
    hits = engine.stats.queries_from_store
    evictions = engine.memory.stats.evictions
    advice = engine.monitor.advise()
    engine.close()
    return elapsed, hits, evictions, advice


@pytest.mark.benchmark(group="ablation-eviction")
def test_memory_budget_sweep(benchmark, fig3_file):
    budgets = [
        ("1 column", 1 * ONE_COLUMN),
        ("2 columns", 2 * ONE_COLUMN),
        ("4 columns", 4 * ONE_COLUMN + 1024),
        ("unbounded", None),
    ]
    results = []
    for label, budget in budgets:
        results.append((label, *_run_cycle(fig3_file, budget)))

    print(f"\nAblation A3: memory budget sweep ({len(CYCLE)} cyclic queries)")
    print(f"{'budget':>10}  {'seconds':>8}  {'store hits':>10}  {'evictions':>9}  advice")
    for label, elapsed, hits, evictions, advice in results:
        note = advice.switch_to if advice else "-"
        print(f"{label:>10}  {elapsed:>8.3f}  {hits:>10}  {evictions:>9}  {note}")

    thrash = results[0]
    fits = results[2]
    unbounded = results[3]
    # Thrashing: (almost) every query reloads; monitor recommends bailing
    # out of caching.
    assert thrash[2] == 0  # zero store hits
    assert thrash[3] >= len(CYCLE) - 1  # evicted on nearly every query
    assert thrash[4] is not None and thrash[4].switch_to == "partial_v1"
    # Working set fits: first cycle loads, the rest are store hits.
    assert fits[2] == len(CYCLE) - 4
    assert fits[4] is None
    assert unbounded[3] == 0
    # Thrashing costs measurably more wall clock.  (The fitting run still
    # pays its own four initial loads inside this short cycle, so the
    # total-time gap is bounded by cycle length; and the selective-read
    # fast path softens each reload to a fraction of the file, so the
    # penalty is real but no longer catastrophic.  Store hits above are
    # the exact signal.)
    assert thrash[1] > 1.3 * fits[1]

    benchmark.pedantic(
        lambda: _run_cycle(fig3_file, 2 * ONE_COLUMN), rounds=1, iterations=1
    )
