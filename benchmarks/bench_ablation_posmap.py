"""Ablation A1 — the positional map (paper section 4.1.5, "Learning").

Not plotted in the paper, but called out as the learning mechanism over
flat files (and noted in the reproduction brief as rarely implemented).
Workload: on a wide table, first load an early/middle column (teaching the
map row starts and field offsets), then load the *last* columns.  With the
map, the second load jumps from the learned anchor instead of tokenizing
every preceding field of every row.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import FIG4_ROWS, fresh_engine

WARMUP = "select sum(a10) from r"
TARGET = "select sum(a11), avg(a12) from r where a11 > 5 and a11 < 100"


def _second_load(fig4_file, use_map: bool) -> tuple[float, int]:
    engine = fresh_engine("column_loads", fig4_file, use_positional_map=use_map)
    engine.query(WARMUP)
    start = time.perf_counter()
    engine.query(TARGET)
    elapsed = time.perf_counter() - start
    fields = engine.stats.last().tokenizer.fields_tokenized
    engine.close()
    return elapsed, fields


@pytest.mark.benchmark(group="ablation-posmap")
def test_positional_map_ablation(benchmark, fig4_file):
    with_map, fields_with = _second_load(fig4_file, True)
    without_map, fields_without = _second_load(fig4_file, False)

    print("\nAblation A1: positional map (load a11,a12 after learning a1..a10)")
    print(f"{'variant':>14}  {'seconds':>9}  {'fields tokenized':>17}")
    print(f"{'with map':>14}  {with_map:>9.4f}  {fields_with:>17}")
    print(f"{'without map':>14}  {without_map:>9.4f}  {fields_without:>17}")
    print(f"speedup: {without_map / with_map:.2f}x, "
          f"tokenization saved: {1 - fields_with / fields_without:.0%}")

    # The map lets the load skip the 10 learned columns per row: the blind
    # load tokenizes ~12 fields/row, the assisted one ~3 (anchor + 2).
    assert fields_with < 0.5 * fields_without
    assert with_map < without_map

    benchmark.pedantic(
        lambda: _second_load(fig4_file, True), rounds=1, iterations=1
    )
