"""Ablation A4 — physical layout trade-offs of the adaptive store (5.1/5.2).

The paper's adaptive store may keep any fragment in row, column or PAX
format, with "multiple different execution strategies" on top.  This bench
quantifies the trade-off the adaptive kernel would navigate, on the two
canonical access patterns:

* **column scan** (aggregate one attribute) — DSM's home turf;
* **tuple reconstruction** (fetch 2% of rows, all attributes) — NSM's.

PAX sits between the two, by design.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.flatfile.schema import DataType
from repro.storage.formats import build_layout

NROWS = 200_000
NCOLS = 8


def _table():
    rng = np.random.default_rng(41)
    names = [f"a{i}" for i in range(NCOLS)]
    dtypes = [DataType.INT64] * NCOLS
    arrays = [rng.integers(0, 10**6, NROWS, dtype=np.int64) for _ in range(NCOLS)]
    return names, dtypes, arrays


def _scan_seconds(layout, repeats=10) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        layout.column(3).sum()
    return (time.perf_counter() - start) / repeats


def _reconstruct_seconds(layout, rows, repeats=10) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        layout.take(rows)
    return (time.perf_counter() - start) / repeats


@pytest.mark.benchmark(group="ablation-layouts")
def test_layout_tradeoffs(benchmark):
    names, dtypes, arrays = _table()
    rng = np.random.default_rng(43)
    rows = np.sort(rng.choice(NROWS, NROWS // 50, replace=False))

    results = {}
    for kind in ("column", "row", "pax"):
        layout = build_layout(kind, names, dtypes, arrays)
        results[kind] = (
            _scan_seconds(layout),
            _reconstruct_seconds(layout, rows),
        )

    print(f"\nAblation A4: storage layouts ({NROWS} rows x {NCOLS} int columns)")
    print(f"{'layout':>8}  {'column scan':>12}  {'reconstruct 2%':>15}")
    for kind, (scan, rec) in results.items():
        print(f"{kind:>8}  {scan * 1e3:>10.3f}ms  {rec * 1e3:>13.3f}ms")

    # DSM scans beat NSM scans (NSM pays a gather per column vector).
    assert results["column"][0] < results["row"][0]
    # PAX scans are also far cheaper than NSM's.
    assert results["pax"][0] < results["row"][0]

    benchmark.pedantic(
        lambda: _scan_seconds(build_layout("column", names, dtypes, arrays)),
        rounds=1,
        iterations=1,
    )
