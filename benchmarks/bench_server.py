"""Serving-layer throughput: multi-client QPS and latency over HTTP.

The network tentpole put the adaptive engine behind a stdlib HTTP/JSON
server.  This bench quantifies the cost of that wire layer: a gang of
clients (stdlib ``repro.client`` over real sockets on loopback) fires a
mixed warm workload at one in-process ``ReproServer`` and we measure
aggregate queries/second and mean per-request latency — the numbers a
capacity plan for ``repro serve`` starts from.

The table is warmed first (one cold load), so the gate tracks the
serving stack itself — HTTP framing, JSON encoding, admission control,
result-resource bookkeeping — not raw-file I/O, which the other benches
cover.  Every response is checked against the engine's direct answer, so
the bench doubles as a wire-correctness smoke test.

Script mode (what the CI ``bench-regression`` job runs)::

    PYTHONPATH=src python -m benchmarks.bench_server --quick --json out.json

Gated metrics: ``server_qps`` (aggregate, 4 clients) and
``latency_ok`` (1 / mean request latency in seconds — inverted so the
shared "bigger is better" regression rule applies).
"""

from __future__ import annotations

import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro import EngineConfig, NoDBEngine
from repro.bench.harness import BenchReport, bench_arg_parser, dataset_rows, iterations
from repro.client import RemoteConnection
from repro.server import ReproServer
from repro.workload import TableSpec, materialize_csv

CLIENTS = 4
FULL_ROWS = 20_000
QUICK_ROWS = 5_000
FULL_QUERIES_PER_CLIENT = 40
#: Warm aggregates + one paged projection: the steady-state mix a
#: dashboard-style consumer produces.
WORKLOAD = [
    "select sum(a1), avg(a2) from t where a1 > 100",
    "select count(*) from t where a2 > 500",
    "select min(a3), max(a3) from t",
]


def _drive_clients(
    url: str, nclients: int, queries_per_client: int
) -> tuple[float, list[float], list]:
    """Fire the workload from ``nclients`` threaded wire clients.

    Returns (wall seconds, per-request latencies, first client's answers).
    """
    barrier = threading.Barrier(nclients)

    def worker(i: int):
        conn = RemoteConnection(url, client_id=f"bench-{i}")
        barrier.wait()
        latencies, answers = [], []
        for q in range(queries_per_client):
            sql = WORKLOAD[q % len(WORKLOAD)]
            start = time.perf_counter()
            result = conn.execute(sql)
            rows = result.rows()
            latencies.append(time.perf_counter() - start)
            answers.append(rows)
        return latencies, answers

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=nclients) as pool:
        outcomes = list(pool.map(worker, range(nclients)))
    elapsed = time.perf_counter() - start
    latencies = [lat for lats, _ in outcomes for lat in lats]
    return elapsed, latencies, outcomes[0][1]


def main(argv: list[str] | None = None) -> int:
    parser = bench_arg_parser(
        "Multi-client QPS and latency of the HTTP serving layer."
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=CLIENTS,
        metavar="N",
        help=f"concurrent wire clients (default: {CLIENTS})",
    )
    args = parser.parse_args(argv)
    rows = dataset_rows(args, FULL_ROWS, QUICK_ROWS)
    queries_per_client = iterations(args, FULL_QUERIES_PER_CLIENT)
    nclients = max(2, args.clients)

    with tempfile.TemporaryDirectory(prefix="repro-srvbench-") as tmp:
        path = materialize_csv(
            TableSpec(nrows=rows, ncols=4, seed=700), Path(tmp) / "t.csv"
        )
        engine = NoDBEngine(EngineConfig(policy="column_loads", result_cache=True))
        with ReproServer(
            engine,
            port=0,
            owns_engine=True,
            max_inflight=nclients * 2,
            max_inflight_per_client=4,
        ) as server:
            server.start()
            engine.attach("t", path)
            # Warm the table and pin down the expected answers: the gate
            # measures the serving stack, not the one-off cold load.
            expected = [engine.query(sql).rows() for sql in WORKLOAD]

            elapsed, latencies, answers = _drive_clients(
                server.url, nclients, queries_per_client
            )
            for q, rows_got in enumerate(answers):
                if rows_got != expected[q % len(WORKLOAD)]:
                    print(
                        f"FATAL: served answer #{q} differs from the "
                        "engine's direct answer",
                        file=sys.stderr,
                    )
                    return 1
            rejected = server.admission.snapshot()["rejected_global"]

    nqueries = nclients * queries_per_client
    mean_latency = sum(latencies) / len(latencies)
    report = BenchReport(
        bench="server",
        metrics={
            "server_qps": nqueries / elapsed,
            "latency_ok": 1.0 / mean_latency,
        },
        info={
            "rows": rows,
            "clients": nclients,
            "queries": nqueries,
            "mean_latency_ms": round(mean_latency * 1e3, 3),
            "max_latency_ms": round(max(latencies) * 1e3, 3),
            "rejected_429": rejected,
            "quick": args.quick,
        },
    )
    report.emit(args.json)

    if rejected:
        # The bench sizes max_inflight above the client count; any 429
        # here means admission accounting leaked a slot.
        print(f"FATAL: {rejected} requests rejected by admission", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
