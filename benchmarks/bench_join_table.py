"""Section 2.2 join experiment (reported in the paper as prose numbers).

Paper setting: two 10^8-row tables, a perfect 1-to-1 join plus a few
aggregations.  Results reported: Awk hash join 387 s, Unix-sort + Awk
merge join 247 s, cold DB 39 s, hot DB 5 s.

Reproduced at scaled size with the same four contenders.  Shape asserted:
merge-Awk < hash-Awk (sorting beats Python-dict probing at this scale,
mirroring the paper's finding), both Awk variants >> cold DB > hot DB.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import JOIN_ROWS
from repro import AwkEngine, EngineConfig, NoDBEngine

SQL = (
    "select sum(l.a2), avg(rt.a2), min(l.a3), max(rt.a3), count(*) "
    "from l join rt on l.a1 = rt.a1 "
    "where l.a4 > 0"
)


def _awk_seconds(join_files, strategy: str) -> float:
    lp, rp = join_files
    awk = AwkEngine(join_strategy=strategy)
    awk.attach("l", lp)
    awk.attach("rt", rp)
    start = time.perf_counter()
    awk.query(SQL)
    return time.perf_counter() - start


def _db_seconds(join_files, tmp_path) -> tuple[float, float]:
    lp, rp = join_files
    bin_dir = tmp_path / "join-bin"
    loader = NoDBEngine(
        EngineConfig(policy="fullload", persist_loads=True, binary_store_dir=bin_dir)
    )
    loader.attach("l", lp)
    loader.attach("rt", rp)
    loader.query("select count(*) from l")
    loader.query("select count(*) from rt")
    start = time.perf_counter()
    loader.query(SQL)
    hot = time.perf_counter() - start
    loader.close()

    # Cold run: restore from the binary store through a simulated cold disk
    # (25 MB/s) — the paper's cold numbers are disk-bound reads of the
    # internal format.
    cold = NoDBEngine(
        EngineConfig(
            policy="fullload",
            binary_store_dir=bin_dir,
            binary_read_bandwidth=25e6,
        )
    )
    cold.attach("l", lp)
    cold.attach("rt", rp)
    start = time.perf_counter()
    cold.query(SQL)
    cold_s = time.perf_counter() - start
    cold.close()
    return cold_s, hot


@pytest.mark.benchmark(group="join-table")
def test_join_experiment(benchmark, join_files, tmp_path):
    hash_s = _awk_seconds(join_files, "hash")
    merge_s = _awk_seconds(join_files, "merge")
    cold_s, hot_s = _db_seconds(join_files, tmp_path)

    print(f"\nSection 2.2 join experiment ({JOIN_ROWS} rows per side, 1-to-1)")
    print(f"{'system':>22}  {'seconds':>9}   paper")
    print(f"{'Awk hash join':>22}  {hash_s:>9.3f}   387 s")
    print(f"{'Awk sort+merge join':>22}  {merge_s:>9.3f}   247 s")
    print(f"{'cold DB':>22}  {cold_s:>9.3f}    39 s")
    print(f"{'hot DB':>22}  {hot_s:>9.3f}     5 s")
    print(
        f"ratios: hash/cold = {hash_s / cold_s:.1f}x (paper 9.9x), "
        f"cold/hot = {cold_s / hot_s:.1f}x (paper 7.8x)"
    )

    assert hot_s < cold_s < merge_s, "expected hot < cold < scripted joins"
    assert min(hash_s, merge_s) > 3 * cold_s, "DB joins must clearly win"

    benchmark.pedantic(
        lambda: _db_seconds(join_files, tmp_path), rounds=1, iterations=1
    )
