"""Figure 3 — Alternative loading operators over a 20-query sequence.

Paper setting: 10^8-row, 4-attribute table; Q2 queries at 10% selectivity;
queries 1-10 touch (a1, a2), queries 11-20 touch (a3, a4).  Series:

* **MonetDB** — full load attached to query 1, then flat and fast;
* **MySQL CSV** — flat and slow: the whole file is re-analyzed per query;
* **Column Loads** — half of MonetDB's spike at query 1, a second smaller
  spike at query 11 (the workload shift), MonetDB-fast elsewhere;
* **Partial Loads V1** — flat, cheaper than the CSV engine (pushdown +
  early abandonment), but no improvement over time.

Shape assertions encode exactly those relationships.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import FIG3_ROWS, fresh_engine
from repro.bench import print_series_table, run_sequence
from repro.workload import figure3_sequence

POLICIES = [
    ("MonetDB", "fullload"),
    ("MySQL CSV", "external"),
    ("Column Loads", "column_loads"),
    ("Partial Loads V1", "partial_v1"),
]


@pytest.mark.benchmark(group="fig3")
def test_fig3_alternative_loading_operators(benchmark, fig3_file):
    sqls = [q.sql for q in figure3_sequence(FIG3_ROWS, seed=101)]
    series = []
    for label, policy in POLICIES:
        engine = fresh_engine(policy, fig3_file)
        series.append(run_sequence(label, engine, sqls))
        engine.close()
    monet, csv, column, partial = series

    print_series_table(
        f"Figure 3: alternative loading operators ({FIG3_ROWS} rows x 4 cols, "
        "queries 1-10 on a1/a2, 11-20 on a3/a4)",
        series,
    )

    # --- Shape assertions -------------------------------------------------
    # MonetDB: everything on query 1, then flat.
    assert monet.times_s[0] > 10 * max(monet.times_s[1:])
    # The CSV engine is flat: no query much cheaper than the mean.
    csv_mean = np.mean(csv.times_s)
    assert min(csv.times_s) > 0.5 * csv_mean
    assert max(csv.times_s) < 2.0 * csv_mean
    # Column loads: first query roughly half of the full load (2/4 columns).
    assert column.times_s[0] < 0.8 * monet.times_s[0]
    assert column.times_s[0] > 0.25 * monet.times_s[0]
    # Second spike at query 11, the workload shift.
    steady = sorted(column.times_s[1:10])[:5]
    assert column.times_s[10] > 10 * np.mean(steady)
    # In between, column loads matches MonetDB steady state (store-served).
    assert all(column.from_store[1:10])
    # Partial V1 is flat and cheaper than the CSV engine per query.
    assert np.mean(partial.times_s) < 0.8 * csv_mean
    assert not any(partial.from_store)
    # Total file work: MonetDB and Column Loads read comparable bytes, the
    # stateless engines read an order of magnitude more.
    assert sum(csv.bytes_read) > 5 * sum(column.bytes_read)

    benchmark.pedantic(
        lambda: run_sequence(
            "bench", fresh_engine("column_loads", fig3_file), sqls[:3]
        ),
        rounds=1,
        iterations=1,
    )
