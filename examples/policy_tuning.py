"""Robustness monitoring and policy choice (paper section 5.5).

No loading policy wins everywhere: caching policies thrash when memory is
scarce or the workload never repeats; stateless policies waste work when
it does.  This example runs two adversarial workloads and shows the
robustness monitor diagnosing each mismatch and recommending the policy
the paper's analysis would pick.

Run:  python examples/policy_tuning.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import EngineConfig, NoDBEngine
from repro.workload import TableSpec, materialize_csv, make_q2


def scenario_repeated_workload_on_stateless_policy(path: Path) -> None:
    print("scenario 1: a repetitive workload on the stateless CSV engine")
    engine = NoDBEngine(EngineConfig(policy="external"))
    engine.attach("r", path)
    sql = "select sum(a1), avg(a2) from r where a1 > 500 and a1 < 9000"
    for _ in range(8):
        engine.query(sql)
    total = sum(q.elapsed_s for q in engine.stats.queries)
    print(f"  8 identical queries, {total * 1e3:.0f} ms total, "
          f"{engine.stats.queries_from_file} full re-parses")
    advice = engine.monitor.advise()
    assert advice is not None
    print(f"  monitor: switch to {advice.switch_to!r}\n    reason: {advice.reason}\n")
    engine.close()


def scenario_thrashing_cache(path: Path) -> None:
    print("scenario 2: column loads under a budget half the working set")
    one_column = 30_000 * 8 + 30_000 // 8 + 64
    engine = NoDBEngine(
        EngineConfig(policy="column_loads", memory_budget_bytes=one_column)
    )
    engine.attach("r", path)
    rng = np.random.default_rng(1)
    for i in range(8):
        col_a, col_b = (("a1", "a2"), ("a3", "a4"))[i % 2]
        engine.query(make_q2(30_000, col_a, col_b, rng=rng).sql)
    print(
        f"  store hits: {engine.stats.queries_from_store}, "
        f"evictions: {engine.memory.stats.evictions}, "
        f"bytes evicted: {engine.memory.stats.bytes_evicted:,}"
    )
    advice = engine.monitor.advise()
    assert advice is not None
    print(f"  monitor: switch to {advice.switch_to!r}\n    reason: {advice.reason}\n")
    engine.close()


def scenario_well_matched(path: Path) -> None:
    print("scenario 3: the same repetitive workload on a caching policy")
    engine = NoDBEngine(EngineConfig(policy="column_loads"))
    engine.attach("r", path)
    sql = "select sum(a1), avg(a2) from r where a1 > 500 and a1 < 9000"
    for _ in range(8):
        engine.query(sql)
    total = sum(q.elapsed_s for q in engine.stats.queries)
    print(f"  8 identical queries, {total * 1e3:.0f} ms total, "
          f"{engine.stats.queries_from_store} served from the store")
    print(f"  monitor: {engine.monitor.advise()!r} (healthy -> no advice)")
    engine.close()


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-tuning-"))
    path = materialize_csv(TableSpec(nrows=30_000, ncols=4, seed=3), workdir / "r.csv")
    scenario_repeated_workload_on_stateless_policy(path)
    scenario_thrashing_cache(path)
    scenario_well_matched(path)


if __name__ == "__main__":
    main()
