"""Quickstart: here are my data files, here are my queries.

The complete NoDB loop in one minute, through the public API:

1. generate a raw CSV (stand-in for "my data files"),
2. ``repro.connect(...)`` it — *zero* loading happens,
3. fire SQL immediately,
4. watch the adaptive store fill in only what the queries needed.

Run:  python examples/quickstart.py
(set REPRO_EXAMPLE_ROWS to shrink the dataset, e.g. for CI smoke runs)
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import repro
from repro.workload import TableSpec, materialize_csv

ROWS = int(os.environ.get("REPRO_EXAMPLE_ROWS", "100000"))


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-quickstart-"))
    csv_path = materialize_csv(TableSpec(nrows=ROWS, ncols=4, seed=7), workdir / "data.csv")
    print(f"raw data file: {csv_path} ({csv_path.stat().st_size:,} bytes)")

    with repro.connect(csv_path, policy="column_loads") as conn:
        engine = conn.engine  # the adaptive machinery, for introspection
        print(f"attached as table 't'; bytes read so far: "
              f"{engine.catalog.get('t').file.stats.bytes_read}  (zero initialization)\n")

        queries = [
            "select count(*) from t",
            "select sum(a1), avg(a2) from t where a1 > 1000 and a1 < 30000",
            "select sum(a1), avg(a2) from t where a1 > 2000 and a1 < 25000",
            "select max(a4) from t where a3 < 500",
        ]
        for sql in queries:
            result = conn.execute(sql)
            q = conn.stats()["last_query"]
            source = "adaptive store" if q["served_from_store"] else "flat file"
            print(f"> {sql}")
            print(f"  {result.rows()[0]}")
            print(
                f"  [{q['elapsed_s'] * 1e3:7.1f} ms | answered from {source:>14} | "
                f"parsed {q['values_parsed']:>7} values | "
                f"loaded {q['rows_loaded']:>7} new cells]\n"
            )

        print("what the store holds now (only what queries touched):")
        print(engine.explain(queries[-1]))


if __name__ == "__main__":
    main()
