"""File cracking in action: watch a flat file split itself (section 4).

A 12-column raw file is queried column-pair by column-pair under the
Split Files policy.  After every query the example prints the split-file
catalog — which columns now live in their own single files, which still
share a remainder — plus how many bytes each load had to read.  The last
load reads only the tiny per-column files, never the original again.

Also demonstrates section 4.2.1's storage-budget caveat: the split files
roughly double the bytes on disk, and editing the original file drops
them all (section 5.4).

Run:  python examples/file_cracking.py
(set REPRO_EXAMPLE_ROWS to shrink the dataset, e.g. for CI smoke runs)
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path

from repro import EngineConfig, NoDBEngine
from repro.workload import TableSpec, materialize_csv

ROWS = int(os.environ.get("REPRO_EXAMPLE_ROWS", "60000"))


def describe_catalog(engine: NoDBEngine) -> str:
    split = engine.catalog.get("r").split_catalog
    if split is None:
        return "  (no split state yet)"
    homes = []
    for col in range(split.ncols):
        home = split.homes[col]
        tag = {"original": "O", "single": "S", "remainder": "R"}[home.kind]
        homes.append(tag)
    legend = "O=still in original, S=own single file, R=in a remainder"
    return f"  columns a1..a{split.ncols}: [{' '.join(homes)}]   ({legend})"


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-cracking-"))
    path = materialize_csv(TableSpec(nrows=ROWS, ncols=12, seed=5), workdir / "big.csv")
    original_size = path.stat().st_size
    print(f"raw file: {path} ({original_size:,} bytes)\n")

    engine = NoDBEngine(
        EngineConfig(policy="splitfiles", splitfile_dir=workdir / "splits")
    )
    engine.attach("r", path)

    for sql in [
        "select sum(a5), avg(a6) from r where a5 > 100 and a5 < 20000",
        "select sum(a2) from r",
        "select sum(a9), max(a10) from r where a9 > 5000 and a9 < 30000",
        "select min(a11), max(a12) from r",
        "select sum(a5), sum(a9) from r where a5 > 200 and a5 < 10000",  # all cached
    ]:
        start = time.perf_counter()
        engine.query(sql)
        elapsed = time.perf_counter() - start
        q = engine.stats.last()
        print(f"> {sql}")
        print(
            f"  {elapsed * 1e3:8.1f} ms | bytes read {q.file_bytes_read:>10,} | "
            f"split files written: {q.split_files_written}"
        )
        print(describe_catalog(engine))
        split = engine.catalog.get("r").split_catalog
        if split:
            print(f"  split storage on disk: {split.bytes_on_disk():,} bytes "
                  f"(original: {original_size:,})\n")

    print("editing the original file -> all split state is dropped:")
    time.sleep(0.02)
    text = path.read_text()
    path.write_text(text)  # rewrite = new mtime = stale fingerprint
    engine.query("select count(*) from r")
    print(describe_catalog(engine))
    engine.close()


if __name__ == "__main__":
    main()
