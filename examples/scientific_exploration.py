"""The paper's motivating scenario: exploratory science over raw files.

A scientist receives a wide instrument dump (here: 12 'sensor channels',
100k observations) and wants answers *now* — no schema design, no load
step, no tuning, and tomorrow another terabyte arrives (section 1.2).

The session below mimics exploratory behaviour: a quick look at a couple
of channels, repeated zoom-ins on an interesting region, then a shift to
different channels.  Three configurations answer the same session:

* the classic DBMS (full load up front),
* the CSV external table (re-parse per query),
* adaptive partial loading with the table of contents (Partial Loads V2).

The per-query trace shows where each configuration pays its costs — the
paper's Figure 3/4 story, replayed as a user session.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import EngineConfig, NoDBEngine
from repro.workload import TableSpec, materialize_csv

SESSION = [
    # quick look: are channels 2/3 interesting at all?
    "select count(*), min(a2), max(a2) from r where a2 > 40000 and a2 < 60000 and a3 > 10000 and a3 < 90000",
    # zoom in on the hot region (covered by the first query's load!)
    "select avg(a2), avg(a3) from r where a2 > 45000 and a2 < 55000 and a3 > 20000 and a3 < 80000",
    # zoom further
    "select count(*) from r where a2 > 48000 and a2 < 52000 and a3 > 30000 and a3 < 70000",
    # shift: yesterday's channels are boring, look at 11/12 instead
    "select sum(a11), avg(a12) from r where a11 > 10000 and a11 < 42000 and a12 > 10000 and a12 < 42000",
    # rerun after a coffee
    "select sum(a11), avg(a12) from r where a11 > 10000 and a11 < 42000 and a12 > 10000 and a12 < 42000",
]


def run_session(label: str, engine: NoDBEngine, path: Path) -> None:
    engine.attach("r", path)
    print(f"--- {label} " + "-" * max(0, 60 - len(label)))
    total = 0.0
    for i, sql in enumerate(SESSION, 1):
        start = time.perf_counter()
        engine.query(sql)
        elapsed = time.perf_counter() - start
        total += elapsed
        q = engine.stats.last()
        source = "store" if q.served_from_store else "file "
        print(
            f"  q{i}: {elapsed * 1e3:8.1f} ms  [{source}]  "
            f"bytes read {q.file_bytes_read:>10,}"
        )
    store = engine.catalog.get("r").table
    resident = store.logical_nbytes if store else 0
    print(f"  session total: {total * 1e3:8.1f} ms; "
          f"adaptive store resident: {resident:,} bytes\n")
    engine.close()


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-explore-"))
    path = materialize_csv(
        TableSpec(nrows=100_000, ncols=12, seed=99), workdir / "instrument.csv"
    )
    print(f"instrument dump: {path} ({path.stat().st_size:,} bytes)\n")

    run_session(
        "classic DBMS (full load on first query)",
        NoDBEngine(EngineConfig(policy="fullload")),
        path,
    )
    run_session(
        "external table / CSV engine (no loading, no memory)",
        NoDBEngine(EngineConfig(policy="external")),
        path,
    )
    run_session(
        "adaptive partial loading with table of contents (NoDB)",
        NoDBEngine(EngineConfig(policy="partial_v2")),
        path,
    )
    print(
        "Note how the adaptive engine pays only for touched channels, the\n"
        "zoom-ins and the rerun are served from the store, and the workload\n"
        "shift costs one incremental load — not a full reload."
    )


if __name__ == "__main__":
    main()
