"""Serving queries over the network: one engine, many clients.

Boots a ``ReproServer`` in-process (the same thing ``repro serve``
starts), then drives it with two wire clients to show the serving
contract end to end:

1. both clients attach the *same* raw file — identical attaches are
   idempotent, so they converge on one shared table;
2. queries return a **result handle** plus the first page; further pages
   are fetched on demand (results are addressable resources with a TTL);
3. the second client re-opens the first client's result by id;
4. the error taxonomy travels the wire: bad SQL raises the same
   ``SQLSyntaxError`` the engine raised server-side;
5. ``/stats`` shows one shared adaptive store serving everyone.

Run:  python examples/server_client.py
(set REPRO_EXAMPLE_ROWS to shrink the dataset, e.g. for CI smoke runs)
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import repro
from repro.server import ReproServer
from repro.workload import TableSpec, materialize_csv

ROWS = int(os.environ.get("REPRO_EXAMPLE_ROWS", "100000"))


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-serve-"))
    csv_path = materialize_csv(TableSpec(nrows=ROWS, ncols=4, seed=7), workdir / "data.csv")
    print(f"raw data file: {csv_path} ({csv_path.stat().st_size:,} bytes)")

    engine = repro.NoDBEngine(repro.EngineConfig(policy="column_loads"))
    with ReproServer(engine, port=0, owns_engine=True) as server:
        server.start()
        print(f"serving on {server.url}  (same as: repro serve {csv_path.name})\n")

        alice = repro.connect(url=server.url)
        bob = repro.connect(url=server.url)

        # Both clients attach the same file: idempotent, one shared table.
        alice.attach("t", csv_path)
        bob.attach("t", csv_path)
        print(f"tables: {alice.tables()}  (both clients attached the same file)")

        result = alice.execute(
            "select a1, a2 from t where a1 > 1000 and a1 < 30000", page_size=500
        )
        print(f"\nalice> {result!r}")
        print(f"  first page arrived with the response: {result.page(0).num_rows} rows")
        print(f"  total {result.num_rows} rows in {result.num_pages} pages of "
              f"{result.page_size}")

        # Results are resources: bob re-opens alice's result by id.
        shared = bob.result(result.result_id)
        print(f"bob reopens {shared.result_id}: {shared.num_rows} rows "
              f"(identical: {shared.page(0).rows() == result.page(0).rows()})")

        # Aggregates round-trip exactly; the engine only loads what
        # queries touch, no matter which client asks.
        for sql in (
            "select count(*) from t",
            "select sum(a1), avg(a2) from t where a1 > 2000 and a1 < 25000",
        ):
            print(f"bob> {sql}\n  {bob.execute(sql).rows()[0]}")

        # The error taxonomy crosses the wire as the same exception class.
        try:
            alice.execute("selct broken")
        except repro.SQLSyntaxError as exc:
            print(f"\nalice> selct broken\n  -> {exc.code} at position "
                  f"{exc.position}: {exc.message}")

        stats = alice.stats()
        print(f"\none shared engine served everyone: "
              f"{stats['engine']['queries']} queries, "
              f"{stats['results']['stored']} result resources, "
              f"{stats['server']['requests']} HTTP requests")
        warmth = alice.table_info("t")["warmth"]
        print(f"adaptive store warmth: {warmth['state']}, columns loaded: "
              f"{sorted(warmth['loaded'])}")


if __name__ == "__main__":
    main()
