"""The paper's closing scenario: personal data without the DBMS ceremony.

"A person's music or photo collection is typically stored in a file
hierarchy, manually organized ... a single user will never go into the
trouble of putting his/her data into a DBMS due to the initialization
trouble and expert knowledge required."  (Section 7)

This example plays that user: a music library export (string-heavy CSV
with a header) is queried directly — genres, decades, playtime — through
the same adaptive engine, including schema detection (§5.6: names and
types come from the file, not from the user) and live edits.

Run:  python examples/personal_media.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

import repro

GENRES = ["rock", "jazz", "electronic", "classical", "hiphop", "folk"]
ARTISTS = [f"artist_{i:02d}" for i in range(40)]


def write_library(path: Path, tracks: int = 5000, seed: int = 4) -> None:
    rng = np.random.default_rng(seed)
    lines = ["artist,album,genre,year,duration,plays"]
    for i in range(tracks):
        artist = ARTISTS[int(rng.integers(len(ARTISTS)))]
        album = f"album_{int(rng.integers(200)):03d}"
        genre = GENRES[int(rng.integers(len(GENRES)))]
        year = int(rng.integers(1960, 2026))
        duration = int(rng.integers(90, 600))
        plays = int(rng.integers(0, 500))
        lines.append(f"{artist},{album},{genre},{year},{duration},{plays}")
    path.write_text("\n".join(lines) + "\n")


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-media-"))
    library = workdir / "library.csv"
    write_library(library)
    print(f"music library export: {library} ({library.stat().st_size:,} bytes)\n")

    conn = repro.connect()
    conn.attach("tracks", library)

    print("detected schema (no user input, section 5.6):")
    for name, dtype in conn.schema("tracks"):
        print(f"  {name}: {dtype}")
    print()

    for title, sql in [
        (
            "most played genres",
            "select genre, sum(plays) as plays from tracks "
            "group by genre order by plays desc",
        ),
        (
            "albums with the most listening time (hours)",
            "select album, sum(duration * plays) / 3600 as hours "
            "from tracks group by album having sum(plays) > 800 "
            "order by hours desc limit 8",
        ),
        (
            "heavy-rotation jazz",
            "select artist, count(*) as tracks, max(plays) as top "
            "from tracks where genre = 'jazz' and plays > 250 "
            "group by artist order by top desc limit 5",
        ),
    ]:
        print(f"> {title}")
        print(conn.execute(sql))
        print()

    print("the library file is still just a file — append two tracks...")
    time.sleep(0.02)
    with open(library, "a", encoding="utf-8") as f:
        f.write("artist_99,album_new,jazz,2026,240,9999\n")
        f.write("artist_99,album_new,jazz,2026,250,9998\n")
    top = conn.execute(
        "select artist, max(plays) as top from tracks group by artist "
        "order by top desc limit 1"
    )
    print("...and the next query sees them (auto-invalidation, section 5.4):")
    print(top)
    conn.close()


if __name__ == "__main__":
    main()
