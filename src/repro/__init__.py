"""repro — a reproduction of the NoDB vision paper (CIDR 2011).

"Here are my Data Files.  Here are my Queries.  Where are my Results?"
by Idreos, Alagiannis, Johnson and Ailamaki.

Public API
----------

:class:`NoDBEngine`
    The adaptive engine: attach raw CSV files, fire SQL immediately; data
    is loaded selectively, adaptively and incrementally as queries demand.
:class:`EngineConfig`
    Engine knobs: loading policy, memory budget, tokenizer toggles.
:class:`AwkEngine` / :class:`CSVEngine`
    The paper's baselines (Unix scripting; MySQL CSV engine).
:mod:`repro.workload`
    Dataset and query-sequence generators for the paper's experiments.

Quickstart::

    from repro import NoDBEngine

    engine = NoDBEngine()
    engine.attach("r", "mydata.csv")
    print(engine.query("select sum(a1), avg(a2) from r where a1 > 100 and a1 < 900"))
"""

from repro.baselines import AwkEngine, CSVEngine
from repro.config import POLICIES, EngineConfig
from repro.core import AutoTuningEngine, NoDBEngine
from repro.errors import (
    BindError,
    BudgetExceededError,
    CatalogError,
    ExecutionError,
    FlatFileError,
    ReproError,
    SchemaInferenceError,
    SQLSyntaxError,
    StaleFileError,
    UnsupportedSQLError,
)
from repro.result import QueryResult

__version__ = "1.0.0"

__all__ = [
    "AutoTuningEngine",
    "AwkEngine",
    "BindError",
    "BudgetExceededError",
    "CSVEngine",
    "CatalogError",
    "EngineConfig",
    "ExecutionError",
    "FlatFileError",
    "NoDBEngine",
    "POLICIES",
    "QueryResult",
    "ReproError",
    "SQLSyntaxError",
    "SchemaInferenceError",
    "StaleFileError",
    "UnsupportedSQLError",
    "__version__",
]
