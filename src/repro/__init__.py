"""repro — a reproduction of the NoDB vision paper (CIDR 2011).

"Here are my Data Files.  Here are my Queries.  Where are my Results?"
by Idreos, Alagiannis, Johnson and Ailamaki.

Public API
----------

This module's ``__all__`` **is** the supported surface; everything else
in the package is private by convention (importable, but free to change
between versions).

:func:`connect` / :class:`Connection`
    The front door: ``repro.connect("data.csv")`` opens a local engine
    (files auto-attach as ``t`` / ``t1..tN``);
    ``repro.connect(url="http://host:port")`` opens the same surface
    against a running ``repro serve`` process.
:class:`NoDBEngine` / :class:`AutoTuningEngine`
    The adaptive engine itself, for direct use: attach raw flat files,
    fire SQL immediately; data is loaded selectively, adaptively and
    incrementally as queries demand.
:class:`EngineConfig` / :data:`POLICIES`
    Engine knobs: loading policy, memory budget, tokenizer toggles,
    persistence and concurrency switches.
:class:`QueryResult`
    The columnar result type every engine returns — with a first-class
    paging API (``.rows()``, ``.pages(size)``) and an exact JSON-safe
    round-trip (``.to_json_dict()`` / ``.from_json_dict()``) used
    identically by the CLI and the HTTP server.
:class:`ReproError` and subclasses
    The serializable error taxonomy: every error carries a stable
    ``code`` (the wire identifier) and an HTTP status, so client
    errors, engine errors and overload are distinguishable anywhere.
:class:`AwkEngine` / :class:`CSVEngine`
    The paper's baselines (Unix scripting; MySQL CSV engine).
    ``CSVEngine`` is the *oracle* of the differential test suites —
    applications should use :func:`connect` instead.
:mod:`repro.workload`
    Dataset and query-sequence generators for the paper's experiments.

Quickstart::

    import repro

    with repro.connect("mydata.csv") as conn:
        result = conn.execute(
            "select sum(a1), avg(a2) from t where a1 > 100 and a1 < 900"
        )
        print(result)

Serving::

    PYTHONPATH=src python -m repro serve mydata.csv --port 8321
    # then, from any process:
    conn = repro.connect(url="http://127.0.0.1:8321")
"""

from repro.api import Connection, connect
from repro.baselines import AwkEngine, CSVEngine
from repro.config import POLICIES, EngineConfig
from repro.core import AutoTuningEngine, NoDBEngine
from repro.errors import (
    BadRequestError,
    BindError,
    BudgetExceededError,
    CatalogError,
    ExecutionError,
    FlatFileError,
    FormatDetectionError,
    NotFoundError,
    OverloadedError,
    QueryTimeoutError,
    ReproError,
    SchemaInferenceError,
    SQLSyntaxError,
    StaleFileError,
    TableConflictError,
    UnknownResultError,
    UnsupportedSQLError,
)
from repro.result import QueryResult

__version__ = "1.1.0"

__all__ = [
    # facade
    "Connection",
    "connect",
    # engines
    "AutoTuningEngine",
    "NoDBEngine",
    # baselines (oracle reference, not the application path)
    "AwkEngine",
    "CSVEngine",
    # configuration
    "EngineConfig",
    "POLICIES",
    # results
    "QueryResult",
    # error taxonomy
    "BadRequestError",
    "BindError",
    "BudgetExceededError",
    "CatalogError",
    "ExecutionError",
    "FlatFileError",
    "FormatDetectionError",
    "NotFoundError",
    "OverloadedError",
    "QueryTimeoutError",
    "ReproError",
    "SQLSyntaxError",
    "SchemaInferenceError",
    "StaleFileError",
    "TableConflictError",
    "UnknownResultError",
    "UnsupportedSQLError",
    # metadata
    "__version__",
]
