"""Command-line interface: the Unix-tool face of the vision.

The paper's pitch is "a hybrid experience between using a Unix tool and a
DBMS".  This CLI is that experience verbatim — point it at files, get
results, no ceremony::

    # one-shot: query a file directly (the file becomes table `t`,
    # or `t1..tN` when several files are given)
    python -m repro "select sum(a1), avg(a2) from t where a1 > 10" data.csv

    # pick a loading policy / auto-tuning / stats
    python -m repro --policy splitfiles --stats "select ..." data.csv
    python -m repro --auto "select ..." data.csv

    # interactive shell over a set of files
    python -m repro --shell data.csv other.csv

    # serve the engine to many clients over HTTP (see repro.server)
    python -m repro serve data.csv --port 8321

Exit status: 0 on success, 1 on SQL/data errors (message on stderr).
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from pathlib import Path

from repro.api import table_names_for
from repro.config import POLICIES, EngineConfig
from repro.core.autotuner import AutoTuningEngine
from repro.core.engine import NoDBEngine
from repro.errors import ReproError
from repro.flatfile.dialects import FORMATS


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Query raw CSV files with SQL, instantly (NoDB reproduction).",
    )
    parser.add_argument(
        "sql",
        nargs="?",
        help="SQL to run (omit with --shell). Tables: t (one file) or t1..tN.",
    )
    parser.add_argument("files", nargs="*", type=Path, help="raw data files (a quoted glob or a directory attaches a multi-file table)")
    parser.add_argument(
        "--policy",
        choices=POLICIES,
        default="column_loads",
        help="loading policy (default: column_loads)",
    )
    parser.add_argument(
        "--auto",
        action="store_true",
        help="auto-tune the policy from the robustness monitor's advice",
    )
    parser.add_argument(
        "--delimiter", default=",", help="field delimiter (default: ',')"
    )
    parser.add_argument(
        "--format",
        choices=("auto",) + FORMATS,
        default="csv",
        help="file dialect; 'auto' sniffs it from the file head and "
        "errors (naming --format/--delimiter) when ambiguous "
        "(default: csv)",
    )
    parser.add_argument(
        "--fixed-widths",
        default=None,
        metavar="W1,W2,...",
        help="comma-separated field widths for --format fixed-width",
    )
    parser.add_argument(
        "--parallel-workers",
        type=int,
        default=1,
        metavar="N",
        help="partition first-pass scans of large files across N workers "
        "(0 = one per CPU; default: 1, serial)",
    )
    parser.add_argument(
        "--partition-min-bytes",
        type=int,
        default=EngineConfig.partition_min_bytes,
        metavar="BYTES",
        help="never parallelize partitions smaller than this "
        f"(default: {EngineConfig.partition_min_bytes})",
    )
    parser.add_argument(
        "--vectorized-tokenizer",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="route cold scans through the NumPy bulk-tokenization "
        "kernel where the dialect allows it (--no-vectorized-tokenizer "
        "forces the scalar tokenizer; default: on)",
    )
    parser.add_argument(
        "--result-cache",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="cache completed query results (mtime-keyed; invalidated "
        "when a file changes) and serve repeats instantly "
        "(--no-result-cache disables; default: off)",
    )
    parser.add_argument(
        "--max-cached-results",
        type=int,
        default=EngineConfig.max_cached_results,
        metavar="N",
        help="entry cap of the result cache "
        f"(default: {EngineConfig.max_cached_results})",
    )
    parser.add_argument(
        "--store-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="root of the persistent adaptive store: learned state "
        "(positional maps, schemas, loaded columns) is cached here, "
        "keyed by each file's content fingerprint, and restored "
        "restart-warm by later invocations pointing at the same DIR",
    )
    parser.add_argument(
        "--no-persistent-store",
        dest="persistent_store",
        action="store_false",
        help="ignore --store-dir: neither restore from nor write to "
        "the persistent adaptive store",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-query work counters after each result",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the result as strict JSON (the exact wire encoding "
        "the HTTP server uses) instead of the pretty table",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the load plan instead of executing",
    )
    parser.add_argument(
        "--shell", action="store_true", help="interactive SQL shell over the files"
    )
    return parser


def table_names(files: list[Path]) -> list[str]:
    return table_names_for(len(files))


def _print_stats(engine: NoDBEngine, out) -> None:
    # Read through the JSON-safe snapshot — the same surface the HTTP
    # /stats endpoint serves — never through live counter objects.
    q = engine.stats.snapshot()["last_query"]
    if q is None:
        return
    if q["result_cache_hit"]:
        source = "result cache"
    elif q["served_from_store"]:
        source = "adaptive store"
    else:
        source = "flat file(s)"
    parallel = (
        f" | parallel partitions {q['parallel_partitions']}"
        if q["parallel_partitions"]
        else ""
    )
    print(
        f"-- {q['elapsed_s'] * 1e3:.1f} ms | {source} | "
        f"bytes read {q['file_bytes_read']:,} | "
        f"values parsed {q['values_parsed']:,} | "
        f"rows loaded {q['rows_loaded']:,}" + parallel,
        file=out,
    )


def run_shell(engine, raw_engine: NoDBEngine, show_stats: bool, stdin, stdout) -> int:
    print("repro shell — end statements with Enter; \\q quits.", file=stdout)
    print(f"tables: {', '.join(raw_engine.tables())}", file=stdout)
    for line in stdin:
        sql = line.strip()
        if not sql:
            continue
        if sql in ("\\q", "exit", "quit"):
            break
        try:
            result = engine.query(sql)
            print(result, file=stdout)
            if show_stats:
                _print_stats(raw_engine, stdout)
        except ReproError as exc:
            print(f"error: {exc}", file=stdout)
    return 0


def run_cache_command(argv: list[str], stdout, stderr) -> int:
    """``repro cache {list,clear} --store-dir DIR``: inspect/clear the
    persistent adaptive store without attaching anything."""
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Inspect or clear the persistent adaptive store.",
    )
    sub = parser.add_subparsers(dest="action", required=True)
    for action, blurb in (
        ("list", "print one line per cached entry"),
        ("clear", "delete every cached entry"),
    ):
        p = sub.add_parser(action, help=blurb)
        p.add_argument(
            "--store-dir",
            type=Path,
            required=True,
            metavar="DIR",
            help="root of the persistent adaptive store",
        )
    args = parser.parse_args(argv)

    from repro.storage.persistent import PersistentStore

    store = PersistentStore(args.store_dir)
    if args.action == "clear":
        removed = store.clear()
        print(f"cleared {removed} entr{'y' if removed == 1 else 'ies'}", file=stdout)
        return 0
    entries = store.entries()
    if not entries:
        print("(store is empty)", file=stdout)
        return 0
    for e in entries:
        print(
            f"{e['source']}  rows={e['nrows']}  "
            f"columns={','.join(e['columns']) or '-'}  "
            f"posmap={len(e['positional_map_columns'])} cols  "
            f"{e['bytes_on_disk']:,} bytes  ({e['dir']})",
            file=stdout,
        )
    return 0


def build_serve_arg_parser() -> argparse.ArgumentParser:
    """Parser of ``repro serve`` (split out so tests can drive it)."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve the adaptive engine to many clients over HTTP/JSON.",
    )
    parser.add_argument("files", nargs="*", type=Path, help="raw data files to attach (a quoted glob or a directory attaches a multi-file table)")
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8321, help="bind port (0 = ephemeral)"
    )
    parser.add_argument("--policy", choices=POLICIES, default="column_loads")
    parser.add_argument("--delimiter", default=",")
    parser.add_argument("--format", choices=("auto",) + FORMATS, default="csv")
    parser.add_argument(
        "--parallel-workers", type=int, default=1, metavar="N",
        help="partitioned-scan workers (0 = one per CPU)",
    )
    parser.add_argument(
        "--result-cache", action=argparse.BooleanOptionalAction, default=True,
        help="serve repeated identical queries from the result cache "
        "(default: on for the server — many clients repeat queries)",
    )
    parser.add_argument("--store-dir", type=Path, default=None, metavar="DIR")
    parser.add_argument(
        "--no-persistent-store", dest="persistent_store", action="store_false"
    )
    parser.add_argument(
        "--memory-budget-bytes", type=int, default=None, metavar="BYTES"
    )
    parser.add_argument(
        "--page-size", type=int, default=None, metavar="ROWS",
        help="default rows per result page",
    )
    parser.add_argument(
        "--page-size-cap", type=int, default=None, metavar="ROWS",
        help="hard server-side cap on requested page sizes",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=8, metavar="N",
        help="global cap on concurrently executing queries",
    )
    parser.add_argument(
        "--max-inflight-per-client", type=int, default=4, metavar="N",
        help="per-client in-flight query cap (429 beyond it)",
    )
    parser.add_argument(
        "--query-timeout", type=float, default=30.0, metavar="SECONDS",
        help="per-query server timeout (504 beyond it)",
    )
    parser.add_argument(
        "--result-ttl", type=float, default=300.0, metavar="SECONDS",
        help="lifetime of stored result resources",
    )
    parser.add_argument(
        "--max-results", type=int, default=256, metavar="N",
        help="LRU cap on stored result resources",
    )
    return parser


def build_server_from_args(args):
    """An unstarted :class:`repro.server.ReproServer` from parsed args."""
    from repro.server import ReproServer

    config = EngineConfig(
        policy=args.policy,
        parallel_workers=args.parallel_workers,
        result_cache=args.result_cache,
        store_dir=args.store_dir,
        persistent_store=args.persistent_store,
        memory_budget_bytes=args.memory_budget_bytes,
    )
    engine = NoDBEngine(config)
    try:
        fmt = None if args.format == "csv" else args.format
        for name, path in zip(table_names_for(len(args.files)), args.files):
            engine.attach(name, path, delimiter=args.delimiter, format=fmt)
        server_kwargs = dict(
            max_inflight=args.max_inflight,
            max_inflight_per_client=args.max_inflight_per_client,
            query_timeout_s=args.query_timeout,
            result_ttl_s=args.result_ttl,
            max_results=args.max_results,
            owns_engine=True,
        )
        if args.page_size is not None:
            server_kwargs["default_page_size"] = args.page_size
        if args.page_size_cap is not None:
            server_kwargs["page_size_cap"] = args.page_size_cap
        return ReproServer(engine, args.host, args.port, **server_kwargs)
    except BaseException:
        engine.close()
        raise


def run_serve_command(argv: list[str], stdout, stderr) -> int:
    """``repro serve [files...]``: run the HTTP query server until ^C.

    ``SIGTERM`` drains gracefully: in-flight requests finish, new
    mutating requests get 503 + ``Retry-After``, and the process exits 0
    once the listener is closed — so process managers rolling the server
    never see dropped queries or a dirty exit.
    """
    args = build_serve_arg_parser().parse_args(argv)
    try:
        server = build_server_from_args(args)
    except (ReproError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=stderr)
        return 1
    with server:
        print(f"repro serving on {server.url}", file=stdout)
        if server.engine.tables():
            print(f"tables: {', '.join(server.engine.tables())}", file=stdout)
        if threading.current_thread() is threading.main_thread():
            # The handler must not call drain() inline: it runs on the
            # main thread, which is *inside* serve_forever(), and
            # shutdown() blocks on serve_forever()'s exit handshake — a
            # deadlock.  A daemon thread drains while serve_forever()
            # unwinds naturally below.
            def _on_sigterm(signum, frame):
                print("draining (SIGTERM)", file=stdout, flush=True)
                threading.Thread(
                    target=server.drain, name="repro-drain", daemon=True
                ).start()

            signal.signal(signal.SIGTERM, _on_sigterm)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("shutting down", file=stdout)
    return 0


def main(argv: list[str] | None = None, stdin=None, stdout=None, stderr=None) -> int:
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    stderr = stderr if stderr is not None else sys.stderr
    raw_argv = list(sys.argv[1:] if argv is None else argv)
    if raw_argv[:1] == ["cache"]:
        return run_cache_command(raw_argv[1:], stdout, stderr)
    if raw_argv[:1] == ["serve"]:
        return run_serve_command(raw_argv[1:], stdout, stderr)
    args = build_arg_parser().parse_args(raw_argv)

    # `sql files...` vs `--shell files...`: with --shell the positional
    # `sql` slot actually holds the first file.
    files = list(args.files)
    sql = args.sql
    if args.shell and sql is not None:
        files.insert(0, Path(sql))
        sql = None
    if not files:
        print("error: no data files given", file=stderr)
        return 1
    if sql is None and not args.shell:
        print("error: no SQL given (or use --shell)", file=stderr)
        return 1

    try:
        config = EngineConfig(
            policy=args.policy,
            parallel_workers=args.parallel_workers,
            partition_min_bytes=args.partition_min_bytes,
            vectorized_tokenizer=args.vectorized_tokenizer,
            result_cache=args.result_cache,
            max_cached_results=args.max_cached_results,
            store_dir=args.store_dir,
            persistent_store=args.persistent_store,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=stderr)
        return 1
    if args.auto:
        engine = AutoTuningEngine(config)
        raw_engine = engine.engine
    else:
        engine = NoDBEngine(config)
        raw_engine = engine

    fixed_widths: tuple[int, ...] | None = None
    if args.fixed_widths is not None:
        try:
            fixed_widths = tuple(
                int(w) for w in args.fixed_widths.split(",") if w.strip()
            )
        except ValueError:
            print(
                f"error: --fixed-widths must be comma-separated integers, "
                f"got {args.fixed_widths!r}",
                file=stderr,
            )
            return 1
    fmt = None if args.format == "csv" else args.format
    try:
        for name, path in zip(table_names(files), files):
            raw_engine.attach(
                name,
                path,
                delimiter=args.delimiter,
                format=fmt,
                fixed_widths=fixed_widths,
            )
    except ReproError as exc:
        print(f"error: {exc}", file=stderr)
        return 1

    try:
        if args.shell:
            return run_shell(engine, raw_engine, args.stats, stdin, stdout)
        if args.explain:
            print(raw_engine.explain(sql), file=stdout)
            return 0
        result = engine.query(sql)
        if args.json:
            # The exact wire encoding of the HTTP server (strict JSON;
            # non-finite floats as "NaN"/"Infinity"/"-Infinity" strings).
            print(json.dumps(result.to_json_dict(), allow_nan=False), file=stdout)
        else:
            print(result, file=stdout)
        if args.stats:
            _print_stats(raw_engine, stdout)
        if args.auto and getattr(engine, "switches", None):
            for switch in engine.switches:
                print(
                    f"-- auto-tuner: switched {switch.from_policy} -> "
                    f"{switch.to_policy} ({switch.reason})",
                    file=stdout,
                )
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=stderr)
        return 1
    finally:
        raw_engine.close()


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
