"""Comparison systems from the paper's evaluation.

* :class:`~repro.baselines.awk.AwkEngine` — the Unix-scripting baseline:
  stateless, streaming, row-at-a-time over the raw file, constant cost per
  query (sections 2.1-2.2).
* :class:`~repro.baselines.csv_engine.CSVEngine` — the MySQL CSV engine:
  SQL over the flat file with zero caching (section 3.2), implemented as a
  thin veneer over the ``external`` loading policy so the comparison runs
  through exactly the same substrate code.
"""

from repro.baselines.awk import AwkEngine
from repro.baselines.csv_engine import CSVEngine

__all__ = ["AwkEngine", "CSVEngine"]
