"""The scripting-tool baseline: an "Awk" over raw files.

Section 2 of the paper benchmarks hand-written Awk scripts against the
DBMS.  This module recreates that contender faithfully *in behaviour*:

* **stateless** — nothing survives between queries; every query streams
  the whole file again ("a scripting tool has a constant performance that
  cannot improve over time");
* **row-at-a-time** — records are split into fields and processed one by
  one, the volcano-without-an-optimizer style of a script;
* **optimized the way the authors optimized their scripts** — selections
  are applied as early as possible and only needed fields are converted
  ("our scripts match the techniques used in an optimized DB plan, i.e.,
  push down selections, perform the most selective filtering first");
* **both join strategies** of section 2.2 — a hash join (build a dict from
  one file, probe with the other) and a sort-merge join (sort both inputs,
  then merge — the `Unix sort` + 100-line-awk approach).

For convenience and apples-to-apples result checking, the engine accepts
the same SQL dialect as :class:`~repro.core.engine.NoDBEngine` — think of
it as FlatSQL [16]: SQL in, scripted streaming underneath.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import UnsupportedSQLError
from repro.flatfile.files import FlatFile
from repro.flatfile.parser import parse_single
from repro.flatfile.schema import TableSchema, infer_schema, looks_like_header
from repro.result import QueryResult
from repro.sql.binder import (
    BAgg,
    BArith,
    BColumn,
    BCompare,
    BExpr,
    BIn,
    BLiteral,
    BLogical,
    BNeg,
    BNot,
    BoundQuery,
    bind,
)
from repro.sql.parser import parse_sql

_CMP = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass
class _ScriptTable:
    """One file known to the script, with lazily inferred schema."""

    name: str
    file: FlatFile
    schema: TableSchema | None = None
    has_header: bool = False

    def ensure_schema(self) -> TableSchema:
        if self.schema is None:
            rows = self.file.sample_rows()
            second = rows[1] if len(rows) > 1 else None
            self.has_header = looks_like_header(rows[0], second)
            if self.has_header:
                self.schema = infer_schema(rows[1:], header=rows[0])
            else:
                self.schema = infer_schema(rows)
        return self.schema


@dataclass
class AwkEngine:
    """Stateless streaming query processor over raw flat files."""

    tables: dict[str, _ScriptTable] = field(default_factory=dict)
    join_strategy: str = "hash"  # 'hash' | 'merge'

    def attach(self, name: str, path: Path | str, delimiter: str = ",") -> None:
        # Plain delimited only: this baseline shells out to awk with
        # FS=<delimiter>, which has no notion of the adapter dialects.
        self.tables[name.lower()] = _ScriptTable(
            name, FlatFile(Path(path), delimiter=delimiter)
        )

    # -------------------------------------------------------------- query

    def query(self, sql: str) -> QueryResult:
        stmt = parse_sql(sql)
        names = [stmt.table.name] if stmt.table else []
        names += [j.table.name for j in stmt.joins]
        schemas = {}
        for n in names:
            t = self.tables.get(n.lower())
            if t is None:
                raise UnsupportedSQLError(f"table {n!r} not attached to the script")
            schemas[n] = t.ensure_schema()
        bound = bind(stmt, schemas)
        if bound.having is not None:
            raise UnsupportedSQLError(
                "the script baseline does not implement HAVING"
            )
        if len(bound.tables) == 1:
            rows = self._scan_single(bound)
        elif len(bound.tables) == 2 and len(bound.joins) == 1:
            rows = self._scan_join(bound)
        else:
            raise UnsupportedSQLError(
                "the script baseline supports one table or one two-table join"
            )
        return _finalize(bound, rows)

    # ----------------------------------------------------------- streaming

    def _stream_rows(self, binding: str, bound: BoundQuery):
        """Yield per-row dicts of parsed needed fields, filtering early."""
        table = self.tables[bound.tables[binding].lower()]
        schema = table.ensure_schema()
        needed = bound.needed_columns[binding]
        positions = [(n, schema.index_of(n), schema.dtype_of(n)) for n in needed]
        # Most-selective-first: evaluate recognized range conjuncts in
        # file order as soon as their field is available.
        condition = bound.conditions[binding]
        intervals = {n.lower(): iv for n, iv in condition.items}
        text = table.file.read_all()
        start = 1 if table.has_header else 0
        for line in text.split("\n")[start:]:
            line = line.rstrip("\r")
            if not line:
                continue
            fields = line.split(table.file.delimiter)  # awk splits the record
            row: dict[str, object] = {}
            ok = True
            for name, idx, dtype in positions:
                value = parse_single(fields[idx], dtype)
                interval = intervals.get(name.lower())
                if interval is not None and not interval.contains_value(value):
                    ok = False
                    break
                row[name.lower()] = value
            if ok:
                yield row

    def _scan_single(self, bound: BoundQuery) -> list[dict[str, object]]:
        binding = bound.single_binding()
        rows = []
        for row in self._stream_rows(binding, bound):
            if _residual_ok(bound, {binding: row}):
                rows.append({f"{binding}.{k}": v for k, v in row.items()})
        return rows

    def _scan_join(self, bound: BoundQuery) -> list[dict[str, object]]:
        join = bound.joins[0]
        lb, rb = join.left.binding, join.right.binding
        if self.join_strategy == "merge":
            return self._merge_join(bound, join, lb, rb)
        # Hash join: build on the right input, probe with the left.
        build: dict[object, list[dict[str, object]]] = {}
        for row in self._stream_rows(rb, bound):
            build.setdefault(row[join.right.name.lower()], []).append(row)
        out = []
        for row in self._stream_rows(lb, bound):
            for match in build.get(row[join.left.name.lower()], ()):
                combined = {f"{lb}.{k}": v for k, v in row.items()}
                combined.update({f"{rb}.{k}": v for k, v in match.items()})
                if _residual_ok(bound, {lb: row, rb: match}):
                    out.append(combined)
        return out

    def _merge_join(self, bound, join, lb, rb) -> list[dict[str, object]]:
        """Sort both inputs (the `Unix sort` step), then merge."""
        lkey, rkey = join.left.name.lower(), join.right.name.lower()
        left = sorted(self._stream_rows(lb, bound), key=lambda r: r[lkey])
        right = sorted(self._stream_rows(rb, bound), key=lambda r: r[rkey])
        out = []
        i = j = 0
        while i < len(left) and j < len(right):
            lv, rv = left[i][lkey], right[j][rkey]
            if lv < rv:
                i += 1
            elif lv > rv:
                j += 1
            else:
                i2 = i
                while i2 < len(left) and left[i2][lkey] == lv:
                    i2 += 1
                j2 = j
                while j2 < len(right) and right[j2][rkey] == rv:
                    j2 += 1
                for a in range(i, i2):
                    for b in range(j, j2):
                        if _residual_ok(bound, {lb: left[a], rb: right[b]}):
                            combined = {f"{lb}.{k}": v for k, v in left[a].items()}
                            combined.update(
                                {f"{rb}.{k}": v for k, v in right[b].items()}
                            )
                            out.append(combined)
                i, j = i2, j2
        return out


# ---------------------------------------------------------------------------
# Row-at-a-time expression evaluation (the "script body")
# ---------------------------------------------------------------------------


def _residual_ok(bound: BoundQuery, rows_by_binding: dict[str, dict]) -> bool:
    """Evaluate the full WHERE on one candidate row combination.

    Recognized conjuncts were already applied during streaming; they are
    re-checked here only when part of a residual tree, which keeps this
    simple and obviously correct.
    """
    if bound.where is None:
        return True
    return bool(_eval_scalar(bound.where, rows_by_binding))


def _eval_scalar(expr: BExpr, rows: dict[str, dict]):
    if isinstance(expr, BLiteral):
        return expr.value
    if isinstance(expr, BColumn):
        row = rows.get(expr.binding)
        if row is None:
            # Half-evaluated join rows: treat unseen side as satisfied.
            return None
        return row[expr.name.lower()]
    if isinstance(expr, BNeg):
        v = _eval_scalar(expr.operand, rows)
        return None if v is None else -v
    if isinstance(expr, BArith):
        left = _eval_scalar(expr.left, rows)
        right = _eval_scalar(expr.right, rows)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        return left / right
    if isinstance(expr, BCompare):
        left = _eval_scalar(expr.left, rows)
        right = _eval_scalar(expr.right, rows)
        if left is None or right is None:
            return True  # cannot reject yet
        return _CMP[expr.op](left, right)
    if isinstance(expr, BLogical):
        left = _eval_scalar(expr.left, rows)
        right = _eval_scalar(expr.right, rows)
        if expr.op == "and":
            return bool(left) and bool(right)
        return bool(left) or bool(right)
    if isinstance(expr, BNot):
        return not bool(_eval_scalar(expr.operand, rows))
    if isinstance(expr, BIn):
        v = _eval_scalar(expr.operand, rows)
        if v is None:
            return True
        hit = any(v == m for m in expr.values)
        return (not hit) if expr.negated else hit
    raise UnsupportedSQLError(f"script cannot evaluate {expr!r}")


# ---------------------------------------------------------------------------
# Aggregation / projection over accumulated rows
# ---------------------------------------------------------------------------


def _finalize(bound: BoundQuery, rows: list[dict[str, object]]) -> QueryResult:
    def col_key(c: BColumn) -> str:
        return f"{c.binding}.{c.name.lower()}"

    def eval_row(expr: BExpr, row: dict):
        if isinstance(expr, BColumn):
            return row[col_key(expr)]
        return _eval_scalar_row(expr, row, col_key)

    if bound.is_aggregate:
        if bound.group_by:
            groups: dict[tuple, list[dict]] = {}
            for row in rows:
                key = tuple(eval_row(k, row) for k in bound.group_by)
                groups.setdefault(key, []).append(row)
            key_strs = [str(k) for k in bound.group_by]
            names, columns = [], []
            ordered = sorted(groups.items(), key=lambda kv: kv[0])
            for out in bound.outputs:
                names.append(out.name)
                if str(out.expr) in key_strs:
                    idx = key_strs.index(str(out.expr))
                    columns.append(np.array([k[idx] for k, _ in ordered]))
                else:
                    columns.append(
                        np.array(
                            [_agg_over(out.expr, grp, eval_row) for _, grp in ordered]
                        )
                    )
            return QueryResult(names, columns)
        names = [o.name for o in bound.outputs]
        columns = [np.array([_agg_over(o.expr, rows, eval_row)]) for o in bound.outputs]
        return QueryResult(names, columns)

    names = [o.name for o in bound.outputs]
    out_rows = [tuple(eval_row(o.expr, row) for o in bound.outputs) for row in rows]
    if bound.distinct:
        seen = set()
        deduped = []
        for row in out_rows:
            if row not in seen:
                seen.add(row)
                deduped.append(row)
        out_rows = deduped
    columns = [
        np.array([row[i] for row in out_rows]) for i in range(len(names))
    ]
    if not out_rows:
        columns = [np.empty(0) for _ in names]
    result = QueryResult(names, columns)
    return _order_limit(bound, result)


def _eval_scalar_row(expr: BExpr, row: dict, col_key):
    if isinstance(expr, BLiteral):
        return expr.value
    if isinstance(expr, BColumn):
        return row[col_key(expr)]
    if isinstance(expr, BNeg):
        return -_eval_scalar_row(expr.operand, row, col_key)
    if isinstance(expr, BArith):
        left = _eval_scalar_row(expr.left, row, col_key)
        right = _eval_scalar_row(expr.right, row, col_key)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        return left / right
    if isinstance(expr, BCompare):
        return _CMP[expr.op](
            _eval_scalar_row(expr.left, row, col_key),
            _eval_scalar_row(expr.right, row, col_key),
        )
    raise UnsupportedSQLError(f"script cannot project {expr!r}")


def _agg_over(expr: BExpr, rows: list[dict], eval_row):
    """Evaluate an aggregate-bearing output expression over a row group."""
    if isinstance(expr, BAgg):
        if expr.func == "count" and expr.arg is None:
            return len(rows)
        values = [eval_row(expr.arg, r) for r in rows]
        if expr.distinct:
            values = list(set(values))
        if expr.func == "count":
            return len(values)
        if not values:
            return float("nan")
        if expr.func == "sum":
            return sum(values)
        if expr.func == "min":
            return min(values)
        if expr.func == "max":
            return max(values)
        if expr.func == "avg":
            return sum(values) / len(values)
        raise UnsupportedSQLError(f"unknown aggregate {expr.func}")
    if isinstance(expr, BArith):
        left = _agg_over(expr.left, rows, eval_row)
        right = _agg_over(expr.right, rows, eval_row)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        return left / right
    if isinstance(expr, BLiteral):
        return expr.value
    if isinstance(expr, BNeg):
        return -_agg_over(expr.operand, rows, eval_row)
    raise UnsupportedSQLError(f"script cannot aggregate {expr!r}")


def _order_limit(bound: BoundQuery, result: QueryResult) -> QueryResult:
    columns = result.columns
    if bound.order_by and result.num_rows > 1:
        by_name = {str(o.expr): c for o, c in zip(bound.outputs, columns)}
        keys = []
        for expr, desc in reversed(bound.order_by):
            col = by_name.get(str(expr))
            if col is None:
                raise UnsupportedSQLError(
                    "script ORDER BY must reference select-list expressions"
                )
            keys.append(-col if desc else col)
        order = np.lexsort(tuple(keys))
        columns = [c[order] for c in columns]
    if bound.limit is not None:
        columns = [c[: bound.limit] for c in columns]
    return QueryResult(result.names, columns)
