"""The MySQL-CSV-engine baseline.

"It provides the flexibility of querying a flat file with SQL but it does
not provide the DBMS benefits as ... it needs to read the data again and
again for every new query, i.e., it does not load the data in any way,
optimize the layout, etc." (section 3.2)

That behaviour is exactly the ``external`` loading policy, so this class is
a deliberately thin wrapper around :class:`~repro.core.engine.NoDBEngine`
with that policy pinned: whole-row tokenization, per-query conversion of
the needed attributes, zero caching, flat cost profile.  Keeping it on the
shared substrate guarantees the Figure 3 comparison measures policy
differences, not implementation differences.
"""

from __future__ import annotations

from pathlib import Path

from repro.config import EngineConfig
from repro.core.engine import NoDBEngine
from repro.result import QueryResult


class CSVEngine:
    """SQL over flat files with no loading and no memory of past queries."""

    def __init__(self, io_bandwidth_bytes_per_sec: float | None = None) -> None:
        self._engine = NoDBEngine(
            EngineConfig(
                policy="external",
                io_bandwidth_bytes_per_sec=io_bandwidth_bytes_per_sec,
            )
        )

    def attach(
        self,
        name: str,
        path: Path | str,
        delimiter: str = ",",
        format: str | None = None,
        fixed_widths: tuple[int, ...] | None = None,
    ) -> None:
        """Attach a file in any supported dialect (shared substrate).

        Because the external policy re-reads and re-tokenizes everything
        on every query, this engine doubles as the *oracle* of the
        differential format tests: whatever dialect adapters decode, it
        decodes the slow, obviously-correct way.
        """
        self._engine.attach(
            name,
            path,
            delimiter=delimiter,
            format=format,
            fixed_widths=fixed_widths,
        )

    def query(self, sql: str) -> QueryResult:
        return self._engine.query(sql)

    @property
    def stats(self):
        return self._engine.stats

    def close(self) -> None:
        self._engine.close()
