"""Join algorithms over column vectors.

Two implementations, matching the pair the paper benchmarks in section 2.2
(hash join vs sort+merge join in Awk, versus the DBMS's joins):

* :func:`hash_join` — match through one sorted side, probe with the
  larger; the engine's default.
* :func:`merge_join` — sort both key columns, merge; kept both for the
  baseline comparison and because the adaptive kernel (section 5.2) wants
  multiple strategies to choose from.

Both return ``(left_indices, right_indices)`` selection vectors, so callers
reconstruct whatever payload columns they need — pure column-at-a-time
style.  Both are fully vectorized: one ``argsort`` of the smaller side,
two ``searchsorted`` sweeps to find each probe key's run of equal build
keys, and repeat arithmetic to expand duplicate runs into the full cross
product without a Python loop.

Equality semantics: a string column never equi-matches a numeric column
(SQL would cast; the engine's predicates treat them as disjoint), and NaN
matches nothing — not even another NaN.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError

_EMPTY = np.empty(0, dtype=np.int64)


def _equi_match(
    outer_keys: np.ndarray, inner_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All index pairs ``(i, j)`` with ``outer_keys[i] == inner_keys[j]``.

    Sorts the *inner* side once; each outer key's run of equal inner keys
    is then ``[lo, hi)`` from two binary searches, and duplicate runs are
    expanded with ``np.repeat`` arithmetic (full cross product, per SQL).
    """
    inner_order = np.argsort(inner_keys, kind="stable")
    sorted_inner = inner_keys[inner_order]
    lo = np.searchsorted(sorted_inner, outer_keys, side="left")
    hi = np.searchsorted(sorted_inner, outer_keys, side="right")
    counts = hi - lo
    if np.issubdtype(outer_keys.dtype, np.floating):
        # numpy's sort order treats NaN == NaN; SQL equality does not.
        counts = np.where(np.isnan(outer_keys), 0, counts)
    total = int(counts.sum())
    if total == 0:
        return _EMPTY, _EMPTY
    outer_idx = np.repeat(
        np.arange(len(outer_keys), dtype=np.int64), counts
    )
    run_starts = np.repeat(lo, counts)
    run_base = np.repeat(np.cumsum(counts) - counts, counts)
    within_run = np.arange(total, dtype=np.int64) - run_base
    inner_idx = inner_order[run_starts + within_run].astype(np.int64)
    return outer_idx, inner_idx


def _incomparable(left_keys: np.ndarray, right_keys: np.ndarray) -> bool:
    """True when one side is strings and the other numbers: no matches."""
    return (left_keys.dtype == object) != (right_keys.dtype == object)


def hash_join(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Inner equi-join; returns matching index pairs (all matches).

    Duplicates on either side produce the full cross product of matches,
    per SQL semantics.  The smaller side plays the "build" role — it is
    the one sorted — and the larger side probes it.
    """
    if len(left_keys) == 0 or len(right_keys) == 0:
        return _EMPTY, _EMPTY
    if _incomparable(left_keys, right_keys):
        return _EMPTY, _EMPTY
    if len(right_keys) <= len(left_keys):
        return _equi_match(left_keys, right_keys)
    right_idx, left_idx = _equi_match(right_keys, left_keys)
    return left_idx, right_idx


def hash_join_unique(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized join for unique keys on the right side.

    ``np.searchsorted`` over the sorted right side replaces the run
    expansion entirely; used automatically when the engine knows the build
    side is duplicate-free (the paper's 1-to-1 join experiment).
    """
    if len(np.unique(right_keys)) != len(right_keys):
        raise ExecutionError("hash_join_unique requires unique right keys")
    if len(left_keys) == 0 or len(right_keys) == 0:
        return _EMPTY, _EMPTY
    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    pos = np.searchsorted(sorted_right, left_keys)
    pos_clipped = np.minimum(pos, len(sorted_right) - 1)
    matched = sorted_right[pos_clipped] == left_keys
    left_idx = np.nonzero(matched)[0].astype(np.int64)
    right_idx = order[pos_clipped[matched]].astype(np.int64)
    return left_idx, right_idx


def merge_join(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sort-merge inner equi-join with full duplicate handling.

    Both sides are sorted; pairs come out in left-key order, with each
    equal-key run expanded to the cross product by the same repeat
    arithmetic as :func:`hash_join` (the "merge" of two sorted runs *is*
    a pair of binary-search bounds).
    """
    if len(left_keys) == 0 or len(right_keys) == 0:
        return _EMPTY, _EMPTY
    if _incomparable(left_keys, right_keys):
        return _EMPTY, _EMPTY
    left_order = np.argsort(left_keys, kind="stable")
    outer_idx, right_idx = _equi_match(left_keys[left_order], right_keys)
    return left_order[outer_idx].astype(np.int64), right_idx
