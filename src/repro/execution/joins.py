"""Join algorithms over column vectors.

Two implementations, matching the pair the paper benchmarks in section 2.2
(hash join vs sort+merge join in Awk, versus the DBMS's joins):

* :func:`hash_join` — build a hash table on the smaller side, probe with
  the larger; the engine's default.
* :func:`merge_join` — sort both key columns, merge; kept both for the
  baseline comparison and because the adaptive kernel (section 5.2) wants
  multiple strategies to choose from.

Both return ``(left_indices, right_indices)`` selection vectors, so callers
reconstruct whatever payload columns they need — pure column-at-a-time
style.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError


def hash_join(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Inner equi-join; returns matching index pairs (all matches).

    Duplicates on either side produce the full cross product of matches,
    per SQL semantics.
    """
    if len(left_keys) == 0 or len(right_keys) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    # Build on the smaller side.
    swap = len(right_keys) < len(left_keys)
    build_keys, probe_keys = (left_keys, right_keys) if not swap else (right_keys, left_keys)
    table: dict = {}
    for i, k in enumerate(build_keys.tolist()):
        table.setdefault(k, []).append(i)
    build_idx: list[int] = []
    probe_idx: list[int] = []
    for j, k in enumerate(probe_keys.tolist()):
        hits = table.get(k)
        if hits is not None:
            build_idx.extend(hits)
            probe_idx.extend([j] * len(hits))
    b = np.asarray(build_idx, dtype=np.int64)
    p = np.asarray(probe_idx, dtype=np.int64)
    return (b, p) if not swap else (p, b)


def hash_join_unique(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized join for unique keys on the right side.

    ``np.searchsorted`` over the sorted right side replaces the Python
    hash table; used automatically when the engine knows the build side is
    duplicate-free (the paper's 1-to-1 join experiment).
    """
    if len(np.unique(right_keys)) != len(right_keys):
        raise ExecutionError("hash_join_unique requires unique right keys")
    if len(left_keys) == 0 or len(right_keys) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    pos = np.searchsorted(sorted_right, left_keys)
    pos_clipped = np.minimum(pos, len(sorted_right) - 1)
    matched = sorted_right[pos_clipped] == left_keys
    left_idx = np.nonzero(matched)[0].astype(np.int64)
    right_idx = order[pos_clipped[matched]].astype(np.int64)
    return left_idx, right_idx


def merge_join(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sort-merge inner equi-join with full duplicate handling."""
    left_order = np.argsort(left_keys, kind="stable")
    right_order = np.argsort(right_keys, kind="stable")
    ls = left_keys[left_order]
    rs = right_keys[right_order]
    li: list[int] = []
    ri: list[int] = []
    i = j = 0
    nl, nr = len(ls), len(rs)
    while i < nl and j < nr:
        if ls[i] < rs[j]:
            i += 1
        elif ls[i] > rs[j]:
            j += 1
        else:
            # gather the full run of equal keys on both sides
            key = ls[i]
            i2 = i
            while i2 < nl and ls[i2] == key:
                i2 += 1
            j2 = j
            while j2 < nr and rs[j2] == key:
                j2 += 1
            for a in range(i, i2):
                for b in range(j, j2):
                    li.append(left_order[a])
                    ri.append(right_order[b])
            i, j = i2, j2
    return np.asarray(li, dtype=np.int64), np.asarray(ri, dtype=np.int64)
