"""Vectorized execution engine (the "adaptive kernel" substrate).

Operates on NumPy column vectors — the column-at-a-time execution model of
MonetDB that the paper's prototype extends.  The executor consumes a
:class:`~repro.sql.binder.BoundQuery` plus materialized base columns and
produces a :class:`~repro.result.QueryResult`; it is deliberately
independent of *how* the base columns were materialized, which is exactly
the seam where the adaptive loading operators plug in.
"""

from repro.execution.executor import execute_bound_query
from repro.execution.expressions import eval_expr
from repro.execution.joins import hash_join, merge_join

__all__ = ["eval_expr", "execute_bound_query", "hash_join", "merge_join"]
