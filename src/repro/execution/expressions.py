"""Vectorized evaluation of bound expressions.

``eval_expr`` walks a bound expression tree and evaluates it column-at-a-
time over NumPy arrays.  Column references are resolved through a callable
so the same evaluator serves pre-join frames, post-join frames and grouped
frames.  Comparisons and logical operators produce boolean masks;
projecting a mask surfaces it as int64 (0/1), matching common SQL engines.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ExecutionError
from repro.sql.binder import (
    BAgg,
    BArith,
    BColumn,
    BCompare,
    BExpr,
    BIn,
    BLiteral,
    BLogical,
    BNeg,
    BNot,
)

Resolver = Callable[[BColumn], np.ndarray]


def eval_expr(expr: BExpr, resolve: Resolver, nrows: int) -> np.ndarray:
    """Evaluate ``expr`` to an array of length ``nrows``.

    Aggregates must have been replaced before calling (the executor
    evaluates aggregate inputs, not aggregate results, through this
    function); hitting a :class:`BAgg` here is an internal error.
    """
    out = _eval(expr, resolve, nrows)
    if np.isscalar(out) or out.ndim == 0:
        return np.full(nrows, out)
    return out


def _eval(expr: BExpr, resolve: Resolver, nrows: int):
    if isinstance(expr, BLiteral):
        return expr.value
    if isinstance(expr, BColumn):
        return resolve(expr)
    if isinstance(expr, BNeg):
        return -_eval(expr.operand, resolve, nrows)
    if isinstance(expr, BArith):
        left = _eval(expr.left, resolve, nrows)
        right = _eval(expr.right, resolve, nrows)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return np.true_divide(left, right)
        raise ExecutionError(f"unknown arithmetic op {expr.op!r}")
    if isinstance(expr, BCompare):
        left = _eval(expr.left, resolve, nrows)
        right = _eval(expr.right, resolve, nrows)
        if expr.op == "=":
            return left == right
        if expr.op == "!=":
            return left != right
        if expr.op == "<":
            return left < right
        if expr.op == "<=":
            return left <= right
        if expr.op == ">":
            return left > right
        if expr.op == ">=":
            return left >= right
        raise ExecutionError(f"unknown comparison op {expr.op!r}")
    if isinstance(expr, BLogical):
        left = _as_mask(_eval(expr.left, resolve, nrows), nrows)
        right = _as_mask(_eval(expr.right, resolve, nrows), nrows)
        return (left & right) if expr.op == "and" else (left | right)
    if isinstance(expr, BNot):
        return ~_as_mask(_eval(expr.operand, resolve, nrows), nrows)
    if isinstance(expr, BIn):
        operand = _eval(expr.operand, resolve, nrows)
        operand = np.asarray(operand) if not np.isscalar(operand) else np.full(nrows, operand)
        mask = np.zeros(nrows, dtype=bool)
        for v in expr.values:
            mask |= operand == v
        return ~mask if expr.negated else mask
    if isinstance(expr, BAgg):
        raise ExecutionError(
            "aggregate reached the scalar evaluator; executor bug"
        )
    raise ExecutionError(f"cannot evaluate expression {expr!r}")


def _as_mask(value, nrows: int) -> np.ndarray:
    if np.isscalar(value):
        return np.full(nrows, bool(value))
    arr = np.asarray(value)
    if arr.dtype != bool:
        arr = arr.astype(bool)
    return arr


def eval_predicate(expr: BExpr, resolve: Resolver, nrows: int) -> np.ndarray:
    """Evaluate a WHERE-style expression to a boolean mask."""
    return _as_mask(_eval(expr, resolve, nrows), nrows)
