"""Global and grouped aggregation over column vectors.

Grouped aggregation is sort-based: group keys are lexicographically sorted
once, segment boundaries are found with one vectorized comparison, and each
aggregate reduces over segments with ``np.add.reduceat`` and friends.  This
keeps per-group Python work at zero, which matters because the paper's
"DBMS wins after loading" story depends on the engine actually being fast
once data is columnar.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError


def global_aggregate(func: str, values: np.ndarray | None, nrows: int, distinct: bool = False):
    """Aggregate a whole column (or row count for ``count(*)``)."""
    if func == "count":
        if values is None:
            return np.int64(nrows)
        if distinct:
            return np.int64(len(np.unique(values)))
        return np.int64(len(values))
    if values is None:
        raise ExecutionError(f"{func}() requires an argument")
    if values.dtype == object and func in ("sum", "avg"):
        # np.sum over object strings would *concatenate* — a silently wrong
        # answer.  This matters since schema widening can legitimately turn
        # a sampled-as-numeric column into strings.
        raise ExecutionError(f"{func}() over a string column is not defined")
    if distinct:
        values = np.unique(values)
    if len(values) == 0:
        # SQL semantics: aggregates over empty input are NULL; the closest
        # honest analogue without a NULL system is NaN for numerics.
        return np.nan
    if func == "sum":
        return values.sum()
    if func == "min":
        return values.min() if values.dtype != object else min(values)
    if func == "max":
        return values.max() if values.dtype != object else max(values)
    if func == "avg":
        return float(values.mean())
    raise ExecutionError(f"unknown aggregate {func!r}")


def group_ids(keys: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray, list[np.ndarray]]:
    """Compute group structure for one or more key columns.

    Returns ``(order, segment_starts, key_values)`` where ``order`` sorts
    the input rows by key, ``segment_starts`` indexes the first row of each
    group within the sorted order, and ``key_values`` holds each key
    column's per-group value (in sorted group order).
    """
    if not keys:
        raise ExecutionError("group_ids needs at least one key")
    n = len(keys[0])
    if n == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), [
            np.empty(0, dtype=k.dtype) for k in keys
        ]
    order = np.lexsort(tuple(reversed(keys)))
    boundary = np.zeros(n, dtype=bool)
    boundary[0] = True
    for key in keys:
        sorted_key = key[order]
        boundary[1:] |= sorted_key[1:] != sorted_key[:-1]
    starts = np.nonzero(boundary)[0]
    key_values = [key[order][starts] for key in keys]
    return order, starts, key_values


def grouped_aggregate(
    func: str,
    values: np.ndarray | None,
    order: np.ndarray,
    starts: np.ndarray,
    distinct: bool = False,
) -> np.ndarray:
    """Aggregate ``values`` per group defined by ``(order, starts)``."""
    ngroups = len(starts)
    n = len(order)
    if ngroups == 0:
        return np.empty(0)
    if func == "count" and values is None:
        sizes = np.diff(np.append(starts, n))
        return sizes.astype(np.int64)
    if values is None:
        raise ExecutionError(f"{func}() requires an argument")
    sorted_vals = values[order]
    if sorted_vals.dtype == object and func in ("sum", "avg"):
        raise ExecutionError(f"{func}() over a string column is not defined")
    if distinct or sorted_vals.dtype == object:
        # Fallback: segment-wise Python reduction (strings / DISTINCT).
        ends = np.append(starts[1:], n)
        out = []
        for s, e in zip(starts, ends):
            seg = sorted_vals[s:e]
            if distinct:
                seg = np.unique(seg)
            if func == "count":
                out.append(len(seg))
            elif func == "sum":
                out.append(seg.sum())
            elif func == "min":
                out.append(min(seg))
            elif func == "max":
                out.append(max(seg))
            elif func == "avg":
                out.append(float(np.mean(seg)))
            else:
                raise ExecutionError(f"unknown aggregate {func!r}")
        return np.array(out)
    if func == "count":
        return np.diff(np.append(starts, n)).astype(np.int64)
    if func == "sum":
        return np.add.reduceat(sorted_vals, starts)
    if func == "min":
        return np.minimum.reduceat(sorted_vals, starts)
    if func == "max":
        return np.maximum.reduceat(sorted_vals, starts)
    if func == "avg":
        sums = np.add.reduceat(sorted_vals.astype(np.float64), starts)
        sizes = np.diff(np.append(starts, n))
        return sums / sizes
    raise ExecutionError(f"unknown aggregate {func!r}")
