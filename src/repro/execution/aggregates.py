"""Global and grouped aggregation over column vectors.

Grouped aggregation is sort-based: group keys are lexicographically sorted
once, segment boundaries are found with one vectorized comparison, and each
aggregate reduces over segments with ``np.add.reduceat`` and friends.  This
keeps per-group Python work at zero, which matters because the paper's
"DBMS wins after loading" story depends on the engine actually being fast
once data is columnar.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError


def global_aggregate(func: str, values: np.ndarray | None, nrows: int, distinct: bool = False):
    """Aggregate a whole column (or row count for ``count(*)``)."""
    if func == "count":
        if values is None:
            return np.int64(nrows)
        if distinct:
            return np.int64(len(np.unique(values)))
        return np.int64(len(values))
    if values is None:
        raise ExecutionError(f"{func}() requires an argument")
    if values.dtype == object and func in ("sum", "avg"):
        # np.sum over object strings would *concatenate* — a silently wrong
        # answer.  This matters since schema widening can legitimately turn
        # a sampled-as-numeric column into strings.
        raise ExecutionError(f"{func}() over a string column is not defined")
    if distinct:
        values = np.unique(values)
    if len(values) == 0:
        # SQL semantics: aggregates over empty input are NULL; the closest
        # honest analogue without a NULL system is NaN for numerics.
        return np.nan
    if func == "sum":
        return values.sum()
    if func == "min":
        return values.min() if values.dtype != object else min(values)
    if func == "max":
        return values.max() if values.dtype != object else max(values)
    if func == "avg":
        return float(values.mean())
    raise ExecutionError(f"unknown aggregate {func!r}")


def group_ids(keys: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray, list[np.ndarray]]:
    """Compute group structure for one or more key columns.

    Returns ``(order, segment_starts, key_values)`` where ``order`` sorts
    the input rows by key, ``segment_starts`` indexes the first row of each
    group within the sorted order, and ``key_values`` holds each key
    column's per-group value (in sorted group order).
    """
    if not keys:
        raise ExecutionError("group_ids needs at least one key")
    n = len(keys[0])
    if n == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), [
            np.empty(0, dtype=k.dtype) for k in keys
        ]
    order = np.lexsort(tuple(reversed(keys)))
    boundary = np.zeros(n, dtype=bool)
    boundary[0] = True
    for key in keys:
        sorted_key = key[order]
        boundary[1:] |= sorted_key[1:] != sorted_key[:-1]
    starts = np.nonzero(boundary)[0]
    key_values = [key[order][starts] for key in keys]
    return order, starts, key_values


def _segmented_aggregate(
    func: str,
    sorted_vals: np.ndarray,
    starts: np.ndarray,
    n: int,
    distinct: bool,
) -> np.ndarray:
    """DISTINCT / string aggregation without per-group Python loops.

    Rows are re-sorted by (group, value) — a stable value sort chased by a
    stable group sort — so every group's values form a contiguous ascending
    run.  Duplicates then collapse with one shifted comparison, and each
    aggregate reduces over run boundaries (``reduceat`` / first / last).
    """
    ngroups = len(starts)
    sizes = np.diff(np.append(starts, n))
    gids = np.repeat(np.arange(ngroups, dtype=np.int64), sizes)
    by_value = np.argsort(sorted_vals, kind="stable")
    by_group = by_value[np.argsort(gids[by_value], kind="stable")]
    vals = sorted_vals[by_group]
    g = gids[by_group]
    if distinct and n > 1:
        same = (g[1:] == g[:-1]) & (vals[1:] == vals[:-1])
        if np.issubdtype(vals.dtype, np.floating):
            # np.unique collapses NaNs within a group; `nan != nan` would
            # keep them all, so match that explicitly.
            same |= (g[1:] == g[:-1]) & np.isnan(vals[1:]) & np.isnan(vals[:-1])
        keep = np.empty(n, dtype=bool)
        keep[0] = True
        keep[1:] = ~same
        vals = vals[keep]
        g = g[keep]
    # Every group is non-empty, so run starts are wherever g steps.
    run_starts = np.nonzero(np.r_[True, g[1:] != g[:-1]])[0]
    counts = np.diff(np.append(run_starts, len(vals)))
    if func == "count":
        return counts.astype(np.int64)
    if func == "sum":
        return np.add.reduceat(vals, run_starts)
    if func == "min":
        return vals[run_starts]
    if func == "max":
        return vals[np.append(run_starts[1:], len(vals)) - 1]
    if func == "avg":
        sums = np.add.reduceat(vals.astype(np.float64), run_starts)
        return sums / counts
    raise ExecutionError(f"unknown aggregate {func!r}")


def grouped_aggregate(
    func: str,
    values: np.ndarray | None,
    order: np.ndarray,
    starts: np.ndarray,
    distinct: bool = False,
) -> np.ndarray:
    """Aggregate ``values`` per group defined by ``(order, starts)``."""
    ngroups = len(starts)
    n = len(order)
    if ngroups == 0:
        return np.empty(0)
    if func == "count" and values is None:
        sizes = np.diff(np.append(starts, n))
        return sizes.astype(np.int64)
    if values is None:
        raise ExecutionError(f"{func}() requires an argument")
    sorted_vals = values[order]
    if sorted_vals.dtype == object and func in ("sum", "avg"):
        raise ExecutionError(f"{func}() over a string column is not defined")
    if distinct or sorted_vals.dtype == object:
        return _segmented_aggregate(func, sorted_vals, starts, n, distinct)
    if func == "count":
        return np.diff(np.append(starts, n)).astype(np.int64)
    if func == "sum":
        return np.add.reduceat(sorted_vals, starts)
    if func == "min":
        return np.minimum.reduceat(sorted_vals, starts)
    if func == "max":
        return np.maximum.reduceat(sorted_vals, starts)
    if func == "avg":
        sums = np.add.reduceat(sorted_vals.astype(np.float64), starts)
        sizes = np.diff(np.append(starts, n))
        return sums / sizes
    raise ExecutionError(f"unknown aggregate {func!r}")
