"""The query executor.

``execute_bound_query`` turns a :class:`~repro.sql.binder.BoundQuery` plus
a column provider into a :class:`~repro.result.QueryResult`.  The column
provider abstraction is the heart of the reproduction's layering: the
executor neither knows nor cares whether base columns came from a full
up-front load, an adaptive column load, a partial load or a split file —
it just asks for vectors.  That is precisely the paper's point that
adaptive loading operators can be "plugged into query plans" beneath an
unchanged kernel.

Pipeline: per-table predicate pushdown -> joins (hash, smaller build side)
-> residual predicates -> grouping/aggregation -> projection -> DISTINCT ->
ORDER BY -> LIMIT.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ExecutionError, UnsupportedSQLError
from repro.execution.aggregates import global_aggregate, group_ids, grouped_aggregate
from repro.execution.expressions import eval_expr, eval_predicate
from repro.execution.joins import hash_join, hash_join_unique
from repro.result import QueryResult
from repro.sql.binder import (
    BAgg,
    BArith,
    BColumn,
    BCompare,
    BExpr,
    BIn,
    BLiteral,
    BLogical,
    BNeg,
    BNot,
    BoundQuery,
)

#: ``get_column(binding, column_name) -> np.ndarray`` over all base rows.
ColumnProvider = Callable[[str, str], np.ndarray]


def execute_bound_query(
    query: BoundQuery,
    get_column: ColumnProvider,
    nrows_of: Callable[[str], int],
) -> QueryResult:
    """Execute ``query`` against base columns supplied by ``get_column``."""
    frame = _Frame(query, get_column, nrows_of)
    frame.apply_local_predicates()
    frame.apply_joins()
    frame.apply_residual_predicates()

    if query.is_aggregate:
        names, columns, order_keys = _project_aggregate(query, frame)
    else:
        names, columns = _project_plain(query, frame)
        order_keys = None

    if query.distinct:
        names, columns = _distinct(names, columns)
        order_keys = None  # row identity changed; keys recompute from outputs

    columns = _order_and_limit(query, frame, names, columns, order_keys)
    return QueryResult(names, columns)


# ---------------------------------------------------------------------------
# Frame: per-binding selection vectors over base columns
# ---------------------------------------------------------------------------


class _Frame:
    """Aligned selection vectors across all bindings of the query."""

    def __init__(
        self,
        query: BoundQuery,
        get_column: ColumnProvider,
        nrows_of: Callable[[str], int],
    ) -> None:
        self.query = query
        self.get_column = get_column
        self.base_rows = {b: nrows_of(b) for b in query.tables}
        # Selection per binding; joined bindings share one length.
        self.selections: dict[str, np.ndarray] = {
            b: np.arange(n, dtype=np.int64) for b, n in self.base_rows.items()
        }
        self.joined: list[str] = [next(iter(query.tables))] if query.tables else []
        self._conjuncts = _flatten_and(query.where) if query.where is not None else []

    # ------------------------------------------------------------ resolve

    def resolve(self, col: BColumn) -> np.ndarray:
        base = self.get_column(col.binding, col.name)
        return base[self.selections[col.binding]]

    def length(self) -> int:
        b = self.joined[0]
        return len(self.selections[b])

    # ---------------------------------------------------------- predicates

    def apply_local_predicates(self) -> None:
        """Push single-table conjuncts below the joins."""
        remaining = []
        for conjunct in self._conjuncts:
            refs = _bindings_of(conjunct)
            if len(refs) == 1:
                binding = next(iter(refs))
                sel = self.selections[binding]
                mask = eval_predicate(
                    conjunct,
                    lambda c: self.get_column(c.binding, c.name)[sel],
                    len(sel),
                )
                self.selections[binding] = sel[mask]
            else:
                remaining.append(conjunct)
        self._conjuncts = remaining

    def apply_residual_predicates(self) -> None:
        if not self._conjuncts:
            return
        n = self.length()
        mask = np.ones(n, dtype=bool)
        for conjunct in self._conjuncts:
            refs = _bindings_of(conjunct)
            missing = refs - set(self.joined)
            if missing:
                raise UnsupportedSQLError(
                    f"predicate references unjoined tables {sorted(missing)}"
                )
            mask &= eval_predicate(conjunct, self.resolve, n)
        for b in self.joined:
            self.selections[b] = self.selections[b][mask]
        self._conjuncts = []

    # --------------------------------------------------------------- joins

    def apply_joins(self) -> None:
        pending = list(self.query.joins)
        if len(self.query.tables) > 1 and not pending:
            raise UnsupportedSQLError("cross joins without ON are not supported")
        guard = 0
        while pending:
            guard += 1
            if guard > 100:  # pragma: no cover - defensive
                raise ExecutionError("join resolution did not converge")
            progressed = False
            for jc in list(pending):
                sides = {jc.left.binding, jc.right.binding}
                known = sides & set(self.joined)
                if not known:
                    continue
                pending.remove(jc)
                progressed = True
                if len(known) == 2:
                    # Both sides already joined: a residual equality filter.
                    self._conjuncts.append(BCompare("=", jc.left, jc.right))
                    continue
                old = jc.left if jc.left.binding in self.joined else jc.right
                new = jc.right if old is jc.left else jc.left
                self._execute_join(old, new)
            if not progressed:
                names = sorted({jc.left.binding for jc in pending} | {jc.right.binding for jc in pending})
                raise UnsupportedSQLError(
                    f"join graph is disconnected around {names}"
                )

    def _execute_join(self, old: BColumn, new: BColumn) -> None:
        left_vals = self.resolve(old)
        right_sel = self.selections[new.binding]
        right_vals = self.get_column(new.binding, new.name)[right_sel]
        left_idx, right_idx = _best_join(left_vals, right_vals)
        for b in self.joined:
            self.selections[b] = self.selections[b][left_idx]
        self.selections[new.binding] = right_sel[right_idx]
        self.joined.append(new.binding)


def _best_join(left_vals: np.ndarray, right_vals: np.ndarray):
    """Pick the vectorized unique-key join when legal, else the hash join."""
    if (
        len(right_vals) > 0
        and right_vals.dtype.kind in "if"
        and len(np.unique(right_vals)) == len(right_vals)
    ):
        return hash_join_unique(left_vals, right_vals)
    return hash_join(left_vals, right_vals)


# ---------------------------------------------------------------------------
# Projection
# ---------------------------------------------------------------------------


def _project_plain(query: BoundQuery, frame: _Frame):
    n = frame.length()
    names = [o.name for o in query.outputs]
    columns = [np.asarray(eval_expr(o.expr, frame.resolve, n)) for o in query.outputs]
    return names, columns


def _collect_aggs(expr: BExpr, out: list[BAgg]) -> None:
    if isinstance(expr, BAgg):
        if expr not in out:
            out.append(expr)
        return
    if isinstance(expr, (BArith, BCompare, BLogical)):
        _collect_aggs(expr.left, out)
        _collect_aggs(expr.right, out)
    elif isinstance(expr, (BNeg, BNot, BIn)):
        _collect_aggs(expr.operand, out)


def _eval_group_expr(
    expr: BExpr,
    agg_values: dict[BAgg, np.ndarray | float],
    key_map: dict[str, np.ndarray],
    n: int,
):
    """Evaluate a group-level expression (outputs, HAVING, ORDER BY keys).

    Leaves are either computed aggregates or group-by key expressions
    (matched structurally via their canonical string form); anything else
    referencing bare columns is a grouping violation.
    """
    if isinstance(expr, BAgg):
        return agg_values[expr]
    if str(expr) in key_map:
        return key_map[str(expr)]
    if isinstance(expr, BLiteral):
        return expr.value
    if isinstance(expr, BArith):
        left = _eval_group_expr(expr.left, agg_values, key_map, n)
        right = _eval_group_expr(expr.right, agg_values, key_map, n)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return np.true_divide(left, right)
        raise ExecutionError(f"unknown arithmetic op {expr.op!r}")
    if isinstance(expr, BNeg):
        return -_eval_group_expr(expr.operand, agg_values, key_map, n)
    if isinstance(expr, BCompare):
        left = _eval_group_expr(expr.left, agg_values, key_map, n)
        right = _eval_group_expr(expr.right, agg_values, key_map, n)
        return {
            "=": lambda: left == right,
            "!=": lambda: left != right,
            "<": lambda: left < right,
            "<=": lambda: left <= right,
            ">": lambda: left > right,
            ">=": lambda: left >= right,
        }[expr.op]()
    if isinstance(expr, BLogical):
        left = _group_mask(
            _eval_group_expr(expr.left, agg_values, key_map, n), n
        )
        right = _group_mask(
            _eval_group_expr(expr.right, agg_values, key_map, n), n
        )
        return (left & right) if expr.op == "and" else (left | right)
    if isinstance(expr, BNot):
        return ~_group_mask(
            _eval_group_expr(expr.operand, agg_values, key_map, n), n
        )
    if isinstance(expr, BIn):
        operand = _eval_group_expr(expr.operand, agg_values, key_map, n)
        operand = np.asarray(operand) if not np.isscalar(operand) else np.full(n, operand)
        mask = np.zeros(n, dtype=bool)
        for v in expr.values:
            mask |= operand == v
        return ~mask if expr.negated else mask
    raise ExecutionError(
        f"expression {expr} mixes aggregates with non-grouped columns"
    )


def _group_mask(value, n: int) -> np.ndarray:
    if np.isscalar(value):
        return np.full(n, bool(value))
    arr = np.asarray(value)
    return arr if arr.dtype == bool else arr.astype(bool)


def _project_aggregate(query: BoundQuery, frame: _Frame):
    n = frame.length()
    aggs: list[BAgg] = []
    for out in query.outputs:
        _collect_aggs(out.expr, aggs)
    for expr, _ in query.order_by:
        _collect_aggs(expr, aggs)
    if query.having is not None:
        _collect_aggs(query.having, aggs)

    if query.group_by:
        key_arrays = [
            np.asarray(eval_expr(k, frame.resolve, n)) for k in query.group_by
        ]
        order, starts, key_values = group_ids(key_arrays)
        key_map = {str(k): kv for k, kv in zip(query.group_by, key_values)}
        agg_values: dict[BAgg, np.ndarray] = {}
        for agg in aggs:
            arg = (
                None
                if agg.arg is None
                else np.asarray(eval_expr(agg.arg, frame.resolve, n))
            )
            agg_values[agg] = grouped_aggregate(
                agg.func, arg, order, starts, agg.distinct
            )
        ngroups = len(starts)
        if query.having is not None:
            mask = _group_mask(
                _eval_group_expr(query.having, agg_values, key_map, ngroups),
                ngroups,
            )
            agg_values = {k: np.asarray(v)[mask] for k, v in agg_values.items()}
            key_map = {k: v[mask] for k, v in key_map.items()}
            ngroups = int(mask.sum())
        names, columns = [], []
        for out in query.outputs:
            names.append(out.name)
            value = _eval_group_expr(out.expr, agg_values, key_map, ngroups)
            columns.append(
                np.asarray(value)
                if not np.isscalar(value)
                else np.full(ngroups, value)
            )
        order_keys = [
            np.asarray(_eval_group_expr(expr, agg_values, key_map, ngroups))
            for expr, _ in query.order_by
        ]
        return names, columns, order_keys

    # Global aggregation: one output row.
    agg_values = {}
    for agg in aggs:
        arg = (
            None if agg.arg is None else np.asarray(eval_expr(agg.arg, frame.resolve, n))
        )
        agg_values[agg] = global_aggregate(agg.func, arg, n, agg.distinct)
    names, columns = [], []
    for out in query.outputs:
        names.append(out.name)
        value = _eval_group_expr(out.expr, agg_values, {}, 1)
        columns.append(np.asarray([value]))
    return names, columns, None


# ---------------------------------------------------------------------------
# DISTINCT / ORDER BY / LIMIT
# ---------------------------------------------------------------------------


def _distinct(names: list[str], columns: list[np.ndarray]):
    if not columns or len(columns[0]) == 0:
        return names, columns
    order = np.lexsort(tuple(reversed(columns)))
    keep_sorted = np.zeros(len(order), dtype=bool)
    keep_sorted[0] = True
    any_diff = np.zeros(len(order) - 1, dtype=bool)
    for col in columns:
        s = col[order]
        any_diff |= s[1:] != s[:-1]
    keep_sorted[1:] = any_diff
    kept = order[keep_sorted]
    kept.sort()  # preserve first-occurrence order
    return names, [c[kept] for c in columns]


def _order_and_limit(
    query: BoundQuery,
    frame: _Frame,
    names: list[str],
    columns: list[np.ndarray],
    order_keys: list[np.ndarray] | None = None,
) -> list[np.ndarray]:
    if query.order_by and columns and len(columns[0]) > 1:
        by_name = {str(o.expr): col for o, col in zip(query.outputs, columns)}
        keys = []
        for i in reversed(range(len(query.order_by))):
            expr, desc = query.order_by[i]
            if order_keys is not None:
                key = order_keys[i]
            elif str(expr) in by_name:
                key = by_name[str(expr)]
            elif not query.is_aggregate:
                key = np.asarray(eval_expr(expr, frame.resolve, frame.length()))
            else:
                raise UnsupportedSQLError(
                    f"ORDER BY {expr} must appear in the SELECT list of an aggregate query"
                )
            if desc:
                if key.dtype.kind in "ifu":
                    key = -key.astype(np.float64)
                else:
                    raise UnsupportedSQLError("ORDER BY DESC on strings is not supported")
            keys.append(key)
        order = np.lexsort(tuple(keys))
        columns = [c[order] for c in columns]
    if query.limit is not None:
        columns = [c[: query.limit] for c in columns]
    return columns


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def _flatten_and(expr: BExpr) -> list[BExpr]:
    if isinstance(expr, BLogical) and expr.op == "and":
        return _flatten_and(expr.left) + _flatten_and(expr.right)
    return [expr]


def _bindings_of(expr: BExpr) -> set[str]:
    out: set[str] = set()
    _walk_bindings(expr, out)
    return out


def _walk_bindings(expr: BExpr, out: set[str]) -> None:
    if isinstance(expr, BColumn):
        out.add(expr.binding)
    elif isinstance(expr, (BArith, BCompare, BLogical)):
        _walk_bindings(expr.left, out)
        _walk_bindings(expr.right, out)
    elif isinstance(expr, (BNeg, BNot, BIn)):
        _walk_bindings(expr.operand, out)
    elif isinstance(expr, BAgg) and expr.arg is not None:
        _walk_bindings(expr.arg, out)
