"""Concurrency primitives for the serving layer.

The engine's concurrency story (replacing the paper section 5.4 "simple
solution" of one global lock) is built from two small primitives:

* :class:`RWLock` — a classic reader–writer lock, one per attached table.
  Queries that can be answered from the adaptive store share the read
  side and proceed fully in parallel; loading (which mutates the table's
  store, positional map and partitions) takes the write side.  Writers
  are preferred once waiting, so a stream of warm readers cannot starve
  a cold load forever.
* :class:`SingleFlight` — keyed flight coalescing (shared scans).  When
  N threads miss the store for the same cold (table, column-set), the
  first becomes the *leader* and runs the one adaptive load; the rest
  wait on the flight and then re-probe the store, reusing the freshly
  loaded fragments instead of re-scanning the raw file.

Both are deliberately dependency-free and engine-agnostic so the storage
layer (``TableEntry`` carries the per-table :class:`RWLock`) can use them
without importing ``repro.core``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Hashable, Iterator


class RWLock:
    """A reader–writer lock with writer preference.

    Any number of readers may hold the lock together; a writer holds it
    exclusively.  A waiting writer blocks *new* readers (writer
    preference), so loads cannot be starved by a stream of store hits.
    The lock is not reentrant and not upgradable: release the read side
    before acquiring the write side.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition(threading.Lock())
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    # ------------------------------------------------------------- readers

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            if self._readers <= 0:
                # Validate BEFORE decrementing: corrupting the count to -1
                # would turn a loud caller bug into a permanently blocked
                # write side.
                raise RuntimeError("release_read without acquire_read")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # ------------------------------------------------------------- writers

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            if not self._writer:
                raise RuntimeError("release_write without acquire_write")
            self._writer = False
            self._cond.notify_all()

    # ------------------------------------------------------ context managers

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class SingleFlight:
    """Keyed flight coalescing: one leader works, followers wait.

    :meth:`lead_or_wait` returns ``True`` when the caller is the leader
    for ``key`` — it must do the work and then call :meth:`done` (use a
    ``try/finally``).  It returns ``False`` when another thread was
    already leading a flight for the same key: the call blocks until
    that flight finishes, after which the caller should re-check shared
    state (the leader's work is usually enough) instead of repeating
    the work.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[Hashable, threading.Event] = {}

    def lead_or_wait(self, key: Hashable) -> bool:
        with self._lock:
            event = self._flights.get(key)
            if event is None:
                self._flights[key] = threading.Event()
                return True
        event.wait()
        return False

    def done(self, key: Hashable) -> None:
        """End the caller's flight for ``key``, waking every follower."""
        with self._lock:
            event = self._flights.pop(key, None)
        if event is None:
            raise RuntimeError(f"SingleFlight.done({key!r}) without a flight")
        event.set()

    def in_flight(self) -> int:
        """Number of flights currently running (introspection for tests)."""
        with self._lock:
            return len(self._flights)
