"""Query templates and sequences of the paper's evaluation.

Q1 (Figure 1, section 2)::

    select sum(a1), min(a4), max(a3), avg(a2)
    from R
    where a1 > v1 and a1 < v2 and a2 > v3 and a2 < v4

Q2 (Figures 3 and 4, sections 3.2 / 4.2)::

    select sum(ai), avg(aj)
    from R
    where ai > v1 and ai < v2 and aj > v3 and aj < v4

Queries are "always 10% selective".  With independent uniform unique-int
columns, a conjunction of two range predicates of per-column selectivity
``sqrt(s)`` is ``s``-selective overall, so range widths are chosen as
``sqrt(selectivity) * nrows``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RangeQuery:
    """One instantiated conjunctive range query."""

    sql: str
    columns: tuple[str, ...]
    bounds: tuple[tuple[int, int], ...]

    def __str__(self) -> str:
        return self.sql


def _pick_range(rng: np.random.Generator, nrows: int, fraction: float) -> tuple[int, int]:
    """Exclusive-bounds (v_lo, v_hi) selecting ~``fraction`` of 0..nrows-1.

    The predicate template is strict (``a > lo and a < hi``), so the
    number of qualifying values is ``hi - lo - 1``.
    """
    width = max(1, round(fraction * nrows))
    lo = int(rng.integers(-1, nrows - width))
    return lo, lo + width + 1


def make_q1(
    nrows: int,
    selectivity: float = 0.10,
    rng: np.random.Generator | None = None,
    table: str = "r",
) -> RangeQuery:
    """Instantiate the paper's Q1 on a 4-column table."""
    rng = rng or np.random.default_rng(0)
    per_column = math.sqrt(selectivity)
    v1, v2 = _pick_range(rng, nrows, per_column)
    v3, v4 = _pick_range(rng, nrows, per_column)
    sql = (
        f"select sum(a1), min(a4), max(a3), avg(a2) from {table} "
        f"where a1 > {v1} and a1 < {v2} and a2 > {v3} and a2 < {v4}"
    )
    return RangeQuery(sql, ("a1", "a2", "a3", "a4"), ((v1, v2), (v3, v4)))


def make_q2(
    nrows: int,
    col_a: str,
    col_b: str,
    selectivity: float = 0.10,
    rng: np.random.Generator | None = None,
    table: str = "r",
) -> RangeQuery:
    """Instantiate the paper's Q2 on an arbitrary column pair."""
    rng = rng or np.random.default_rng(0)
    per_column = math.sqrt(selectivity)
    v1, v2 = _pick_range(rng, nrows, per_column)
    v3, v4 = _pick_range(rng, nrows, per_column)
    sql = (
        f"select sum({col_a}), avg({col_b}) from {table} "
        f"where {col_a} > {v1} and {col_a} < {v2} "
        f"and {col_b} > {v3} and {col_b} < {v4}"
    )
    return RangeQuery(sql, (col_a, col_b), ((v1, v2), (v3, v4)))


def figure3_sequence(
    nrows: int,
    selectivity: float = 0.10,
    seed: int = 42,
    table: str = "r",
) -> list[RangeQuery]:
    """The 20-query sequence of Figure 3 on a 4-column table.

    "Here we first run 10 random queries that use the first two attributes
    of the file and then we run another 10 that use the last two."
    """
    rng = np.random.default_rng(seed)
    first = [make_q2(nrows, "a1", "a2", selectivity, rng, table) for _ in range(10)]
    second = [make_q2(nrows, "a3", "a4", selectivity, rng, table) for _ in range(10)]
    return first + second


def exploration_sequence(
    nrows: int,
    col_a: str = "a1",
    col_b: str = "a2",
    depth: int = 4,
    regions: int = 3,
    seed: int = 57,
    table: str = "r",
) -> list[RangeQuery]:
    """An exploratory "zoom" workload (paper section 3.1.2).

    "The user 'walks' through the data space, periodically zooming in and
    out of specific data areas."  For each of ``regions`` starting areas,
    the sequence emits one wide query and then ``depth - 1`` successive
    zoom-ins, each range strictly nested in the previous one.  Nested
    ranges are exactly what the Partial Loads V2 table of contents can
    serve from the store, so this workload separates the caching policies
    far more sharply than independent random queries do.
    """
    if depth < 1:
        raise ValueError("depth must be at least 1")
    rng = np.random.default_rng(seed)
    queries: list[RangeQuery] = []
    for _ in range(regions):
        width = max(4 * depth, nrows // 3)
        lo_a = int(rng.integers(0, max(1, nrows - width)))
        lo_b = int(rng.integers(0, max(1, nrows - width)))
        hi_a, hi_b = lo_a + width, lo_b + width
        for _ in range(depth):
            sql = (
                f"select sum({col_a}), avg({col_b}) from {table} "
                f"where {col_a} > {lo_a} and {col_a} < {hi_a} "
                f"and {col_b} > {lo_b} and {col_b} < {hi_b}"
            )
            queries.append(
                RangeQuery(sql, (col_a, col_b), ((lo_a, hi_a), (lo_b, hi_b)))
            )
            # Zoom: shrink both ranges toward their centres.
            shrink_a = max(1, (hi_a - lo_a) // 4)
            shrink_b = max(1, (hi_b - lo_b) // 4)
            lo_a, hi_a = lo_a + shrink_a, hi_a - shrink_a
            lo_b, hi_b = lo_b + shrink_b, hi_b - shrink_b
            if hi_a - lo_a < 2 or hi_b - lo_b < 2:
                break
    return queries


def figure4_sequence(
    nrows: int,
    ncols: int = 12,
    selectivity: float = 0.10,
    seed: int = 43,
    table: str = "r",
) -> list[RangeQuery]:
    """The 12-query sequence of Figure 4 on a 12-column table.

    "Every 2 queries we use 2 different attributes of the table until all
    attributes have been used ... the second query in each run is simply a
    rerun of the first ... the very first query asks for the two
    attributes that appear last in the flat file."
    """
    if ncols % 2 != 0:
        raise ValueError("figure 4 needs an even column count")
    rng = np.random.default_rng(seed)
    queries: list[RangeQuery] = []
    # Pairs from the back of the file towards the front.
    for hi in range(ncols, 0, -2):
        col_a, col_b = f"a{hi - 1}", f"a{hi}"
        q = make_q2(nrows, col_a, col_b, selectivity, rng, table)
        queries.append(q)
        queries.append(q)  # exact rerun: best case for caching policies
    return queries
