"""Workload substrate: datasets and query generators for the evaluation.

The paper's experiments all run on tables of uniformly distributed unique
integers queried by conjunctive range templates (Q1/Q2).  This package
generates those datasets deterministically (seeded) and produces the exact
query sequences behind each figure.
"""

from repro.workload.generator import (
    TableSpec,
    generate_columns,
    generate_join_pair,
    materialize_csv,
)
from repro.workload.queries import (
    RangeQuery,
    exploration_sequence,
    figure3_sequence,
    figure4_sequence,
    make_q1,
    make_q2,
)

__all__ = [
    "RangeQuery",
    "TableSpec",
    "exploration_sequence",
    "figure3_sequence",
    "figure4_sequence",
    "generate_columns",
    "generate_join_pair",
    "make_q1",
    "make_q2",
    "materialize_csv",
]
