"""Dataset generation for the paper's experiments.

"The data set consists of a four-attribute table, which has as values
unique integers randomly distributed in the columns." (section 2)

Every column of a generated table is an independent random permutation of
``0..nrows-1`` — unique integers, uniform, zero correlation across columns
— which makes query selectivity exactly computable from range width (the
property the query generator relies on).  Generation is seeded and
deterministic so benches and tests are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.flatfile.writer import write_csv


@dataclass(frozen=True)
class TableSpec:
    """Shape of one generated table."""

    nrows: int
    ncols: int
    seed: int = 7

    def __post_init__(self) -> None:
        if self.nrows <= 0 or self.ncols <= 0:
            raise ValueError("nrows and ncols must be positive")

    @property
    def column_names(self) -> list[str]:
        return [f"a{i + 1}" for i in range(self.ncols)]


def generate_columns(spec: TableSpec) -> list[np.ndarray]:
    """Generate the columns: each an independent permutation of 0..n-1."""
    rng = np.random.default_rng(spec.seed)
    return [rng.permutation(spec.nrows).astype(np.int64) for _ in range(spec.ncols)]


def materialize_csv(spec: TableSpec, path: Path | str) -> Path:
    """Generate and write the table as a headerless CSV (paper format)."""
    return write_csv(Path(path), generate_columns(spec))


def generate_join_pair(
    nrows: int, payload_cols: int = 3, seed: int = 11
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Two tables with a perfect 1-to-1 join on their first column.

    Reproduces the section 2.2 join setup: both tables contain the same
    key set (``0..nrows-1``) in different random orders, plus independent
    integer payload columns for the aggregations.
    """
    rng = np.random.default_rng(seed)
    left = [rng.permutation(nrows).astype(np.int64)]
    right = [rng.permutation(nrows).astype(np.int64)]
    for _ in range(payload_cols):
        left.append(rng.permutation(nrows).astype(np.int64))
        right.append(rng.permutation(nrows).astype(np.int64))
    return left, right


def materialize_join_pair(
    nrows: int,
    left_path: Path | str,
    right_path: Path | str,
    payload_cols: int = 3,
    seed: int = 11,
) -> tuple[Path, Path]:
    """Write the join pair as two CSV files."""
    left, right = generate_join_pair(nrows, payload_cols, seed)
    return (
        write_csv(Path(left_path), left),
        write_csv(Path(right_path), right),
    )
