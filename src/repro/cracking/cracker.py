"""Cracker columns: incremental, query-driven physical reorganization.

A :class:`CrackerColumn` keeps a *copy* of a base column together with the
permutation that maps cracked positions back to original row ids.  Every
range predicate "cracks" the copy: the pieces containing the range bounds
are partitioned in-place around those bounds and the cut points are
remembered in the cracker index.  Subsequent queries binary-search the
index and only touch (at most) the two edge pieces — an incremental
quicksort paid for by the queries that benefit from it.

Cut points come in two flavours to support open and closed bounds:

* ``(value, LT)``: everything left of the cut is ``< value``;
* ``(value, LE)``: everything left of the cut is ``<= value``.

Sorted by ``(value, flavour)`` (LT before LE), cut positions are monotone,
and each crack only permutes rows *within* one piece, so previously
recorded cuts remain valid forever — the classic cracking invariant.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ExecutionError
from repro.ranges import ValueInterval

_LT = 0  # left side strictly less than the pivot
_LE = 1  # left side less than or equal to the pivot


@dataclass
class CrackStats:
    """How much physical reorganization the queries have caused."""

    cracks: int = 0
    rows_moved: int = 0
    pieces: int = 1


@dataclass
class CrackerColumn:
    """One cracked column plus its cracker index."""

    values: np.ndarray
    #: ``None`` only before ``__post_init__`` narrows it to the identity
    #: permutation; every method thereafter sees a real array.
    rowids: np.ndarray | None = None
    cuts: list[tuple[tuple, int]] = field(default_factory=list)
    stats: CrackStats = field(default_factory=CrackStats)

    def __post_init__(self) -> None:
        self.values = np.array(self.values, copy=True)
        if self.values.dtype.kind not in "ifu":
            raise ExecutionError("cracking supports numeric columns only")
        if self.rowids is None:
            self.rowids = np.arange(len(self.values), dtype=np.int64)
        else:
            self.rowids = np.array(self.rowids, copy=True)
        if len(self.rowids) != len(self.values):
            raise ExecutionError("rowids and values must have equal length")

    def __len__(self) -> int:
        return len(self.values)

    # ------------------------------------------------------------- pieces

    def _piece_bounds(self, key: tuple) -> tuple[int, int]:
        """Start/end of the piece a cut with ``key`` would fall into."""
        keys = [k for k, _ in self.cuts]
        i = bisect.bisect_left(keys, key)
        start = self.cuts[i - 1][1] if i > 0 else 0
        end = self.cuts[i][1] if i < len(self.cuts) else len(self.values)
        return start, end

    def _find_cut(self, key: tuple) -> int | None:
        keys = [k for k, _ in self.cuts]
        i = bisect.bisect_left(keys, key)
        if i < len(self.cuts) and self.cuts[i][0] == key:
            return self.cuts[i][1]
        return None

    def crack(self, value, inclusive: bool) -> int:
        """Partition around ``value``; returns the cut position.

        ``inclusive=False`` produces an LT cut (left side ``< value``),
        ``inclusive=True`` an LE cut (left side ``<= value``).  Idempotent:
        re-cracking an existing cut touches nothing.
        """
        if isinstance(value, (float, np.floating)) and math.isnan(value):
            # NaN compares False against everything: the "cut" would be a
            # degenerate all-right partition whose meaning depends on
            # comparison direction.  Refuse cleanly instead.
            raise ExecutionError("cannot crack on a NaN pivot")
        key = (value, _LE if inclusive else _LT)
        existing = self._find_cut(key)
        if existing is not None:
            return existing
        start, end = self._piece_bounds(key)
        piece = self.values[start:end]
        mask = (piece <= value) if inclusive else (piece < value)
        left = np.nonzero(mask)[0]
        right = np.nonzero(~mask)[0]
        pos = start + len(left)
        if 0 < len(left) < len(piece):
            order = np.concatenate((left, right))
            self.values[start:end] = piece[order]
            self.rowids[start:end] = self.rowids[start:end][order]
            self.stats.rows_moved += len(piece)
        self.stats.cracks += 1
        keys = [k for k, _ in self.cuts]
        self.cuts.insert(bisect.bisect_left(keys, key), (key, pos))
        self.stats.pieces = len(self.cuts) + 1
        return pos

    # ------------------------------------------------------------- selects

    def select_interval(self, interval: ValueInterval) -> tuple[int, int]:
        """Crack as needed; return the ``[start, end)`` qualifying slice."""
        start = 0
        if interval.lo is not None:
            # strict lo (> lo): left side must hold values <= lo  -> LE cut
            start = self.crack(interval.lo, inclusive=interval.lo_open)
        end = len(self.values)
        if interval.hi is not None:
            # strict hi (< hi): qualifying values are < hi          -> LT cut
            end = self.crack(interval.hi, inclusive=not interval.hi_open)
        return start, max(start, end)

    def select_rowids(self, interval: ValueInterval) -> np.ndarray:
        s, e = self.select_interval(interval)
        return self.rowids[s:e]

    def select_values(self, interval: ValueInterval) -> np.ndarray:
        s, e = self.select_interval(interval)
        return self.values[s:e]

    # ---------------------------------------------------------- invariants

    def check_invariants(self) -> None:
        """Verify the cracking invariant (used by property tests)."""
        prev_pos = 0
        prev_key = None
        for key, pos in self.cuts:
            if prev_key is not None and not (prev_key <= key):
                raise AssertionError("cracker index keys out of order")
            if pos < prev_pos:
                raise AssertionError("cracker cut positions out of order")
            value, flavour = key
            left, right = self.values[:pos], self.values[pos:]
            if flavour == _LT:
                if left.size and left.max() >= value:
                    raise AssertionError(f"LT cut at {value} violated on the left")
                if right.size and right.min() < value:
                    raise AssertionError(f"LT cut at {value} violated on the right")
            else:
                if left.size and left.max() > value:
                    raise AssertionError(f"LE cut at {value} violated on the left")
                if right.size and right.min() <= value:
                    raise AssertionError(f"LE cut at {value} violated on the right")
            prev_pos, prev_key = pos, key
