"""Query execution over cracked columns.

Mirrors how MonetDB's cracking answers the paper's Q1/Q2 template: the
selection on the first predicate column goes through that column's cracker
(physically reorganizing it as a side effect), the surviving row ids are
then used to gather the remaining predicate/aggregate columns ("tuple
reconstruction"), and residual predicates are applied as vectorized masks.

Each predicate column gets its own cracker, so repeated workloads converge:
after a few queries the qualifying slice is found by binary search plus at
most two edge-piece partitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cracking.cracker import CrackerColumn
from repro.errors import ExecutionError
from repro.execution.aggregates import global_aggregate
from repro.ranges import Condition
from repro.result import QueryResult


@dataclass
class CrackingExecutor:
    """Adaptive-index query processor over an in-memory columnar table."""

    columns: dict[str, np.ndarray]
    crackers: dict[str, CrackerColumn] = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = {len(v) for v in self.columns.values()}
        if len(lengths) > 1:
            raise ExecutionError("ragged table passed to CrackingExecutor")
        self.columns = {k.lower(): np.asarray(v) for k, v in self.columns.items()}

    def _cracker(self, col: str) -> CrackerColumn:
        key = col.lower()
        if key not in self.crackers:
            self.crackers[key] = CrackerColumn(self.columns[key])
        return self.crackers[key]

    # ------------------------------------------------------------ queries

    def select_rowids(self, condition: Condition) -> np.ndarray:
        """Row ids satisfying a conjunctive range condition.

        The most selective strategy the executor knows: crack on the first
        condition column, gather the rest.
        """
        items = condition.items
        if not items:
            if not self.columns:
                # A zero-column table has no rows to enumerate.
                return np.empty(0, dtype=np.int64)
            return np.arange(len(next(iter(self.columns.values()))), dtype=np.int64)
        first_col, first_interval = items[0]
        rowids = self._cracker(first_col).select_rowids(first_interval)
        for col, interval in items[1:]:
            values = self.columns[col.lower()][rowids]
            rowids = rowids[interval.mask(values)]
        return rowids

    def aggregate(
        self, condition: Condition, aggregates: list[tuple[str, str]]
    ) -> QueryResult:
        """Evaluate ``[(func, column), ...]`` over rows matching ``condition``.

        ``("count", "*")`` counts qualifying rows.
        """
        rowids = self.select_rowids(condition)
        names, out = [], []
        for func, col in aggregates:
            names.append(f"{func}({col})")
            if col == "*":
                value = global_aggregate("count", None, len(rowids))
            else:
                values = self.columns[col.lower()][rowids]
                value = global_aggregate(func, values, len(rowids))
            out.append(np.asarray([value]))
        return QueryResult(names, out)
