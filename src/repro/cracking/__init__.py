"""Database cracking — the adaptive index behind the "Index DB" curve.

The paper's Figure 1 includes an "Index DB" series: MonetDB with database
cracking [Idreos, Kersten, Manegold, CIDR 2007], where each range predicate
physically reorganizes the column as a side effect of query processing so
that later overlapping queries touch ever-smaller pieces.  File cracking
(section 4.1.5) is explicitly framed as the same mentality applied to flat
files, so having the original algorithm in the repository both reproduces
the Figure 1 curve and documents the analogy.
"""

from repro.cracking.cracker import CrackerColumn
from repro.cracking.executor import CrackingExecutor

__all__ = ["CrackerColumn", "CrackingExecutor"]
