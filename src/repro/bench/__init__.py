"""Bench harness: per-query timing of policy sequences + paper-style output."""

from repro.bench.harness import Series, run_sequence, time_callable
from repro.bench.report import format_series_table, print_series_table

__all__ = [
    "Series",
    "format_series_table",
    "print_series_table",
    "run_sequence",
    "time_callable",
]
