"""Paper-style series tables.

The benches print the same rows/series the paper's figures plot, aligned
for terminal reading and optionally as Markdown for EXPERIMENTS.md.  Times
are printed in milliseconds: the reproduction's datasets are scaled down
(see DESIGN.md), so absolute magnitudes are not comparable to the paper's
seconds — shapes and ratios are what the tables are for.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import Series


def format_series_table(
    title: str,
    series: Sequence[Series],
    x_label: str = "query",
    markdown: bool = False,
) -> str:
    """Render per-query times of several series side by side."""
    if not series:
        return f"{title}\n(no data)"
    npoints = max(len(s.times_s) for s in series)
    header = [x_label] + [s.label for s in series]
    rows = []
    for i in range(npoints):
        row = [str(i + 1)]
        for s in series:
            if i < len(s.times_s):
                mark = "*" if i < len(s.from_store) and s.from_store[i] else ""
                row.append(f"{s.times_s[i] * 1e3:.2f}{mark}")
            else:
                row.append("-")
        rows.append(row)
    totals = ["total"] + [f"{s.total_s * 1e3:.2f}" for s in series]
    rows.append(totals)
    if markdown:
        lines = [f"### {title}", ""]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "|".join("---" for _ in header) + "|")
        for row in rows:
            lines.append("| " + " | ".join(row) + " |")
        lines.append("")
        lines.append("(*) served from the adaptive store; times in ms")
        return "\n".join(lines)
    widths = [
        max(len(header[c]), max(len(r[c]) for r in rows)) for c in range(len(header))
    ]
    out = [title, ""]
    out.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    out.append("  ".join("-" * w for w in widths))
    for row in rows:
        out.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    out.append("(*) served from the adaptive store; times in ms")
    return "\n".join(out)


def print_series_table(
    title: str, series: Sequence[Series], x_label: str = "query"
) -> None:
    print()
    print(format_series_table(title, series, x_label=x_label))


def format_ratio_line(name: str, numerator: float, denominator: float) -> str:
    """One-line ratio summary, NaN-safe."""
    if denominator <= 0:
        return f"{name}: n/a"
    return f"{name}: {numerator / denominator:.2f}x"
