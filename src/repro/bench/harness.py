"""Timing harness for query sequences.

The paper's figures plot *per-query* response time over a query sequence
(not a steady-state mean), so the central helper here is
:func:`run_sequence`: run a list of SQL strings against a fresh engine and
record each query's wall-clock time plus the engine's own work counters.
``pytest-benchmark`` wraps whole sequences in the bench files; within a
sequence this harness provides the per-query resolution the figures need.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence


@dataclass
class Series:
    """One curve of a figure: a label and per-query measurements."""

    label: str
    times_s: list[float] = field(default_factory=list)
    bytes_read: list[int] = field(default_factory=list)
    values_parsed: list[int] = field(default_factory=list)
    from_store: list[bool] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return sum(self.times_s)

    @property
    def first_query_s(self) -> float:
        return self.times_s[0] if self.times_s else float("nan")

    def steady_state_s(self, skip: int = 1) -> float:
        """Mean time of queries after the first ``skip`` (warm behaviour)."""
        tail = self.times_s[skip:]
        return sum(tail) / len(tail) if tail else float("nan")


def run_sequence(label: str, engine, sqls: Sequence[str]) -> Series:
    """Run ``sqls`` in order on ``engine``; record per-query measurements.

    ``engine`` needs ``query(sql)``; if it also exposes ``stats`` (the
    library's engines do), per-query byte/parse counters are captured too.
    """
    series = Series(label)
    for sql in sqls:
        start = time.perf_counter()
        engine.query(sql)
        series.times_s.append(time.perf_counter() - start)
        stats = getattr(engine, "stats", None)
        if stats is not None and stats.queries:
            q = stats.queries[-1]
            series.bytes_read.append(q.file_bytes_read)
            series.values_parsed.append(q.parse.values_parsed)
            series.from_store.append(q.served_from_store)
        else:
            series.bytes_read.append(0)
            series.values_parsed.append(0)
            series.from_store.append(False)
    return series


def time_callable(fn: Callable[[], object]) -> float:
    """Wall-clock one call (used for load-cost style measurements)."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
