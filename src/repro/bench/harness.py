"""Timing harness for query sequences, plus the bench-script CLI contract.

The paper's figures plot *per-query* response time over a query sequence
(not a steady-state mean), so the central helper here is
:func:`run_sequence`: run a list of SQL strings against a fresh engine and
record each query's wall-clock time plus the engine's own work counters.
``pytest-benchmark`` wraps whole sequences in the bench files; within a
sequence this harness provides the per-query resolution the figures need.

The second half of this module is the shared command-line contract of the
scripts under ``benchmarks/``: every script builds its parser with
:func:`bench_arg_parser` (so ``--quick``, ``--json``, ``--rows`` and
``--repeats`` mean the same thing everywhere, instead of each script
hardcoding iteration counts), sizes itself with :func:`iterations` /
:func:`dataset_rows`, and reports through :class:`BenchReport`, whose
JSON payload is what the CI ``bench-regression`` job diffs against the
committed ``BENCH_BASELINE.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

#: ``--quick`` divides a bench's full iteration count by this much.
QUICK_DIVISOR = 5


@dataclass
class Series:
    """One curve of a figure: a label and per-query measurements."""

    label: str
    times_s: list[float] = field(default_factory=list)
    bytes_read: list[int] = field(default_factory=list)
    values_parsed: list[int] = field(default_factory=list)
    from_store: list[bool] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return sum(self.times_s)

    @property
    def first_query_s(self) -> float:
        return self.times_s[0] if self.times_s else float("nan")

    def steady_state_s(self, skip: int = 1) -> float:
        """Mean time of queries after the first ``skip`` (warm behaviour)."""
        tail = self.times_s[skip:]
        return sum(tail) / len(tail) if tail else float("nan")


def run_sequence(label: str, engine, sqls: Sequence[str]) -> Series:
    """Run ``sqls`` in order on ``engine``; record per-query measurements.

    ``engine`` needs ``query(sql)``; if it also exposes ``stats`` (the
    library's engines do), per-query byte/parse counters are captured too.
    """
    series = Series(label)
    for sql in sqls:
        start = time.perf_counter()
        engine.query(sql)
        series.times_s.append(time.perf_counter() - start)
        stats = getattr(engine, "stats", None)
        if stats is not None and stats.queries:
            q = stats.queries[-1]
            series.bytes_read.append(q.file_bytes_read)
            series.values_parsed.append(q.parse.values_parsed)
            series.from_store.append(q.served_from_store)
        else:
            series.bytes_read.append(0)
            series.values_parsed.append(0)
            series.from_store.append(False)
    return series


def time_callable(fn: Callable[[], object]) -> float:
    """Wall-clock one call (used for load-cost style measurements)."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


# ---------------------------------------------------------------------------
# the shared bench-script CLI
# ---------------------------------------------------------------------------


def bench_arg_parser(description: str) -> argparse.ArgumentParser:
    """The argument parser every ``benchmarks/*.py`` script shares.

    ``--quick`` shrinks datasets and iteration counts to CI scale,
    ``--json PATH`` emits the machine-readable result the regression gate
    consumes, and ``--rows`` / ``--repeats`` override the script's
    defaults explicitly (they win over ``--quick``).
    """
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI mode: small dataset, few iterations",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="write machine-readable results to PATH",
    )
    parser.add_argument(
        "--rows",
        type=int,
        default=None,
        metavar="N",
        help="override the dataset row count",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        metavar="N",
        help="override the iteration count",
    )
    return parser


def iterations(args: argparse.Namespace, full: int) -> int:
    """Effective iteration count: ``--repeats`` > ``--quick`` > full."""
    if args.repeats is not None:
        return max(1, args.repeats)
    if args.quick:
        return max(1, full // QUICK_DIVISOR)
    return full


def dataset_rows(args: argparse.Namespace, full: int, quick: int) -> int:
    """Effective dataset rows: ``--rows`` > ``--quick`` > full."""
    if args.rows is not None:
        return max(1, args.rows)
    return quick if args.quick else full


@dataclass
class BenchReport:
    """One bench script's result, printable and JSON-serializable.

    ``metrics`` holds the numbers the regression gate compares (all of
    them throughput-shaped: higher is better).  ``info`` holds context
    that is reported but never gated (sizes, iteration counts, flags).
    """

    bench: str
    metrics: dict[str, float]
    info: dict[str, object] = field(default_factory=dict)

    def payload(self) -> dict:
        return {
            "bench": self.bench,
            "metrics": self.metrics,
            "info": dict(self.info),
            "env": {
                "cpu_count": os.cpu_count() or 1,
                "python": platform.python_version(),
            },
        }

    def emit(self, json_path: Path | None, stream=None) -> None:
        """Print a human summary; write the JSON payload when asked."""
        stream = stream if stream is not None else sys.stdout
        print(f"[{self.bench}]", file=stream)
        for key, value in self.metrics.items():
            print(f"  {key:>24} = {value:.4g}", file=stream)
        for key, value in self.info.items():
            print(f"  {key:>24} : {value}", file=stream)
        if json_path is not None:
            json_path.write_text(json.dumps(self.payload(), indent=2) + "\n")
            print(f"  wrote {json_path}", file=stream)
