"""The top-level facade: ``repro.connect(...)``.

"Here are my data files, here are my queries" as one call::

    import repro

    with repro.connect("data.csv") as conn:          # file becomes table `t`
        result = conn.execute("select sum(a1) from t where a1 > 10")
        for page in result.pages(1000):
            ...

:func:`connect` is the supported entry point for applications: it wraps
the adaptive engine in a :class:`Connection` (context-managed, with a
small stable surface), and the *same* surface is what
:class:`repro.client.RemoteConnection` implements over HTTP — passing
``url=`` instead of file paths returns a connection to a running
``repro serve`` process, so code written against :class:`Connection`
works unchanged against a remote engine.

Direct :class:`~repro.core.engine.NoDBEngine` use remains available (and
:attr:`Connection.engine` exposes the wrapped engine for policy
switching, explain plans and counters), but examples and applications
should go through :func:`connect`.
"""

from __future__ import annotations

from pathlib import Path

from repro.config import EngineConfig
from repro.core.engine import NoDBEngine
from repro.result import QueryResult


def table_names_for(count: int) -> list[str]:
    """The auto-attach naming rule shared by the CLI, facade and server:
    one file is table ``t``; several are ``t1..tN``."""
    if count == 1:
        return ["t"]
    return [f"t{i + 1}" for i in range(count)]


class Connection:
    """A context-managed handle on one adaptive engine.

    The stable public query surface: :meth:`attach` / :meth:`detach` /
    :meth:`tables` / :meth:`schema` / :meth:`execute` / :meth:`stats` /
    :meth:`close`.  :class:`repro.client.RemoteConnection` mirrors it
    over the wire.
    """

    def __init__(self, engine: NoDBEngine) -> None:
        self._engine = engine
        self._closed = False

    # ------------------------------------------------------------ catalog

    def attach(
        self,
        name: str,
        path: Path | str,
        delimiter: str = ",",
        format: str | None = None,
        fixed_widths: tuple[int, ...] | None = None,
    ) -> None:
        """Link a raw file as a queryable table.  No data is read.

        ``path`` may also be a glob pattern (``logs/part-*.csv``) or a
        directory: the table is then backed by every matching part file,
        each with its own fingerprint and learned state, and new part
        files are picked up automatically on the next query.
        """
        self._engine.attach(
            name, path, delimiter=delimiter, format=format, fixed_widths=fixed_widths
        )

    def detach(self, name: str) -> None:
        self._engine.detach(name)

    def tables(self) -> list[str]:
        return self._engine.tables()

    def schema(self, name: str) -> list[tuple[str, str]]:
        """``(column, dtype)`` pairs of an attached table (lazy inference)."""
        return self._engine.schema_of(name)

    # ----------------------------------------------------------- querying

    def execute(self, sql: str) -> QueryResult:
        """Parse, bind, adaptively load and execute one SELECT."""
        return self._engine.query(sql)

    def stats(self) -> dict:
        """JSON-safe point-in-time engine statistics snapshot."""
        return self._engine.stats.snapshot()

    # ----------------------------------------------------------- plumbing

    @property
    def engine(self) -> NoDBEngine:
        """The wrapped engine, for advanced use (policies, explain, ...)."""
        return self._engine

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._engine.close()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"<repro.Connection {state} tables={self._engine.tables()}>"


def connect(
    *paths: Path | str,
    url: str | None = None,
    config: EngineConfig | None = None,
    **config_kwargs,
):
    """Open a connection to an adaptive engine — local or remote.

    ``connect("a.csv")`` builds a local engine and attaches the file as
    table ``t`` (several files become ``t1..tN``); keyword arguments are
    forwarded to :class:`EngineConfig` (or pass a prebuilt ``config``).
    ``connect(url="http://host:port")`` instead returns a
    :class:`repro.client.RemoteConnection` to a running ``repro serve``
    process — same surface, same result type.
    """
    if url is not None:
        if paths or config is not None or config_kwargs:
            raise ValueError(
                "connect(url=...) takes no files or engine config; attach "
                "tables through the returned connection"
            )
        from repro.client import RemoteConnection

        return RemoteConnection(url)
    if config is not None and config_kwargs:
        raise ValueError("pass either a prebuilt config or config keywords, not both")
    engine = NoDBEngine(config or EngineConfig(**config_kwargs))
    conn = Connection(engine)
    try:
        for name, path in zip(table_names_for(len(paths)), paths):
            conn.attach(name, path)
    except BaseException:
        conn.close()
        raise
    return conn
