"""Deterministic fault injection: seeded plans over named fault points.

The resilience story of this engine ("learned state is a cache; losing
it must never lose correctness") is only trustworthy if the failure
paths actually run.  This module provides the harness that runs them:

* a :class:`FaultPlan` — a seeded, thread-safe schedule of failures over
  **named fault points** (:data:`FAULT_POINTS`) compiled into the real
  production code paths.  When a plan decides a point fires, the code at
  that point raises :class:`InjectedFault` (an ``OSError`` subclass), so
  the *real* error handlers — retry loops, degraded modes, invalidation
  — execute, not test monkeypatches;
* :func:`retry_io` — the bounded retry-with-backoff helper the flat-file
  layer wraps its raw reads in;
* a ``REPRO_FAULTS`` environment hook (:meth:`FaultPlan.from_env`) so a
  whole served process — CLI, subprocess tests, staging — can run under
  a fault plan without code changes.

Fault points
------------

==================  ======================================================
point               where it fires
==================  ======================================================
flatfile.read       any raw read of a :class:`~repro.flatfile.files.FlatFile`
flatfile.short_read a raw read silently returns truncated bytes
persist.write       a persistent-store :meth:`save` (the writer thread)
persist.read        a persistent-store :meth:`load` (restart-warm restore)
pool.worker         the parallel-scan process pool dies mid-pass
results.write       writing a result-resource file to disk
results.read        reloading a spilled result resource from disk
results.unlink      deleting a result-resource file during GC
server.request      an unexpected exception inside the HTTP dispatch
==================  ======================================================

Plans are deterministic: the same ``(specs, seed)`` fires the same
faults in the same order per point, regardless of wall clock — which is
what lets the chaos differential oracle replay a failing schedule.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Mapping, TypeVar

#: Every fault point compiled into the production code paths.
FAULT_POINTS = frozenset(
    {
        "flatfile.read",
        "flatfile.short_read",
        "persist.write",
        "persist.read",
        "pool.worker",
        "results.write",
        "results.read",
        "results.unlink",
        "server.request",
    }
)

#: Environment variables read by :meth:`FaultPlan.from_env`.
ENV_FAULTS = "REPRO_FAULTS"
ENV_SEED = "REPRO_FAULTS_SEED"


class InjectedFault(OSError):
    """The error a firing fault point raises.

    An ``OSError`` subclass so every *real* handler of disk trouble —
    ``except OSError`` retry loops, taxonomy wrapping, degraded modes —
    treats it exactly like the genuine article, while tests can still
    tell injected failures apart from real ones by type.
    """

    def __init__(self, point: str, ordinal: int) -> None:
        super().__init__(f"injected fault at {point!r} (#{ordinal})")
        self.point = point
        self.ordinal = ordinal


@dataclass(frozen=True)
class FaultSpec:
    """How one fault point misbehaves.

    ``times=None`` makes the fault *persistent* (every eligible check
    fires); an integer bounds it to that many firings (*transient*).
    ``probability`` gates each eligible check through the plan's seeded
    RNG; ``after`` skips the first N checks of the point entirely, so a
    fault can be scheduled mid-workload.
    """

    times: int | None = 1
    probability: float = 1.0
    after: int = 0

    def __post_init__(self) -> None:
        if self.times is not None and self.times < 0:
            raise ValueError(f"times must be >= 0 or None, got {self.times}")
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")


class FaultPlan:
    """A seeded, thread-safe schedule of failures over named points."""

    def __init__(
        self, specs: Mapping[str, FaultSpec] | None = None, seed: int = 0
    ) -> None:
        specs = dict(specs or {})
        unknown = set(specs) - FAULT_POINTS
        if unknown:
            raise ValueError(
                f"unknown fault point(s) {sorted(unknown)!r}; "
                f"expected a subset of {sorted(FAULT_POINTS)}"
            )
        self.specs = specs
        self.seed = seed
        self._lock = threading.Lock()
        self._checks: dict[str, int] = {}
        self._fired: dict[str, int] = {}
        # One RNG per point, seeded by (plan seed, point name): a point's
        # firing sequence never depends on how often *other* points are
        # checked, so schedules stay reproducible across code changes.
        self._rngs = {
            point: random.Random(f"{seed}:{point}") for point in specs
        }

    # ------------------------------------------------------------- firing

    def _due(self, point: str) -> int | None:
        """Ordinal of a firing at ``point``, or None (lock held inside)."""
        spec = self.specs.get(point)
        if spec is None:
            return None
        with self._lock:
            n = self._checks.get(point, 0)
            self._checks[point] = n + 1
            if n < spec.after:
                return None
            fired = self._fired.get(point, 0)
            if spec.times is not None and fired >= spec.times:
                return None
            if spec.probability < 1.0 and (
                self._rngs[point].random() >= spec.probability
            ):
                return None
            self._fired[point] = fired + 1
            return fired + 1

    def check(self, point: str) -> None:
        """Raise :class:`InjectedFault` when ``point`` is due to fire."""
        if point not in FAULT_POINTS:
            raise ValueError(f"unknown fault point {point!r}")
        ordinal = self._due(point)
        if ordinal is not None:
            raise InjectedFault(point, ordinal)

    def should_fire(self, point: str) -> bool:
        """Non-raising probe, for faults that corrupt rather than fail."""
        if point not in FAULT_POINTS:
            raise ValueError(f"unknown fault point {point!r}")
        return self._due(point) is not None

    def truncate(self, point: str, data: bytes) -> bytes:
        """Return ``data`` cut short when ``point`` fires (a short read)."""
        if len(data) > 0 and self.should_fire(point):
            return data[: len(data) - max(1, len(data) // 2)]
        return data

    # --------------------------------------------------------- inspection

    def fired(self) -> dict[str, int]:
        """How many times each point has fired so far."""
        with self._lock:
            return dict(self._fired)

    def snapshot(self) -> dict:
        """JSON-safe view: per-point checks and firings."""
        with self._lock:
            return {
                "seed": self.seed,
                "points": {
                    point: {
                        "checks": self._checks.get(point, 0),
                        "fired": self._fired.get(point, 0),
                    }
                    for point in sorted(self.specs)
                },
            }

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{p}×{'∞' if s.times is None else s.times}"
            for p, s in sorted(self.specs.items())
        )
        return f"<FaultPlan seed={self.seed} [{parts}]>"

    # ------------------------------------------------------------ parsing

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from a compact spec string.

        The grammar is one comma-separated clause per point::

            point[=times[:probability[:after]]]

        where ``times`` is an integer or ``*`` / ``inf`` for a
        persistent fault.  Examples::

            flatfile.read=2
            persist.write=*,flatfile.read=3:0.5
            server.request=1::4        (fire once, after 4 requests)
        """
        specs: dict[str, FaultSpec] = {}
        for clause in text.split(","):
            clause = clause.strip()
            if not clause:
                continue
            point, _, rest = clause.partition("=")
            point = point.strip()
            times: int | None = 1
            probability = 1.0
            after = 0
            if rest:
                fields = rest.split(":")
                if len(fields) > 3:
                    raise ValueError(f"malformed fault clause {clause!r}")
                raw_times = fields[0].strip()
                if raw_times in ("*", "inf", ""):
                    times = None if raw_times else 1
                else:
                    times = int(raw_times)
                if len(fields) > 1 and fields[1].strip():
                    probability = float(fields[1])
                if len(fields) > 2 and fields[2].strip():
                    after = int(fields[2])
            specs[point] = FaultSpec(
                times=times, probability=probability, after=after
            )
        return cls(specs, seed=seed)

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) -> "FaultPlan | None":
        """The plan described by ``REPRO_FAULTS``, or None when unset.

        ``REPRO_FAULTS_SEED`` (default 0) seeds the plan, so a chaos run
        in a subprocess — a served engine under test, a CI job — is
        reproducible from its environment alone.
        """
        environ = environ if environ is not None else os.environ
        text = environ.get(ENV_FAULTS, "").strip()
        if not text:
            return None
        return cls.parse(text, seed=int(environ.get(ENV_SEED, "0")))


# ---------------------------------------------------------------------------
# bounded retry
# ---------------------------------------------------------------------------

T = TypeVar("T")


def retry_io(
    fn: Callable[[], T],
    *,
    attempts: int = 3,
    backoff_s: float = 0.005,
    max_backoff_s: float = 0.1,
    on_retry: Callable[[int, OSError], None] | None = None,
) -> T:
    """Call ``fn``, retrying transient ``OSError`` with bounded backoff.

    The delay doubles per attempt, capped at ``max_backoff_s``; the last
    failure re-raises unchanged (callers wrap it into the taxonomy).
    ``on_retry(attempt, exc)`` is called before each sleep — the
    flat-file layer uses it to count ``io_retries``.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    delay = backoff_s
    for attempt in range(1, attempts + 1):
        try:
            return fn()
        except OSError as exc:
            if attempt >= attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            time.sleep(min(delay, max_backoff_s))
            delay *= 2
    raise AssertionError("unreachable")  # pragma: no cover


__all__ = [
    "ENV_FAULTS",
    "ENV_SEED",
    "FAULT_POINTS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "retry_io",
]
