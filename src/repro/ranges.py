"""Value intervals and conjunctive conditions.

The paper's workloads are conjunctions of range predicates
(``a1 > v1 AND a1 < v2 AND ...``).  Three subsystems need to reason about
such predicates symbolically rather than just evaluate them:

* the **partial-loading table of contents** asks "is the range this query
  wants a subset of a range I already loaded?" (section 3.1.2);
* the **cracker index** partitions columns at predicate endpoints;
* the **adaptive load operators** push predicates into tokenization.

:class:`ValueInterval` is the shared vocabulary: a possibly-unbounded,
possibly-open interval over a column's values, with vectorized mask
evaluation and subset tests.  :class:`Condition` is a normalized
conjunction of per-column intervals with an implication test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np


@dataclass(frozen=True)
class ValueInterval:
    """An interval of column values; ``None`` bounds mean unbounded.

    ``lo_open``/``hi_open`` select strict (<, >) versus inclusive
    (<=, >=) endpoints.  An equality predicate ``a = v`` is the closed
    degenerate interval ``[v, v]``.
    """

    lo: float | int | str | None = None
    hi: float | int | str | None = None
    lo_open: bool = True
    hi_open: bool = True

    @classmethod
    def unbounded(cls) -> "ValueInterval":
        return cls(None, None)

    @classmethod
    def equal(cls, value) -> "ValueInterval":
        return cls(value, value, lo_open=False, hi_open=False)

    # ----------------------------------------------------------- predicates

    def is_unbounded(self) -> bool:
        return self.lo is None and self.hi is None

    def is_empty(self) -> bool:
        if self.lo is None or self.hi is None:
            return False
        if self.lo > self.hi:
            return True
        return self.lo == self.hi and (self.lo_open or self.hi_open)

    def contains_value(self, v) -> bool:
        if self.lo is not None:
            if self.lo_open:
                if not v > self.lo:
                    return False
            elif not v >= self.lo:
                return False
        if self.hi is not None:
            if self.hi_open:
                if not v < self.hi:
                    return False
            elif not v <= self.hi:
                return False
        return True

    def contains_interval(self, other: "ValueInterval") -> bool:
        """True when every value in ``other`` lies in ``self``."""
        if other.is_empty():
            return True
        if self.lo is not None:
            if other.lo is None:
                return False
            if other.lo < self.lo:
                return False
            if other.lo == self.lo and self.lo_open and not other.lo_open:
                return False
        if self.hi is not None:
            if other.hi is None:
                return False
            if other.hi > self.hi:
                return False
            if other.hi == self.hi and self.hi_open and not other.hi_open:
                return False
        return True

    def intersect(self, other: "ValueInterval") -> "ValueInterval":
        """Narrowest interval contained in both (used to merge conjuncts)."""
        lo, lo_open = self.lo, self.lo_open
        if other.lo is not None and (lo is None or other.lo > lo):
            lo, lo_open = other.lo, other.lo_open
        elif other.lo is not None and other.lo == lo:
            lo_open = lo_open or other.lo_open
        hi, hi_open = self.hi, self.hi_open
        if other.hi is not None and (hi is None or other.hi < hi):
            hi, hi_open = other.hi, other.hi_open
        elif other.hi is not None and other.hi == hi:
            hi_open = hi_open or other.hi_open
        return ValueInterval(lo, hi, lo_open, hi_open)

    # ----------------------------------------------------------- evaluation

    def mask(self, values: np.ndarray) -> np.ndarray:
        """Vectorized membership over a NumPy array."""
        out = np.ones(len(values), dtype=bool)
        if self.lo is not None:
            out &= (values > self.lo) if self.lo_open else (values >= self.lo)
        if self.hi is not None:
            out &= (values < self.hi) if self.hi_open else (values <= self.hi)
        return out

    def raw_predicate(self, parse):
        """Build a text-level predicate for tokenizer pushdown.

        ``parse`` converts the raw field text to a comparable value; the
        returned callable is what :func:`repro.flatfile.tokenizer.
        tokenize_columns` applies while tokenizing.
        """

        def check(text: str) -> bool:
            return self.contains_value(parse(text))

        return check

    def __str__(self) -> str:  # pragma: no cover - debug aid
        left = "(" if self.lo_open else "["
        right = ")" if self.hi_open else "]"
        lo = "-inf" if self.lo is None else repr(self.lo)
        hi = "+inf" if self.hi is None else repr(self.hi)
        return f"{left}{lo}, {hi}{right}"


class Condition:
    """A normalized conjunction of per-column :class:`ValueInterval`\\ s.

    Immutable; columns are stored lower-cased and sorted so two equal
    conditions compare equal.  The empty condition is "always true".
    """

    __slots__ = ("_items",)

    def __init__(self, items: Mapping[str, ValueInterval] | Iterable[tuple[str, ValueInterval]] = ()):
        merged: dict[str, ValueInterval] = {}
        pairs = items.items() if isinstance(items, Mapping) else items
        for col, interval in pairs:
            key = col.lower()
            if key in merged:
                merged[key] = merged[key].intersect(interval)
            else:
                merged[key] = interval
        self._items: tuple[tuple[str, ValueInterval], ...] = tuple(
            sorted(merged.items())
        )

    @property
    def items(self) -> tuple[tuple[str, ValueInterval], ...]:
        return self._items

    def columns(self) -> list[str]:
        return [c for c, _ in self._items]

    def interval_for(self, col: str) -> ValueInterval:
        key = col.lower()
        for c, interval in self._items:
            if c == key:
                return interval
        return ValueInterval.unbounded()

    def is_trivial(self) -> bool:
        return not self._items

    def implies(self, other: "Condition") -> bool:
        """True when every row satisfying ``self`` satisfies ``other``.

        Sound but intentionally incomplete: it checks per-column interval
        containment, which is exactly the reasoning the table of contents
        needs for conjunctive range workloads.
        """
        return all(
            other_interval.contains_interval(self.interval_for(col))
            for col, other_interval in other._items
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Condition):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return hash(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if not self._items:
            return "Condition(TRUE)"
        body = " AND ".join(f"{c} in {i}" for c, i in self._items)
        return f"Condition({body})"
