"""Recursive-descent parser for the supported SQL subset.

Grammar (EBNF, keywords case-insensitive)::

    select    := SELECT [DISTINCT] items FROM table_ref join* [WHERE expr]
                 [GROUP BY expr_list] [ORDER BY order_list] [LIMIT int]
    items     := '*' | item (',' item)*
    item      := expr [[AS] ident]
    join      := [INNER] JOIN table_ref ON expr
    table_ref := ident [[AS] ident]
    expr      := or_expr
    or_expr   := and_expr (OR and_expr)*
    and_expr  := not_expr (AND not_expr)*
    not_expr  := NOT not_expr | comparison
    comparison:= additive [cmp_op additive
                 | [NOT] BETWEEN additive AND additive
                 | [NOT] IN '(' literal (',' literal)* ')']
    additive  := multiplicative (('+'|'-') multiplicative)*
    multiplicative := unary (('*'|'/') unary)*
    unary     := '-' unary | primary
    primary   := literal | func_call | column_ref | '(' expr ')' | '*'

Operator precedence therefore matches standard SQL.  The parser performs
no name resolution; that is the binder's job.
"""

from __future__ import annotations

from repro.errors import SQLSyntaxError, UnsupportedSQLError
from repro.sql.ast_nodes import (
    BinaryOp,
    ColumnRef,
    FuncCall,
    InList,
    JoinClause,
    Literal,
    OrderItem,
    SelectItem,
    SelectStmt,
    Star,
    TableRef,
    UnaryOp,
)
from repro.sql.lexer import Token, tokenize_sql

_CMP_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class _Parser:
    """Stateful cursor over the token stream."""

    def __init__(self, tokens: list[Token], sql: str) -> None:
        self.tokens = tokens
        self.sql = sql
        self.pos = 0

    # ------------------------------------------------------------- cursor

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> Token:
        tok = self.peek()
        if not tok.is_keyword(word):
            raise SQLSyntaxError(
                f"expected {word.upper()}, found {tok.text or 'end of input'!r}",
                tok.position,
            )
        return self.advance()

    def accept_op(self, op: str) -> bool:
        if self.peek().is_op(op):
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> Token:
        tok = self.peek()
        if not tok.is_op(op):
            raise SQLSyntaxError(
                f"expected {op!r}, found {tok.text or 'end of input'!r}", tok.position
            )
        return self.advance()

    def expect_ident(self) -> Token:
        tok = self.peek()
        if tok.kind != "ident":
            raise SQLSyntaxError(
                f"expected identifier, found {tok.text or 'end of input'!r}",
                tok.position,
            )
        return self.advance()

    # ------------------------------------------------------------ grammar

    def parse_select(self) -> SelectStmt:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        items = self._select_items()
        table = None
        joins: list[JoinClause] = []
        if self.accept_keyword("from"):
            table = self._table_ref()
            while True:
                if self.accept_keyword("inner"):
                    self.expect_keyword("join")
                elif not self.accept_keyword("join"):
                    break
                join_table = self._table_ref()
                self.expect_keyword("on")
                on = self.parse_expr()
                if not isinstance(on, BinaryOp) or on.op != "=":
                    raise UnsupportedSQLError(
                        "only inner equi-joins (ON a = b) are supported"
                    )
                joins.append(JoinClause(join_table, on))
        where = None
        if self.accept_keyword("where"):
            where = self.parse_expr()
        group_by: list = []
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by.append(self.parse_expr())
            while self.accept_op(","):
                group_by.append(self.parse_expr())
        having = None
        if self.accept_keyword("having"):
            if not group_by:
                raise UnsupportedSQLError("HAVING requires GROUP BY")
            having = self.parse_expr()
        order_by: list[OrderItem] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by.append(self._order_item())
            while self.accept_op(","):
                order_by.append(self._order_item())
        limit = None
        if self.accept_keyword("limit"):
            tok = self.peek()
            if tok.kind != "number" or "." in tok.text:
                raise SQLSyntaxError("LIMIT expects an integer", tok.position)
            self.advance()
            limit = int(tok.text)
        tail = self.peek()
        if tail.kind != "eof":
            raise SQLSyntaxError(
                f"unexpected trailing input {tail.text!r}", tail.position
            )
        return SelectStmt(
            items=items,
            table=table,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _select_items(self) -> list[SelectItem]:
        items = [self._select_item()]
        while self.accept_op(","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        if self.peek().is_op("*"):
            self.advance()
            return SelectItem(Star())
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident().text
        elif self.peek().kind == "ident":
            alias = self.advance().text
        return SelectItem(expr, alias)

    def _table_ref(self) -> TableRef:
        name = self.expect_ident().text
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident().text
        elif self.peek().kind == "ident":
            alias = self.advance().text
        return TableRef(name, alias)

    def _order_item(self) -> OrderItem:
        expr = self.parse_expr()
        descending = False
        if self.accept_keyword("desc"):
            descending = True
        else:
            self.accept_keyword("asc")
        return OrderItem(expr, descending)

    # --------------------------------------------------------- expressions

    def parse_expr(self):
        return self._or_expr()

    def _or_expr(self):
        left = self._and_expr()
        while self.accept_keyword("or"):
            left = BinaryOp("or", left, self._and_expr())
        return left

    def _and_expr(self):
        left = self._not_expr()
        while self.accept_keyword("and"):
            left = BinaryOp("and", left, self._not_expr())
        return left

    def _not_expr(self):
        if self.accept_keyword("not"):
            return UnaryOp("not", self._not_expr())
        return self._comparison()

    def _comparison(self):
        left = self._additive()
        tok = self.peek()
        if tok.kind == "op" and tok.text in _CMP_OPS:
            self.advance()
            op = "!=" if tok.text == "<>" else tok.text
            return BinaryOp(op, left, self._additive())
        negated = False
        if tok.is_keyword("not"):
            nxt = self.tokens[self.pos + 1]
            if nxt.is_keyword("between") or nxt.is_keyword("in"):
                self.advance()
                negated = True
                tok = self.peek()
        if tok.is_keyword("between"):
            self.advance()
            lo = self._additive()
            self.expect_keyword("and")
            hi = self._additive()
            between = BinaryOp("and", BinaryOp(">=", left, lo), BinaryOp("<=", left, hi))
            return UnaryOp("not", between) if negated else between
        if tok.is_keyword("in"):
            self.advance()
            self.expect_op("(")
            values = [self._additive()]
            while self.accept_op(","):
                values.append(self._additive())
            self.expect_op(")")
            return InList(left, tuple(values), negated=negated)
        if negated:  # pragma: no cover - defensive
            raise SQLSyntaxError("dangling NOT", tok.position)
        return left

    def _additive(self):
        left = self._multiplicative()
        while True:
            if self.accept_op("+"):
                left = BinaryOp("+", left, self._multiplicative())
            elif self.accept_op("-"):
                left = BinaryOp("-", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self):
        left = self._unary()
        while True:
            if self.accept_op("*"):
                left = BinaryOp("*", left, self._unary())
            elif self.accept_op("/"):
                left = BinaryOp("/", left, self._unary())
            else:
                return left

    def _unary(self):
        if self.accept_op("-"):
            operand = self._unary()
            if isinstance(operand, Literal) and isinstance(operand.value, (int, float)):
                return Literal(-operand.value)
            return UnaryOp("-", operand)
        return self._primary()

    def _primary(self):
        tok = self.peek()
        if tok.kind == "number":
            self.advance()
            text = tok.text
            if "." in text or "e" in text or "E" in text:
                return Literal(float(text))
            return Literal(int(text))
        if tok.kind == "string":
            self.advance()
            return Literal(tok.text)
        if tok.is_op("("):
            self.advance()
            inner = self.parse_expr()
            self.expect_op(")")
            return inner
        if tok.is_op("*"):
            self.advance()
            return Star()
        if tok.kind == "ident":
            name = self.advance().text
            if self.peek().is_op("("):
                self.advance()
                distinct = self.accept_keyword("distinct")
                args: list = []
                if not self.peek().is_op(")"):
                    args.append(self.parse_expr())
                    while self.accept_op(","):
                        args.append(self.parse_expr())
                self.expect_op(")")
                return FuncCall(name.lower(), tuple(args), distinct=distinct)
            if self.accept_op("."):
                col = self.expect_ident().text
                return ColumnRef(col, table=name)
            return ColumnRef(name)
        raise SQLSyntaxError(
            f"unexpected token {tok.text or 'end of input'!r}", tok.position
        )


def parse_sql(sql: str) -> SelectStmt:
    """Parse one SELECT statement; raises :class:`SQLSyntaxError` on junk."""
    tokens = tokenize_sql(sql)
    if tokens[0].kind == "eof":
        raise SQLSyntaxError("empty query", 0)
    return _Parser(tokens, sql).parse_select()
