"""Typed AST for the supported SQL subset.

All nodes are plain dataclasses; the parser builds them, the binder walks
them.  The subset covers the paper's workloads (conjunctive range scans
with aggregates, Q1/Q2) plus what an exploring user reasonably needs:
projections, arithmetic, GROUP BY, ORDER BY, LIMIT, inner equi-joins,
BETWEEN, IN-lists and DISTINCT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

Expr = Union["ColumnRef", "Literal", "BinaryOp", "UnaryOp", "FuncCall", "InList", "Star"]

#: Aggregate function names recognized by the binder.
AGGREGATES = {"sum", "min", "max", "avg", "count"}


@dataclass(frozen=True)
class ColumnRef:
    """A (possibly qualified) column reference: ``a1`` or ``r.a1``."""

    name: str
    table: str | None = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Literal:
    """A constant: int, float or string."""

    value: int | float | str

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class BinaryOp:
    """Binary operator application (arithmetic, comparison, and/or)."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp:
    """Unary operator: ``-expr`` or ``NOT expr``."""

    op: str
    operand: Expr

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass(frozen=True)
class FuncCall:
    """Function application; aggregates use this node too."""

    name: str
    args: tuple[Expr, ...]
    distinct: bool = False

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        d = "distinct " if self.distinct else ""
        return f"{self.name}({d}{inner})"


@dataclass(frozen=True)
class InList:
    """``expr IN (v1, v2, ...)`` with literal members."""

    operand: Expr
    values: tuple[Expr, ...]
    negated: bool = False

    def __str__(self) -> str:
        vals = ", ".join(str(v) for v in self.values)
        neg = " not" if self.negated else ""
        return f"({self.operand}{neg} in ({vals}))"


@dataclass(frozen=True)
class Star:
    """``*`` (as a select item or inside ``count(*)``)."""

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class SelectItem:
    """One output expression with its optional alias."""

    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class TableRef:
    """``FROM`` / ``JOIN`` table with optional alias."""

    name: str
    alias: str | None = None

    @property
    def binding_name(self) -> str:
        return (self.alias or self.name).lower()


@dataclass(frozen=True)
class JoinClause:
    """``JOIN table ON left = right`` (inner equi-join)."""

    table: TableRef
    on: BinaryOp


@dataclass(frozen=True)
class OrderItem:
    """One ``ORDER BY`` key."""

    expr: Expr
    descending: bool = False


@dataclass
class SelectStmt:
    """A full SELECT statement."""

    items: list[SelectItem]
    table: TableRef | None = None
    joins: list[JoinClause] = field(default_factory=list)
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    having: Expr | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    distinct: bool = False
