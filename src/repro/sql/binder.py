"""Name resolution and semantic analysis.

The binder turns a parsed :class:`~repro.sql.ast_nodes.SelectStmt` into a
:class:`BoundQuery`:

* every column reference is resolved against the attached tables' schemas
  (qualified or not; unqualified names must be unambiguous);
* aggregate usage is validated (no nesting, non-aggregated outputs must be
  GROUP BY keys);
* the WHERE clause is analysed into the per-table **conjunctive range
  conditions** (:class:`repro.ranges.Condition`) that drive adaptive
  loading, predicate pushdown and the coverage table of contents — plus a
  residual flag for anything beyond conjunctive ranges;
* the per-table set of **needed columns** is computed, which is the
  "how much do we load" input of section 3.1.2.

Bound expressions are their own small node hierarchy (``B*`` classes), so
the executor never sees unresolved names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import BindError, UnsupportedSQLError
from repro.flatfile.schema import DataType, TableSchema
from repro.ranges import Condition, ValueInterval
from repro.sql.ast_nodes import (
    AGGREGATES,
    BinaryOp,
    ColumnRef,
    FuncCall,
    InList,
    JoinClause,
    Literal,
    OrderItem,
    SelectItem,
    SelectStmt,
    Star,
    TableRef,
    UnaryOp,
)

# --------------------------------------------------------------------------
# Bound expression nodes
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class BColumn:
    """Resolved column: which table binding, which column, what type."""

    binding: str
    name: str
    dtype: DataType

    def __str__(self) -> str:
        return f"{self.binding}.{self.name}"


@dataclass(frozen=True)
class BLiteral:
    value: int | float | str

    @property
    def dtype(self) -> DataType:
        if isinstance(self.value, bool):  # pragma: no cover - no bool literals
            raise BindError("boolean literals are not supported")
        if isinstance(self.value, int):
            return DataType.INT64
        if isinstance(self.value, float):
            return DataType.FLOAT64
        return DataType.STRING

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class BArith:
    """Numeric arithmetic; result type is int unless any side is float."""

    op: str
    left: "BExpr"
    right: "BExpr"
    dtype: DataType = DataType.FLOAT64

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class BNeg:
    operand: "BExpr"

    @property
    def dtype(self) -> DataType:
        return self.operand.dtype

    def __str__(self) -> str:
        return f"(-{self.operand})"


@dataclass(frozen=True)
class BCompare:
    op: str  # '=', '!=', '<', '<=', '>', '>='
    left: "BExpr"
    right: "BExpr"

    dtype = DataType.INT64  # boolean masks surface as int64 when projected

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class BLogical:
    op: str  # 'and' | 'or'
    left: "BExpr"
    right: "BExpr"

    dtype = DataType.INT64

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class BNot:
    operand: "BExpr"

    dtype = DataType.INT64

    def __str__(self) -> str:
        return f"(not {self.operand})"


@dataclass(frozen=True)
class BIn:
    operand: "BExpr"
    values: tuple
    negated: bool = False

    dtype = DataType.INT64

    def __str__(self) -> str:
        return f"({self.operand} in {self.values})"


@dataclass(frozen=True)
class BAgg:
    """Aggregate call: ``func`` over ``arg`` (None means ``count(*)``)."""

    func: str
    arg: "BExpr | None"
    distinct: bool = False

    @property
    def dtype(self) -> DataType:
        if self.func == "count":
            return DataType.INT64
        if self.func == "avg":
            return DataType.FLOAT64
        if self.arg is None:  # pragma: no cover - guarded by binder
            raise BindError(f"{self.func} requires an argument")
        return self.arg.dtype

    def __str__(self) -> str:
        inner = "*" if self.arg is None else str(self.arg)
        return f"{self.func}({inner})"


BExpr = BColumn | BLiteral | BArith | BNeg | BCompare | BLogical | BNot | BIn | BAgg

# --------------------------------------------------------------------------
# Bound query
# --------------------------------------------------------------------------


@dataclass
class BoundOutput:
    """One output column of the query."""

    name: str
    expr: BExpr


@dataclass
class BoundJoin:
    """Inner equi-join between two resolved columns."""

    left: BColumn
    right: BColumn


@dataclass
class BoundQuery:
    """Fully resolved query, ready for planning/execution."""

    tables: dict[str, str]  # binding -> catalog table name
    schemas: dict[str, TableSchema]  # binding -> schema
    outputs: list[BoundOutput]
    joins: list[BoundJoin] = field(default_factory=list)
    where: BExpr | None = None
    group_by: list[BExpr] = field(default_factory=list)
    having: BExpr | None = None
    order_by: list[tuple[BExpr, bool]] = field(default_factory=list)
    limit: int | None = None
    distinct: bool = False
    is_aggregate: bool = False
    # Adaptive-loading inputs:
    needed_columns: dict[str, list[str]] = field(default_factory=dict)
    conditions: dict[str, Condition] = field(default_factory=dict)
    has_residual_predicate: bool = False

    def single_binding(self) -> str:
        if len(self.tables) != 1:
            raise BindError("expected a single-table query")
        return next(iter(self.tables))


# --------------------------------------------------------------------------
# Binder implementation
# --------------------------------------------------------------------------


class _Binder:
    def __init__(self, stmt: SelectStmt, schemas_by_table: Mapping[str, TableSchema]):
        self.stmt = stmt
        self.catalog = {k.lower(): v for k, v in schemas_by_table.items()}
        self.bindings: dict[str, tuple[str, TableSchema]] = {}
        self.needed: dict[str, set[str]] = {}

    # --------------------------------------------------------------- scope

    def _add_table(self, ref: TableRef) -> None:
        key = ref.name.lower()
        if key not in self.catalog:
            raise BindError(
                f"unknown table {ref.name!r}; attached tables: {sorted(self.catalog)}"
            )
        binding = ref.binding_name
        if binding in self.bindings:
            raise BindError(f"duplicate table binding {binding!r}")
        self.bindings[binding] = (ref.name, self.catalog[key])
        self.needed[binding] = set()

    def _resolve_column(self, ref: ColumnRef) -> BColumn:
        if ref.table is not None:
            binding = ref.table.lower()
            if binding not in self.bindings:
                raise BindError(f"unknown table alias {ref.table!r}")
            _, schema = self.bindings[binding]
            try:
                col = schema.column(ref.name)
            except KeyError:
                raise BindError(
                    f"table {ref.table!r} has no column {ref.name!r}"
                ) from None
            self.needed[binding].add(col.name)
            return BColumn(binding, col.name, col.dtype)
        hits = []
        for binding, (_, schema) in self.bindings.items():
            try:
                col = schema.column(ref.name)
                hits.append((binding, col))
            except KeyError:
                continue
        if not hits:
            raise BindError(f"unknown column {ref.name!r}")
        if len(hits) > 1:
            tables = [b for b, _ in hits]
            raise BindError(f"ambiguous column {ref.name!r}: appears in {tables}")
        binding, col = hits[0]
        self.needed[binding].add(col.name)
        return BColumn(binding, col.name, col.dtype)

    # --------------------------------------------------------- expressions

    def bind_expr(self, expr, allow_agg: bool, inside_agg: bool = False) -> BExpr:
        if isinstance(expr, Literal):
            return BLiteral(expr.value)
        if isinstance(expr, ColumnRef):
            return self._resolve_column(expr)
        if isinstance(expr, Star):
            raise BindError("'*' is only valid as a select item or in count(*)")
        if isinstance(expr, UnaryOp):
            if expr.op == "-":
                operand = self.bind_expr(expr.operand, allow_agg, inside_agg)
                if not operand.dtype.is_numeric:
                    raise BindError("unary minus needs a numeric operand")
                return BNeg(operand)
            if expr.op == "not":
                return BNot(self.bind_expr(expr.operand, allow_agg, inside_agg))
            raise BindError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, InList):
            operand = self.bind_expr(expr.operand, allow_agg, inside_agg)
            values = []
            for v in expr.values:
                bound = self.bind_expr(v, allow_agg=False)
                if not isinstance(bound, BLiteral):
                    raise UnsupportedSQLError("IN lists must contain literals")
                values.append(bound.value)
            return BIn(operand, tuple(values), expr.negated)
        if isinstance(expr, FuncCall):
            return self._bind_func(expr, allow_agg, inside_agg)
        if isinstance(expr, BinaryOp):
            if expr.op in ("and", "or"):
                return BLogical(
                    expr.op,
                    self.bind_expr(expr.left, allow_agg, inside_agg),
                    self.bind_expr(expr.right, allow_agg, inside_agg),
                )
            left = self.bind_expr(expr.left, allow_agg, inside_agg)
            right = self.bind_expr(expr.right, allow_agg, inside_agg)
            if expr.op in ("=", "!=", "<", "<=", ">", ">="):
                self._check_comparable(left, right, expr.op)
                return BCompare(expr.op, left, right)
            if expr.op in ("+", "-", "*", "/"):
                if not (left.dtype.is_numeric and right.dtype.is_numeric):
                    raise BindError(
                        f"arithmetic {expr.op!r} needs numeric operands, got "
                        f"{left.dtype.value} and {right.dtype.value}"
                    )
                dtype = (
                    DataType.FLOAT64
                    if expr.op == "/"
                    or DataType.FLOAT64 in (left.dtype, right.dtype)
                    else DataType.INT64
                )
                return BArith(expr.op, left, right, dtype)
            raise BindError(f"unknown operator {expr.op!r}")
        raise BindError(f"cannot bind expression {expr!r}")

    @staticmethod
    def _check_comparable(left: BExpr, right: BExpr, op: str) -> None:
        lt, rt = left.dtype, right.dtype
        if lt.is_numeric != rt.is_numeric:
            raise BindError(
                f"cannot compare {lt.value} with {rt.value} using {op!r}"
            )

    def _bind_func(self, expr: FuncCall, allow_agg: bool, inside_agg: bool) -> BExpr:
        name = expr.name
        if name in AGGREGATES:
            if inside_agg:
                raise BindError("aggregates cannot be nested")
            if not allow_agg:
                raise BindError(f"aggregate {name}() is not allowed here")
            if name == "count" and len(expr.args) == 1 and isinstance(expr.args[0], Star):
                return BAgg("count", None, distinct=False)
            if len(expr.args) != 1:
                raise BindError(f"{name}() takes exactly one argument")
            arg = self.bind_expr(expr.args[0], allow_agg=False, inside_agg=True)
            if name in ("sum", "avg") and not arg.dtype.is_numeric:
                raise BindError(f"{name}() needs a numeric argument")
            return BAgg(name, arg, distinct=expr.distinct)
        raise UnsupportedSQLError(f"unknown function {name!r}")

    # ------------------------------------------------------------- binding

    def bind(self) -> BoundQuery:
        stmt = self.stmt
        if stmt.table is None:
            raise UnsupportedSQLError("queries without FROM are not supported")
        self._add_table(stmt.table)
        joins: list[BoundJoin] = []
        for jc in stmt.joins:
            self._add_table(jc.table)
            joins.append(self._bind_join(jc))

        where = None
        if stmt.where is not None:
            where = self.bind_expr(stmt.where, allow_agg=False)

        group_by = [self.bind_expr(e, allow_agg=False) for e in stmt.group_by]
        having = (
            self.bind_expr(stmt.having, allow_agg=True)
            if stmt.having is not None
            else None
        )

        outputs = self._bind_outputs(stmt.items, group_by)
        is_aggregate = bool(group_by) or any(
            _contains_agg(o.expr) for o in outputs
        )
        if is_aggregate:
            self._check_grouping(outputs, group_by)

        order_by = []
        for item in stmt.order_by:
            bound = self._bind_order_expr(item, outputs, is_aggregate)
            order_by.append((bound, item.descending))

        conditions, has_residual = _extract_conditions(where, list(self.bindings))

        bound = BoundQuery(
            tables={b: name for b, (name, _) in self.bindings.items()},
            schemas={b: schema for b, (_, schema) in self.bindings.items()},
            outputs=outputs,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=stmt.limit,
            distinct=stmt.distinct,
            is_aggregate=is_aggregate,
            needed_columns={b: sorted(cols) for b, cols in self.needed.items()},
            conditions=conditions,
            has_residual_predicate=has_residual,
        )
        return bound

    def _bind_join(self, jc: JoinClause) -> BoundJoin:
        on = jc.on
        left = self.bind_expr(on.left, allow_agg=False)
        right = self.bind_expr(on.right, allow_agg=False)
        if not isinstance(left, BColumn) or not isinstance(right, BColumn):
            raise UnsupportedSQLError("join conditions must compare two columns")
        if left.binding == right.binding:
            raise BindError("join condition must reference both tables")
        self._check_comparable(left, right, "=")
        # Normalize: left side belongs to the earlier-bound table.
        order = list(self.bindings)
        if order.index(left.binding) > order.index(right.binding):
            left, right = right, left
        return BoundJoin(left, right)

    def _bind_outputs(
        self, items: list[SelectItem], group_by: list[BExpr]
    ) -> list[BoundOutput]:
        outputs: list[BoundOutput] = []
        for item in items:
            if isinstance(item.expr, Star):
                for binding, (_, schema) in self.bindings.items():
                    for col in schema:
                        self.needed[binding].add(col.name)
                        outputs.append(
                            BoundOutput(col.name, BColumn(binding, col.name, col.dtype))
                        )
                continue
            expr = self.bind_expr(item.expr, allow_agg=True)
            name = item.alias or _default_name(expr, len(outputs))
            outputs.append(BoundOutput(name, expr))
        if not outputs:
            raise BindError("SELECT list is empty")
        return outputs

    def _check_grouping(
        self, outputs: list[BoundOutput], group_by: list[BExpr]
    ) -> None:
        keys = {str(g) for g in group_by}
        for out in outputs:
            if _contains_agg(out.expr):
                continue
            if str(out.expr) not in keys:
                raise BindError(
                    f"output {out.name!r} is neither aggregated nor in GROUP BY"
                )

    def _bind_order_expr(self, item: OrderItem, outputs, is_aggregate) -> BExpr:
        # ORDER BY may reference an output alias or position.
        expr = item.expr
        if isinstance(expr, Literal) and isinstance(expr.value, int):
            idx = expr.value - 1
            if not 0 <= idx < len(outputs):
                raise BindError(f"ORDER BY position {expr.value} out of range")
            return outputs[idx].expr
        if isinstance(expr, ColumnRef) and expr.table is None:
            for out in outputs:
                if out.name.lower() == expr.name.lower():
                    return out.expr
        bound = self.bind_expr(expr, allow_agg=is_aggregate)
        return bound


def _default_name(expr: BExpr, index: int) -> str:
    if isinstance(expr, BColumn):
        return expr.name
    if isinstance(expr, BAgg):
        return str(expr)
    return f"col{index + 1}"


def _contains_agg(expr: BExpr) -> bool:
    if isinstance(expr, BAgg):
        return True
    if isinstance(expr, (BArith, BCompare, BLogical)):
        return _contains_agg(expr.left) or _contains_agg(expr.right)
    if isinstance(expr, (BNeg, BNot)):
        return _contains_agg(expr.operand)
    if isinstance(expr, BIn):
        return _contains_agg(expr.operand)
    return False


def _extract_conditions(
    where: BExpr | None, bindings: list[str]
) -> tuple[dict[str, Condition], bool]:
    """Split WHERE into per-table conjunctive range conditions + residual.

    Only conjuncts of the form ``column <cmp> literal`` (or mirrored) are
    recognized; everything else (ORs, arithmetic comparisons, IN, NOT,
    column-column comparisons) is *residual*: it still filters rows during
    execution but cannot feed pushdown or the coverage table of contents.
    """
    per_table: dict[str, list[tuple[str, ValueInterval]]] = {b: [] for b in bindings}
    residual = False
    if where is not None:
        for conjunct in _flatten_and(where):
            hit = _conjunct_to_interval(conjunct)
            if hit is None:
                residual = True
            else:
                binding, col, interval = hit
                per_table[binding].append((col, interval))
    return {b: Condition(items) for b, items in per_table.items()}, residual


def _flatten_and(expr: BExpr) -> list[BExpr]:
    if isinstance(expr, BLogical) and expr.op == "and":
        return _flatten_and(expr.left) + _flatten_and(expr.right)
    return [expr]


def _conjunct_to_interval(expr: BExpr) -> tuple[str, str, ValueInterval] | None:
    if not isinstance(expr, BCompare):
        return None
    left, right, op = expr.left, expr.right, expr.op
    if isinstance(left, BLiteral) and isinstance(right, BColumn):
        left, right = right, left
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}[op]
    if not (isinstance(left, BColumn) and isinstance(right, BLiteral)):
        return None
    value = right.value
    if op == "=":
        interval = ValueInterval.equal(value)
    elif op == "<":
        interval = ValueInterval(None, value, hi_open=True)
    elif op == "<=":
        interval = ValueInterval(None, value, hi_open=False)
    elif op == ">":
        interval = ValueInterval(value, None, lo_open=True)
    elif op == ">=":
        interval = ValueInterval(value, None, lo_open=False)
    else:  # '!=' has no single-interval form
        return None
    return left.binding, left.name, interval


def bind(stmt: SelectStmt, schemas_by_table: Mapping[str, TableSchema]) -> BoundQuery:
    """Bind a parsed statement against the given table schemas."""
    return _Binder(stmt, schemas_by_table).bind()
