"""Declarative SQL interface.

The paper's section 2.2 argues that the declarative interface is itself a
major DBMS advantage over scripting ("a simple 1-2 line SQL query needs
several tenths or hundreds of lines in a scripting language").  This
package provides that interface: a lexer, a recursive-descent parser
producing a typed AST, and a binder that resolves names against the catalog
and extracts the conjunctive range conditions the adaptive loader feeds on.
"""

from repro.sql.ast_nodes import (
    BinaryOp,
    ColumnRef,
    FuncCall,
    JoinClause,
    Literal,
    OrderItem,
    SelectItem,
    SelectStmt,
    Star,
    TableRef,
    UnaryOp,
)
from repro.sql.binder import BoundQuery, bind
from repro.sql.lexer import Token, tokenize_sql
from repro.sql.parser import parse_sql

__all__ = [
    "BinaryOp",
    "BoundQuery",
    "ColumnRef",
    "FuncCall",
    "JoinClause",
    "Literal",
    "OrderItem",
    "SelectItem",
    "SelectStmt",
    "Star",
    "TableRef",
    "Token",
    "UnaryOp",
    "bind",
    "parse_sql",
    "tokenize_sql",
]
