"""SQL lexer.

Splits SQL text into a token stream for the recursive-descent parser.
Keywords are recognized case-insensitively; identifiers keep their original
spelling (name resolution lower-cases later).  Positions are preserved on
every token so syntax errors can point at the offending character.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SQLSyntaxError

KEYWORDS = {
    "select",
    "from",
    "where",
    "and",
    "or",
    "not",
    "group",
    "having",
    "order",
    "by",
    "limit",
    "as",
    "join",
    "inner",
    "on",
    "asc",
    "desc",
    "between",
    "in",
    "distinct",
}

#: Multi-character operators first so maximal munch works.
_OPERATORS = ["<>", "!=", ">=", "<=", "=", "<", ">", "+", "-", "*", "/", "(", ")", ",", "."]


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # 'keyword' | 'ident' | 'number' | 'string' | 'op' | 'eof'
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.text == word

    def is_op(self, op: str) -> bool:
        return self.kind == "op" and self.text == op


def tokenize_sql(sql: str) -> list[Token]:
    """Lex ``sql`` into tokens, ending with a single ``eof`` token."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and i + 1 < n and sql[i + 1] == "-":  # line comment
            nl = sql.find("\n", i)
            i = n if nl == -1 else nl + 1
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            lowered = word.lower()
            kind = "keyword" if lowered in KEYWORDS else "ident"
            tokens.append(Token(kind, lowered if kind == "keyword" else word, i))
            i = j
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = sql[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    # exponent must be followed by digits or sign+digits
                    k = j + 1
                    if k < n and sql[k] in "+-":
                        k += 1
                    if k < n and sql[k].isdigit():
                        seen_exp = True
                        seen_dot = True  # no dot allowed after exponent
                        j = k
                    else:
                        break
                else:
                    break
            tokens.append(Token("number", sql[i:j], i))
            i = j
            continue
        if ch == "'":
            j = i + 1
            buf: list[str] = []
            while j < n:
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":  # escaped quote
                        buf.append("'")
                        j += 2
                        continue
                    break
                buf.append(sql[j])
                j += 1
            if j >= n:
                raise SQLSyntaxError("unterminated string literal", i)
            tokens.append(Token("string", "".join(buf), i))
            i = j + 1
            continue
        for op in _OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token("op", op, i))
                i += len(op)
                break
        else:
            raise SQLSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token("eof", "", n))
    return tokens
