"""Flat-file handles: fingerprints, counted reads, simulated I/O cost.

A :class:`FlatFile` wraps one raw data file on disk.  It is the only place
in the library that actually reads flat-file bytes, which gives us three
things for free everywhere else:

* **accounting** — every byte read from raw files is counted, so benches
  can report "bytes touched" next to wall-clock time;
* **invalidation** — the fingerprint taken when data was loaded can be
  compared against the file's current state to detect edits (section 5.4);
* **simulated I/O cost** — an optional bandwidth throttle converts bytes
  read into sleep time, recreating disk-bound behaviour (e.g. the Figure 1a
  memory-wall knee) on machines whose page cache would otherwise hide it.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import FlatFileError


@dataclass(frozen=True)
class FileFingerprint:
    """Cheap identity of a file's contents: size + mtime_ns.

    Hashing contents would be exact but costs a full read; size+mtime is
    the classic build-system compromise and is what the engine's
    auto-invalidation uses.
    """

    size: int
    mtime_ns: int

    @classmethod
    def of(cls, path: Path) -> "FileFingerprint":
        st = os.stat(path)
        return cls(size=st.st_size, mtime_ns=st.st_mtime_ns)


@dataclass
class IOStats:
    """Counters of raw-file activity, aggregated per :class:`FlatFile`."""

    bytes_read: int = 0
    read_calls: int = 0
    full_scans: int = 0

    def merge(self, other: "IOStats") -> None:
        self.bytes_read += other.bytes_read
        self.read_calls += other.read_calls
        self.full_scans += other.full_scans


@dataclass
class FlatFile:
    """Handle to one raw data file.

    Parameters
    ----------
    path:
        Location of the file on disk.
    delimiter:
        Field separator; the paper uses CSV so the default is ``","``.
    bandwidth_bytes_per_sec:
        Optional simulated read bandwidth (see module docstring).
    """

    path: Path
    delimiter: str = ","
    bandwidth_bytes_per_sec: float | None = None
    stats: IOStats = field(default_factory=IOStats)

    def __post_init__(self) -> None:
        self.path = Path(self.path)
        if not self.path.exists():
            raise FlatFileError(f"flat file does not exist: {self.path}")
        if len(self.delimiter) != 1:
            raise FlatFileError(f"delimiter must be a single character, got {self.delimiter!r}")

    # ------------------------------------------------------------------ io

    def size_bytes(self) -> int:
        return os.stat(self.path).st_size

    def fingerprint(self) -> FileFingerprint:
        return FileFingerprint.of(self.path)

    def _account(self, nbytes: int, full_scan: bool) -> None:
        self.stats.bytes_read += nbytes
        self.stats.read_calls += 1
        if full_scan:
            self.stats.full_scans += 1
        if self.bandwidth_bytes_per_sec:
            time.sleep(nbytes / self.bandwidth_bytes_per_sec)

    def read_all(self) -> str:
        """Read and return the entire file as text (one full scan)."""
        data = self.path.read_bytes()
        self._account(len(data), full_scan=True)
        return data.decode("utf-8")

    def read_range(self, start: int, end: int) -> str:
        """Read bytes ``[start, end)`` — used for positional-map jumps."""
        if start < 0 or end < start:
            raise FlatFileError(f"bad byte range [{start}, {end})")
        with open(self.path, "rb") as f:
            f.seek(start)
            data = f.read(end - start)
        self._account(len(data), full_scan=False)
        return data.decode("utf-8")

    # --------------------------------------------------------------- lines

    def sample_rows(self, limit: int = 128) -> list[list[str]]:
        """Tokenize up to ``limit`` leading rows for schema inference.

        This is a bounded read: schema detection must stay cheap even for
        huge files, so only the first ``limit`` lines are touched.
        """
        rows: list[list[str]] = []
        nbytes = 0
        with open(self.path, "rb") as f:
            for raw in f:
                nbytes += len(raw)
                line = raw.decode("utf-8").rstrip("\r\n")
                if line:
                    rows.append(line.split(self.delimiter))
                if len(rows) >= limit:
                    break
        self._account(nbytes, full_scan=False)
        return rows
