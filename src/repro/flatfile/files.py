"""Flat-file handles: fingerprints, counted reads, simulated I/O cost.

A :class:`FlatFile` wraps one raw data file on disk.  It is the only place
in the library that actually reads flat-file bytes, which gives us three
things for free everywhere else:

* **accounting** — every byte read from raw files is counted, so benches
  can report "bytes touched" next to wall-clock time;
* **invalidation** — the fingerprint taken when data was loaded can be
  compared against the file's current state to detect edits (section 5.4);
* **simulated I/O cost** — an optional bandwidth throttle converts bytes
  read into sleep time, recreating disk-bound behaviour (e.g. the Figure 1a
  memory-wall knee) on machines whose page cache would otherwise hide it.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import FlatFileError
from repro.faults import FaultPlan, retry_io
from repro.flatfile.dialects import FormatAdapter, make_adapter, sniff_format


def coalesce_ranges(
    starts: np.ndarray, ends: np.ndarray, max_gap: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Merge byte ranges ``[starts[i], ends[i])`` into batched windows.

    Ranges whose gap to the running window is at most ``max_gap`` bytes are
    merged into it, so that a window is one seek+read instead of many.  The
    input may be unsorted and overlapping; the output windows are sorted and
    disjoint.  ``max_gap=0`` merges only touching/overlapping ranges.
    """
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    if len(starts) != len(ends):
        raise FlatFileError(
            f"coalesce_ranges: {len(starts)} starts but {len(ends)} ends"
        )
    if len(starts) == 0:
        return starts.copy(), ends.copy()
    if max_gap < 0:
        raise FlatFileError(f"max_gap must be non-negative, got {max_gap}")
    if (ends < starts).any() or (starts < 0).any():
        raise FlatFileError("coalesce_ranges: malformed byte range")
    order = np.argsort(starts, kind="stable")
    s = starts[order]
    e = ends[order]
    cummax_e = np.maximum.accumulate(e)
    breaks = np.empty(len(s), dtype=bool)
    breaks[0] = True
    breaks[1:] = s[1:] > cummax_e[:-1] + max_gap
    first = np.nonzero(breaks)[0]
    win_starts = s[first]
    win_ends = np.maximum.reduceat(e, first)
    return win_starts, win_ends


@dataclass
class FileWindows:
    """Bytes of several coalesced windows of one file, addressable by
    their original absolute file offsets.

    ``starts[i]``/``ends[i]`` are the file-offset bounds of window ``i``
    (sorted, disjoint) and ``offsets[i]`` is where window ``i`` begins
    inside the concatenated :attr:`buffer`.
    """

    starts: np.ndarray
    ends: np.ndarray
    offsets: np.ndarray
    buffer: bytes

    def translate(self, positions: np.ndarray) -> np.ndarray:
        """Map absolute file offsets to offsets within :attr:`buffer`."""
        positions = np.asarray(positions, dtype=np.int64)
        if len(positions) == 0:
            return positions.copy()
        idx = np.searchsorted(self.starts, positions, side="right") - 1
        if (idx < 0).any() or (positions > self.ends[idx]).any():
            raise FlatFileError("file offset outside every read window")
        return positions - self.starts[idx] + self.offsets[idx]

    @property
    def total_bytes(self) -> int:
        return len(self.buffer)


#: Bytes hashed from each end of a file for the fingerprint's content
#: probe (two small preads; never counted as engine I/O).
PROBE_BYTES = 4096


def _digest(data: bytes) -> bytes:
    return hashlib.blake2b(data, digest_size=16).digest()


def content_probe(path: Path | str, size: int) -> tuple[bytes, bytes]:
    """Separate digests of the file's head and tail regions.

    The head digest covers bytes ``[0, min(PROBE_BYTES, size))`` and the
    tail digest bytes ``[max(0, size - PROBE_BYTES), size)``.  Keeping
    them separate (rather than one combined digest) is what makes pure
    tail-appends recognizable: after an append the old fingerprint's
    regions are still present in the grown file and can be re-probed and
    compared, region by region.  Bounded, unaccounted I/O.
    """
    with open(path, "rb") as f:  # seek+read, not os.pread: portable
        head = _digest(f.read(min(PROBE_BYTES, max(size, 0))))
        tail_start = max(0, size - PROBE_BYTES)
        f.seek(tail_start)
        tail = _digest(f.read(size - tail_start))
    return head, tail


@dataclass(frozen=True)
class FileFingerprint:
    """Identity of a file's contents, shared by every staleness check.

    Hashing whole contents would be exact but costs a full read, so the
    fingerprint layers cheap evidence: size + mtime_ns (the classic
    build-system compromise), the inode (free from the same ``stat``;
    catches atomic replacement via ``os.replace`` even when size and
    mtime collide), and a bounded content probe — separate head and tail
    digests (catches the pathological in-place same-size rewrite whose
    mtime was forced back, and lets :func:`detect_tail_append` recognize
    pure appends by re-probing the old regions of the grown file).  One
    mechanism, one strength: the adaptive store's auto-invalidation and
    the query-result cache both key on this, so the cache can never
    outlive data the store would consider fresh or vice versa.
    """

    size: int
    mtime_ns: int
    ino: int = 0
    head: bytes = b""
    tail: bytes = b""

    @classmethod
    def of(cls, path: Path) -> "FileFingerprint":
        # The file can be deleted, truncated or replaced between the
        # stat and the probe reads; fold that race into the library's
        # error taxonomy instead of leaking a raw OSError mid-check.
        try:
            st = os.stat(path)
            head, tail = content_probe(path, st.st_size)
        except OSError as exc:
            raise FlatFileError(
                f"cannot fingerprint flat file {path}: {exc}"
            ) from exc
        return cls(
            size=st.st_size,
            mtime_ns=st.st_mtime_ns,
            ino=st.st_ino,
            head=head,
            tail=tail,
        )

    def as_manifest(self) -> dict:
        """JSON-serializable form, for the persistent store's manifests."""
        return {
            "size": self.size,
            "mtime_ns": self.mtime_ns,
            "ino": self.ino,
            "head": self.head.hex(),
            "tail": self.tail.hex(),
        }

    @classmethod
    def from_manifest(cls, data: dict) -> "FileFingerprint":
        """Inverse of :meth:`as_manifest` (raises on malformed input)."""
        return cls(
            size=int(data["size"]),
            mtime_ns=int(data["mtime_ns"]),
            ino=int(data["ino"]),
            head=bytes.fromhex(data["head"]),
            tail=bytes.fromhex(data["tail"]),
        )


def detect_tail_append(
    path: Path | str, old: FileFingerprint, new: FileFingerprint
) -> bool:
    """Is the file at ``path`` the old contents plus appended bytes?

    True only when the file grew and the region the old fingerprint
    covered is still byte-identical: the old head region ``[0,
    min(PROBE_BYTES, old.size))`` and the old tail region ``[max(0,
    old.size - PROBE_BYTES), old.size)`` of the *current* file must
    re-digest to the old fingerprint's head/tail values.  Any head edit,
    truncation, same-size rewrite or inode swap fails the check; any
    I/O error (the file may be changing under us) conservatively reports
    ``False`` so callers fall back to full invalidation.
    """
    if old is None or new is None:
        return False
    if new.size <= old.size or old.size <= 0:
        return False
    if old.ino and new.ino and old.ino != new.ino:
        return False
    if not old.head or not old.tail:
        return False
    try:
        with open(path, "rb") as f:
            head = f.read(min(PROBE_BYTES, old.size))
            if _digest(head) != old.head:
                return False
            tail_start = max(0, old.size - PROBE_BYTES)
            f.seek(tail_start)
            tail = f.read(old.size - tail_start)
            if _digest(tail) != old.tail:
                return False
    except OSError:
        return False
    return True


@dataclass
class IOStats:
    """Counters of raw-file activity, aggregated per :class:`FlatFile`."""

    bytes_read: int = 0
    read_calls: int = 0
    full_scans: int = 0
    #: Reads re-attempted after a transient I/O error (injected or real).
    retries: int = 0

    def merge(self, other: "IOStats") -> None:
        self.bytes_read += other.bytes_read
        self.read_calls += other.read_calls
        self.full_scans += other.full_scans
        self.retries += other.retries


@dataclass
class FlatFile:
    """Handle to one raw data file.

    Parameters
    ----------
    path:
        Location of the file on disk.
    delimiter:
        Field separator for delimited formats; the paper uses CSV so the
        default is ``","``.
    bandwidth_bytes_per_sec:
        Optional simulated read bandwidth (see module docstring).
    format:
        Dialect selection: ``None``/``"csv"`` for the plain delimited
        substrate, one of :data:`repro.flatfile.dialects.FORMATS`, a
        ready :class:`~repro.flatfile.dialects.FormatAdapter` instance,
        or ``"auto"`` to sniff the dialect lazily from a bounded sample
        on first use (attach stays I/O-free).
    fixed_widths:
        Field widths for ``format="fixed-width"``.
    """

    path: Path
    delimiter: str = ","
    bandwidth_bytes_per_sec: float | None = None
    stats: IOStats = field(default_factory=IOStats)
    format: "str | FormatAdapter | None" = None
    fixed_widths: tuple[int, ...] | None = None
    #: Deterministic fault injection (None in production: checks no-op).
    fault_plan: FaultPlan | None = None
    #: Bounded retry of transient read errors (attempts >= 1; 1 = none).
    retry_attempts: int = 3
    retry_backoff_s: float = 0.005

    #: Bytes the lazy dialect sniffer samples from the head of the file.
    _SNIFF_BYTES = 1 << 16

    def __post_init__(self) -> None:
        self.path = Path(self.path)
        if not self.path.exists():
            raise FlatFileError(f"flat file does not exist: {self.path}")
        # Shared counters are engine-wide truth; the thread-local mirror
        # lets a concurrently-serving engine compute *per-query* byte
        # deltas without attributing another thread's I/O to this query
        # (all of one query's raw reads happen on its calling thread —
        # partition workers report via account_reads on the merge thread,
        # and read_windows accounts after its thread pool joins).
        self._stats_lock = threading.Lock()
        self._thread_stats = threading.local()
        if isinstance(self.format, FormatAdapter):
            self._adapter: FormatAdapter | None = self.format
        else:
            # "auto" resolves to None here; the property sniffs on demand.
            self._adapter = make_adapter(
                self.format, self.delimiter, self.fixed_widths
            )

    @property
    def adapter(self) -> FormatAdapter:
        """The file's dialect adapter, sniffing on first use under "auto"."""
        if self._adapter is None:
            self._adapter = sniff_format(
                self._read_sniff_sample(), source=str(self.path)
            )
        return self._adapter

    def reset_format_state(self) -> None:
        """Drop dialect state derived from file contents (file edited).

        A sniffed adapter is re-sniffed on next use; an explicit adapter
        keeps its identity but forgets any learned per-file state (e.g.
        JSON-lines column order).
        """
        if self._adapter is not None:
            if isinstance(self.format, FormatAdapter) or self.format != "auto":
                self._adapter.reset()
            else:
                self._adapter = None

    def _read_head_sample(self) -> tuple[str, bool]:
        """Bounded decodable text from the file head, + truncation flag.

        A truncated sample is cut at its last newline: ``\\n`` is never
        part of a UTF-8 multi-byte sequence, so the prefix decodes
        cleanly.  Shared by the dialect sniffer and the sampling path
        for dialects whose records may span lines.
        """
        with open(self.path, "rb") as f:
            data = f.read(self._SNIFF_BYTES)
            truncated = len(data) == self._SNIFF_BYTES and f.read(1) != b""
        self._account(len(data), full_scan=False)
        if truncated:
            cut = data.rfind(b"\n")
            data = data[: cut + 1] if cut != -1 else b""
        return data.decode("utf-8"), truncated

    def _read_sniff_sample(self) -> str:
        return self._read_head_sample()[0]

    # ------------------------------------------------------------------ io

    def size_bytes(self) -> int:
        return os.stat(self.path).st_size

    def fingerprint(self) -> FileFingerprint:
        return FileFingerprint.of(self.path)

    def _account(
        self, nbytes: int, full_scan: bool, calls: int = 1, throttle: bool = True
    ) -> None:
        with self._stats_lock:
            self.stats.bytes_read += nbytes
            self.stats.read_calls += calls
            if full_scan:
                self.stats.full_scans += 1
        tls = self._thread_stats
        tls.bytes_read = getattr(tls, "bytes_read", 0) + nbytes
        tls.read_calls = getattr(tls, "read_calls", 0) + calls
        if throttle and self.bandwidth_bytes_per_sec:
            # Outside the lock: the simulated disk may be read by many
            # threads at once (that overlap is what bench_concurrent
            # measures).
            time.sleep(nbytes / self.bandwidth_bytes_per_sec)

    def thread_io_totals(self) -> tuple[int, int]:
        """This thread's cumulative (bytes read, read calls) on this file.

        The engine snapshots these before/after a query to report exact
        per-query raw I/O even while other threads hit the same file.
        """
        tls = self._thread_stats
        return getattr(tls, "bytes_read", 0), getattr(tls, "read_calls", 0)

    def thread_io_retries(self) -> int:
        """This thread's cumulative read retries on this file."""
        return getattr(self._thread_stats, "retries", 0)

    # --------------------------------------------------- faults and retry

    def _maybe_fault(self, point: str) -> None:
        if self.fault_plan is not None:
            self.fault_plan.check(point)

    def _truncated(self, data: bytes) -> bytes:
        """Apply an injected short read to ``data`` (no-op in production)."""
        if self.fault_plan is not None:
            return self.fault_plan.truncate("flatfile.short_read", data)
        return data

    def _count_retry(self, attempt: int, exc: OSError) -> None:
        with self._stats_lock:
            self.stats.retries += 1
        tls = self._thread_stats
        tls.retries = getattr(tls, "retries", 0) + 1

    def _read_retrying(self, fn, what: str):
        """Run one read attempt function under bounded retry.

        Transient ``OSError`` (including injected faults and short
        reads) is retried with backoff; a persistent failure surfaces as
        the taxonomy :class:`FlatFileError` so callers — and the wire —
        never see a raw ``OSError`` from the read path.
        """
        try:
            return retry_io(
                fn,
                attempts=self.retry_attempts,
                backoff_s=self.retry_backoff_s,
                on_retry=self._count_retry,
            )
        except FlatFileError:
            raise
        except OSError as exc:
            raise FlatFileError(f"cannot read {what}: {exc}") from exc

    def account_reads(
        self,
        nbytes: int,
        *,
        calls: int = 1,
        full_scan: bool = False,
        throttled: bool = False,
    ) -> None:
        """Account bytes read *outside* this handle (partition workers).

        The parallel partitioned scan reads byte ranges of this file in
        worker processes, whose I/O the parent-side counters never see.
        The merge step reports the totals here so accounting stays
        identical to the serial path.  ``throttled=True`` means the
        readers already paid the simulated-bandwidth sleep in-process
        (partition workers each stream their own byte range, so their
        simulated disk time overlaps instead of serializing here).
        """
        self._account(nbytes, full_scan, calls=calls, throttle=not throttled)

    def read_all_bytes(self) -> bytes:
        """Read and return the entire file's raw bytes (one full scan).

        The cold-scan entry of the vectorized tokenization kernel: the
        kernel frames rows and fields over these bytes directly, so
        pure-ASCII files never materialize a decoded Python string at all.
        """

        def once() -> bytes:
            self._maybe_fault("flatfile.read")
            # Short-read detection: fewer bytes than the file holds means
            # a read truncated mid-flight, never valid data.  ``>=`` not
            # ``==``: a legitimate tail-append may land between the stat
            # and the read, and the extra bytes are real file contents.
            expected = os.stat(self.path).st_size
            data = self._truncated(self.path.read_bytes())
            if len(data) < expected:
                raise OSError(
                    f"short read of {self.path}: "
                    f"{len(data)} of {expected} bytes"
                )
            return data

        data = self._read_retrying(once, f"flat file {self.path}")
        self._account(len(data), full_scan=True)
        return data

    def read_all(self) -> str:
        """Read and return the entire file as text (one full scan)."""
        return self.read_all_bytes().decode("utf-8")

    def read_range(self, start: int, end: int) -> str:
        """Read bytes ``[start, end)`` — used for positional-map jumps."""
        return self.read_range_bytes(start, end).decode("utf-8")

    def read_range_bytes(self, start: int, end: int) -> bytes:
        """Read raw bytes ``[start, end)`` (accounted, not a full scan).

        The append-extension path reads exactly the appended tail region
        through this, so per-query byte accounting reflects that an
        extended table re-read only the new bytes.
        """
        if start < 0 or end < start:
            raise FlatFileError(f"bad byte range [{start}, {end})")

        def once() -> bytes:
            self._maybe_fault("flatfile.read")
            with open(self.path, "rb") as f:
                f.seek(start)
                data = self._truncated(f.read(end - start))
            # Callers derive ranges from the positional map or the
            # fingerprint, so a short range read is always truncation.
            if len(data) != end - start:
                raise OSError(
                    f"short read of {self.path} range [{start}, {end}): "
                    f"got {len(data)} bytes"
                )
            return data

        data = self._read_retrying(
            once, f"{self.path} range [{start}, {end})"
        )
        self._account(len(data), full_scan=False)
        return data

    def read_windows(
        self,
        starts: np.ndarray,
        ends: np.ndarray,
        max_gap: int = 0,
        workers: int = 1,
    ) -> FileWindows:
        """Read many byte ranges in batched, coalesced window reads.

        The selective-read fast path hands over the positional map's field
        byte ranges; ranges closer than ``max_gap`` are merged into one
        seek+read (see :func:`coalesce_ranges`).  Only the coalesced
        windows are read and accounted — never the whole file.

        With ``workers > 1`` the coalesced windows are split into
        contiguous runs read concurrently by a thread pool (each thread on
        its own file handle).  ``read()`` releases the GIL, so warm
        selective passes with many scattered windows overlap their seeks;
        the returned buffer is byte-identical to the serial read.
        """
        win_starts, win_ends = coalesce_ranges(starts, ends, max_gap)
        if len(win_starts):
            expected = int((win_ends - win_starts).sum())

            def once() -> list[bytes]:
                self._maybe_fault("flatfile.read")
                got = self._read_window_list(win_starts, win_ends, workers)
                if got:
                    got[0] = self._truncated(got[0])
                # Window bounds come from the positional map: every
                # window lies inside the file, so short is truncation.
                if sum(len(c) for c in got) != expected:
                    raise OSError(
                        f"short window read of {self.path}: expected "
                        f"{expected} bytes over {len(win_starts)} windows"
                    )
                return got

            chunks = self._read_retrying(once, f"{self.path} window reads")
        else:
            chunks = []
        sizes = np.asarray([len(c) for c in chunks], dtype=np.int64)
        offsets = np.zeros(len(chunks), dtype=np.int64)
        if len(chunks):
            offsets[1:] = np.cumsum(sizes[:-1])
        for size in sizes.tolist():
            self._account(size, full_scan=False)
        return FileWindows(
            starts=win_starts,
            ends=win_ends,
            offsets=offsets,
            buffer=b"".join(chunks),
        )

    #: Below this many windows per thread, pool overhead beats overlap.
    _MIN_WINDOWS_PER_THREAD = 8

    def _read_window_list(
        self, win_starts: np.ndarray, win_ends: np.ndarray, workers: int
    ) -> list[bytes]:
        """Read the coalesced windows, serially or via a thread pool."""
        pairs = list(zip(win_starts.tolist(), win_ends.tolist()))

        def read_run(run: list[tuple[int, int]]) -> list[bytes]:
            with open(self.path, "rb") as f:
                got = []
                for s, e in run:
                    f.seek(s)
                    got.append(f.read(e - s))
                return got

        nthreads = min(workers, len(pairs) // self._MIN_WINDOWS_PER_THREAD)
        if nthreads <= 1:
            return read_run(pairs)
        per = (len(pairs) + nthreads - 1) // nthreads
        runs = [pairs[i : i + per] for i in range(0, len(pairs), per)]
        with ThreadPoolExecutor(max_workers=len(runs)) as pool:
            results = list(pool.map(read_run, runs))
        return [chunk for run in results for chunk in run]

    # --------------------------------------------------------------- lines

    def sample_rows(self, limit: int = 128) -> list[list[str]]:
        """Tokenize up to ``limit`` leading rows for schema inference.

        This is a bounded read: schema detection must stay cheap even for
        huge files, so only the leading lines (or, for dialects whose
        records can span lines, a bounded head sample) are touched.
        Rows come back as *logical* (decoded) field values.
        """
        adapter = self.adapter
        if adapter.supports_partitioning:
            # Records are lines: read lazily, stop at ``limit`` rows.
            rows: list[list[str]] = []
            nbytes = 0
            with open(self.path, "rb") as f:
                for raw in f:
                    nbytes += len(raw)
                    line = raw.decode("utf-8").rstrip("\r\n")
                    if line:
                        rows.append(adapter.row_values(line))
                    if len(rows) >= limit:
                        break
            self._account(nbytes, full_scan=False)
            return rows
        # Records may span lines (quoted CSV): frame a bounded head
        # sample with the adapter and drop the last record when the
        # sample was cut — it might end mid-quote.
        text, truncated = self._read_head_sample()
        while True:
            try:
                starts, ends = adapter.row_bounds(text)
                break
            except FlatFileError:
                # The cut can land inside a quoted field; trim trailing
                # lines until the sample frames cleanly (bounded: the
                # sample is at most _SNIFF_BYTES).
                if not truncated or not text:
                    raise
                nl = text.rfind("\n", 0, max(len(text) - 1, 0))
                text = text[: nl + 1] if nl > 0 else ""
        if truncated and len(starts):
            starts, ends = starts[:-1], ends[:-1]
        rows = []
        for s, e in zip(starts.tolist(), ends.tolist()):
            rows.append(adapter.row_values(text[int(s) : int(e)]))
            if len(rows) >= limit:
                break
        return rows
