"""Flat-file substrate: CSV writing, tokenization, parsing, schema inference.

This package is the part of the system that understands raw data files.
Everything above it (the adaptive loader, the baselines) goes through these
primitives, so the cost model of the whole reproduction — "touching the flat
file is expensive, touching loaded columns is cheap" — lives here.
"""

from repro.flatfile.files import FileFingerprint, FlatFile
from repro.flatfile.parser import parse_fields
from repro.flatfile.schema import ColumnSchema, DataType, TableSchema, infer_schema
from repro.flatfile.tokenizer import TokenizerStats, tokenize_columns
from repro.flatfile.writer import write_csv

__all__ = [
    "ColumnSchema",
    "DataType",
    "FileFingerprint",
    "FlatFile",
    "TableSchema",
    "TokenizerStats",
    "infer_schema",
    "parse_fields",
    "tokenize_columns",
    "write_csv",
]
