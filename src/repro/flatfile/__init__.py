"""Flat-file substrate: dialects, writing, tokenization, parsing, schema.

This package is the part of the system that understands raw data files.
Everything above it (the adaptive loader, the baselines) goes through these
primitives, so the cost model of the whole reproduction — "touching the flat
file is expensive, touching loaded columns is cheap" — lives here.  The
dialect layer (:mod:`repro.flatfile.dialects`) maps real-world formats —
quoted CSV, escaped TSV, JSON-lines, fixed-width — onto the same substrate.
"""

from repro.flatfile.dialects import (
    FORMATS,
    DelimitedAdapter,
    FixedWidthAdapter,
    FormatAdapter,
    JsonLinesAdapter,
    QuotedCsvAdapter,
    TsvAdapter,
    make_adapter,
    sniff_format,
)
from repro.flatfile.files import FileFingerprint, FlatFile
from repro.flatfile.parser import parse_fields
from repro.flatfile.schema import ColumnSchema, DataType, TableSchema, infer_schema
from repro.flatfile.tokenizer import (
    TokenizerStats,
    tokenize_columns,
    tokenize_dialect,
)
from repro.flatfile.writer import write_csv

__all__ = [
    "FORMATS",
    "ColumnSchema",
    "DataType",
    "DelimitedAdapter",
    "FileFingerprint",
    "FixedWidthAdapter",
    "FlatFile",
    "FormatAdapter",
    "JsonLinesAdapter",
    "QuotedCsvAdapter",
    "TableSchema",
    "TokenizerStats",
    "TsvAdapter",
    "infer_schema",
    "make_adapter",
    "parse_fields",
    "sniff_format",
    "tokenize_columns",
    "tokenize_dialect",
    "write_csv",
]
