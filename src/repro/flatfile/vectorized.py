"""Vectorized bulk-tokenization kernel: the cold-scan hot path in NumPy.

The scalar tokenizer (:mod:`repro.flatfile.tokenizer`) walks the file with
per-row, per-field ``str.find`` calls — its cost model is faithful to the
paper, but every byte is touched from the Python interpreter.  This kernel
performs the *same* pass over the raw bytes in bulk:

1. **byte-scan framing** — ``np.frombuffer`` over the raw bytes, one-shot
   ``np.nonzero`` location of every newline (and delimiter) byte.  Both are
   ASCII bytes and UTF-8 never embeds ASCII values in multi-byte sequences,
   so byte scanning is safe for any UTF-8 content;
2. **cumulative row framing** — per-row separator counts via two
   ``searchsorted`` calls; any ragged row (a separator count other than
   ``ncols - 1``) makes the kernel decline, and the caller falls back to
   the scalar path *for that text only*, which reproduces the scalar
   route's error/tolerance semantics exactly;
3. **columnar field extraction** — a row×field offset view built from the
   separator index; only columns up to the last needed one are ever
   materialized ("never slice columns right of the last needed one" — the
   paper's early-abort economics, bulk-shaped), and pushdown predicates
   are evaluated column-by-column as masks over the still-candidate rows,
   so a failing early column spares every later column's slices;
4. **bulk learning** — the positional map absorbs whole offset-matrix
   columns (:meth:`~repro.flatfile.positions.PositionalMap.absorb_offsets`)
   instead of being offered one field at a time.

Work counters stay **exact**: :class:`~repro.flatfile.tokenizer.
TokenizerStats` out of this kernel is field-for-field identical to the
scalar route's — ``fields_tokenized`` counts only the fields the scalar
pass would have visited (per-row early abort, predicate abandonment and
the ablation tail included), never the delimiters the one-shot scan
happened to locate.  The differential suite in
``tests/flatfile/test_vectorized.py`` holds this equality under ragged
rows, blank lines, trailing delimiters, predicates and non-ASCII input.

Eligibility: dialects with ``supports_vectorized`` (plain delimited, TSV,
fixed-width).  Quoted CSV needs a quote state machine and JSON-lines has
no field spans; both keep the adapter route.  The kernel also declines —
returning ``None`` so the dispatcher falls back to the scalar path —
when a positional map already offers usable column anchors (the scalar
jump accounting is the reference there), for non-ASCII fixed-width
content (field widths are characters, not bytes), and for non-ASCII
delimiters.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FlatFileError
from repro.flatfile.dialects import (
    DelimitedAdapter,
    FixedWidthAdapter,
    FormatAdapter,
    TsvAdapter,
)
from repro.flatfile.positions import PositionalMap
from repro.flatfile.tokenizer import (
    RawPredicate,
    TokenizeResult,
    TokenizerStats,
    bulk_extract_fields,
)

_NEWLINE = 0x0A
_CARRIAGE = 0x0D


def _frame_rows(
    buf: np.ndarray, skip_rows: int
) -> tuple[np.ndarray, np.ndarray]:
    """Byte-offset row bounds: newline framing, CRLF trim, blanks skipped.

    The vectorized twin of :func:`repro.flatfile.dialects.
    newline_row_bounds` (same semantics, byte offsets instead of character
    offsets — identical for the pure-ASCII fast case, converted by the
    caller otherwise).
    """
    nl = np.nonzero(buf == _NEWLINE)[0]
    starts = np.empty(len(nl) + 1, dtype=np.int64)
    starts[0] = 0
    starts[1:] = nl + 1
    ends = np.empty(len(nl) + 1, dtype=np.int64)
    ends[:-1] = nl
    ends[-1] = len(buf)
    nonempty = np.nonzero(ends > starts)[0]
    has_cr = np.zeros(len(ends), dtype=np.int64)
    has_cr[nonempty] = (buf[ends[nonempty] - 1] == _CARRIAGE).astype(np.int64)
    ends = ends - has_cr
    keep = ends > starts
    starts, ends = starts[keep], ends[keep]
    if skip_rows:
        starts, ends = starts[skip_rows:], ends[skip_rows:]
    return starts, ends


def tokenize_vectorized(
    data: bytes,
    adapter: FormatAdapter,
    ncols: int,
    needed,
    *,
    early_abort: bool = True,
    predicates: dict[int, RawPredicate] | None = None,
    positional_map: PositionalMap | None = None,
    learn: bool = True,
    skip_rows: int = 0,
) -> TokenizeResult | None:
    """One bulk tokenization pass, or ``None`` when the scalar path must run.

    Semantics (outputs, learned offsets, *and* work counters) are exactly
    those of the scalar route for the same adapter — see the module
    docstring for when the kernel declines instead of risking divergence.
    """
    if ncols <= 0:
        raise FlatFileError(f"ncols must be positive, got {ncols}")
    wanted = sorted(set(needed))
    if not wanted:
        raise FlatFileError("tokenize_vectorized called with no needed columns")
    if wanted[0] < 0 or wanted[-1] >= ncols:
        raise FlatFileError(
            f"needed columns {wanted} out of range for {ncols} columns"
        )
    predicates = predicates or {}
    for col in predicates:
        if col not in wanted:
            raise FlatFileError(f"predicate on column {col} which is not tokenized")
    learn = learn and positional_map is not None
    last_needed = wanted[-1]

    # ------------------------------------------------------------ dispatch
    if isinstance(adapter, DelimitedAdapter):
        find_jump = True  # scalar reference: tokenize_columns
        delimiter: str | None = adapter.delimiter
    elif isinstance(adapter, TsvAdapter):
        find_jump = False  # scalar reference: the dialect-generic route
        delimiter = "\t"
    elif isinstance(adapter, FixedWidthAdapter):
        find_jump = False
        delimiter = None
    else:
        return None
    if delimiter is not None and ord(delimiter) > 127:
        return None
    if find_jump and positional_map is not None and any(
        c <= last_needed for c in positional_map.field_offsets
    ):
        # The scalar fast path would jump via these anchors and charge
        # less scanning work; it is the reference for that accounting.
        return None

    buf = np.frombuffer(data, dtype=np.uint8)
    ascii_only = not bool((buf > 127).any()) if len(buf) else True
    if delimiter is None and not ascii_only:
        return None  # fixed-width field widths are characters, not bytes
    if not ascii_only:
        try:
            data.decode("utf-8")
        except UnicodeDecodeError:
            # Invalid UTF-8: the scalar route's decode raises the
            # canonical error (and the char geometry the kernel would
            # learn from raw continuation bytes would be fiction).
            return None
    nul_free = not bool((buf == 0).any()) if len(buf) else True

    # ------------------------------------------------------------- framing
    row_starts, row_ends = _frame_rows(buf, skip_rows)
    nrows = len(row_starts)
    if ascii_only:
        nchars = len(buf)

        def to_chars(a: np.ndarray) -> np.ndarray:
            return a

    else:
        pad = np.zeros(len(buf) + 1, dtype=np.int64)
        np.cumsum((buf & 0xC0) == 0x80, dtype=np.int64, out=pad[1:])
        nchars = len(buf) - int(pad[-1])

        def to_chars(a: np.ndarray) -> np.ndarray:
            return a - pad[a]

    # ------------------------------------------ separator / ragged detection
    ncols_visited = ncols if not early_abort else min(last_needed + 1, ncols)
    if delimiter is None:
        widths = np.asarray(adapter.widths, dtype=np.int64)
        if nrows and not bool(((row_ends - row_starts) == int(widths.sum())).all()):
            return None  # some row has the wrong width: scalar raises there
        cum = np.concatenate(([0], np.cumsum(widths)))

        def col_bounds(c: int) -> tuple[np.ndarray, np.ndarray]:
            return row_starts + int(cum[c]), row_starts + int(cum[c + 1])

    else:
        d_pos = np.nonzero(buf == ord(delimiter))[0]
        lo = np.searchsorted(d_pos, row_starts)
        hi = np.searchsorted(d_pos, row_ends)
        if nrows and not bool((hi - lo == ncols - 1).all()):
            return None  # ragged rows: the scalar path is the reference
        sep_width = min(ncols_visited, ncols - 1)
        if sep_width and nrows:
            sep = d_pos[lo[:, None] + np.arange(sep_width, dtype=np.int64)[None, :]]
        else:
            sep = np.empty((nrows, sep_width), dtype=np.int64)
        del d_pos

        def col_bounds(c: int) -> tuple[np.ndarray, np.ndarray]:
            start = row_starts if c == 0 else sep[:, c - 1] + 1
            end = row_ends if c == ncols - 1 else sep[:, c]
            return start, end

    # ------------------------------------- column sweep: stats + predicates
    stats = TokenizerStats()
    stats.rows_scanned = nrows
    stats.chars_scanned = nchars  # the framing pass touches everything
    wanted_set = set(wanted)
    candidates = np.arange(nrows, dtype=np.int64)
    pred_values: dict[int, np.ndarray] = {}
    pred_rows: dict[int, np.ndarray] = {}
    fail_cols: list[int] = []
    bounds: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def extract(col: int, rows: np.ndarray) -> np.ndarray:
        fstart, fend = bounds[col]
        fstart, fend = fstart[rows], fend[rows]
        values = bulk_extract_fields(
            data,
            fstart,
            fend - fstart,
            buf=buf,
            char_lengths=to_chars(fend) - to_chars(fstart),
            ascii_only=ascii_only,
            nul_free=nul_free,
        )
        return adapter.decode_many(values)

    for col in range(ncols_visited):
        fstart, fend = col_bounds(col)
        bounds[col] = (fstart, fend)
        clen = to_chars(fend) - to_chars(fstart)
        alive = len(candidates)
        stats.fields_tokenized += alive
        stats.chars_scanned += int(clen[candidates].sum())
        if find_jump and col not in wanted_set and col != ncols - 1:
            # The scalar fast path scans over this column *through* its
            # trailing delimiter; needed fields stop at the field end.
            stats.chars_scanned += alive
        pred = predicates.get(col)
        if pred is not None:
            values = extract(col, candidates)
            keep = np.fromiter(
                (bool(pred(v)) for v in values), dtype=bool, count=len(values)
            )
            pred_values[col] = values
            pred_rows[col] = candidates
            failed = int(len(keep) - keep.sum())
            if failed:
                stats.rows_abandoned += failed
                fail_cols.append(col)
                candidates = candidates[keep]
        if col > last_needed and len(candidates) == 0:
            # Ablation tail over zero qualified rows: nothing to count.
            break

    survivors = candidates
    stats.rows_emitted = len(survivors)

    # ------------------------------------------------------------ learning
    if learn and positional_map is not None:
        positional_map.record_row_offsets(to_chars(row_starts))
        learned_bound = min(fail_cols) if fail_cols else last_needed
        cols = [
            c
            for c in range(min(last_needed + 1, ncols))
            if c <= learned_bound and not positional_map.knows_column(c)
        ]
        positional_map.absorb_offsets(
            cols,
            [np.ascontiguousarray(to_chars(bounds[c][0])) for c in cols],
            [np.ascontiguousarray(to_chars(bounds[c][1])) for c in cols],
        )
    if positional_map is not None:
        positional_map.record_text_geometry(nbytes=len(data), nchars=nchars)

    # --------------------------------------------------------- materialize
    out_fields: dict[int, np.ndarray] = {}
    for col in wanted:
        if col in pred_values:
            values, rows = pred_values[col], pred_rows[col]
            if len(rows) != len(survivors):
                sel = np.searchsorted(rows, survivors)
                values = values[sel]
            out_fields[col] = values
        else:
            out_fields[col] = extract(col, survivors)

    return TokenizeResult(
        fields=out_fields,
        row_ids=survivors,
        stats=stats,
    )
