"""Selective CSV tokenization (paper section 3.2).

The adaptive loading operators never split whole rows when they do not have
to.  The tokenizer implemented here mirrors the three tricks the paper's
MonetDB operators use:

1. **Early abort** — while tokenizing a row, stop as soon as the last
   column the query needs has been located; fields to the right of it are
   never touched.
2. **Predicate pushdown** — when the WHERE clause is pushed into the load,
   each needed field is parsed and tested the moment it is tokenized, and
   the rest of the row is abandoned as soon as one conjunct fails.
3. **Learning** — every located row start and field start is offered to the
   file's :class:`~repro.flatfile.positions.PositionalMap`, and the map's
   existing knowledge is used to jump directly to (or near) a needed field
   instead of scanning from the start of the row.

Two routes implement those tricks:

* :func:`tokenize_columns` — the optimized fast path for plain delimited
  files.  It works over the file content as one Python string and uses
  ``str.find`` to locate delimiters, so its cost is proportional to the
  characters it actually scans — which is exactly the cost model the
  paper's experiments rely on (tokenizing fewer columns is genuinely
  cheaper).  It is only valid for dialects whose fields can never contain
  the delimiter or a newline (``FormatAdapter.supports_find_jump``).
* :func:`tokenize_dialect` — the dialect-generic route.  It dispatches to
  the fast path when the file's :class:`~repro.flatfile.dialects.
  FormatAdapter` allows it, and otherwise drives the adapter's own row
  framing and lazy field iteration with the same semantics: early abort
  still stops consuming a record after the last needed column, pushdown
  predicates still abandon rows at the first failing conjunct, and field
  spans (where the dialect defines them — quoted CSV and fixed-width do,
  JSON-lines does not) still feed the positional map.

A third route sits *above* both for cold scans over raw bytes:
:func:`tokenize_bytes` dispatches to the NumPy bulk-tokenization kernel
(:mod:`repro.flatfile.vectorized`) for dialects whose rows and fields are
framed by raw ASCII bytes (``FormatAdapter.supports_vectorized``), and
falls back to the scalar routes above — decoding the bytes first — when
the kernel is ineligible or declines (ragged rows, usable positional-map
anchors, non-ASCII fixed-width content).  The kernel's outputs, learned
offsets and work counters are exactly the scalar routes'; only the
per-byte interpreter cost disappears.

Quoted fields, escaped separators, JSON records and fixed-width records
are therefore supported through adapters; see :mod:`repro.flatfile.
dialects` for the dialect semantics and capability flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.errors import FlatFileError
from repro.flatfile.dialects import FormatAdapter, newline_row_bounds
from repro.flatfile.positions import PositionalMap

#: A pushdown predicate receives the raw field text and returns whether the
#: row may still qualify.  Parsing happens inside the callable so that the
#: tokenizer stays type-agnostic.
RawPredicate = Callable[[str], bool]


@dataclass
class TokenizerStats:
    """Work counters for one tokenization pass."""

    rows_scanned: int = 0
    rows_emitted: int = 0
    rows_abandoned: int = 0
    fields_tokenized: int = 0
    chars_scanned: int = 0

    def merge(self, other: "TokenizerStats") -> None:
        self.rows_scanned += other.rows_scanned
        self.rows_emitted += other.rows_emitted
        self.rows_abandoned += other.rows_abandoned
        self.fields_tokenized += other.fields_tokenized
        self.chars_scanned += other.chars_scanned


@dataclass
class TokenizeResult:
    """Output of one selective tokenization pass.

    ``fields[col]`` holds the text of column ``col`` for every emitted
    row, in row order — a plain list from the scalar routes, a NumPy
    string array from the vectorized kernel (downstream typed parsing
    converts whole arrays in bulk).  ``row_ids`` are the 0-based indices
    (within the tokenized range) of the emitted rows; when predicates
    filtered nothing, this is simply ``arange(rows_scanned)``.
    """

    fields: dict[int, Sequence[str]]
    row_ids: np.ndarray
    stats: TokenizerStats = field(default_factory=TokenizerStats)


#: Newline row framing, shared with the dialect layer (kept under its
#: historical private name for in-package callers).
_row_bounds = newline_row_bounds


def tokenize_columns(
    text: str,
    ncols: int,
    needed: Sequence[int],
    delimiter: str = ",",
    *,
    early_abort: bool = True,
    predicates: dict[int, RawPredicate] | None = None,
    positional_map: PositionalMap | None = None,
    learn: bool = True,
    skip_rows: int = 0,
) -> TokenizeResult:
    """Tokenize only the ``needed`` columns out of CSV ``text``.

    Parameters
    ----------
    text:
        Full file content (or one horizontal portion of it).
    ncols:
        Total number of columns each row is expected to have.  Rows with
        fewer fields than the tokenizer needs raise :class:`FlatFileError`.
    needed:
        Column indices to extract, in any order; duplicates are ignored.
    early_abort:
        Stop tokenizing each row after the last needed column (trick 1).
        Disabling this tokenizes every field of every row, which is the
        ablation baseline.
    predicates:
        Optional pushdown predicates per column index (trick 2).  A row is
        emitted only if every predicate returns True; evaluation happens in
        file order, so a failing early column spares all later work in
        that row.
    positional_map:
        Optional map to exploit and (when ``learn``) feed (trick 3).
    skip_rows:
        Number of leading data rows to skip (used to skip header lines).
    """
    if ncols <= 0:
        raise FlatFileError(f"ncols must be positive, got {ncols}")
    wanted = sorted(set(needed))
    if not wanted:
        raise FlatFileError("tokenize_columns called with no needed columns")
    if wanted[0] < 0 or wanted[-1] >= ncols:
        raise FlatFileError(f"needed columns {wanted} out of range for {ncols} columns")
    predicates = predicates or {}
    for col in predicates:
        if col not in wanted:
            raise FlatFileError(f"predicate on column {col} which is not tokenized")
    learn = learn and positional_map is not None

    stats = TokenizerStats()
    row_starts, row_ends = _row_bounds(text)
    if skip_rows:
        row_starts = row_starts[skip_rows:]
        row_ends = row_ends[skip_rows:]
    nrows = len(row_starts)
    stats.rows_scanned = nrows
    stats.chars_scanned += len(text)  # the pass over row boundaries

    if learn and positional_map is not None:
        positional_map.record_row_offsets(row_starts)

    # Choose, per needed column, the best anchor the map offers.  Anchors
    # are only usable when no pushdown predicate sits between anchor and
    # target on a *different* tokenization route; since we tokenize columns
    # left to right below, an anchor simply replaces scanning from the
    # previous needed column when it is closer.
    anchors: dict[int, tuple[int, np.ndarray]] = {}
    if positional_map is not None:
        for col in wanted:
            hit = positional_map.anchor_for(col)
            if hit is not None:
                anchors[col] = hit

    find = text.find
    out_fields: dict[int, list[str]] = {col: [] for col in wanted}
    out_rows: list[int] = []
    last_needed = wanted[-1]
    # Per-column offset collection for learning (only when the pass visits
    # every row unconditionally — predicate-abandoned rows still have their
    # earlier fields visited, so offsets collected before the failing
    # predicate remain valid for all rows).  Columns merely scanned *over*
    # on the way to a needed column are learned too: their delimiters are
    # located anyway, and remembering them lets a later query on those
    # columns take the selective-read fast path.
    learn_cols = range(min(last_needed + 1, ncols)) if learn else ()
    learned: dict[int, list[int]] = {col: [] for col in learn_cols}
    learned_ends: dict[int, list[int]] = {col: [] for col in learn_cols}

    for row_idx in range(nrows):
        row_start = int(row_starts[row_idx])
        row_end = int(row_ends[row_idx])
        pos = row_start
        cur_col = 0
        qualified = True
        extracted: dict[int, str] = {}
        for col in wanted:
            anchor = anchors.get(col)
            if anchor is not None:
                anchor_col, anchor_offsets = anchor
                if anchor_col >= cur_col:
                    target = int(anchor_offsets[row_idx])
                    if target >= pos:
                        pos = target
                        cur_col = anchor_col
            # scan forward from (cur_col, pos) to the start of `col`
            while cur_col < col:
                nxt = find(delimiter, pos, row_end)
                if nxt == -1:
                    raise FlatFileError(
                        f"row {row_idx} has fewer than {col + 1} fields"
                    )
                if learn and len(learned[cur_col]) == row_idx:
                    learned[cur_col].append(pos)
                    learned_ends[cur_col].append(nxt)
                stats.chars_scanned += nxt + 1 - pos
                stats.fields_tokenized += 1
                pos = nxt + 1
                cur_col += 1
            fend = find(delimiter, pos, row_end)
            if fend == -1:
                if cur_col != ncols - 1 and col != ncols - 1:
                    raise FlatFileError(
                        f"row {row_idx} has fewer than {ncols} fields"
                    )
                fend = row_end
            if learn and len(learned[col]) == row_idx:
                learned[col].append(pos)
                learned_ends[col].append(fend)
            value = text[pos:fend]
            stats.chars_scanned += fend - pos
            stats.fields_tokenized += 1
            extracted[col] = value
            pred = predicates.get(col)
            if pred is not None and not pred(value):
                qualified = False
                stats.rows_abandoned += 1
                break
            # stay positioned after this field for the next needed column
            if fend < row_end:
                pos = fend + 1
                cur_col = col + 1
            else:
                pos = row_end
                cur_col = ncols
        if not qualified:
            continue
        if not early_abort:
            # Ablation mode: tokenize the remainder of the row too.
            while cur_col < ncols - 1:
                nxt = find(delimiter, pos, row_end)
                if nxt == -1:
                    break
                stats.chars_scanned += nxt + 1 - pos
                stats.fields_tokenized += 1
                pos = nxt + 1
                cur_col += 1
            stats.chars_scanned += max(0, row_end - pos)
            if cur_col == ncols - 1:
                stats.fields_tokenized += 1
        for col, value in extracted.items():
            out_fields[col].append(value)
        out_rows.append(row_idx)
        stats.rows_emitted += 1

    if learn and positional_map is not None:
        for col, offsets in learned.items():
            if len(offsets) == nrows and not positional_map.knows_column(col):
                positional_map.record_field_offsets(
                    col,
                    np.asarray(offsets, dtype=np.int64),
                    np.asarray(learned_ends[col], dtype=np.int64),
                )

    return TokenizeResult(
        fields=out_fields,
        row_ids=np.asarray(out_rows, dtype=np.int64),
        stats=stats,
    )


def tokenize_dialect(
    text: str,
    adapter: FormatAdapter,
    ncols: int,
    needed: Sequence[int],
    *,
    early_abort: bool = True,
    predicates: dict[int, RawPredicate] | None = None,
    positional_map: PositionalMap | None = None,
    learn: bool = True,
    skip_rows: int = 0,
) -> TokenizeResult:
    """Tokenize the ``needed`` columns under any :class:`FormatAdapter`.

    Dispatches to :func:`tokenize_columns` when the adapter permits the
    ``str.find`` fast path, and otherwise runs the dialect-generic pass:
    the adapter frames rows and iterates raw fields lazily, fields are
    decoded to their logical values, and — for span-bearing dialects —
    raw-field character spans feed the positional map exactly like the
    fast path's delimiter offsets do.  The returned ``fields`` always
    hold *logical* (decoded) values under every adapter.
    """
    if adapter.supports_find_jump:
        return tokenize_columns(
            text,
            ncols=ncols,
            needed=needed,
            delimiter=adapter.delimiter,
            early_abort=early_abort,
            predicates=predicates,
            positional_map=positional_map,
            learn=learn,
            skip_rows=skip_rows,
        )
    if ncols <= 0:
        raise FlatFileError(f"ncols must be positive, got {ncols}")
    wanted = sorted(set(needed))
    if not wanted:
        raise FlatFileError("tokenize_dialect called with no needed columns")
    if wanted[0] < 0 or wanted[-1] >= ncols:
        raise FlatFileError(f"needed columns {wanted} out of range for {ncols} columns")
    predicates = predicates or {}
    for col in predicates:
        if col not in wanted:
            raise FlatFileError(f"predicate on column {col} which is not tokenized")
    learn = learn and positional_map is not None

    stats = TokenizerStats()
    row_starts, row_ends = adapter.row_bounds(text)
    if skip_rows:
        row_starts = row_starts[skip_rows:]
        row_ends = row_ends[skip_rows:]
    nrows = len(row_starts)
    stats.rows_scanned = nrows
    stats.chars_scanned += len(text)  # the framing pass touches everything

    if learn and positional_map is not None:
        positional_map.record_row_offsets(row_starts)

    spans_ok = adapter.supports_field_spans
    wanted_set = set(wanted)
    last_needed = wanted[-1]
    learn_cols = (
        range(min(last_needed + 1, ncols)) if (learn and spans_ok) else ()
    )
    learned: dict[int, list[int]] = {col: [] for col in learn_cols}
    learned_ends: dict[int, list[int]] = {col: [] for col in learn_cols}
    out_fields: dict[int, list[str]] = {col: [] for col in wanted}
    out_rows: list[int] = []

    for row_idx in range(nrows):
        row_start = int(row_starts[row_idx])
        row = text[row_start : int(row_ends[row_idx])]
        qualified = True
        extracted: dict[int, str] = {}
        nfields = 0
        if spans_ok:
            for fstart, fend, raw in adapter.iter_fields(row):
                col = nfields
                nfields += 1
                if learn and col in learned and len(learned[col]) == row_idx:
                    learned[col].append(row_start + fstart)
                    learned_ends[col].append(row_start + fend)
                stats.fields_tokenized += 1
                stats.chars_scanned += fend - fstart
                if col in wanted_set:
                    value = adapter.decode_field(raw)
                    extracted[col] = value
                    pred = predicates.get(col)
                    if pred is not None and not pred(value):
                        qualified = False
                        stats.rows_abandoned += 1
                        break
                if col >= last_needed:
                    # Fast-path parity: a needed field that runs to the
                    # end of a row with columns still owed means the row
                    # is short, even though no later field is touched.
                    if fend >= len(row) and col < ncols - 1:
                        raise FlatFileError(
                            f"row {row_idx} has fewer than {ncols} fields"
                        )
                    if early_abort:
                        break
        else:
            values = adapter.row_values(row)
            nfields = len(values)
            stats.fields_tokenized += nfields
            if nfields < ncols:
                raise FlatFileError(
                    f"row {row_idx} has fewer than {ncols} fields"
                )
            for col in wanted:
                value = values[col]
                extracted[col] = value
                pred = predicates.get(col)
                if pred is not None and not pred(value):
                    qualified = False
                    stats.rows_abandoned += 1
                    break
        if qualified and nfields <= last_needed:
            raise FlatFileError(
                f"row {row_idx} has fewer than {last_needed + 1} fields"
            )
        if not qualified:
            continue
        for col, value in extracted.items():
            out_fields[col].append(value)
        out_rows.append(row_idx)
        stats.rows_emitted += 1

    if learn and positional_map is not None:
        for col, offsets in learned.items():
            if len(offsets) == nrows and not positional_map.knows_column(col):
                positional_map.record_field_offsets(
                    col,
                    np.asarray(offsets, dtype=np.int64),
                    np.asarray(learned_ends[col], dtype=np.int64),
                )

    return TokenizeResult(
        fields=out_fields,
        row_ids=np.asarray(out_rows, dtype=np.int64),
        stats=stats,
    )


def tokenize_bytes(
    data: bytes,
    adapter: FormatAdapter,
    ncols: int,
    needed: Sequence[int],
    *,
    early_abort: bool = True,
    predicates: dict[int, RawPredicate] | None = None,
    positional_map: PositionalMap | None = None,
    learn: bool = True,
    skip_rows: int = 0,
    vectorized: bool = True,
) -> TokenizeResult:
    """Tokenize raw file bytes: vectorized kernel first, scalar fallback.

    The cold-scan entry point.  Dialects framed by raw ASCII bytes
    (``adapter.supports_vectorized``) go through the NumPy bulk kernel,
    which touches each byte once, in bulk, and never even decodes the
    file to a Python string on the pure-ASCII fast path.  Everything
    else — and any text the kernel declines (ragged rows, usable map
    anchors, non-ASCII fixed-width) — decodes once and takes the scalar
    routes, with identical outputs, learned offsets and work counters.
    ``vectorized=False`` forces the scalar path (the ablation/differential
    toggle surfaced as ``EngineConfig.vectorized_tokenizer``).
    """
    if vectorized and adapter.supports_vectorized:
        from repro.flatfile.vectorized import tokenize_vectorized

        result = tokenize_vectorized(
            data,
            adapter,
            ncols=ncols,
            needed=needed,
            early_abort=early_abort,
            predicates=predicates,
            positional_map=positional_map,
            learn=learn,
            skip_rows=skip_rows,
        )
        if result is not None:
            return result
    text = data.decode("utf-8")
    if positional_map is not None:
        positional_map.record_text_geometry(nbytes=len(data), nchars=len(text))
    return tokenize_dialect(
        text,
        adapter,
        ncols=ncols,
        needed=needed,
        early_abort=early_abort,
        predicates=predicates,
        positional_map=positional_map,
        learn=learn,
        skip_rows=skip_rows,
    )


#: Above this field width the padded gather matrix (nrows x maxlen) stops
#: paying for itself; fall back to direct per-slice extraction.
_GATHER_MAX_FIELD = 256


def bulk_extract_fields(
    data: bytes,
    starts: np.ndarray,
    lengths: np.ndarray,
    *,
    buf: np.ndarray | None = None,
    char_lengths: np.ndarray | None = None,
    ascii_only: bool | None = None,
    nul_free: bool = False,
) -> np.ndarray:
    """Bulk-slice ``data[starts[i] : starts[i] + lengths[i]]`` into strings.

    The shared extraction core of the selective-read gather and the
    vectorized tokenization kernel: one NumPy fancy-indexing step builds
    a ``(n, maxlen)`` NUL-padded byte matrix viewed as fixed-width
    bytes, converted to strings with a single ``S``→``U`` cast when the
    content is pure ASCII (no per-field decode at all) and with a C-level
    ``np.char.decode`` otherwise.  Fields wider than the padded matrix
    pays for (:data:`_GATHER_MAX_FIELD`) are sliced directly — one
    whole-window ASCII decode when possible, per-field UTF-8 otherwise.

    The fixed-width ``S`` view strips trailing NULs, which would truncate
    a field that legitimately ends in NUL bytes; unless the caller
    vouches the buffer is NUL-free, every decoded length is audited
    against ``char_lengths`` (``lengths`` when not given — byte lengths,
    so multi-byte fields are also caught) and mismatches are re-sliced
    exactly into an object-dtype batch.

    ``buf``/``ascii_only`` let a caller that already scanned the bytes
    (the kernel) skip recomputing them.
    """
    n = len(starts)
    if n == 0:
        return np.empty(0, dtype="U1")
    if (lengths < 0).any():
        raise FlatFileError("gather_fields: negative field length")
    maxlen = int(lengths.max())
    if maxlen == 0:
        return np.zeros(n, dtype="U1")
    if maxlen > _GATHER_MAX_FIELD:
        pairs = list(zip(starts.tolist(), lengths.tolist()))
        # One whole-buffer decode beats per-field decodes only when the
        # fields cover most of the buffer (the selective-read windows);
        # a single wide column of a big file decodes just its slices.
        if ascii_only is not False and 2 * int(lengths.sum()) >= len(data):
            try:
                text = data.decode("ascii")
                return np.array(
                    [text[s : s + ln] for s, ln in pairs], dtype=object
                )
            except UnicodeDecodeError:
                pass
        return np.array(
            [data[s : s + ln].decode("utf-8") for s, ln in pairs],
            dtype=object,
        )
    if buf is None:
        buf = np.frombuffer(data, dtype=np.uint8)
    if len(buf) == 0:
        raise FlatFileError("gather_fields: non-empty fields but empty buffer")
    offs = np.arange(maxlen, dtype=np.int64)
    idx = starts[:, None] + offs[None, :]
    np.clip(idx, 0, max(len(buf) - 1, 0), out=idx)
    chars = buf[idx]
    chars[offs[None, :] >= lengths[:, None]] = 0
    packed = np.ascontiguousarray(chars).view(f"S{maxlen}").ravel()
    if ascii_only is None:
        ascii_only = not bool((chars > 127).any())
    if ascii_only:
        out = packed.astype(f"U{maxlen}")
    else:
        out = np.char.decode(packed, "utf-8")
    if nul_free:
        return out
    expected = lengths if char_lengths is None else char_lengths
    bad = np.nonzero(np.char.str_len(out) != expected)[0]
    if len(bad):
        out = out.astype(object)
        for i in bad.tolist():
            s, ln = int(starts[i]), int(lengths[i])
            out[i] = data[s : s + ln].decode("utf-8")
    return out


def gather_fields(
    buffer: bytes, starts: np.ndarray, lengths: np.ndarray
) -> list[str]:
    """Extract ``buffer[starts[i] : starts[i] + lengths[i]]`` as strings.

    The selective-read fast path knows every field's byte range from the
    positional map, so no delimiter scanning happens at all: the fields
    are gathered out of the read windows by :func:`bulk_extract_fields`
    instead of a per-row Python loop.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if len(starts) == 0:
        return []
    return bulk_extract_fields(buffer, starts, lengths).tolist()


def split_rows(text: str, delimiter: str = ",") -> list[list[str]]:
    """Tokenize *everything* — the reference implementation.

    Used by tests as ground truth and by callers that genuinely need all
    fields (e.g. the full-load path could use it, though it goes through
    :func:`tokenize_columns` to share the accounting).
    """
    rows: list[list[str]] = []
    for line in text.split("\n"):
        line = line.rstrip("\r")
        if line:
            rows.append(line.split(delimiter))
    return rows
