"""Format adapters: real-world file dialects behind one substrate interface.

The paper's promise is "here are my data files" — *any* files — but the
original substrate only understood unquoted single-character-delimited
CSV.  A :class:`FormatAdapter` captures everything the adaptive machinery
needs to know about a dialect:

* **row framing** — where records begin and end in the decoded text
  (:meth:`~FormatAdapter.row_bounds`);
* **field tokenization** — how one record splits into raw fields with
  their character spans (:meth:`~FormatAdapter.iter_fields`);
* **positional-map offset semantics** — whether per-field spans are
  meaningful (:attr:`~FormatAdapter.supports_field_spans`) and how a raw
  span's text maps back to the logical value
  (:meth:`~FormatAdapter.decode_field`), so selective window reads can
  gather encoded bytes and decode them without a rescan;
* **raw-text round-trip** — :meth:`~FormatAdapter.encode_row` renders
  logical values back into the dialect, raising
  :class:`~repro.errors.FlatFileError` for values the dialect cannot
  represent instead of silently emitting a corrupt row.

Capability flags drive graceful degradation in the engine:

========================  ===================================================
``supports_find_jump``    the optimized ``str.find`` tokenizer fast path is
                          valid (single-char delimiter, no quoting/escaping)
``supports_partitioning``  raw newline bytes always terminate records, so
                          newline-aligned parallel partitions are safe
``supports_field_spans``  per-field character spans exist, enabling
                          positional-map learning and selective reads
``identity_decode``       raw field text *is* the logical value (no unquote
                          or unescape step)
``supports_vectorized``   rows and fields are framed by raw ASCII bytes
                          alone, so the NumPy bulk-tokenization kernel
                          (:mod:`repro.flatfile.vectorized`) may replace
                          the scalar scan (plain delimited, TSV and
                          fixed-width; quoted CSV needs a quote state
                          machine and JSON-lines has no spans)
========================  ===================================================

Concrete adapters: plain delimited (the original substrate), RFC-4180
quoted CSV (quoting, doubled quotes, embedded delimiters/newlines), TSV
with backslash escapes, JSON-lines, and fixed-width records.  A dialect
sniffer (:func:`sniff_format`) picks an adapter from a bounded sample and
refuses loudly — naming the explicit fallbacks — when the evidence is
ambiguous.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import FlatFileError, FormatDetectionError

#: Format names accepted by :func:`make_adapter` (and the CLI ``--format``).
FORMATS = ("csv", "quoted-csv", "tsv", "jsonl", "fixed-width")


def newline_row_bounds(text: str) -> tuple[np.ndarray, np.ndarray]:
    """Return (row_starts, row_ends) character offsets of non-empty lines.

    The shared framing rule of every newline-terminated dialect: rows end
    at ``\\n``, one trailing ``\\r`` is trimmed (CRLF input), and blank
    lines are skipped.
    """
    starts: list[int] = []
    ends: list[int] = []
    pos = 0
    n = len(text)
    while pos < n:
        nl = text.find("\n", pos)
        if nl == -1:
            nl = n
        end = nl
        if end > pos and text[end - 1] == "\r":
            end -= 1
        if end > pos:  # skip blank lines
            starts.append(pos)
            ends.append(end)
        pos = nl + 1
    return np.asarray(starts, dtype=np.int64), np.asarray(ends, dtype=np.int64)


def _iter_delimited(row: str, delimiter: str) -> Iterator[tuple[int, int, str]]:
    """Span-yielding field scan shared by the plain and TSV dialects."""
    pos = 0
    while True:
        nxt = row.find(delimiter, pos)
        if nxt == -1:
            yield pos, len(row), row[pos:]
            return
        yield pos, nxt, row[pos:nxt]
        pos = nxt + 1


class FormatAdapter:
    """Base class of all dialect adapters (see module docstring).

    Adapters are small picklable objects: parallel scan workers receive a
    snapshot of the file's adapter inside their :class:`ScanTask`.
    """

    name = "abstract"
    supports_find_jump = False
    supports_partitioning = True
    supports_field_spans = True
    identity_decode = False
    supports_vectorized = False

    # ------------------------------------------------------------- framing

    def row_bounds(self, text: str) -> tuple[np.ndarray, np.ndarray]:
        """Character spans of each record in ``text`` (newline framing)."""
        return newline_row_bounds(text)

    # ------------------------------------------------------------ tokenize

    def iter_fields(self, row: str) -> Iterator[tuple[int, int, str]]:
        """Yield ``(start, end, raw_text)`` per field of one record.

        Offsets are relative to the start of ``row``; ``raw_text`` is the
        *encoded* field (``row[start:end]``), which :meth:`decode_field`
        maps to the logical value.  Lazy by contract so early abort can
        stop consuming after the last needed column.
        """
        raise NotImplementedError

    def row_values(self, row: str) -> list[str]:
        """All logical field values of one record, in order."""
        return [self.decode_field(raw) for _, _, raw in self.iter_fields(row)]

    # -------------------------------------------------------------- decode

    def decode_field(self, raw: str) -> str:
        """Map one raw encoded field to its logical value."""
        return raw

    def decode_many(self, values):
        """Decode a batch of raw fields (list or NumPy string array).

        The identity-dialect fast path returns the batch untouched —
        including whole NumPy arrays from the vectorized kernel, so
        pure-ASCII plain-delimited content never pays a per-field decode.
        Non-identity dialects that the kernel supports override this
        with a bulk, array-in/array-out implementation; the base
        per-field loop only ever sees lists.
        """
        if self.identity_decode:
            return values
        return [self.decode_field(v) for v in values]

    # -------------------------------------------------------------- encode

    def encode_row(self, values: Sequence[str]) -> str:
        """Render logical values as one record (no trailing newline).

        Raises :class:`FlatFileError` when a value cannot be represented
        in this dialect — never silently emits a corrupt row.
        """
        raise NotImplementedError

    # ---------------------------------------------------------------- misc

    @property
    def embedded_header(self) -> list[str] | None:
        """Column names carried by the format itself (JSON-lines keys)."""
        return None

    def reset(self) -> None:
        """Forget any per-file learned state (file edited/invalidated)."""

    def describe(self) -> str:
        return self.name


@dataclass
class DelimitedAdapter(FormatAdapter):
    """The original substrate dialect: unquoted, single-char delimiter.

    Field values may not contain the delimiter or line breaks; in
    exchange, the ``str.find`` tokenizer fast path, positional-map column
    jumps and parallel newline-aligned partitioning are all valid.
    """

    delimiter: str = ","

    name = "csv"
    supports_find_jump = True
    supports_partitioning = True
    supports_field_spans = True
    identity_decode = True
    supports_vectorized = True

    def __post_init__(self) -> None:
        if len(self.delimiter) != 1 or self.delimiter in ("\n", "\r"):
            raise FlatFileError(
                f"delimiter must be a single character, got {self.delimiter!r}"
            )

    def describe(self) -> str:
        return f"{self.name}({self.delimiter!r})"

    def iter_fields(self, row: str) -> Iterator[tuple[int, int, str]]:
        return _iter_delimited(row, self.delimiter)

    def encode_row(self, values: Sequence[str]) -> str:
        d = self.delimiter
        for v in values:
            if d in v or "\n" in v or "\r" in v:
                raise FlatFileError(
                    f"value {v!r} contains the delimiter or a line break; the "
                    f"plain {d!r}-delimited dialect cannot represent it "
                    "(use the quoted-csv or tsv dialect)"
                )
        return d.join(values)


@dataclass
class QuotedCsvAdapter(FormatAdapter):
    """RFC-4180 CSV: optional double-quoted fields, ``\"\"`` escaping.

    Quoted fields may contain the delimiter, quotes and raw newlines, so
    row framing is quote-aware and newline-aligned partitioning is off.
    Field spans cover the *encoded* field (quotes included); selective
    window reads gather the encoded bytes and decode afterwards.
    """

    delimiter: str = ","

    name = "quoted-csv"
    supports_find_jump = False
    supports_partitioning = False
    supports_field_spans = True
    identity_decode = False

    def __post_init__(self) -> None:
        if len(self.delimiter) != 1 or self.delimiter in ('"', "\n", "\r"):
            raise FlatFileError(
                f"delimiter must be a single non-quote character, got {self.delimiter!r}"
            )

    def describe(self) -> str:
        return f"{self.name}({self.delimiter!r})"

    def row_bounds(self, text: str) -> tuple[np.ndarray, np.ndarray]:
        # The same leniency rule as :meth:`iter_fields`: a quote opens a
        # quoted field only at a *field start* (start of text, or right
        # after a delimiter or newline); a stray quote mid-field is data
        # and must not swallow the following newline.
        starts: list[int] = []
        ends: list[int] = []
        n = len(text)
        d = self.delimiter
        pos = 0
        row_start = 0
        in_quotes = False

        def close_row(end: int) -> None:
            if end > row_start and text[end - 1] == "\r":
                end -= 1
            if end > row_start:
                starts.append(row_start)
                ends.append(end)

        while pos < n:
            if in_quotes:
                q = text.find('"', pos)
                if q == -1:
                    raise FlatFileError(
                        "unterminated quoted field at end of file"
                    )
                if text[q + 1 : q + 2] == '"':
                    pos = q + 2
                    continue
                in_quotes = False
                pos = q + 1
                continue
            nl = text.find("\n", pos)
            q = text.find('"', pos)
            while q != -1 and (nl == -1 or q < nl):
                if q == 0 or text[q - 1] in (d, "\n"):
                    break  # field-start quote: opens a quoted field
                q = text.find('"', q + 1)  # mid-field quote: plain data
            if q != -1 and (nl == -1 or q < nl):
                in_quotes = True
                pos = q + 1
                continue
            if nl == -1:
                break
            close_row(nl)
            row_start = nl + 1
            pos = nl + 1
        if in_quotes:
            raise FlatFileError("unterminated quoted field at end of file")
        if row_start < n:
            close_row(n)
        return (
            np.asarray(starts, dtype=np.int64),
            np.asarray(ends, dtype=np.int64),
        )

    def iter_fields(self, row: str) -> Iterator[tuple[int, int, str]]:
        d = self.delimiter
        n = len(row)
        pos = 0
        while True:
            start = pos
            if pos < n and row[pos] == '"':
                i = pos + 1
                while True:
                    q = row.find('"', i)
                    if q == -1:
                        raise FlatFileError("unterminated quoted field")
                    if row[q + 1 : q + 2] == '"':
                        i = q + 2
                        continue
                    break
                fend = q + 1
                if fend < n and row[fend] != d:
                    raise FlatFileError(
                        f"unexpected character {row[fend]!r} after closing quote"
                    )
                yield start, fend, row[start:fend]
                if fend >= n:
                    return
                pos = fend + 1
            else:
                nxt = row.find(d, pos)
                if nxt == -1:
                    yield start, n, row[start:]
                    return
                yield start, nxt, row[start:nxt]
                pos = nxt + 1

    def decode_field(self, raw: str) -> str:
        if len(raw) >= 2 and raw.startswith('"') and raw.endswith('"'):
            return raw[1:-1].replace('""', '"')
        return raw

    def encode_row(self, values: Sequence[str]) -> str:
        d = self.delimiter
        out = []
        for v in values:
            if d in v or '"' in v or "\n" in v or "\r" in v:
                out.append('"' + v.replace('"', '""') + '"')
            else:
                out.append(v)
        return d.join(out)


#: Escape table of the TSV dialect (backslash escapes, both directions).
_TSV_UNESCAPE = {"\\": "\\", "t": "\t", "n": "\n", "r": "\r"}


@dataclass
class TsvAdapter(FormatAdapter):
    """Tab-separated values with backslash escapes (``\\t \\n \\r \\\\``).

    Literal tabs/newlines inside values are always escaped, so raw tab
    bytes only ever separate fields and raw newline bytes only ever
    terminate records — framing stays line-based and newline-aligned
    partitioning stays safe.  The ``str.find`` fast path is off because
    raw field text needs the unescape step.
    """

    name = "tsv"
    delimiter = "\t"
    supports_find_jump = False
    supports_partitioning = True
    supports_field_spans = True
    identity_decode = False
    supports_vectorized = True

    def iter_fields(self, row: str) -> Iterator[tuple[int, int, str]]:
        return _iter_delimited(row, "\t")

    def decode_many(self, values):
        """Bulk unescape: untouched fields (the common case) never loop."""
        if isinstance(values, np.ndarray):
            if len(values) == 0:
                return values
            if values.dtype.kind == "U":
                escaped = np.char.find(values, "\\") >= 0
                if not escaped.any():
                    return values
                out = values.astype(object)
            else:
                out = values.astype(object)
                escaped = np.fromiter(
                    ("\\" in v for v in out), dtype=bool, count=len(out)
                )
            for i in np.nonzero(escaped)[0].tolist():
                out[i] = self.decode_field(str(out[i]))
            return out
        return [self.decode_field(v) for v in values]

    def decode_field(self, raw: str) -> str:
        if "\\" not in raw:
            return raw
        out: list[str] = []
        i = 0
        n = len(raw)
        while i < n:
            ch = raw[i]
            if ch == "\\" and i + 1 < n:
                mapped = _TSV_UNESCAPE.get(raw[i + 1])
                if mapped is not None:
                    out.append(mapped)
                    i += 2
                    continue
            out.append(ch)
            i += 1
        return "".join(out)

    def encode_row(self, values: Sequence[str]) -> str:
        return "\t".join(
            v.replace("\\", "\\\\")
            .replace("\t", "\\t")
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            for v in values
        )


def _json_scalar_to_text(value, context: str) -> str:
    """Render one JSON scalar the way the flat-file parser round-trips it."""
    if isinstance(value, str):
        return value
    if isinstance(value, bool):  # before int: bool is an int subclass
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if value is None:
        return ""
    raise FlatFileError(
        f"nested JSON value in {context}: the engine's columns are scalar"
    )


@dataclass
class JsonLinesAdapter(FormatAdapter):
    """One JSON object (or array) per line.

    Objects carry their own column names: the first parsed object fixes
    the key order for the whole file (recorded in :attr:`columns`, which
    also rides into parallel scan workers so every partition agrees).
    JSON escapes newlines inside strings, so framing stays line-based and
    partitioning is safe; per-field character spans are not meaningful,
    so the positional map keeps row framing only and selective reads
    degrade to full scans.
    """

    columns: tuple[str, ...] | None = None

    name = "jsonl"
    supports_find_jump = False
    supports_partitioning = True
    supports_field_spans = False
    identity_decode = True

    def row_values(self, row: str) -> list[str]:
        try:
            obj = json.loads(row)
        except ValueError as exc:
            raise FlatFileError(f"invalid JSON line: {exc}") from exc
        if isinstance(obj, dict):
            if self.columns is None:
                self.columns = tuple(obj.keys())
            if set(obj) != set(self.columns):
                raise FlatFileError(
                    f"JSON line keys {sorted(obj)} do not match the file's "
                    f"columns {sorted(self.columns)}"
                )
            return [
                _json_scalar_to_text(obj[k], f"column {k!r}")
                for k in self.columns
            ]
        if isinstance(obj, list):
            return [
                _json_scalar_to_text(v, f"index {i}") for i, v in enumerate(obj)
            ]
        raise FlatFileError(
            "JSON line is neither an object nor an array"
        )

    def iter_fields(self, row: str) -> Iterator[tuple[int, int, str]]:
        # Spans are not meaningful for JSON-lines; callers honouring
        # ``supports_field_spans`` use :meth:`row_values` instead.
        for value in self.row_values(row):
            yield 0, 0, value

    @property
    def embedded_header(self) -> list[str] | None:
        return list(self.columns) if self.columns is not None else None

    def reset(self) -> None:
        self.columns = None

    def encode_row(self, values: Sequence[str]) -> str:
        # Values are encoded as JSON strings (not sniffed back into
        # numbers): the raw text of every field round-trips exactly.
        if self.columns is not None:
            if len(values) != len(self.columns):
                raise FlatFileError(
                    f"row has {len(values)} values for {len(self.columns)} columns"
                )
            payload: object = {k: v for k, v in zip(self.columns, values)}
        else:
            payload = list(values)
        return json.dumps(payload, ensure_ascii=False)


@dataclass
class FixedWidthAdapter(FormatAdapter):
    """Fixed-width records: each field owns a fixed character width.

    Values are left-aligned and right-padded with spaces; decoding strips
    the padding.  Values wider than their field, with trailing spaces, or
    containing line breaks are unrepresentable and raise on encode.
    """

    widths: tuple[int, ...]

    name = "fixed-width"
    supports_find_jump = False
    supports_partitioning = True
    supports_field_spans = True
    identity_decode = False
    supports_vectorized = True

    def __post_init__(self) -> None:
        self.widths = tuple(int(w) for w in self.widths)
        if not self.widths or any(w <= 0 for w in self.widths):
            raise FlatFileError(
                f"fixed-width field widths must be positive, got {self.widths!r}"
            )

    def describe(self) -> str:
        return f"{self.name}({','.join(map(str, self.widths))})"

    @property
    def row_chars(self) -> int:
        return sum(self.widths)

    def iter_fields(self, row: str) -> Iterator[tuple[int, int, str]]:
        if len(row) != self.row_chars:
            raise FlatFileError(
                f"fixed-width row has {len(row)} characters, "
                f"expected {self.row_chars}"
            )
        pos = 0
        for w in self.widths:
            yield pos, pos + w, row[pos : pos + w]
            pos += w

    def decode_field(self, raw: str) -> str:
        return raw.rstrip(" ")

    def decode_many(self, values):
        """Bulk de-pad: one vectorized rstrip instead of a Python loop.

        Array in, array out — the kernel indexes the result with NumPy
        row selections, so the object-dtype batches (NUL-trailing
        fields) must stay arrays too.
        """
        if isinstance(values, np.ndarray):
            if len(values) == 0:
                return values
            if values.dtype.kind == "U":
                return np.char.rstrip(values, " ")
            return np.array(
                [self.decode_field(str(v)) for v in values], dtype=object
            )
        return [self.decode_field(v) for v in values]

    def encode_row(self, values: Sequence[str]) -> str:
        if len(values) != len(self.widths):
            raise FlatFileError(
                f"row has {len(values)} values for {len(self.widths)} "
                "fixed-width fields"
            )
        parts = []
        for v, w in zip(values, self.widths):
            if "\n" in v or "\r" in v:
                raise FlatFileError(
                    f"value {v!r} contains a line break; the fixed-width "
                    "dialect cannot represent it"
                )
            if len(v) > w:
                raise FlatFileError(
                    f"value {v!r} is wider than its fixed-width field ({w})"
                )
            if v != v.rstrip(" "):
                raise FlatFileError(
                    f"value {v!r} has trailing spaces; the fixed-width "
                    "dialect cannot represent them"
                )
            parts.append(v.ljust(w))
        return "".join(parts)


# ---------------------------------------------------------------------------
# adapter factory + dialect sniffing
# ---------------------------------------------------------------------------


def make_adapter(
    format: str | None = None,
    delimiter: str = ",",
    fixed_widths: Sequence[int] | None = None,
) -> FormatAdapter | None:
    """Build the adapter for an explicit format choice.

    ``None`` and ``"csv"`` mean the original plain delimited substrate;
    ``"auto"`` returns ``None`` — the caller defers to :func:`sniff_format`
    on first real use of the file.
    """
    if format is None or format == "csv":
        return DelimitedAdapter(delimiter)
    if format == "auto":
        return None
    if format == "quoted-csv":
        return QuotedCsvAdapter(delimiter)
    if format == "tsv":
        return TsvAdapter()
    if format == "jsonl":
        return JsonLinesAdapter()
    if format == "fixed-width":
        if not fixed_widths:
            raise FlatFileError(
                "the fixed-width format needs explicit field widths "
                "(fixed_widths=..., or --fixed-widths on the CLI)"
            )
        return FixedWidthAdapter(tuple(fixed_widths))
    raise FlatFileError(
        f"unknown format {format!r}; expected one of {FORMATS} or 'auto'"
    )


#: Delimiters the sniffer considers, in priority order.
_SNIFF_DELIMITERS = (",", "\t", ";", "|")

#: How many sample lines the sniffer inspects at most.
_SNIFF_LINES = 64


def _count_outside_quotes(line: str, delimiter: str) -> tuple[int, bool]:
    """``(count, quoted_fields)`` for one line under one delimiter.

    ``count`` is the number of ``delimiter`` occurrences outside
    double-quoted regions; ``quoted_fields`` is True when at least one
    field *starts* with a quote.  The distinction matters: a stray quote
    mid-field (``5"2``) is data, not RFC-4180 quoting, and treating it
    as quoting would silently swallow delimiters and newlines.
    """
    count = 0
    quoted_fields = False
    in_quotes = False
    field_start = True
    i = 0
    n = len(line)
    while i < n:
        ch = line[i]
        if ch == '"':
            if field_start and not in_quotes:
                quoted_fields = True
                in_quotes = True
            elif in_quotes:
                if line[i + 1 : i + 2] == '"':
                    i += 2
                    continue
                in_quotes = False
            field_start = False
        elif ch == delimiter and not in_quotes:
            count += 1
            field_start = True
        else:
            field_start = False
        i += 1
    return count, quoted_fields


def _is_json_record(line: str) -> bool:
    stripped = line.lstrip()
    if not stripped or stripped[0] not in "{[":
        return False
    try:
        obj = json.loads(line)
    except ValueError:
        return False
    return isinstance(obj, (dict, list))


def _infer_fixed_widths(lines: list[str]) -> tuple[int, ...] | None:
    """Infer fixed-width field boundaries from all-space column runs.

    Needs at least two equal-length lines whose shared space columns
    split every line into two or more fields; anything less is not
    evidence enough to call the file fixed-width.
    """
    if len(lines) < 2:
        return None
    length = len(lines[0])
    if length < 2 or any(len(ln) != length for ln in lines):
        return None
    common_space = [
        i for i in range(length) if all(ln[i] == " " for ln in lines)
    ]
    if not common_space:
        return None
    space_set = set(common_space)
    # A field starts right after each maximal run of shared space columns.
    field_starts = [0] + [
        i + 1 for i in common_space if i + 1 < length and i + 1 not in space_set
    ]
    if len(field_starts) < 2:
        return None
    bounds = field_starts + [length]
    return tuple(b - a for a, b in zip(bounds, bounds[1:]))


def sniff_format(sample: str, source: str = "file") -> FormatAdapter:
    """Pick an adapter from a bounded text sample, or refuse loudly.

    The decision procedure, in order: JSON-lines when every sample line
    parses as a JSON object/array; otherwise the unique delimiter among
    ``, \\t ; |`` with a consistent non-zero per-line count — under the
    quote-aware count when fields genuinely *start* with quotes (quoted
    CSV), else under the naive count (TSV escape dialect for tabs,
    plain delimited otherwise; a stray quote mid-field is data, never
    quoting evidence); otherwise single-column quoted text when every
    line opens with a quote; otherwise fixed-width when shared space
    columns align across equal-length lines; otherwise a single-column
    plain file — but only when no delimiter character occurs at all.
    Everything else refuses: empty files, ambiguity (two consistent
    delimiters) and inconsistent delimiter counts (free text) raise
    :class:`~repro.errors.FormatDetectionError` telling the caller to
    pass an explicit ``--format``/``--delimiter``.
    """
    lines = [ln.rstrip("\r") for ln in sample.split("\n")]
    lines = [ln for ln in lines if ln][:_SNIFF_LINES]
    if not lines:
        raise FormatDetectionError(
            f"cannot sniff the format of {source}: the file is empty; "
            "pass an explicit --format/--delimiter (attach(..., format=...))"
        )
    if all(_is_json_record(ln) for ln in lines):
        return JsonLinesAdapter()
    # Per candidate delimiter, decide which *interpretation* survives the
    # whole sample: quoted (quote-aware counts consistent AND fields
    # actually start with quotes) or plain (naive counts consistent).  A
    # stray quote mid-field is data, so it never flips a file to quoted.
    consistent: list[tuple[str, bool]] = []
    for d in _SNIFF_DELIMITERS:
        aware = [_count_outside_quotes(ln, d) for ln in lines]
        counts = [c for c, _ in aware]
        boundary_quotes = any(q for _, q in aware)
        if boundary_quotes and counts[0] > 0 and all(c == counts[0] for c in counts):
            consistent.append((d, True))
            continue
        naive = [ln.count(d) for ln in lines]
        if naive[0] > 0 and all(c == naive[0] for c in naive):
            consistent.append((d, False))
    if len(consistent) > 1:
        names = [d for d, _ in consistent]
        raise FormatDetectionError(
            f"ambiguous delimiter in {source}: candidates {names!r} all "
            "split the sample consistently; pass an explicit --delimiter or "
            "--format (attach(..., delimiter=...) / attach(..., format=...))"
        )
    if consistent:
        d, quoted = consistent[0]
        if quoted:
            return QuotedCsvAdapter(d)
        if d == "\t":
            return TsvAdapter()
        return DelimitedAdapter(d)
    if all(ln.startswith('"') for ln in lines):
        # Single-column quoted text ("a b" per line): no delimiter, but
        # quoting is strong evidence against plain/fixed-width framing.
        return QuotedCsvAdapter(",")
    widths = _infer_fixed_widths(lines)
    if widths is not None:
        return FixedWidthAdapter(widths)
    seen = [d for d in _SNIFF_DELIMITERS if any(d in ln for ln in lines)]
    if seen:
        # Delimiter characters occur but never consistently: free text,
        # a ragged file, or a dialect we don't know.  Guessing here
        # would split some rows and not others — refuse instead.
        raise FormatDetectionError(
            f"no consistent delimiter in {source}: {seen!r} appear but "
            "with varying per-line counts; pass an explicit --delimiter "
            "or --format (attach(..., delimiter=...) / "
            "attach(..., format=...))"
        )
    # No delimiter anywhere: a single-column plain file.
    return DelimitedAdapter(",")
