"""Deterministic flat-file writing for datasets and split files.

The workload generator, the oracle harness and the split-file (file
cracking) machinery all need to materialize columnar data as flat text.
Writing goes through one function so the dialect is guaranteed to match
what the tokenizer reads back: every row is rendered by a
:class:`~repro.flatfile.dialects.FormatAdapter`, and a value the dialect
cannot represent raises :class:`~repro.errors.FlatFileError` instead of
silently emitting a corrupt row (the plain delimited dialect refuses
values containing the delimiter or a line break; quoted CSV quotes them;
TSV escapes them; fixed-width refuses over-wide values).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.errors import FlatFileError
from repro.flatfile.dialects import (
    DelimitedAdapter,
    FormatAdapter,
    JsonLinesAdapter,
    make_adapter,
)


def format_value(value) -> str:
    """Render one value the way the tokenizer/parser round-trips it."""
    if isinstance(value, (np.floating, float)):
        return repr(float(value))
    if isinstance(value, (np.integer, int)):
        return str(int(value))
    return str(value)


def _resolve_adapter(
    adapter: FormatAdapter | str | None, delimiter: str
) -> FormatAdapter:
    if isinstance(adapter, FormatAdapter):
        return adapter
    resolved = make_adapter(adapter, delimiter)
    if resolved is None:  # "auto" makes no sense when writing
        raise FlatFileError("cannot write with format='auto'; pick a dialect")
    return resolved


def write_csv(
    path: Path | str,
    columns: Sequence[np.ndarray | Sequence],
    header: Sequence[str] | None = None,
    delimiter: str = ",",
    adapter: FormatAdapter | str | None = None,
) -> Path:
    """Write columnar data as flat text and return the path.

    ``columns`` is a list of equal-length arrays (column-major input,
    row-major output — the mismatch the whole paper is about).
    ``adapter`` selects the dialect (an adapter instance or a format
    name); the default is the plain delimited dialect, which raises
    :class:`FlatFileError` on values it cannot represent.
    """
    path = Path(path)
    if not columns:
        raise FlatFileError("write_csv needs at least one column")
    nrows = len(columns[0])
    for i, col in enumerate(columns):
        if len(col) != nrows:
            raise FlatFileError(
                f"column 0 has {nrows} rows but column {i} has {len(col)}"
            )
    adapter = _resolve_adapter(adapter, delimiter)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="") as f:
        if header is not None:
            if len(header) != len(columns):
                raise FlatFileError(
                    f"header has {len(header)} names for {len(columns)} columns"
                )
            if isinstance(adapter, JsonLinesAdapter):
                # JSON-lines carries names as per-row keys, not a line.
                adapter.columns = tuple(header)
            else:
                f.write(adapter.encode_row(list(header)) + "\n")
        plain = isinstance(adapter, DelimitedAdapter)
        all_int = plain and all(
            isinstance(c, np.ndarray) and c.dtype.kind in "iu" for c in columns
        )
        if all_int:
            # Fast path for the paper's pure-integer tables (digits can
            # never collide with a delimiter, so no per-value checks).
            cols_txt = [c.astype("U21") for c in columns]
            for row in zip(*cols_txt):
                f.write(adapter.delimiter.join(row) + "\n")
        else:
            for row in zip(*columns):
                f.write(
                    adapter.encode_row([format_value(v) for v in row]) + "\n"
                )
    return path


def write_rows(
    path: Path | str,
    rows: Iterable[Sequence],
    delimiter: str = ",",
    adapter: FormatAdapter | str | None = None,
) -> Path:
    """Write row-major data as flat text (convenience for tests/baselines)."""
    path = Path(path)
    adapter = _resolve_adapter(adapter, delimiter)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="") as f:
        for row in rows:
            f.write(adapter.encode_row([format_value(v) for v in row]) + "\n")
    return path
