"""Deterministic CSV writing for datasets and split files.

The workload generator and the split-file (file cracking) machinery both
need to materialize columnar data as flat text.  Writing goes through one
function so the dialect (no quoting, ``\\n`` line endings, UTF-8) is
guaranteed to match what the tokenizer expects to read back.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.errors import FlatFileError


def format_value(value) -> str:
    """Render one value the way the tokenizer/parser round-trips it."""
    if isinstance(value, (np.floating, float)):
        return repr(float(value))
    if isinstance(value, (np.integer, int)):
        return str(int(value))
    return str(value)


def write_csv(
    path: Path | str,
    columns: Sequence[np.ndarray | Sequence],
    header: Sequence[str] | None = None,
    delimiter: str = ",",
) -> Path:
    """Write columnar data as CSV and return the path.

    ``columns`` is a list of equal-length arrays (column-major input,
    row-major output — the mismatch the whole paper is about).
    """
    path = Path(path)
    if not columns:
        raise FlatFileError("write_csv needs at least one column")
    nrows = len(columns[0])
    for i, col in enumerate(columns):
        if len(col) != nrows:
            raise FlatFileError(
                f"column 0 has {nrows} rows but column {i} has {len(col)}"
            )
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="") as f:
        if header is not None:
            if len(header) != len(columns):
                raise FlatFileError(
                    f"header has {len(header)} names for {len(columns)} columns"
                )
            f.write(delimiter.join(header) + "\n")
        all_int = all(
            isinstance(c, np.ndarray) and c.dtype.kind in "iu" for c in columns
        )
        if all_int:
            # Fast path for the paper's pure-integer tables.
            cols_txt = [c.astype("U21") for c in columns]
            for row in zip(*cols_txt):
                f.write(delimiter.join(row) + "\n")
        else:
            for row in zip(*columns):
                f.write(delimiter.join(format_value(v) for v in row) + "\n")
    return path


def write_rows(
    path: Path | str,
    rows: Iterable[Sequence],
    delimiter: str = ",",
) -> Path:
    """Write row-major data as CSV (convenience for tests/baselines)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="") as f:
        for row in rows:
            f.write(delimiter.join(format_value(v) for v in row) + "\n")
    return path
