"""Typed parsing of tokenized fields into NumPy arrays.

Tokenization (locating field boundaries) and parsing (converting field text
into typed values) are separate costs in the paper's analysis, and they are
separate functions here.  ``parse_fields`` is the single choke point where
raw strings become columnar arrays, so the per-value conversion cost — the
thing a DBMS pays once at load time and a scripting tool pays on every
query — is centralised and measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import FlatFileError
from repro.flatfile.schema import DataType


@dataclass
class ParseStats:
    """Counter of typed conversions performed."""

    values_parsed: int = 0

    def merge(self, other: "ParseStats") -> None:
        self.values_parsed += other.values_parsed


def parse_fields(
    raw: Sequence[str],
    dtype: DataType,
    stats: ParseStats | None = None,
) -> np.ndarray:
    """Convert raw field strings into a typed NumPy array.

    Raises :class:`FlatFileError` on the first unparseable value, naming
    the value — silent coercion would corrupt query answers.

    When ``raw`` is already a NumPy string array (the vectorized
    tokenization kernel's output), the conversion is one bulk ``astype``
    over the whole column.  NumPy's str→int64/float64 casts apply the
    same Python-level ``int()``/``float()`` parsing rules as the scalar
    loop, so acceptance, values and the widening ladder's trigger points
    are identical — only the per-value interpreter dispatch disappears.
    """
    if stats is not None:
        stats.values_parsed += len(raw)
    try:
        if isinstance(raw, np.ndarray) and raw.dtype.kind in ("U", "O"):
            if dtype is DataType.INT64:
                return raw.astype(np.int64)
            if dtype is DataType.FLOAT64:
                return raw.astype(np.float64)
            return raw.astype(object)
        if dtype is DataType.INT64:
            return np.array([int(v) for v in raw], dtype=np.int64)
        if dtype is DataType.FLOAT64:
            return np.array([float(v) for v in raw], dtype=np.float64)
        return np.array(list(raw), dtype=object)
    except ValueError as exc:
        raise FlatFileError(f"cannot parse field as {dtype.value}: {exc}") from exc


def parse_single(text: str, dtype: DataType):
    """Parse one scalar field (used by pushdown predicates and baselines)."""
    if dtype is DataType.INT64:
        return int(text)
    if dtype is DataType.FLOAT64:
        return float(text)
    return text
