"""Schema representation and automatic schema detection (paper section 5.6).

When the user links a flat file to the engine, a schema must exist before
the first query can be planned.  The paper's strategy is the simple one we
implement here: each flat file maps to one table, tokenize a sample of rows,
each field becomes an attribute, and the type of every attribute is the
narrowest of ``int64`` / ``float64`` / ``str`` that accepts all sampled
values.  Inference happens once, lazily, the first time a query touches the
file — never as an explicit user step.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SchemaInferenceError


class DataType(enum.Enum):
    """Logical column types supported by the engine."""

    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "str"

    @property
    def numpy_dtype(self) -> np.dtype:
        if self is DataType.INT64:
            return np.dtype(np.int64)
        if self is DataType.FLOAT64:
            return np.dtype(np.float64)
        return np.dtype(object)

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT64, DataType.FLOAT64)


#: The widening ladder for values an inferred type cannot represent:
#: int64 → float64 → str.  Shared by the serial loader, the pushdown
#: predicates and the parallel partition workers so every code path walks
#: the same ladder and partitioned scans converge on the same final type.
WIDENS_TO: dict[DataType, DataType] = {
    DataType.INT64: DataType.FLOAT64,
    DataType.FLOAT64: DataType.STRING,
}

#: Rank of each type on the ladder (higher = wider); lets mergers of
#: independently-widened partition schemas pick the widest outcome.
WIDTH_RANK: dict[DataType, int] = {
    DataType.INT64: 0,
    DataType.FLOAT64: 1,
    DataType.STRING: 2,
}


def widest(dtypes) -> DataType:
    """The widest of the given types under the widening ladder."""
    return max(dtypes, key=WIDTH_RANK.__getitem__)


@dataclass(frozen=True)
class ColumnSchema:
    """Name and type of one attribute of a flat-file table."""

    name: str
    dtype: DataType


@dataclass
class TableSchema:
    """Ordered attribute list of one table (equivalently: one flat file)."""

    columns: list[ColumnSchema] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaInferenceError(f"duplicate column names in schema: {names}")

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    @property
    def names(self) -> list[str]:
        return [c.name for c in self.columns]

    def index_of(self, name: str) -> int:
        """Return the position of column ``name`` (case-insensitive)."""
        lowered = name.lower()
        for i, col in enumerate(self.columns):
            if col.name.lower() == lowered:
                return i
        raise KeyError(name)

    def column(self, name: str) -> ColumnSchema:
        return self.columns[self.index_of(name)]

    def dtype_of(self, name: str) -> DataType:
        return self.column(name).dtype


def classify_value(text: str) -> DataType:
    """Return the narrowest type that parses ``text``.

    Empty fields classify as STRING: the engine has no NULL concept (the
    paper's workloads do not need one) so an empty field forces the column
    to be textual rather than silently inventing a sentinel.
    """
    if not text:
        return DataType.STRING
    try:
        int(text)
        return DataType.INT64
    except ValueError:
        pass
    try:
        float(text)
        return DataType.FLOAT64
    except ValueError:
        return DataType.STRING


def classify_column(values) -> DataType:
    """The narrowest type accepting *every* value, in two bulk casts.

    Equivalent to folding :func:`classify_value` over the column with
    :func:`unify_types`, but vectorized: NumPy's str→int64/float64 casts
    apply the same ``int()``/``float()`` acceptance rules per element, so
    one whole-column ``astype`` replaces the per-value classify loop
    (empty fields fail both casts and classify as STRING, exactly like
    the scalar rule).
    """
    arr = np.asarray(values if len(values) else [""], dtype=object)
    try:
        arr.astype(np.int64)
        return DataType.INT64
    except ValueError:
        pass
    except OverflowError:
        # A value that is a valid int but exceeds int64: the bulk cast
        # cannot tell whether *other* values are ints at all, so fall
        # back to the exact per-value fold for this (rare) column.
        col_type = classify_value(str(arr[0]))
        for v in arr[1:]:
            col_type = unify_types(col_type, classify_value(str(v)))
            if col_type is DataType.STRING:
                break
        return col_type
    try:
        arr.astype(np.float64)
        return DataType.FLOAT64
    except ValueError:
        return DataType.STRING


_WIDENING = {
    (DataType.INT64, DataType.FLOAT64): DataType.FLOAT64,
    (DataType.FLOAT64, DataType.INT64): DataType.FLOAT64,
}


def unify_types(a: DataType, b: DataType) -> DataType:
    """Return the narrowest type accepting values of both ``a`` and ``b``."""
    if a is b:
        return a
    return _WIDENING.get((a, b), DataType.STRING)


def default_column_names(n: int) -> list[str]:
    """Paper-style default attribute names: a1, a2, ... aN."""
    return [f"a{i + 1}" for i in range(n)]


def infer_schema(
    sample_rows: list[list[str]],
    header: list[str] | None = None,
) -> TableSchema:
    """Infer a :class:`TableSchema` from tokenized sample rows.

    Parameters
    ----------
    sample_rows:
        Rows already split into raw field strings (no type conversion).
        All rows must have the same arity; a ragged sample is an error the
        user should hear about rather than a guess.
    header:
        Optional column names from a header line.  When absent the paper's
        ``a1..aN`` convention is used.
    """
    if not sample_rows:
        raise SchemaInferenceError("cannot infer a schema from an empty sample")
    width = len(sample_rows[0])
    if width == 0:
        raise SchemaInferenceError("sample rows have zero fields")
    for i, row in enumerate(sample_rows):
        if len(row) != width:
            raise SchemaInferenceError(
                f"ragged sample: row 0 has {width} fields but row {i} has {len(row)}"
            )
    names = header if header is not None else default_column_names(width)
    if len(names) != width:
        raise SchemaInferenceError(
            f"header has {len(names)} names but rows have {width} fields"
        )
    types = [
        classify_column([row[col] for row in sample_rows])
        for col in range(width)
    ]
    return TableSchema([ColumnSchema(n, t) for n, t in zip(names, types)])


def merge_schemas(base: TableSchema, other: TableSchema) -> TableSchema:
    """Unify two part-file schemas of one multi-file table.

    Part files must agree on shape — same column count, same names
    (case-insensitive; headerless parts all get ``a1..aN`` so they agree
    by construction) — while per-column types unify to the widest of the
    two under the shared widening ladder, exactly as independently
    widened partition schemas merge.  The base's casing wins.
    """
    if len(base) != len(other):
        raise SchemaInferenceError(
            f"part files disagree on column count: {len(base)} vs {len(other)}"
        )
    columns = []
    for b, o in zip(base.columns, other.columns):
        if b.name.lower() != o.name.lower():
            raise SchemaInferenceError(
                f"part files disagree on column names: {b.name!r} vs {o.name!r}"
            )
        columns.append(ColumnSchema(b.name, widest([b.dtype, o.dtype])))
    return TableSchema(columns)


def looks_like_header(first_row: list[str], second_row: list[str] | None) -> bool:
    """Heuristic header detection.

    A first row is treated as a header when none of its fields parse as
    numbers while the following row has at least one numeric field.  This
    matches how the paper's CSV dumps (pure integer tables, no header) and
    ordinary exported CSVs (textual header over numeric data) both come out
    right without user input.
    """
    if second_row is None:
        return False
    first_types = [classify_value(v) for v in first_row]
    if any(t is not DataType.STRING for t in first_types):
        return False
    second_types = [classify_value(v) for v in second_row]
    return any(t is not DataType.STRING for t in second_types)
