"""Positional map: the learned "table of contents over the flat file".

Section 4.1.5 of the paper ("Learning") proposes that every touch of a flat
file should teach the system something about the file's physical structure
— where rows begin, where attributes begin inside rows — so that future
loads do less tokenization work.  This module is that structure.

The map stores, per flat file:

* ``row_offsets`` — byte offset of the start of every data row, learned the
  first time any full pass tokenizes the file;
* per-column arrays of **field start offsets**, one ``int64`` per row,
  recorded as a side effect whenever a tokenization pass locates that
  column in every row;
* per-column arrays of **field end offsets**, recorded alongside the
  starts, so that a known column is a pure byte *slice* of the file — no
  rescanning needed to find where the field stops.

A later load of column *j* asks :meth:`PositionalMap.anchor_for` for the
closest already-known column at or before *j*.  Tokenization then starts at
the anchor's byte offset and skips only ``j - anchor`` fields instead of
``j`` fields from the start of the row.  When the anchor *is* ``j`` the
field is extracted with zero scanning.

When both start and end offsets of every column a pass needs are known
(:meth:`PositionalMap.can_slice`), the loader skips tokenization entirely:
it reads only the required byte ranges from the file and gathers the
fields directly (the selective-read fast path).  Offsets are *character*
offsets into the decoded text; :meth:`record_text_geometry` remembers
whether characters and bytes coincide (pure-ASCII files), which is the
precondition for using the offsets as byte ranges.

Under the dialect layer (:mod:`repro.flatfile.dialects`) a recorded span
covers the **encoded** field text — for quoted CSV that includes the
quotes, for TSV the backslash escapes, for fixed-width the padding — and
always lands on field starts/ends as the dialect frames them.  Gathered
span text is passed through the adapter's ``decode_many`` before parsing,
so the selective path returns the same logical values as a full scan.
Span-less dialects (JSON-lines) record row offsets only, and the
selective fast path simply never activates for them.

The map is append-only and never trusted blindly: it is invalidated
together with all other derived state when the source file's fingerprint
changes (section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class PositionalMap:
    """Byte-offset knowledge about one flat file.

    Attributes
    ----------
    nrows:
        Number of data rows in the file; fixed at first learning pass.
    row_offsets:
        ``int64[nrows]`` byte offset of each row start, or ``None`` if no
        pass has learned them yet.
    field_offsets:
        Mapping column index -> ``int64[nrows]`` byte offset of that
        column's field start in every row.
    field_ends:
        Mapping column index -> ``int64[nrows]`` byte offset one past the
        last character of that column's field in every row.
    text_geometry:
        ``(nbytes, nchars)`` of the file as last fully scanned, or ``None``
        if no full scan has reported it yet.  When the two are equal the
        file is pure single-byte text and learned character offsets are
        valid byte ranges (see :attr:`sliceable`).
    """

    nrows: int | None = None
    row_offsets: np.ndarray | None = None
    field_offsets: dict[int, np.ndarray] = field(default_factory=dict)
    field_ends: dict[int, np.ndarray] = field(default_factory=dict)
    text_geometry: tuple[int, int] | None = None

    # ------------------------------------------------------------ learning

    def record_row_offsets(self, offsets: np.ndarray) -> None:
        """Store row-start offsets (idempotent; first writer wins)."""
        if self.row_offsets is None:
            self.row_offsets = np.asarray(offsets, dtype=np.int64)
            self.nrows = len(self.row_offsets)

    def record_field_offsets(
        self, col: int, offsets: np.ndarray, ends: np.ndarray | None = None
    ) -> None:
        """Store field-start (and optionally end) offsets for ``col``."""
        arr = np.asarray(offsets, dtype=np.int64)
        if self.nrows is not None and len(arr) != self.nrows:
            raise ValueError(
                f"field offsets for column {col} have {len(arr)} entries, expected {self.nrows}"
            )
        if self.nrows is None:
            self.nrows = len(arr)
        self.field_offsets.setdefault(col, arr)
        if ends is not None:
            end_arr = np.asarray(ends, dtype=np.int64)
            if len(end_arr) != self.nrows:
                raise ValueError(
                    f"field ends for column {col} have {len(end_arr)} entries, expected {self.nrows}"
                )
            self.field_ends.setdefault(col, end_arr)

    def record_text_geometry(self, nbytes: int, nchars: int) -> None:
        """Remember the byte/character sizes seen by a full scan."""
        if self.text_geometry is None:
            self.text_geometry = (nbytes, nchars)

    def absorb_offsets(
        self,
        cols: list[int],
        starts: list[np.ndarray],
        ends: list[np.ndarray],
    ) -> None:
        """Bulk-learn several columns' field spans in one call.

        The vectorized kernel hands over whole columns of its row×field
        offset matrix (``starts[i]``/``ends[i]`` are ``int64[nrows]``
        arrays for column ``cols[i]``) instead of offering one field at a
        time.  Semantics match serial learning: first writer wins per
        column, and every array must cover every row.
        """
        if not (len(cols) == len(starts) == len(ends)):
            raise ValueError(
                f"absorb_offsets: {len(cols)} columns but "
                f"{len(starts)} start and {len(ends)} end arrays"
            )
        for col, s, e in zip(cols, starts, ends):
            if not self.knows_column(col):
                self.record_field_offsets(col, s, e)

    # ----------------------------------------------------------- exploiting

    def knows_column(self, col: int) -> bool:
        return col in self.field_offsets

    @property
    def sliceable(self) -> bool:
        """True when learned character offsets double as byte offsets."""
        return self.text_geometry is not None and (
            self.text_geometry[0] == self.text_geometry[1]
        )

    def can_slice(self, col: int) -> bool:
        """True when ``col`` is a known byte range in every row."""
        return col in self.field_offsets and col in self.field_ends

    def slices_for(self, col: int) -> tuple[np.ndarray, np.ndarray]:
        """``(starts, ends)`` arrays of ``col``'s field byte ranges."""
        return self.field_offsets[col], self.field_ends[col]

    def known_columns(self) -> list[int]:
        return sorted(self.field_offsets)

    def anchor_for(self, col: int) -> tuple[int, np.ndarray] | None:
        """Best starting point for locating ``col`` in every row.

        Returns ``(anchor_col, offsets)`` where ``anchor_col`` is the
        largest known column ``<= col``; falls back to row starts as
        pseudo-column ``0`` anchors when rows are known but no smaller
        column is; returns ``None`` when the map knows nothing useful.
        """
        candidates = [c for c in self.field_offsets if c <= col]
        if candidates:
            best = max(candidates)
            return best, self.field_offsets[best]
        if self.row_offsets is not None:
            return 0, self.row_offsets
        return None

    def clear(self) -> None:
        """Forget everything (called when the source file was edited)."""
        self.nrows = None
        self.row_offsets = None
        self.field_offsets.clear()
        self.field_ends.clear()
        self.text_geometry = None

    def absorb_partitions(
        self, parts: list["PositionalMap"], char_bases: list[int]
    ) -> None:
        """Merge per-partition maps (partition-relative offsets) into self.

        ``parts[i]`` was learned over partition ``i`` of the file in
        isolation, so its offsets are relative to the partition's first
        character; ``char_bases[i]`` is that partition's character offset
        in the full decoded text.  Merging shifts and concatenates, with
        the same first-writer-wins semantics as serial learning:

        * row offsets merge only when every partition learned its rows;
        * a column's field slices merge only when *every* partition knows
          them completely (``can_slice``), mirroring the serial rule that
          offsets are recorded only when learned for all rows;
        * text geometry is the sum of the partitions' byte/char sizes —
          partitions tile the file, so the sums equal a full scan's view.
        """
        if len(parts) != len(char_bases):
            raise ValueError(
                f"{len(parts)} partition maps but {len(char_bases)} bases"
            )
        if not parts:
            return
        if all(p.row_offsets is not None for p in parts):
            self.record_row_offsets(
                np.concatenate(
                    [p.row_offsets + base for p, base in zip(parts, char_bases)]
                )
            )
        shared = set(parts[0].field_offsets)
        for p in parts[1:]:
            shared &= set(p.field_offsets)
        for col in sorted(shared):
            if not all(p.can_slice(col) for p in parts):
                continue
            starts = np.concatenate(
                [p.field_offsets[col] + base for p, base in zip(parts, char_bases)]
            )
            ends = np.concatenate(
                [p.field_ends[col] + base for p, base in zip(parts, char_bases)]
            )
            self.record_field_offsets(col, starts, ends)
        geometries = [p.text_geometry for p in parts]
        if all(g is not None for g in geometries):
            self.record_text_geometry(
                nbytes=sum(g[0] for g in geometries),
                nchars=sum(g[1] for g in geometries),
            )

    def extend_tail(self, tail: "PositionalMap", added_rows: int) -> None:
        """Absorb a map learned over an appended tail region of the file.

        ``tail`` was learned by tokenizing only the appended bytes as a
        standalone document, so its offsets are relative to the start of
        the appended region; they are shifted by the old text's character
        size and concatenated.  Knowledge the tail pass did not relearn
        (a column's spans, row offsets) is dropped for safety rather than
        kept half-length — the same opportunistic semantics as partition
        merging.  A map with no recorded geometry cannot shift offsets
        and is cleared instead (callers treat that as "relearn later").
        """
        knows_nothing = (
            self.nrows is None
            and self.row_offsets is None
            and not self.field_offsets
            and self.text_geometry is None
        )
        if knows_nothing:
            return
        if self.text_geometry is None or tail.text_geometry is None:
            self.clear()
            return
        char_base = self.text_geometry[1]
        new_geometry = (
            self.text_geometry[0] + tail.text_geometry[0],
            self.text_geometry[1] + tail.text_geometry[1],
        )
        if (
            self.row_offsets is not None
            and tail.row_offsets is not None
            and len(tail.row_offsets) == added_rows
        ):
            self.row_offsets = np.concatenate(
                [self.row_offsets, tail.row_offsets + char_base]
            )
        else:
            self.row_offsets = None
        for col in list(self.field_offsets):
            if (
                self.can_slice(col)
                and tail.can_slice(col)
                and len(tail.field_offsets[col]) == added_rows
            ):
                self.field_offsets[col] = np.concatenate(
                    [self.field_offsets[col], tail.field_offsets[col] + char_base]
                )
                self.field_ends[col] = np.concatenate(
                    [self.field_ends[col], tail.field_ends[col] + char_base]
                )
            else:
                self.field_offsets.pop(col, None)
                self.field_ends.pop(col, None)
        self.nrows = (self.nrows or 0) + added_rows
        self.text_geometry = new_geometry

    def memory_bytes(self) -> int:
        """Approximate resident size of the map, for budget accounting."""
        total = 0
        if self.row_offsets is not None:
            total += self.row_offsets.nbytes
        for arr in self.field_offsets.values():
            total += arr.nbytes
        for arr in self.field_ends.values():
            total += arr.nbytes
        return total
