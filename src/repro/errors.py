"""Exception hierarchy for the repro package — a *serializable* taxonomy.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch one base class to handle anything the engine raises.  The
subclasses partition errors by subsystem: SQL text problems, catalog/binding
problems, flat-file problems, execution problems and serving-layer problems
(overload, timeouts, expired result resources).

Since the engine also serves queries over the network
(:mod:`repro.server`), every error class carries a **stable wire code**
(:attr:`ReproError.code`) and a default HTTP status
(:attr:`ReproError.http_status`), and every instance serializes to a
JSON-safe payload via :meth:`ReproError.to_payload`.  The inverse,
:func:`error_from_payload`, lets :mod:`repro.client` re-raise the *same*
exception class the engine raised on the server side — client errors
(4xx: bad SQL, unknown table), engine errors (5xx) and overload (429) are
distinguishable on the wire by code alone.

The code registry is append-only by convention: codes are part of the
public wire protocol and must never be renamed or reused.
"""

from __future__ import annotations

from typing import Any

#: Wire code -> exception class; populated by ``__init_subclass__``.
ERROR_CODES: dict[str, type["ReproError"]] = {}


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    ``code`` is the stable wire identifier of the class; ``http_status``
    is the HTTP status the server maps it to; ``details`` is an optional
    JSON-safe dict of structured context that travels with the message.
    """

    code: str = "internal"
    http_status: int = 500

    def __init__(self, message: str = "", **details: Any) -> None:
        super().__init__(message)
        self.details: dict[str, Any] = details

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        # First class to claim a code wins; subclasses that do not
        # declare their own code inherit (and must not re-register) it.
        if "code" in cls.__dict__:
            ERROR_CODES.setdefault(cls.code, cls)

    @property
    def message(self) -> str:
        return str(self)

    def to_payload(self) -> dict[str, Any]:
        """JSON-safe wire form: stable code, message, structured details."""
        return {
            "error": self.code,
            "message": str(self),
            "details": dict(self.details),
        }


def error_from_payload(payload: dict) -> ReproError:
    """Reconstruct the exception a :meth:`ReproError.to_payload` described.

    Unknown codes (a newer server, a proxy mangling the body) degrade to
    the :class:`ReproError` base so callers can still catch one class.
    """
    cls = ERROR_CODES.get(payload.get("error", ""), ReproError)
    exc = cls.__new__(cls)
    ReproError.__init__(exc, payload.get("message", ""))
    details = payload.get("details")
    if isinstance(details, dict):
        exc.details = details
        position = details.get("position")
        if isinstance(exc, SQLSyntaxError) and isinstance(position, int):
            exc.position = position
    return exc


class SQLSyntaxError(ReproError):
    """The SQL text could not be lexed or parsed.

    Carries the offending position so callers can point at the bad token.
    """

    code = "sql_syntax"
    http_status = 400

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message, position=position)
        self.position = position


class UnsupportedSQLError(ReproError):
    """The query is valid SQL but outside the implemented subset."""

    code = "sql_unsupported"
    http_status = 400


class BindError(ReproError):
    """A parsed query references unknown tables/columns or mis-typed ops."""

    code = "bind"
    http_status = 400


class CatalogError(ReproError):
    """Catalog-level problem: unknown table, duplicate attach, etc."""

    code = "catalog"
    http_status = 404


class TableConflictError(CatalogError):
    """An attach collides with an existing attachment of the same name
    under *different* parse options or a different file (re-attaching the
    identical file with identical options is idempotent, not a conflict).
    """

    code = "table_conflict"
    http_status = 409


class FlatFileError(ReproError):
    """A raw data file is missing, malformed, or changed underneath us."""

    code = "flat_file"
    http_status = 422


class SchemaInferenceError(FlatFileError):
    """The schema of a flat file could not be inferred."""

    code = "schema_inference"
    http_status = 422


class FormatDetectionError(FlatFileError):
    """The dialect sniffer could not pick a format for a flat file.

    Raised for empty files and for samples where the evidence is
    ambiguous (several delimiters split every line consistently).  The
    message always names the explicit fallback: pass ``--format`` /
    ``--delimiter`` (or ``attach(..., format=...)``) instead of sniffing.
    """

    code = "format_detection"
    http_status = 422


class StaleFileError(FlatFileError):
    """The flat file was edited after data was loaded from it.

    The engine's invalidation policy (paper section 5.4) normally drops the
    derived data automatically; this error is raised only when the caller
    disables automatic invalidation and the engine detects the edit.
    """

    code = "stale_file"
    http_status = 409


class ExecutionError(ReproError):
    """A physical operator failed while executing a plan."""

    code = "execution"
    http_status = 500


class BudgetExceededError(ReproError):
    """The adaptive store cannot satisfy a load within its memory budget."""

    code = "budget_exceeded"
    http_status = 503


class OverloadedError(ReproError):
    """Admission control rejected the request (server at capacity).

    Maps to HTTP 429; ``details["retry_after_s"]`` suggests a backoff.
    """

    code = "overloaded"
    http_status = 429

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message, retry_after_s=retry_after_s)
        self.retry_after_s = retry_after_s


class InternalServerError(ReproError):
    """An unexpected (non-taxonomy) exception escaped a request handler.

    The serving layer maps any such exception to this stable wire code
    so clients always receive a JSON taxonomy payload — never a raw
    stack trace or an HTML error page.
    """

    code = "internal_error"
    http_status = 500


class DrainingError(ReproError):
    """The server is draining: finishing in-flight queries, taking no
    new ones.  Maps to 503 + ``Retry-After`` — clients should back off
    and retry against the replacement process.
    """

    code = "draining"
    http_status = 503

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message, retry_after_s=retry_after_s)
        self.retry_after_s = retry_after_s


class QueryTimeoutError(ReproError):
    """A served query exceeded the server's request timeout."""

    code = "query_timeout"
    http_status = 504


class BadRequestError(ReproError):
    """A wire request is malformed (bad JSON body, missing fields, bad
    paging parameters) — client-side by definition, never the engine."""

    code = "bad_request"
    http_status = 400


class NotFoundError(ReproError):
    """The requested wire route or resource does not exist."""

    code = "not_found"
    http_status = 404


class UnknownResultError(ReproError):
    """No stored result resource has this id (never existed, expired, or
    evicted — result resources are disposable, like the adaptive store)."""

    code = "unknown_result"
    http_status = 404
