"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch one base class to handle anything the engine raises.  The
subclasses partition errors by subsystem: SQL text problems, catalog/binding
problems, flat-file problems and execution problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SQLSyntaxError(ReproError):
    """The SQL text could not be lexed or parsed.

    Carries the offending position so callers can point at the bad token.
    """

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class BindError(ReproError):
    """A parsed query references unknown tables/columns or mis-typed ops."""


class CatalogError(ReproError):
    """Catalog-level problem: unknown table, duplicate attach, etc."""


class FlatFileError(ReproError):
    """A raw data file is missing, malformed, or changed underneath us."""


class SchemaInferenceError(FlatFileError):
    """The schema of a flat file could not be inferred."""


class FormatDetectionError(FlatFileError):
    """The dialect sniffer could not pick a format for a flat file.

    Raised for empty files and for samples where the evidence is
    ambiguous (several delimiters split every line consistently).  The
    message always names the explicit fallback: pass ``--format`` /
    ``--delimiter`` (or ``attach(..., format=...)``) instead of sniffing.
    """


class StaleFileError(FlatFileError):
    """The flat file was edited after data was loaded from it.

    The engine's invalidation policy (paper section 5.4) normally drops the
    derived data automatically; this error is raised only when the caller
    disables automatic invalidation and the engine detects the edit.
    """


class ExecutionError(ReproError):
    """A physical operator failed while executing a plan."""


class BudgetExceededError(ReproError):
    """The adaptive store cannot satisfy a load within its memory budget."""


class UnsupportedSQLError(ReproError):
    """The query is valid SQL but outside the implemented subset."""
