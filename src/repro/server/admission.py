"""Per-client admission control and global backpressure.

A long-lived query server must shed load rather than queue unboundedly:
every ``POST /query`` first passes this controller, which enforces

* a **global** in-flight cap (one shared semaphore's worth of queries may
  be executing at once, across all clients), and
* a **per-client** in-flight cap (one greedy client cannot occupy every
  slot; clients are identified by the ``X-Repro-Client`` header, falling
  back to the peer address).

Rejections never block: the controller raises
:class:`~repro.errors.OverloadedError` immediately, which the HTTP layer
maps to ``429 Too Many Requests`` with a ``Retry-After`` hint — the
wire-visible form of backpressure.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.errors import OverloadedError


class AdmissionController:
    """Non-blocking in-flight caps: global and per client."""

    def __init__(
        self,
        max_inflight: int = 8,
        max_inflight_per_client: int = 2,
        retry_after_s: float = 1.0,
    ) -> None:
        if max_inflight <= 0:
            raise ValueError(f"max_inflight must be positive, got {max_inflight}")
        if max_inflight_per_client <= 0:
            raise ValueError(
                "max_inflight_per_client must be positive, "
                f"got {max_inflight_per_client}"
            )
        self.max_inflight = max_inflight
        self.max_inflight_per_client = max_inflight_per_client
        self.retry_after_s = retry_after_s
        self._lock = threading.Lock()
        self._global_inflight = 0
        self._per_client: dict[str, int] = {}
        self.admitted = 0
        self.rejected_global = 0
        self.rejected_client = 0

    def acquire(self, client: str) -> None:
        """Claim one slot for ``client`` or raise :class:`OverloadedError`."""
        with self._lock:
            if self._global_inflight >= self.max_inflight:
                self.rejected_global += 1
                raise OverloadedError(
                    f"server at capacity ({self.max_inflight} queries in flight)",
                    retry_after_s=self.retry_after_s,
                )
            if self._per_client.get(client, 0) >= self.max_inflight_per_client:
                self.rejected_client += 1
                raise OverloadedError(
                    f"client {client!r} already has "
                    f"{self.max_inflight_per_client} queries in flight",
                    retry_after_s=self.retry_after_s,
                )
            self._global_inflight += 1
            self._per_client[client] = self._per_client.get(client, 0) + 1
            self.admitted += 1

    def release(self, client: str) -> None:
        """Return one slot (idempotence is the caller's responsibility)."""
        with self._lock:
            self._global_inflight = max(0, self._global_inflight - 1)
            remaining = self._per_client.get(client, 0) - 1
            if remaining > 0:
                self._per_client[client] = remaining
            else:
                self._per_client.pop(client, None)

    @contextmanager
    def admitted_slot(self, client: str):
        """``with``-scoped acquire/release for fully-synchronous requests."""
        self.acquire(client)
        try:
            yield
        finally:
            self.release(client)

    def snapshot(self) -> dict:
        """JSON-safe counters for the ``/stats`` endpoint."""
        with self._lock:
            return {
                "inflight": self._global_inflight,
                "max_inflight": self.max_inflight,
                "max_inflight_per_client": self.max_inflight_per_client,
                "admitted": self.admitted,
                "rejected_global": self.rejected_global,
                "rejected_client": self.rejected_client,
            }


__all__ = ["AdmissionController"]
