"""The network serving layer: the adaptive engine as a query server.

``repro serve`` (or :class:`ReproServer` programmatically) puts an
HTTP/JSON front door on one shared :class:`~repro.core.engine.NoDBEngine`
— the concurrency machinery (per-table RW locks, single-flight shared
scans, the result cache, the persistent store) finally serves real
concurrent clients instead of in-process threads.

Stdlib only (``http.server``); results are persisted as addressable
resources and delivered in bounded pages (:mod:`repro.server.results`);
per-client admission control sheds load with 429 + ``Retry-After``
(:mod:`repro.server.admission`).
"""

from repro.server.admission import AdmissionController
from repro.server.app import ReproServer
from repro.server.results import ResultManager

__all__ = ["AdmissionController", "ReproServer", "ResultManager"]
